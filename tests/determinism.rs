//! Determinism of the parallel pipeline stages (Project, Bin and Raster):
//! a frame rendered with `threads = 1` (the serial reference) must be
//! *bit-identical* — pixels, winner buffers and `FrameProfile` work
//! counters — to the same frame rendered with any other worker count,
//! including auto (`threads = 0`), on plain, masked and filtered renders.
//!
//! Occupancy-driven tile merging (`RenderOptions::merge_threshold`) adds a
//! second determinism axis: a *merged* render must be bit-identical in
//! pixels and winners to the *unmerged* render of the same frame — merging
//! regroups raster scheduling, never per-pixel work — and the merged
//! configuration must itself be bit-identical across all thread counts.
//!
//! Kernel selection (`RenderOptions::raster_kernel`) adds the third axis:
//! the 4-lane SIMD compositing kernel must produce the same frame, bit for
//! bit, as the scalar reference kernel — on plain, masked and filtered
//! renders, at every worker count, merged or not.
//!
//! Splat staging (`RenderOptions::raster_staging`) adds the fourth axis:
//! the per-tile staging prepass + row-interval scheduler must push the
//! SIMD kernel the exact splat sequences the per-row CSR re-walk would,
//! so pixels, winners and blend steps are bit-identical between the two
//! staging paths — across thread counts and merged/unmerged schedules —
//! and the `RasterWork` counters themselves must be deterministic for a
//! fixed configuration (they are per-tile quantities, so neither the
//! thread count nor the work-unit schedule may change them).

use metasapiens::render::{
    RasterKernel, RasterStaging, RenderOptions, RenderOutput, Renderer, StageKind,
};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::{Camera, SceneSource};

/// Worker counts the suite compares against the serial reference.
const THREAD_COUNTS: [usize; 4] = [2, 3, 8, 0];

fn scene() -> metasapiens::scene::synth::Scene {
    TraceId::by_name("kitchen")
        .unwrap()
        .build_scene_with_scale(0.004)
}

fn camera(s: &metasapiens::scene::synth::Scene) -> Camera {
    Camera {
        width: 160,
        height: 120,
        ..s.train_cameras[0]
    }
}

fn opts(threads: usize) -> RenderOptions {
    RenderOptions {
        threads,
        track_point_stats: true,
        ..RenderOptions::default()
    }
}

/// Assert `par` is the same frame as `serial`, bit for bit: pixels, winner
/// buffers, headline stats, and the per-stage `FrameProfile` work counters
/// (profile equality already ignores wall times, which legitimately vary).
fn assert_bit_identical(par: &RenderOutput, serial: &RenderOutput, threads: usize) {
    assert_eq!(
        par.image, serial.image,
        "pixels differ at threads={threads}"
    );
    assert_eq!(
        par.winners, serial.winners,
        "winners differ at threads={threads}"
    );
    assert_eq!(par.stats, serial.stats, "stats differ at threads={threads}");
    for kind in [
        StageKind::Project,
        StageKind::Bin,
        StageKind::Merge,
        StageKind::Raster,
        StageKind::Composite,
    ] {
        assert_eq!(
            par.stats.profile.items(kind),
            serial.stats.profile.items(kind),
            "{} work counter differs at threads={threads}",
            kind.name()
        );
    }
}

#[test]
fn parallel_render_is_bit_identical_to_serial() {
    let s = scene();
    let cam = camera(&s);
    let serial = Renderer::new(opts(1)).render(&s.model, &cam);
    for threads in THREAD_COUNTS {
        let par = Renderer::new(opts(threads)).render(&s.model, &cam);
        assert_bit_identical(&par, &serial, threads);
    }
}

#[test]
fn masked_parallel_render_is_bit_identical_to_serial() {
    let s = scene();
    let cam = camera(&s);
    // A mask with structure: left half plus a sparse checkerboard.
    let mask: Vec<bool> = (0..(cam.width * cam.height) as usize)
        .map(|i| {
            let (x, y) = (i as u32 % cam.width, i as u32 / cam.width);
            x < cam.width / 2 || (x + y) % 7 == 0
        })
        .collect();
    let serial = Renderer::new(opts(1)).render_masked(&s.model, &cam, |_| true, &mask);
    for threads in THREAD_COUNTS {
        let par = Renderer::new(opts(threads)).render_masked(&s.model, &cam, |_| true, &mask);
        assert_bit_identical(&par, &serial, threads);
    }
}

#[test]
fn filtered_parallel_render_is_bit_identical_to_serial() {
    // The admission predicate is evaluated concurrently by projection
    // shards; sharding must not change which points are admitted or their
    // order.
    let s = scene();
    let cam = camera(&s);
    let admit = |i: usize| i % 3 != 1;
    let serial = Renderer::new(opts(1)).render_filtered(&s.model, &cam, admit);
    for threads in THREAD_COUNTS {
        let par = Renderer::new(opts(threads)).render_filtered(&s.model, &cam, admit);
        assert_bit_identical(&par, &serial, threads);
    }
}

#[test]
fn repeated_renders_are_reproducible() {
    // The whole pipeline (synthetic scene included) is deterministic: two
    // fresh end-to-end runs produce the same image.
    let sa = scene();
    let a = Renderer::new(opts(2)).render(&sa.model, &camera(&sa));
    let sb = scene();
    let b = Renderer::new(opts(2)).render(&sb.model, &camera(&sb));
    assert_eq!(a.image, b.image);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn profile_stages_present_regardless_of_threads() {
    let s = scene();
    let cam = camera(&s);
    for threads in [1usize, 4] {
        let out = Renderer::new(opts(threads)).render(&s.model, &cam);
        let kinds: Vec<StageKind> = out
            .stats
            .profile
            .samples
            .iter()
            .map(|smp| smp.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::Project,
                StageKind::Bin,
                StageKind::Merge,
                StageKind::Raster,
                StageKind::Composite
            ],
            "stage graph must not depend on the worker count"
        );
    }
}

// ---------------------------------------------------------------------------
// Tile merging: the second determinism axis
// ---------------------------------------------------------------------------

/// A pulled-back view of the kitchen scene: the model shrinks into the
/// center tiles, leaving the sparse periphery that makes occupancy merging
/// actually coalesce super-tiles (the head-on test camera fills every tile
/// far too uniformly for any tile to drop below half the mean).
fn foveal_camera() -> Camera {
    use metasapiens::math::Vec3;
    Camera::look_at(160, 120, 60.0, Vec3::new(0.0, 0.0, 16.0), Vec3::zero())
}

fn merge_opts(threads: usize) -> RenderOptions {
    RenderOptions {
        threads,
        track_point_stats: true,
        ..RenderOptions::with_tile_merging()
    }
}

/// Assert a merged render is the same *frame* as an unmerged render:
/// pixels, winners, and every schedule-independent workload counter.
/// (`RenderStats` as a whole legitimately differs: the merged run records
/// the schedule in `tile_unit` and a different Merge work counter.)
fn assert_same_frame(merged: &RenderOutput, unmerged: &RenderOutput, label: &str) {
    assert_eq!(
        merged.image, unmerged.image,
        "merged pixels differ ({label})"
    );
    assert_eq!(
        merged.winners, unmerged.winners,
        "merged winners differ ({label})"
    );
    assert_eq!(
        merged.stats.tile_intersections, unmerged.stats.tile_intersections,
        "per-tile counts differ ({label})"
    );
    assert_eq!(merged.stats.blend_steps, unmerged.stats.blend_steps);
    assert_eq!(
        merged.stats.point_pixels_dominated,
        unmerged.stats.point_pixels_dominated
    );
    for kind in [StageKind::Project, StageKind::Bin, StageKind::Raster] {
        assert_eq!(
            merged.stats.profile.items(kind),
            unmerged.stats.profile.items(kind),
            "{} work counter differs ({label})",
            kind.name()
        );
    }
}

#[test]
fn merged_render_is_bit_identical_to_unmerged_across_threads() {
    let s = scene();
    let cam = foveal_camera();
    let unmerged = Renderer::new(opts(1)).render(&s.model, &cam);
    let merged_serial = Renderer::new(merge_opts(1)).render(&s.model, &cam);
    assert_same_frame(&merged_serial, &unmerged, "plain, threads=1");
    // The merged run actually merged something on this foveal scene.
    assert!(
        merged_serial.stats.work_unit_count() < merged_serial.stats.grid.tile_count(),
        "expected at least one super-tile merge"
    );
    for threads in THREAD_COUNTS {
        let merged = Renderer::new(merge_opts(threads)).render(&s.model, &cam);
        assert_bit_identical(&merged, &merged_serial, threads);
        assert_same_frame(&merged, &unmerged, "plain");
    }
}

#[test]
fn merged_masked_render_is_bit_identical_to_unmerged_across_threads() {
    let s = scene();
    let cam = foveal_camera();
    let mask: Vec<bool> = (0..(cam.width * cam.height) as usize)
        .map(|i| {
            let (x, y) = (i as u32 % cam.width, i as u32 / cam.width);
            x < cam.width / 2 || (x + y) % 7 == 0
        })
        .collect();
    let unmerged = Renderer::new(opts(1)).render_masked(&s.model, &cam, |_| true, &mask);
    let merged_serial = Renderer::new(merge_opts(1)).render_masked(&s.model, &cam, |_| true, &mask);
    assert_same_frame(&merged_serial, &unmerged, "masked, threads=1");
    for threads in THREAD_COUNTS {
        let merged =
            Renderer::new(merge_opts(threads)).render_masked(&s.model, &cam, |_| true, &mask);
        assert_bit_identical(&merged, &merged_serial, threads);
        assert_same_frame(&merged, &unmerged, "masked");
    }
}

#[test]
fn merged_filtered_render_is_bit_identical_to_unmerged_across_threads() {
    let s = scene();
    let cam = foveal_camera();
    let admit = |i: usize| i % 3 != 1;
    let unmerged = Renderer::new(opts(1)).render_filtered(&s.model, &cam, admit);
    let merged_serial = Renderer::new(merge_opts(1)).render_filtered(&s.model, &cam, admit);
    assert_same_frame(&merged_serial, &unmerged, "filtered, threads=1");
    for threads in THREAD_COUNTS {
        let merged = Renderer::new(merge_opts(threads)).render_filtered(&s.model, &cam, admit);
        assert_bit_identical(&merged, &merged_serial, threads);
        assert_same_frame(&merged, &unmerged, "filtered");
    }
}

// ---------------------------------------------------------------------------
// Raster kernels: the third determinism axis
// ---------------------------------------------------------------------------

fn kernel_opts(threads: usize, kernel: RasterKernel) -> RenderOptions {
    RenderOptions {
        raster_kernel: kernel,
        ..opts(threads)
    }
}

#[test]
fn simd_kernel_is_bit_identical_to_scalar_across_threads() {
    let s = scene();
    let cam = camera(&s);
    let scalar = Renderer::new(kernel_opts(1, RasterKernel::Scalar)).render(&s.model, &cam);
    for threads in [1, 2, 3, 8, 0] {
        let simd = Renderer::new(kernel_opts(threads, RasterKernel::Simd4)).render(&s.model, &cam);
        assert_bit_identical(&simd, &scalar, threads);
    }
}

#[test]
fn simd_kernel_masked_and_filtered_match_scalar() {
    let s = scene();
    let cam = camera(&s);
    let mask: Vec<bool> = (0..(cam.width * cam.height) as usize)
        .map(|i| {
            let (x, y) = (i as u32 % cam.width, i as u32 / cam.width);
            x < cam.width / 2 || (x + y) % 7 == 0
        })
        .collect();
    let admit = |i: usize| i % 3 != 1;
    let scalar_masked = Renderer::new(kernel_opts(1, RasterKernel::Scalar)).render_masked(
        &s.model,
        &cam,
        |_| true,
        &mask,
    );
    let scalar_filtered =
        Renderer::new(kernel_opts(1, RasterKernel::Scalar)).render_filtered(&s.model, &cam, admit);
    for threads in [1, 3] {
        let o = kernel_opts(threads, RasterKernel::Simd4);
        let masked = Renderer::new(o.clone()).render_masked(&s.model, &cam, |_| true, &mask);
        assert_bit_identical(&masked, &scalar_masked, threads);
        let filtered = Renderer::new(o).render_filtered(&s.model, &cam, admit);
        assert_bit_identical(&filtered, &scalar_filtered, threads);
    }
}

#[test]
fn merged_simd_kernel_matches_unmerged_scalar_across_threads() {
    // Both axes at once: merged scheduling with the SIMD kernel must still
    // reproduce the unmerged scalar reference frame.
    let s = scene();
    let cam = foveal_camera();
    let scalar_unmerged =
        Renderer::new(kernel_opts(1, RasterKernel::Scalar)).render(&s.model, &cam);
    let simd_merged_serial = Renderer::new(RenderOptions {
        raster_kernel: RasterKernel::Simd4,
        ..merge_opts(1)
    })
    .render(&s.model, &cam);
    assert_same_frame(
        &simd_merged_serial,
        &scalar_unmerged,
        "simd4 merged, threads=1",
    );
    for threads in THREAD_COUNTS {
        let simd_merged = Renderer::new(RenderOptions {
            raster_kernel: RasterKernel::Simd4,
            ..merge_opts(threads)
        })
        .render(&s.model, &cam);
        assert_bit_identical(&simd_merged, &simd_merged_serial, threads);
        assert_same_frame(&simd_merged, &scalar_unmerged, "simd4 merged");
    }
}

// ---------------------------------------------------------------------------
// Splat staging: the fourth determinism axis
// ---------------------------------------------------------------------------

fn staging_opts(threads: usize, staging: RasterStaging) -> RenderOptions {
    RenderOptions {
        raster_kernel: RasterKernel::Simd4,
        raster_staging: staging,
        ..opts(threads)
    }
}

#[test]
fn pertile_staging_is_bit_identical_to_perrow_across_threads() {
    let s = scene();
    let cam = camera(&s);
    let perrow = Renderer::new(staging_opts(1, RasterStaging::PerRow)).render(&s.model, &cam);
    for threads in [1, 2, 3, 8, 0] {
        let pertile =
            Renderer::new(staging_opts(threads, RasterStaging::PerTile)).render(&s.model, &cam);
        assert_bit_identical(&pertile, &perrow, threads);
    }
}

#[test]
fn pertile_staging_masked_and_merged_match_perrow() {
    let s = scene();
    let cam = foveal_camera();
    let mask: Vec<bool> = (0..(cam.width * cam.height) as usize)
        .map(|i| {
            let (x, y) = (i as u32 % cam.width, i as u32 / cam.width);
            x < cam.width / 2 || (x + y) % 7 == 0
        })
        .collect();
    let perrow_masked = Renderer::new(staging_opts(1, RasterStaging::PerRow)).render_masked(
        &s.model,
        &cam,
        |_| true,
        &mask,
    );
    let perrow_merged = Renderer::new(RenderOptions {
        raster_staging: RasterStaging::PerRow,
        raster_kernel: RasterKernel::Simd4,
        ..merge_opts(1)
    })
    .render(&s.model, &cam);
    for threads in [1, 3] {
        let masked = Renderer::new(staging_opts(threads, RasterStaging::PerTile)).render_masked(
            &s.model,
            &cam,
            |_| true,
            &mask,
        );
        assert_bit_identical(&masked, &perrow_masked, threads);
        let merged = Renderer::new(RenderOptions {
            raster_staging: RasterStaging::PerTile,
            raster_kernel: RasterKernel::Simd4,
            ..merge_opts(threads)
        })
        .render(&s.model, &cam);
        assert_bit_identical(&merged, &perrow_merged, threads);
    }
}

#[test]
fn raster_work_counters_are_deterministic_and_meaningful() {
    let s = scene();
    let cam = camera(&s);

    // Per-tile staging: counters are per-tile quantities, so they must not
    // depend on the thread count or the work-unit schedule.
    let reference = Renderer::new(staging_opts(1, RasterStaging::PerTile)).render(&s.model, &cam);
    let work = reference.stats.profile.raster;
    assert!(work.splats_staged > 0, "dense trace must stage splats");
    assert!(
        work.row_iterations > 0 && work.row_iterations < work.row_iteration_bound,
        "row-interval schedule must beat the rows × csr_len bound \
         ({} vs {})",
        work.row_iterations,
        work.row_iteration_bound
    );
    for threads in THREAD_COUNTS {
        let par =
            Renderer::new(staging_opts(threads, RasterStaging::PerTile)).render(&s.model, &cam);
        assert_eq!(
            par.stats.profile.raster, work,
            "per-tile RasterWork differs at threads={threads}"
        );
    }
    let merged = Renderer::new(RenderOptions {
        raster_staging: RasterStaging::PerTile,
        raster_kernel: RasterKernel::Simd4,
        ..merge_opts(3)
    })
    .render(&s.model, &cam);
    assert_eq!(
        merged.stats.profile.raster, work,
        "per-tile RasterWork differs under tile merging"
    );

    // Per-row staging: every tile row re-walks the full CSR list, so the
    // iteration count *is* the bound and nothing is culled up front.
    let perrow = Renderer::new(staging_opts(1, RasterStaging::PerRow)).render(&s.model, &cam);
    let perrow_work = perrow.stats.profile.raster;
    assert_eq!(perrow_work.row_iterations, perrow_work.row_iteration_bound);
    assert_eq!(perrow_work.splats_culled, 0);
    assert_eq!(perrow_work.row_iteration_bound, work.row_iteration_bound);

    // Scalar kernel: no staging runs at all — counters stay zero.
    let scalar = Renderer::new(kernel_opts(1, RasterKernel::Scalar)).render(&s.model, &cam);
    assert_eq!(
        scalar.stats.profile.raster,
        metasapiens::render::RasterWork::default()
    );
}

// ---------------------------------------------------------------------------
// Out-of-core chunking: the fifth determinism axis
// ---------------------------------------------------------------------------
//
// With LOD off, a chunked render must be bit-identical — pixels, winners,
// work counters — to the in-core render of the concatenated chunks, for
// every chunk size, across the other four axes. Chunk sizes here are
// deliberately ragged (odd primes, not tile-aligned), so chunk boundaries
// split tile lists mid-stream.

/// Chunk sizes to sweep: a small odd prime (many ragged chunks, every tile
/// list split mid-stream) and roughly half the model (one mid-model split).
fn chunk_sizes(model_len: usize) -> [usize; 2] {
    assert!(model_len > 347, "scene too small for the chunk sweep");
    [347, model_len / 2 + 1]
}

#[test]
fn chunked_render_is_bit_identical_to_in_core_across_threads() {
    let s = scene();
    let cam = camera(&s);
    let serial = Renderer::new(opts(1)).render(&s.model, &cam);
    for chunk_splats in chunk_sizes(s.model.len()) {
        let source = metasapiens::scene::InCoreSource::new(s.model.clone(), chunk_splats);
        assert!(source.chunk_count() >= 2, "chunk sweep must actually chunk");
        for threads in [1, 2, 3, 8, 0] {
            let chunked = Renderer::new(opts(threads)).render_source(&source, &cam);
            assert_bit_identical(&chunked, &serial, threads);
            assert_eq!(
                chunked.stats.profile, serial.stats.profile,
                "chunked profile (kind, items) differs at chunk_splats={chunk_splats}, \
                 threads={threads}"
            );
        }
    }
}

#[test]
fn chunked_render_matches_in_core_across_merging_kernels_and_staging() {
    // The chunk axis crossed with the other three: merged/unmerged ×
    // scalar/simd4 × perrow/pertile, chunked vs in-core per configuration.
    let s = scene();
    let cam = foveal_camera();
    let chunk_splats = chunk_sizes(s.model.len())[0];
    let source = metasapiens::scene::InCoreSource::new(s.model.clone(), chunk_splats);
    for merge in [false, true] {
        for kernel in [RasterKernel::Scalar, RasterKernel::Simd4] {
            for staging in [RasterStaging::PerRow, RasterStaging::PerTile] {
                let o = RenderOptions {
                    raster_kernel: kernel,
                    raster_staging: staging,
                    ..if merge { merge_opts(3) } else { opts(3) }
                };
                let renderer = Renderer::new(o);
                let in_core = renderer.render(&s.model, &cam);
                let chunked = renderer.render_source(&source, &cam);
                assert_bit_identical(&chunked, &in_core, 3);
                assert_eq!(
                    chunked.stats.profile, in_core.stats.profile,
                    "profile differs (merge={merge}, {kernel:?}, {staging:?})"
                );
            }
        }
    }
}

#[test]
fn chunked_file_source_round_trips_bit_identically() {
    // The real out-of-core impl: encode the model into the multi-chunk
    // container, reopen it from bytes, and render from it — still the
    // in-core frame, bit for bit.
    let s = scene();
    let cam = camera(&s);
    let serial = Renderer::new(opts(1)).render(&s.model, &cam);
    let chunk_splats = chunk_sizes(s.model.len())[0];
    let encoded = metasapiens::scene::encode_model_chunked(&s.model, chunk_splats);
    let source = metasapiens::scene::ChunkedFileSource::from_bytes(encoded.to_vec())
        .expect("container decodes");
    assert!(source.chunk_count() >= 2);
    for threads in [1, 3] {
        let chunked = Renderer::new(opts(threads)).render_source(&source, &cam);
        assert_bit_identical(&chunked, &serial, threads);
    }
}

#[test]
fn chunked_scratch_peak_is_bounded_by_chunk_not_model() {
    // The memory claim the chunked pipeline exists for, asserted via the
    // new FrameProfile counters: projected-splat scratch residency scales
    // with the chunk size, not the model size.
    use metasapiens::render::ProjectedSplat;
    let s = scene();
    let cam = camera(&s);
    let in_core = Renderer::new(opts(1)).render(&s.model, &cam);
    let splat_bytes = std::mem::size_of::<ProjectedSplat>() as u64;
    assert_eq!(
        in_core.stats.profile.projected_bytes_peak,
        in_core.stats.points_projected as u64 * splat_bytes
    );
    assert_eq!(in_core.stats.profile.chunk_bytes_peak, 0);
    let mut last_peak = u64::MAX;
    for chunk_splats in [s.model.len() / 2 + 1, 347] {
        let source = metasapiens::scene::InCoreSource::new(s.model.clone(), chunk_splats);
        let chunked = Renderer::new(opts(3)).render_source(&source, &cam);
        let p = &chunked.stats.profile;
        assert!(p.projected_bytes_peak <= chunk_splats as u64 * splat_bytes);
        assert!(p.projected_bytes_peak < in_core.stats.profile.projected_bytes_peak);
        assert!(p.chunk_bytes_peak > 0);
        // Halving the chunk size must shrink the peak monotonically.
        assert!(p.projected_bytes_peak < last_peak);
        last_peak = p.projected_bytes_peak;
        // Deterministic per configuration: an identical run reproduces the
        // exact peaks.
        let again = Renderer::new(opts(3)).render_source(&source, &cam);
        assert_eq!(
            again.stats.profile.projected_bytes_peak,
            p.projected_bytes_peak
        );
        assert_eq!(again.stats.profile.chunk_bytes_peak, p.chunk_bytes_peak);
    }
}

// ---------------------------------------------------------------------------
// Chunk cache: the sixth determinism axis
// ---------------------------------------------------------------------------
//
// The cross-frame chunk cache must change *where* chunk bytes come from,
// never what a frame computes: for every cache budget — disabled, exactly
// one chunk, unbounded — a cached chunked render must be bit-identical to
// the uncached one, and both to the in-core reference, for every chunk
// size and thread count. Renderers are reused across frames so later
// frames exercise warm-cache replay, not just the intra-frame hits.

#[test]
fn cached_chunked_render_is_bit_identical_across_budgets() {
    let s = scene();
    let cam = camera(&s);
    let serial = Renderer::new(opts(1)).render(&s.model, &cam);
    for chunk_splats in chunk_sizes(s.model.len()) {
        let source = metasapiens::scene::InCoreSource::new(s.model.clone(), chunk_splats);
        let one_chunk_bytes = {
            let mut probe = metasapiens::scene::GaussianModel::new(0);
            s.model.clone_range_into(0..chunk_splats, &mut probe);
            probe.storage_bytes()
        };
        for budget in [0, one_chunk_bytes, usize::MAX] {
            for threads in [1, 2, 3, 8, 0] {
                let o = RenderOptions {
                    cache_budget_bytes: Some(budget),
                    ..opts(threads)
                };
                let renderer = Renderer::new(o);
                // Two frames from one renderer: the first populates the
                // cache (budget permitting), the second replays it.
                let first = renderer.render_source(&source, &cam);
                let second = renderer.render_source(&source, &cam);
                for out in [&first, &second] {
                    assert_bit_identical(out, &serial, threads);
                    // Profile equality (kind, items pairs) must hold too:
                    // cache traffic is excluded from it by design.
                    assert_eq!(
                        out.stats.profile, serial.stats.profile,
                        "profile differs at chunk_splats={chunk_splats}, \
                         budget={budget}, threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn cached_chunked_render_matches_across_kernels_and_staging() {
    // The cache axis crossed with kernel and staging selection, warm and
    // cold: per configuration, in-core, cold-cache chunked and warm-cache
    // chunked must all be the same frame.
    let s = scene();
    let cam = foveal_camera();
    let chunk_splats = chunk_sizes(s.model.len())[0];
    let source = metasapiens::scene::InCoreSource::new(s.model.clone(), chunk_splats);
    for kernel in [RasterKernel::Scalar, RasterKernel::Simd4] {
        for staging in [RasterStaging::PerRow, RasterStaging::PerTile] {
            let o = RenderOptions {
                raster_kernel: kernel,
                raster_staging: staging,
                cache_budget_bytes: Some(usize::MAX),
                ..opts(3)
            };
            let renderer = Renderer::new(o);
            let in_core = renderer.render(&s.model, &cam);
            let cold = renderer.render_source(&source, &cam);
            let warm = renderer.render_source(&source, &cam);
            assert_bit_identical(&cold, &in_core, 3);
            assert_bit_identical(&warm, &in_core, 3);
            assert_eq!(
                warm.stats.profile, in_core.stats.profile,
                "profile differs ({kernel:?}, {staging:?})"
            );
        }
    }
}

#[test]
fn cached_chunked_frames_reuse_decodes_across_frames() {
    // The cache's contract in counters: with an unbounded budget, frame 1
    // misses every chunk once (the count pass) and hits it once (the
    // scatter pass — the double decode the cache eliminates); frame 2 from
    // the same renderer never decodes at all.
    let s = scene();
    let cam = camera(&s);
    let chunk_splats = chunk_sizes(s.model.len())[0];
    let source = metasapiens::scene::InCoreSource::new(s.model.clone(), chunk_splats);
    let n = source.chunk_count() as u64;
    let renderer = Renderer::new(RenderOptions {
        cache_budget_bytes: Some(usize::MAX),
        ..opts(3)
    });
    let first = renderer.render_source(&source, &cam);
    let c1 = first.stats.profile.cache;
    assert_eq!(c1.misses, n, "count pass decodes every chunk once");
    assert_eq!(c1.hits, n, "scatter pass hits every chunk");
    assert_eq!(c1.evictions, 0);
    assert!((c1.hit_rate() - 0.5).abs() < 1e-9);
    let second = renderer.render_source(&source, &cam);
    let c2 = second.stats.profile.cache;
    assert_eq!(c2.misses, 0, "a warm renderer never re-decodes");
    assert_eq!(c2.hits, 2 * n);
    assert_eq!(first.image, second.image);

    // Budget 0 is pass-through: every access is a miss, twice per chunk.
    let renderer = Renderer::new(RenderOptions {
        cache_budget_bytes: Some(0),
        ..opts(3)
    });
    let uncached = renderer.render_source(&source, &cam);
    let c0 = uncached.stats.profile.cache;
    assert_eq!(c0.hits, 0);
    assert_eq!(c0.misses, 2 * n);
    assert_eq!(c0.resident_bytes_peak, 0);
    assert_eq!(uncached.image, first.image);
}

#[test]
fn merging_reduces_work_units_and_imbalance() {
    // The §4.3 claim at the renderer level: fewer, better-balanced work
    // units on a foveal (center-heavy) frame, with identical pixels.
    let s = scene();
    let cam = foveal_camera();
    let merged = Renderer::new(merge_opts(1)).render(&s.model, &cam);
    let units = merged.stats.work_unit_count();
    assert!(units > 0 && units < merged.stats.grid.tile_count());
    let post = merged
        .stats
        .unit_imbalance_ratio()
        .expect("merged run records a schedule");
    let pre = merged.stats.imbalance_ratio();
    assert!(
        post < pre,
        "per-unit imbalance {post} must undercut per-tile {pre}"
    );
}
