//! Determinism of the band-parallel Raster stage: a frame rendered with
//! `threads = 1` (the serial reference) must be *bit-identical* — pixels
//! and winner buffers — to the same frame rendered with any other worker
//! count, including auto (`threads = 0`).

use metasapiens::render::{RenderOptions, Renderer, StageKind};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;

fn scene() -> metasapiens::scene::synth::Scene {
    TraceId::by_name("kitchen")
        .unwrap()
        .build_scene_with_scale(0.004)
}

fn camera(s: &metasapiens::scene::synth::Scene) -> Camera {
    Camera {
        width: 160,
        height: 120,
        ..s.train_cameras[0]
    }
}

fn opts(threads: usize) -> RenderOptions {
    RenderOptions {
        threads,
        track_point_stats: true,
        ..RenderOptions::default()
    }
}

#[test]
fn parallel_render_is_bit_identical_to_serial() {
    let s = scene();
    let cam = camera(&s);
    let serial = Renderer::new(opts(1)).render(&s.model, &cam);
    for threads in [2usize, 3, 4, 8, 0] {
        let par = Renderer::new(opts(threads)).render(&s.model, &cam);
        // Bit-exact pixels: Image equality is exact f32 comparison.
        assert_eq!(
            par.image, serial.image,
            "pixels differ at threads={threads}"
        );
        // Identical winner buffers, pixel for pixel.
        assert_eq!(
            par.winners, serial.winners,
            "winners differ at threads={threads}"
        );
        // And the measured workload is the same frame.
        assert_eq!(par.stats, serial.stats, "stats differ at threads={threads}");
    }
}

#[test]
fn masked_parallel_render_is_bit_identical_to_serial() {
    let s = scene();
    let cam = camera(&s);
    // A mask with structure: left half plus a sparse checkerboard.
    let mask: Vec<bool> = (0..(cam.width * cam.height) as usize)
        .map(|i| {
            let (x, y) = (i as u32 % cam.width, i as u32 / cam.width);
            x < cam.width / 2 || (x + y) % 7 == 0
        })
        .collect();
    let serial = Renderer::new(opts(1)).render_masked(&s.model, &cam, |_| true, &mask);
    let par = Renderer::new(opts(4)).render_masked(&s.model, &cam, |_| true, &mask);
    assert_eq!(par.image, serial.image);
    assert_eq!(par.winners, serial.winners);
    assert_eq!(par.stats, serial.stats);
}

#[test]
fn repeated_renders_are_reproducible() {
    // The whole pipeline (synthetic scene included) is deterministic: two
    // fresh end-to-end runs produce the same image.
    let sa = scene();
    let a = Renderer::new(opts(2)).render(&sa.model, &camera(&sa));
    let sb = scene();
    let b = Renderer::new(opts(2)).render(&sb.model, &camera(&sb));
    assert_eq!(a.image, b.image);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn profile_stages_present_regardless_of_threads() {
    let s = scene();
    let cam = camera(&s);
    for threads in [1usize, 4] {
        let out = Renderer::new(opts(threads)).render(&s.model, &cam);
        let kinds: Vec<StageKind> = out
            .stats
            .profile
            .samples
            .iter()
            .map(|smp| smp.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::Project,
                StageKind::Bin,
                StageKind::Raster,
                StageKind::Composite
            ],
            "stage graph must not depend on the worker count"
        );
    }
}
