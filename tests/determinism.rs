//! Determinism of the parallel pipeline stages (Project, Bin and Raster):
//! a frame rendered with `threads = 1` (the serial reference) must be
//! *bit-identical* — pixels, winner buffers and `FrameProfile` work
//! counters — to the same frame rendered with any other worker count,
//! including auto (`threads = 0`), on both plain and masked renders.

use metasapiens::render::{RenderOptions, RenderOutput, Renderer, StageKind};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;

/// Worker counts the suite compares against the serial reference.
const THREAD_COUNTS: [usize; 4] = [2, 3, 8, 0];

fn scene() -> metasapiens::scene::synth::Scene {
    TraceId::by_name("kitchen")
        .unwrap()
        .build_scene_with_scale(0.004)
}

fn camera(s: &metasapiens::scene::synth::Scene) -> Camera {
    Camera {
        width: 160,
        height: 120,
        ..s.train_cameras[0]
    }
}

fn opts(threads: usize) -> RenderOptions {
    RenderOptions {
        threads,
        track_point_stats: true,
        ..RenderOptions::default()
    }
}

/// Assert `par` is the same frame as `serial`, bit for bit: pixels, winner
/// buffers, headline stats, and the per-stage `FrameProfile` work counters
/// (profile equality already ignores wall times, which legitimately vary).
fn assert_bit_identical(par: &RenderOutput, serial: &RenderOutput, threads: usize) {
    assert_eq!(
        par.image, serial.image,
        "pixels differ at threads={threads}"
    );
    assert_eq!(
        par.winners, serial.winners,
        "winners differ at threads={threads}"
    );
    assert_eq!(par.stats, serial.stats, "stats differ at threads={threads}");
    for kind in [
        StageKind::Project,
        StageKind::Bin,
        StageKind::Raster,
        StageKind::Composite,
    ] {
        assert_eq!(
            par.stats.profile.items(kind),
            serial.stats.profile.items(kind),
            "{} work counter differs at threads={threads}",
            kind.name()
        );
    }
}

#[test]
fn parallel_render_is_bit_identical_to_serial() {
    let s = scene();
    let cam = camera(&s);
    let serial = Renderer::new(opts(1)).render(&s.model, &cam);
    for threads in THREAD_COUNTS {
        let par = Renderer::new(opts(threads)).render(&s.model, &cam);
        assert_bit_identical(&par, &serial, threads);
    }
}

#[test]
fn masked_parallel_render_is_bit_identical_to_serial() {
    let s = scene();
    let cam = camera(&s);
    // A mask with structure: left half plus a sparse checkerboard.
    let mask: Vec<bool> = (0..(cam.width * cam.height) as usize)
        .map(|i| {
            let (x, y) = (i as u32 % cam.width, i as u32 / cam.width);
            x < cam.width / 2 || (x + y) % 7 == 0
        })
        .collect();
    let serial = Renderer::new(opts(1)).render_masked(&s.model, &cam, |_| true, &mask);
    for threads in THREAD_COUNTS {
        let par = Renderer::new(opts(threads)).render_masked(&s.model, &cam, |_| true, &mask);
        assert_bit_identical(&par, &serial, threads);
    }
}

#[test]
fn filtered_parallel_render_is_bit_identical_to_serial() {
    // The admission predicate is evaluated concurrently by projection
    // shards; sharding must not change which points are admitted or their
    // order.
    let s = scene();
    let cam = camera(&s);
    let admit = |i: usize| i % 3 != 1;
    let serial = Renderer::new(opts(1)).render_filtered(&s.model, &cam, admit);
    for threads in THREAD_COUNTS {
        let par = Renderer::new(opts(threads)).render_filtered(&s.model, &cam, admit);
        assert_bit_identical(&par, &serial, threads);
    }
}

#[test]
fn repeated_renders_are_reproducible() {
    // The whole pipeline (synthetic scene included) is deterministic: two
    // fresh end-to-end runs produce the same image.
    let sa = scene();
    let a = Renderer::new(opts(2)).render(&sa.model, &camera(&sa));
    let sb = scene();
    let b = Renderer::new(opts(2)).render(&sb.model, &camera(&sb));
    assert_eq!(a.image, b.image);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn profile_stages_present_regardless_of_threads() {
    let s = scene();
    let cam = camera(&s);
    for threads in [1usize, 4] {
        let out = Renderer::new(opts(threads)).render(&s.model, &cam);
        let kinds: Vec<StageKind> = out
            .stats
            .profile
            .samples
            .iter()
            .map(|smp| smp.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::Project,
                StageKind::Bin,
                StageKind::Raster,
                StageKind::Composite
            ],
            "stage graph must not depend on the worker count"
        );
    }
}
