//! End-to-end integration tests: dense scene → pruned L1 → foveated
//! hierarchy → renders → GPU model → accelerator, crossing every crate.

use metasapiens::accel::{simulate, AccelConfig, AccelWorkload};
use metasapiens::eval::{evaluate_foveated, evaluate_model, ScaleFactors};
use metasapiens::fov::FoveatedRenderer;
use metasapiens::gpu::{FrameWorkload, GpuCostModel};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::{RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;

fn test_scene() -> metasapiens::scene::synth::Scene {
    TraceId::by_name("room")
        .unwrap()
        .build_scene_with_scale(0.004)
}

#[test]
fn full_pipeline_h_variant() {
    let scene = test_scene();
    let system = build_system(&scene, &BuildConfig::fast_for_tests(Variant::H));

    // L1 hits the variant's size target.
    let frac = system.l1.len() as f32 / scene.model.len() as f32;
    assert!((frac - 0.16).abs() < 0.03, "L1 fraction {frac}");

    // The hierarchy respects the subset invariant and shrinks monotonically.
    let counts = system.fov.level_point_counts();
    assert_eq!(counts.len(), 4);
    for w in counts.windows(2) {
        assert!(w[1] <= w[0], "levels must shrink: {counts:?}");
    }

    // Foveated rendering is cheaper than dense rendering and keeps quality.
    let cams = system.train_cameras.clone();
    let refs = system.references.clone();
    let dense = evaluate_model(
        &scene.model,
        &RenderOptions::default(),
        &cams,
        &refs,
        ScaleFactors::identity(),
    );
    let ours = evaluate_foveated(
        &system.fov,
        &RenderOptions::default(),
        &cams,
        &refs,
        ScaleFactors::identity(),
    );
    assert!(
        ours.fps > dense.fps,
        "ours {} dense {}",
        ours.fps,
        dense.fps
    );
    assert!(
        ours.psnr_db > 18.0,
        "quality collapsed: {} dB",
        ours.psnr_db
    );
}

#[test]
fn gpu_and_accelerator_agree_on_ordering() {
    // Any workload ordering the GPU model produces (bigger = slower) must
    // be preserved by the accelerator simulator.
    let scene = test_scene();
    let system = build_system(&scene, &BuildConfig::fast_for_tests(Variant::L));
    let cam = &system.train_cameras[0];

    let renderer = Renderer::default();
    let dense_out = renderer.render(&scene.model, cam);
    let l1_out = renderer.render(&system.l1, cam);

    let gpu = GpuCostModel::xavier();
    let dense_gpu = gpu.frame_latency(&FrameWorkload::from_stats(&dense_out.stats, false));
    let l1_gpu = gpu.frame_latency(&FrameWorkload::from_stats(&l1_out.stats, false));
    assert!(l1_gpu < dense_gpu);

    let config = AccelConfig::metasapiens_tm_ip();
    let dense_acc = simulate(
        &AccelWorkload::from_stats(
            &dense_out.stats,
            None,
            0,
            scene.model.storage_bytes() as u64,
        ),
        &config,
    );
    let l1_acc = simulate(
        &AccelWorkload::from_stats(&l1_out.stats, None, 0, system.l1.storage_bytes() as u64),
        &config,
    );
    assert!(l1_acc.cycles < dense_acc.cycles);

    // The accelerator is much faster than the modeled GPU on either frame.
    assert!(
        dense_acc.latency_s < dense_gpu,
        "accel should beat the mobile GPU"
    );
}

#[test]
fn accelerator_tm_ip_ladder_on_real_fov_frame() {
    // Fig. 14's ladder: Base ≤ TM ≤ TM+IP on a real foveated frame.
    let scene = test_scene();
    let system = build_system(&scene, &BuildConfig::fast_for_tests(Variant::H));
    let cam = Camera {
        width: 160,
        height: 120,
        fovy: metasapiens::math::deg_to_rad(74.0),
        ..system.train_cameras[0]
    };
    let fr = FoveatedRenderer::new(RenderOptions::default());
    let frame = fr.render(&system.fov, &cam, None);
    let workload = AccelWorkload::from_stats(
        &frame.stats,
        Some(&frame.tile_level),
        frame.blended_pixels as u64,
        system.fov.storage_bytes() as u64,
    );
    let base = simulate(&workload, &AccelConfig::metasapiens_base()).cycles;
    let tm = simulate(&workload, &AccelConfig::metasapiens_tm()).cycles;
    let tm_ip = simulate(&workload, &AccelConfig::metasapiens_tm_ip()).cycles;
    assert!(tm <= base, "TM should not slow things down: {tm} vs {base}");
    assert!(tm_ip <= tm, "IP should stack: {tm_ip} vs {tm}");
    assert!(
        tm_ip < base,
        "the full design must strictly win: {tm_ip} vs {base}"
    );
}

#[test]
fn variants_form_a_speed_quality_ladder() {
    let scene = test_scene();
    let mut fps = Vec::new();
    let mut psnr = Vec::new();
    for v in Variant::ALL {
        let system = build_system(&scene, &BuildConfig::fast_for_tests(v));
        let m = evaluate_foveated(
            &system.fov,
            &RenderOptions::default(),
            &system.train_cameras,
            &system.references,
            ScaleFactors::identity(),
        );
        fps.push(m.fps);
        psnr.push(m.psnr_db);
    }
    // H → M → L: speed up.
    assert!(fps[2] > fps[0], "L should out-run H: {fps:?}");
    // Quality must not be catastrophically lost anywhere.
    for (i, &p) in psnr.iter().enumerate() {
        assert!(p > 15.0, "variant {i} PSNR {p}");
    }
}

#[test]
fn moving_gaze_stays_functional() {
    let scene = test_scene();
    let system = build_system(&scene, &BuildConfig::fast_for_tests(Variant::H));
    let cam = Camera {
        width: 128,
        height: 96,
        fovy: metasapiens::math::deg_to_rad(74.0),
        ..system.train_cameras[0]
    };
    let fr = FoveatedRenderer::new(RenderOptions::default());
    for (gx, gy) in [(10.0, 10.0), (64.0, 48.0), (120.0, 90.0)] {
        let out = fr.render(
            &system.fov,
            &cam,
            Some(metasapiens::math::Vec2::new(gx, gy)),
        );
        assert_eq!(out.image.width(), 128);
        assert!(out.stats.total_intersections > 0);
    }
}
