//! Cross-crate invariants: properties that must hold across module
//! boundaries (renderer stats ↔ pruning metrics ↔ cost models), checked on
//! real generated scenes rather than toy fixtures.

use metasapiens::baselines::{build_baseline, BaselineKind};
use metasapiens::gpu::{FrameWorkload, GpuCostModel};
use metasapiens::hvs::{psnr, ssim};
use metasapiens::render::{RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;
use metasapiens::train::ce::{compute_ce, CeOptions};
use metasapiens::train::prune::prune_fraction;

fn scene() -> metasapiens::scene::synth::Scene {
    TraceId::by_name("kitchen")
        .unwrap()
        .build_scene_with_scale(0.004)
}

fn small_cams(s: &metasapiens::scene::synth::Scene, n: usize) -> Vec<Camera> {
    s.train_cameras
        .iter()
        .step_by((s.train_cameras.len() / n).max(1))
        .take(n)
        .map(|c| Camera {
            width: 96,
            height: 72,
            ..*c
        })
        .collect()
}

#[test]
fn stats_tiles_used_equals_tile_intersections() {
    // Σ over points of tiles-used must equal Σ over tiles of intersections:
    // the same quantity counted from both sides.
    let s = scene();
    let cams = small_cams(&s, 1);
    let renderer = Renderer::new(RenderOptions::with_point_stats());
    let out = renderer.render(&s.model, &cams[0]);
    let from_points: u64 = out.stats.point_tiles_used.iter().map(|&t| t as u64).sum();
    assert_eq!(from_points, out.stats.total_intersections);
}

#[test]
fn dominated_pixels_never_exceed_image() {
    let s = scene();
    let cams = small_cams(&s, 1);
    let renderer = Renderer::new(RenderOptions::with_point_stats());
    let out = renderer.render(&s.model, &cams[0]);
    let dominated: u64 = out
        .stats
        .point_pixels_dominated
        .iter()
        .map(|&d| d as u64)
        .sum();
    assert!(dominated <= (96 * 72) as u64);
}

#[test]
fn ce_pruning_beats_inverse_ce_pruning() {
    // Pruning the lowest-CE points must preserve quality better than
    // pruning the highest-CE points (sanity of the metric's direction).
    let s = scene();
    let cams = small_cams(&s, 2);
    let renderer = Renderer::default();
    let refs: Vec<_> = cams
        .iter()
        .map(|c| renderer.render(&s.model, c).image)
        .collect();

    let ce = compute_ce(&s.model, &cams, &CeOptions::default());
    let (keep_good, _) = prune_fraction(&s.model, &ce, 0.5);
    let inverted: Vec<f32> = ce.iter().map(|&c| -c).collect();
    let (keep_bad, _) = prune_fraction(&s.model, &inverted, 0.5);

    let mse_good: f32 = cams
        .iter()
        .zip(&refs)
        .map(|(c, r)| renderer.render(&keep_good, c).image.mse(r))
        .sum();
    let mse_bad: f32 = cams
        .iter()
        .zip(&refs)
        .map(|(c, r)| renderer.render(&keep_bad, c).image.mse(r))
        .sum();
    assert!(
        mse_good < mse_bad,
        "keeping high-CE points should be better: {mse_good} vs {mse_bad}"
    );
}

#[test]
fn fig4_latency_tracks_intersections_not_points() {
    // The paper's Fig. 4 argument end-to-end: across LightGS prune levels,
    // the modeled latency correlates with tile intersections more strongly
    // than with point count.
    let s = scene();
    let cams = small_cams(&s, 1);
    let renderer = Renderer::default();
    let gpu = GpuCostModel::xavier();
    let scale = metasapiens::eval::ScaleFactors::for_experiment(0.004, 96, 72);

    let mut points = Vec::new();
    let mut isects = Vec::new();
    let mut latencies = Vec::new();
    for keep in [1.0f32, 0.5, 0.25, 0.12, 0.06, 0.03] {
        let b = metasapiens::baselines::lightgs_with_keep_fraction(&s, keep);
        let out = renderer.render(&b.model, &cams[0]);
        points.push(b.model.len() as f64);
        isects.push(out.stats.total_intersections as f64);
        latencies.push(
            gpu.frame_latency(
                &FrameWorkload::from_stats(&out.stats, false)
                    .scaled(scale.point_factor, scale.pixel_factor),
            ),
        );
    }
    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }
    let corr_isect = pearson(&latencies, &isects);
    let corr_points = pearson(&latencies, &points);
    assert!(
        corr_isect > 0.9,
        "latency must track intersections strongly: r = {corr_isect:.3}"
    );
    assert!(
        corr_isect >= corr_points - 0.02,
        "intersections (r={corr_isect:.3}) should predict latency at least as well as \
         point count (r={corr_points:.3})"
    );
}

#[test]
fn quality_reference_baseline_is_best() {
    // Mini-Splatting-D is the paper's quality reference; the emulated
    // pruned baselines must not beat it against the ground truth.
    let s = scene();
    let cams = small_cams(&s, 2);
    let renderer = Renderer::default();
    let refs: Vec<_> = cams
        .iter()
        .map(|c| renderer.render(&s.model, c).image)
        .collect();

    let msd = build_baseline(BaselineKind::MiniSplattingD, &s, &cams);
    let psnr_of = |b: &metasapiens::baselines::BaselineModel| {
        let r = Renderer::new(b.render_options.clone());
        cams.iter()
            .zip(&refs)
            .map(|(c, reference)| psnr(&r.render(&b.model, c).image, reference).min(60.0))
            .sum::<f32>()
            / cams.len() as f32
    };
    let msd_psnr = psnr_of(&msd);
    for kind in [
        BaselineKind::LightGs,
        BaselineKind::CompactGs,
        BaselineKind::MiniSplatting,
    ] {
        let b = build_baseline(kind, &s, &cams);
        assert!(
            psnr_of(&b) <= msd_psnr + 0.5,
            "{kind} should not beat the dense reference"
        );
    }
}

#[test]
fn ssim_and_psnr_rank_baselines_consistently_for_extremes() {
    let s = scene();
    let cams = small_cams(&s, 1);
    let renderer = Renderer::default();
    let reference = renderer.render(&s.model, &cams[0]).image;

    let msd = build_baseline(BaselineKind::MiniSplattingD, &s, &cams);
    let heavy = metasapiens::baselines::lightgs_with_keep_fraction(&s, 0.03);
    let img_good = renderer.render(&msd.model, &cams[0]).image;
    let img_bad = renderer.render(&heavy.model, &cams[0]).image;
    assert!(psnr(&img_good, &reference) > psnr(&img_bad, &reference));
    assert!(ssim(&img_good, &reference) > ssim(&img_bad, &reference));
}

#[test]
fn workload_scaling_commutes_with_latency_monotonicity() {
    let s = scene();
    let cams = small_cams(&s, 1);
    let renderer = Renderer::default();
    let out = renderer.render(&s.model, &cams[0]);
    let gpu = GpuCostModel::xavier();
    let base = FrameWorkload::from_stats(&out.stats, false);
    let lat1 = gpu.frame_latency(&base.scaled(1.0, 1.0));
    let lat2 = gpu.frame_latency(&base.scaled(10.0, 4.0));
    assert!(lat2 > lat1);
}

#[test]
fn fr_with_identical_levels_matches_plain_render() {
    // If every point participates in every level and the per-level
    // parameters equal the base parameters, the foveated pipeline — masks,
    // filtering, blending and all — must reproduce the plain render
    // exactly (blending identical images is the identity).
    use metasapiens::fov::{FoveatedModel, FoveatedRenderer, LevelParams};
    use metasapiens::hvs::QualityRegions;

    let s = scene();
    let cams = small_cams(&s, 1);
    let model = &s.model;
    let n = model.len();
    let regions = QualityRegions::paper_default();
    let base_params = LevelParams {
        opacity: model.opacities.clone(),
        dc: (0..n)
            .map(|i| {
                let sh = model.sh(i);
                [sh[0], sh[1], sh[2]]
            })
            .collect(),
    };
    let fm = FoveatedModel::new(
        model.clone(),
        vec![(regions.level_count() - 1) as u8; n],
        vec![base_params; regions.level_count() - 1],
        regions,
    );
    let fr = FoveatedRenderer::default().render(&fm, &cams[0], None);
    let plain = Renderer::default().render(model, &cams[0]);
    assert!(
        fr.image.mse(&plain.image) < 1e-10,
        "identity FR must match the plain render: mse {}",
        fr.image.mse(&plain.image)
    );
}

#[test]
fn rendering_a_subset_never_adds_work() {
    let s = scene();
    let cams = small_cams(&s, 1);
    let renderer = Renderer::default();
    let full = renderer.render(&s.model, &cams[0]);
    let half = s
        .model
        .subset(&(0..s.model.len()).step_by(2).collect::<Vec<_>>());
    let out = renderer.render(&half, &cams[0]);
    assert!(out.stats.total_intersections <= full.stats.total_intersections);
    assert!(out.stats.blend_steps <= full.stats.blend_steps);
    assert!(out.stats.points_projected <= full.stats.points_projected);
}

#[test]
fn rendered_pixels_stay_in_gamut() {
    // Input colors are in [0,1] and compositing is a convex combination of
    // splat colors and the background, so outputs must stay bounded (SH
    // view-dependence can push slightly past 1; allow a small margin).
    let s = scene();
    let cams = small_cams(&s, 1);
    let out = Renderer::default().render(&s.model, &cams[0]);
    for p in out.image.pixels() {
        assert!(
            p.x >= 0.0 && p.y >= 0.0 && p.z >= 0.0,
            "negative channel: {p}"
        );
        assert!(p.max_component() < 1.6, "out-of-gamut pixel: {p}");
    }
}

#[test]
fn headline_claim_metasapiens_is_real_time_class() {
    // §7.2's headline: an order-of-magnitude speedup over dense PBNR on
    // the mobile GPU while dense models sit below 10 FPS. Check both ends
    // on a full-scale extrapolated workload.
    use metasapiens::eval::{evaluate_foveated, evaluate_model, ScaleFactors};
    use metasapiens::pipeline::{build_system, BuildConfig, Variant};

    let trace = TraceId::by_name("room").unwrap();
    let scene = trace.build_scene_with_scale(0.004);
    let system = build_system(&scene, &BuildConfig::fast_for_tests(Variant::L));
    let scale = ScaleFactors::for_experiment(0.004, 96, 72);
    let cams: Vec<Camera> = system.train_cameras.clone();
    let refs = system.references.clone();
    let dense = evaluate_model(&scene.model, &RenderOptions::default(), &cams, &refs, scale);
    let ours = evaluate_foveated(&system.fov, &RenderOptions::default(), &cams, &refs, scale);
    // `room` is the corpus' smallest trace; dense still sits well below the
    // 75-90 FPS VR bar (Fig. 3's upper whiskers reach ~25 FPS).
    assert!(
        dense.fps < 35.0,
        "dense should be below VR rates: {}",
        dense.fps
    );
    assert!(
        ours.fps > dense.fps * 4.0,
        "MetaSapiens-L should be several times faster: {} vs {}",
        ours.fps,
        dense.fps
    );
}
