//! Fault injection for the streaming path: a scripted chunk-load failure
//! must surface as a clean [`SourceError`] from the `try_` entry points —
//! never a panic, a poisoned [`FrameArena`], or a torn frame server.
//!
//! [`FailingSource`] sabotages one chunk index, either permanently or for
//! the first *n* loads (`transient` — a fault that heals, so exactly one
//! consumer of a shared source hits it). The suite proves four things:
//! errors propagate with the right variant for both failure modes, the
//! recovered arena renders the next frame bit-identically, the panicking
//! wrapper panics with a diagnosable message, and a 16-session server
//! sharing a transiently-faulty scene loses exactly one session while the
//! other fifteen keep producing bit-identical frames.

use metasapiens::math::Vec3;
use metasapiens::render::{RenderOptions, RenderOutput, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::trajectory::{orbit, Trajectory};
use metasapiens::scene::{
    Camera, DecodeError, FailingSource, FailureMode, GaussianModel, InCoreSource, SceneSource,
    SourceError,
};
use ms_serve::{FrameServer, SessionConfig};
use std::sync::Arc;

/// Chunk size that slices the 384-splat test scene into four chunks.
const CHUNK_SPLATS: usize = 96;

fn model() -> GaussianModel {
    TraceId::by_name("kitchen")
        .unwrap()
        .build_scene_with_scale(0.0012)
        .model
}

fn camera() -> Camera {
    let s = TraceId::by_name("kitchen")
        .unwrap()
        .build_scene_with_scale(0.0012);
    Camera {
        width: 48,
        height: 36,
        ..s.train_cameras[0]
    }
}

fn opts() -> RenderOptions {
    RenderOptions {
        threads: 3,
        track_point_stats: true,
        ..RenderOptions::default()
    }
}

fn source(model: &GaussianModel) -> InCoreSource {
    InCoreSource::new(model.clone(), CHUNK_SPLATS)
}

/// A permanently scripted [`FailureMode::Error`] fault surfaces as
/// `SourceError::Decode(DecodeError::Truncated)` no matter where the bad
/// chunk sits — first, middle or last, covering both the synchronous first
/// load and the deferred prefetch-error path.
#[test]
fn scripted_error_surfaces_as_source_error() {
    let model = model();
    let cam = camera();
    let chunks = source(&model).chunk_count();
    assert!(chunks >= 3, "scene must span several chunks");
    for fail_at in [0, chunks / 2, chunks - 1] {
        let faulty = FailingSource::new(source(&model), fail_at, FailureMode::Error);
        let renderer = Renderer::new(opts());
        let err = renderer
            .try_render_source(&faulty, &cam)
            .expect_err("scripted chunk fault must fail the frame");
        assert!(
            matches!(err, SourceError::Decode(DecodeError::Truncated)),
            "fail_at={fail_at}: unexpected error {err:?}"
        );
    }
}

/// A [`FailureMode::ShortRead`] — the load "succeeds" but delivers fewer
/// points than `chunk_len` claims — is caught by the cache's length check
/// and reported as `DecodeError::Invalid`, not silently rendered.
#[test]
fn short_read_is_caught_by_the_length_check() {
    let model = model();
    let cam = camera();
    let faulty = FailingSource::new(source(&model), 1, FailureMode::ShortRead);
    let renderer = Renderer::new(opts());
    let err = renderer
        .try_render_source(&faulty, &cam)
        .expect_err("short read must fail the frame");
    match err {
        SourceError::Decode(DecodeError::Invalid(msg)) => {
            assert!(msg.contains("short read"), "message: {msg}");
        }
        other => panic!("expected Invalid(short read), got {other:?}"),
    }
}

/// A failed frame hands its [`FrameArena`] back intact: rendering the next
/// frame with the recovered arena on a healthy source is bit-identical to
/// a cold-start render. The arena is recycled capacity, never content — a
/// fault must not poison it.
#[test]
fn failed_frame_does_not_poison_the_arena() {
    let model = model();
    let cam = camera();
    let healthy = source(&model);
    let expect: RenderOutput = Renderer::new(opts()).render(&model, &cam);

    for fail_at in [0, 2] {
        let faulty = FailingSource::new(source(&model), fail_at, FailureMode::Error);
        let renderer = Renderer::new(opts());
        let (result, arena) = renderer.try_render_source_with_arena(
            &faulty,
            &cam,
            metasapiens::render::FrameArena::default(),
        );
        assert!(result.is_err(), "fail_at={fail_at} must fail");
        let (result, _arena) = renderer.try_render_source_with_arena(&healthy, &cam, arena);
        let output = result.expect("healthy source renders after a fault");
        assert_eq!(
            output, expect,
            "fail_at={fail_at}: recovered arena changed the output"
        );
    }
}

/// The panicking wrapper stays a wrapper: the legacy `render_source` entry
/// point panics with a diagnosable message instead of returning garbage.
#[test]
#[should_panic(expected = "loading scene chunk failed")]
fn render_source_panics_on_fault() {
    let model = model();
    let cam = camera();
    let faulty = FailingSource::new(source(&model), 1, FailureMode::Error);
    Renderer::new(opts()).render_source(&faulty, &cam);
}

/// A transient fault heals once its fuse burns: the first render fails,
/// the retry succeeds and is bit-identical to the in-core render — the
/// failed attempt left nothing stale in the renderer's chunk cache.
#[test]
fn transient_fault_heals_after_the_fuse_burns() {
    let model = model();
    let cam = camera();
    let faulty = FailingSource::transient(source(&model), 1, FailureMode::Error, 1);
    let renderer = Renderer::new(opts());
    assert!(
        renderer.try_render_source(&faulty, &cam).is_err(),
        "first render burns the fuse"
    );
    let output = renderer
        .try_render_source(&faulty, &cam)
        .expect("healed source renders");
    let expect = Renderer::new(opts()).render(&model, &cam);
    assert_eq!(output, expect, "post-fault render differs from in-core");
}

/// Frames per session in the server scenario.
const FRAMES: usize = 4;
/// Distinct trajectories; session `i` uses trajectory `i % DISTINCT_TRAJS`.
const DISTINCT_TRAJS: usize = 6;

fn trajectory(slot: usize) -> Trajectory {
    let slot = slot % DISTINCT_TRAJS;
    orbit(
        Vec3::zero(),
        8.0 + slot as f32 * 1.5,
        0.5 + slot as f32 * 0.4,
        5 + slot,
    )
}

/// One session dies alone: 16 sessions share a chunked scene whose chunk 1
/// fails exactly once (`transient`, fuse = 1). The first session to decode
/// that chunk eats the error — its frames stop, [`FrameServer::session_error`]
/// records the fault — while the other fifteen keep producing frames
/// bit-identical to a solo in-core render (a healthy sibling re-decodes
/// the chunk into the shared cache). The server drains to completion; a
/// faulty session never wedges the pump loop.
#[test]
fn chunked_server_session_fault_dies_alone() {
    let model = model();
    let proto = camera();
    let refs: Vec<Vec<RenderOutput>> = (0..DISTINCT_TRAJS)
        .map(|slot| {
            let renderer = Renderer::new(RenderOptions {
                threads: 1,
                ..opts()
            });
            trajectory(slot)
                .cameras(&proto, FRAMES)
                .iter()
                .map(|cam| renderer.render(&model, cam))
                .collect()
        })
        .collect();

    let faulty: Arc<dyn SceneSource + Send + Sync> = Arc::new(FailingSource::transient(
        source(&model),
        1,
        FailureMode::Error,
        1,
    ));
    let mut server = FrameServer::new_chunked(faulty);
    let sessions = 16;
    let ids: Vec<_> = (0..sessions)
        .map(|i| {
            server
                .add_session(SessionConfig {
                    trajectory: trajectory(i),
                    prototype: proto,
                    frame_count: FRAMES,
                    options: opts(),
                    in_flight: 1 + i % 3,
                    ring_capacity: FRAMES,
                })
                .expect("valid session config")
        })
        .collect();

    let results = server.run_to_completion();
    assert_eq!(results.len(), sessions);

    let mut failed = 0usize;
    for (i, (id, frames)) in results.iter().enumerate() {
        assert_eq!(*id, ids[i]);
        let expect = &refs[i % DISTINCT_TRAJS];
        if let Some(err) = server.session_error(*id) {
            failed += 1;
            assert!(
                matches!(err, SourceError::Decode(DecodeError::Truncated)),
                "session {i}: unexpected error {err:?}"
            );
            assert!(
                frames.len() < FRAMES,
                "session {i} failed yet delivered every frame"
            );
        } else {
            assert_eq!(frames.len(), FRAMES, "healthy session {i} frame count");
        }
        // Every frame that *was* delivered — including those a failed
        // session produced before the fault — is bit-identical to solo.
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(frame.frame_index, k, "session {i} completion order");
            assert_eq!(
                frame.output, expect[k],
                "session {i} frame {k} differs from in-core solo"
            );
        }
    }
    assert_eq!(failed, 1, "exactly one session eats the transient fault");

    let delivered: usize = results.iter().map(|(_, frames)| frames.len()).sum();
    assert_eq!(server.report().total_frames, delivered);
}
