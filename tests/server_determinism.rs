//! Determinism of the multi-session frame server: every session's frame
//! stream must be **bit-identical** — pixels, winner buffers, stats and
//! `FrameProfile` work counters — to a solo `Renderer` walking the same
//! trajectory, no matter how many other sessions are in flight, how many
//! pool workers exist, whether tile merging is on, which raster kernel
//! runs, and which splat-staging path feeds it. Pipelining changes *when*
//! a frame's stages execute, never their inputs.
//!
//! Also property-tests the trajectory sampler the server admits frames
//! from: endpoint clamping, loop closure, per-index/batch agreement and
//! monotonicity.

use metasapiens::math::Vec3;
use metasapiens::render::{RasterKernel, RenderOptions, RenderOutput, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::trajectory::{orbit, PoseKey, Trajectory};
use metasapiens::scene::{Camera, GaussianModel};
use ms_serve::{FrameServer, SessionConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Worker counts the suite runs the server under (0 = auto).
const THREAD_COUNTS: [usize; 4] = [2, 3, 8, 0];
/// Concurrency levels, up to the 16-session acceptance bar.
const SESSION_COUNTS: [usize; 3] = [1, 4, 16];
/// Frames per session. Small: the matrix multiplies fast.
const FRAMES: usize = 4;
/// Distinct trajectories; session `i` uses trajectory `i % DISTINCT_TRAJS`.
const DISTINCT_TRAJS: usize = 6;

fn model() -> Arc<GaussianModel> {
    Arc::new(
        TraceId::by_name("kitchen")
            .unwrap()
            .build_scene_with_scale(0.0012)
            .model,
    )
}

fn prototype() -> Camera {
    let s = TraceId::by_name("kitchen")
        .unwrap()
        .build_scene_with_scale(0.0012);
    Camera {
        width: 48,
        height: 36,
        ..s.train_cameras[0]
    }
}

/// Trajectory for session slot `i`: orbits of varying radius/height so
/// sessions render genuinely different frames (a shared trajectory would
/// let cross-session buffer mixups cancel out).
fn trajectory(slot: usize) -> Trajectory {
    let slot = slot % DISTINCT_TRAJS;
    orbit(
        Vec3::zero(),
        8.0 + slot as f32 * 1.5,
        0.5 + slot as f32 * 0.4,
        5 + slot,
    )
}

fn options(threads: usize, merged: bool, kernel: RasterKernel) -> RenderOptions {
    let base = if merged {
        RenderOptions::with_tile_merging()
    } else {
        RenderOptions::default()
    };
    RenderOptions {
        threads,
        track_point_stats: true,
        raster_kernel: kernel,
        ..base
    }
}

/// Solo reference: a plain serial `Renderer` walking trajectory `slot`.
fn solo_frames(slot: usize, merged: bool, kernel: RasterKernel) -> Vec<RenderOutput> {
    let model = model();
    let proto = prototype();
    let renderer = Renderer::new(options(1, merged, kernel));
    trajectory(slot)
        .cameras(&proto, FRAMES)
        .iter()
        .map(|cam| renderer.render(&model, cam))
        .collect()
}

/// Run `sessions` concurrent sessions at `threads` workers and assert every
/// frame equals the solo reference bit for bit. `RenderOutput: PartialEq`
/// covers pixels, winners and the full stats block (profile equality
/// ignores wall times only).
fn assert_server_matches_solo(sessions: usize, threads: usize, merged: bool, kernel: RasterKernel) {
    let refs: Vec<Vec<RenderOutput>> = (0..DISTINCT_TRAJS.min(sessions))
        .map(|slot| solo_frames(slot, merged, kernel))
        .collect();

    let mut server = FrameServer::new(model());
    let proto = prototype();
    let ids: Vec<_> = (0..sessions)
        .map(|i| {
            server
                .add_session(SessionConfig {
                    trajectory: trajectory(i),
                    prototype: proto,
                    frame_count: FRAMES,
                    options: options(threads, merged, kernel),
                    // Vary the pipelining window across sessions to
                    // exercise different interleavings.
                    in_flight: 1 + i % 3,
                    ring_capacity: FRAMES,
                })
                .expect("valid session config")
        })
        .collect();

    let results = server.run_to_completion();
    assert_eq!(results.len(), sessions);
    for (i, (id, frames)) in results.iter().enumerate() {
        assert_eq!(*id, ids[i]);
        assert_eq!(frames.len(), FRAMES, "session {i} frame count");
        let expect = &refs[i % DISTINCT_TRAJS];
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(frame.frame_index, k, "session {i} completion order");
            assert_eq!(
                frame.output, expect[k],
                "session {i} frame {k} differs from solo render \
                 (sessions={sessions} threads={threads} merged={merged} kernel={kernel:?})"
            );
        }
    }

    let report = server.report();
    assert_eq!(report.total_frames, sessions * FRAMES);
    for s in &report.sessions {
        assert_eq!(s.frames_completed, FRAMES);
        assert!(s.sustained_fps > 0.0);
        assert!(s.latency_p99 >= s.latency_p50);
    }
}

#[test]
fn server_unmerged_scalar_matches_solo() {
    for sessions in SESSION_COUNTS {
        for threads in THREAD_COUNTS {
            assert_server_matches_solo(sessions, threads, false, RasterKernel::Scalar);
        }
    }
}

#[test]
fn server_unmerged_simd_matches_solo() {
    for sessions in SESSION_COUNTS {
        for threads in THREAD_COUNTS {
            assert_server_matches_solo(sessions, threads, false, RasterKernel::Simd4);
        }
    }
}

#[test]
fn server_merged_scalar_matches_solo() {
    for sessions in SESSION_COUNTS {
        for threads in THREAD_COUNTS {
            assert_server_matches_solo(sessions, threads, true, RasterKernel::Scalar);
        }
    }
}

#[test]
fn server_merged_simd_matches_solo() {
    for sessions in SESSION_COUNTS {
        for threads in THREAD_COUNTS {
            assert_server_matches_solo(sessions, threads, true, RasterKernel::Simd4);
        }
    }
}

#[test]
fn server_pertile_staging_matches_solo_perrow() {
    // The staging axis crossed with the served axis: sessions running the
    // per-tile staging prepass must reproduce, bit for bit, solo renders
    // staged per row — so no served/solo pair can drift no matter which
    // staging path either side resolved.
    use metasapiens::render::RasterStaging;
    let mk_opts = |threads: usize, staging: RasterStaging| RenderOptions {
        raster_staging: staging,
        ..options(threads, true, RasterKernel::Simd4)
    };
    let model = model();
    let proto = prototype();
    let solo = Renderer::new(mk_opts(1, RasterStaging::PerRow));
    let refs: Vec<Vec<RenderOutput>> = (0..4)
        .map(|slot| {
            trajectory(slot)
                .cameras(&proto, FRAMES)
                .iter()
                .map(|cam| solo.render(&model, cam))
                .collect()
        })
        .collect();
    for threads in [2, 8] {
        let mut server = FrameServer::new(model.clone());
        let ids: Vec<_> = (0..4)
            .map(|i| {
                server
                    .add_session(SessionConfig {
                        trajectory: trajectory(i),
                        prototype: proto,
                        frame_count: FRAMES,
                        options: mk_opts(threads, RasterStaging::PerTile),
                        in_flight: 1 + i % 3,
                        ring_capacity: FRAMES,
                    })
                    .expect("valid session config")
            })
            .collect();
        let results = server.run_to_completion();
        assert_eq!(results.len(), ids.len());
        for (i, (id, frames)) in results.iter().enumerate() {
            assert_eq!(*id, ids[i]);
            for (k, frame) in frames.iter().enumerate() {
                assert_eq!(
                    frame.output, refs[i][k],
                    "session {i} frame {k} differs from solo per-row render \
                     (threads={threads})"
                );
            }
        }
    }
}

#[test]
fn sessions_added_and_removed_mid_run_stay_deterministic() {
    // A session that joins late or a neighbor that leaves mid-flight must
    // not perturb anyone else's frames.
    let refs: Vec<Vec<RenderOutput>> = (0..3)
        .map(|slot| solo_frames(slot, false, RasterKernel::Scalar))
        .collect();
    let mut server = FrameServer::new(model());
    let proto = prototype();
    let mk = |slot: usize| SessionConfig {
        trajectory: trajectory(slot),
        prototype: proto,
        frame_count: FRAMES,
        options: options(3, false, RasterKernel::Scalar),
        in_flight: 2,
        ring_capacity: FRAMES,
    };
    let a = server.add_session(mk(0)).unwrap();
    let b = server.add_session(mk(1)).unwrap();
    server.step();
    server.step();
    // Session c joins while a and b are mid-flight; a is torn down with
    // frames still in its window.
    let c = server.add_session(mk(2)).unwrap();
    server.remove_session(a).expect("a was live");
    let results = server.run_to_completion();
    let by_id: std::collections::HashMap<_, _> = results.into_iter().collect();
    assert!(!by_id.contains_key(&a));
    for (id, slot) in [(b, 1usize), (c, 2usize)] {
        let frames = &by_id[&id];
        assert_eq!(frames.len(), FRAMES);
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(frame.output, refs[slot][k], "slot {slot} frame {k}");
        }
    }
}

#[test]
fn backpressure_bounds_undrained_frames() {
    let mut server = FrameServer::new(model());
    let id = server
        .add_session(SessionConfig {
            trajectory: trajectory(0),
            prototype: prototype(),
            frame_count: 6,
            options: options(2, false, RasterKernel::Scalar),
            in_flight: 2,
            ring_capacity: 2,
        })
        .unwrap();
    // Nobody drains: the session must stall at ring_capacity completed
    // frames, not run ahead.
    for _ in 0..60 {
        server.step();
    }
    assert!(!server.is_idle());
    assert_eq!(server.session_stats(id).unwrap().frames_completed, 2);
    // Draining releases the stall; the full stream still arrives in order.
    let mut got = server.take_frames(id);
    while !server.is_idle() {
        server.step();
        got.append(&mut server.take_frames(id));
    }
    got.append(&mut server.take_frames(id));
    let indices: Vec<_> = got.iter().map(|f| f.frame_index).collect();
    assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
}

// ---------------------------------------------------------------------------
// Out-of-core chunking crossed with the served axis
// ---------------------------------------------------------------------------

/// The chunk axis crossed with the served axis: 16 sessions served from a
/// chunked [`SceneSource`] must be bit-identical to solo in-core renders of
/// the same trajectories — for a ragged chunk size that splits tile lists
/// mid-stream and for a half-scene size, under different worker counts.
#[test]
fn chunked_server_sessions_match_in_core_solo() {
    use metasapiens::scene::{InCoreSource, SceneSource};

    let model = model();
    let proto = prototype();
    let refs: Vec<Vec<RenderOutput>> = (0..DISTINCT_TRAJS)
        .map(|slot| solo_frames(slot, true, RasterKernel::Simd4))
        .collect();

    for chunk_splats in [347, model.len() / 2 + 1] {
        let source: Arc<dyn SceneSource + Send + Sync> =
            Arc::new(InCoreSource::new((*model).clone(), chunk_splats));
        assert!(
            source.chunk_count() >= 2,
            "chunk size {chunk_splats} must actually chunk the scene"
        );
        for threads in [2, 8] {
            let mut server = FrameServer::new_chunked(source.clone());
            let sessions = 16;
            let ids: Vec<_> = (0..sessions)
                .map(|i| {
                    server
                        .add_session(SessionConfig {
                            trajectory: trajectory(i),
                            prototype: proto,
                            frame_count: FRAMES,
                            options: options(threads, true, RasterKernel::Simd4),
                            in_flight: 1 + i % 3,
                            ring_capacity: FRAMES,
                        })
                        .expect("valid session config")
                })
                .collect();
            let results = server.run_to_completion();
            assert_eq!(results.len(), sessions);
            for (i, (id, frames)) in results.iter().enumerate() {
                assert_eq!(*id, ids[i]);
                assert_eq!(frames.len(), FRAMES, "session {i} frame count");
                let expect = &refs[i % DISTINCT_TRAJS];
                for (k, frame) in frames.iter().enumerate() {
                    // Pixels, winners and work counters must agree; the
                    // resident-peak fields are excluded from profile
                    // equality, so chunked-vs-in-core compares clean.
                    assert_eq!(
                        frame.output, expect[k],
                        "chunked session {i} frame {k} differs from in-core solo \
                         (chunk_splats={chunk_splats} threads={threads})"
                    );
                }
            }
        }
    }
}

/// The shared chunk cache crossed with the served axis: 16 sessions
/// streaming the same chunked scene through one explicit [`ChunkCache`]
/// must each be bit-identical to the solo in-core render — hit/miss
/// interleavings across sessions are excluded from every compared field —
/// and the shared cache must actually share: with every session walking
/// the same source, at least half of all chunk lookups hit (the ISSUE
/// acceptance bar; in practice nearly all do, since each chunk decodes
/// roughly once for the whole server).
#[test]
fn cached_chunked_server_shares_decodes_across_sessions() {
    use metasapiens::scene::{ChunkCache, InCoreSource, SceneSource};
    use ms_serve::SceneHandle;

    let model = model();
    let proto = prototype();
    let refs: Vec<Vec<RenderOutput>> = (0..DISTINCT_TRAJS)
        .map(|slot| solo_frames(slot, false, RasterKernel::Simd4))
        .collect();

    let source: Arc<dyn SceneSource + Send + Sync> =
        Arc::new(InCoreSource::new((*model).clone(), 347));
    let chunks = source.chunk_count() as u64;
    assert!(chunks >= 2);
    let cache = Arc::new(ChunkCache::new(64 << 20));
    let mut server = FrameServer::new_scene_with_cache(SceneHandle::Chunked(source), cache);
    let sessions = 16;
    let ids: Vec<_> = (0..sessions)
        .map(|i| {
            server
                .add_session(SessionConfig {
                    trajectory: trajectory(i),
                    prototype: proto,
                    frame_count: FRAMES,
                    options: options(3, false, RasterKernel::Simd4),
                    in_flight: 1 + i % 3,
                    ring_capacity: FRAMES,
                })
                .expect("valid session config")
        })
        .collect();
    let results = server.run_to_completion();
    assert_eq!(results.len(), sessions);
    for (i, (id, frames)) in results.iter().enumerate() {
        assert_eq!(*id, ids[i]);
        assert_eq!(frames.len(), FRAMES, "session {i} frame count");
        let expect = &refs[i % DISTINCT_TRAJS];
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(
                frame.output, expect[k],
                "cached session {i} frame {k} differs from in-core solo"
            );
        }
    }

    let report = server.report();
    let cache = report.cache;
    // 16 sessions × 4 frames × 2 passes over every chunk = 128 lookups per
    // chunk; only the first decode of each chunk (plus any concurrent
    // first-lookup races) can miss.
    assert_eq!(
        cache.lookups(),
        sessions as u64 * FRAMES as u64 * 2 * chunks,
        "every chunk access goes through the shared cache"
    );
    assert!(
        cache.hit_rate() >= 0.5,
        "shared-scene sessions must hit each other's decodes (hit rate {:.3})",
        cache.hit_rate()
    );
    assert!(cache.resident_bytes_peak > 0);
}

/// Serving straight from an encoded multi-chunk container reproduces the
/// in-core stream too: encode → [`ChunkedFileSource::from_bytes`] → serve.
#[test]
fn chunked_file_source_served_matches_in_core_solo() {
    use metasapiens::scene::{encode_model_chunked, ChunkedFileSource, SceneSource};

    let model = model();
    let proto = prototype();
    let refs: Vec<Vec<RenderOutput>> = (0..4)
        .map(|slot| solo_frames(slot, false, RasterKernel::Scalar))
        .collect();

    let encoded = encode_model_chunked(&model, 347);
    let source = ChunkedFileSource::from_bytes(encoded.to_vec()).expect("valid container");
    assert!(source.chunk_count() >= 2);
    let mut server = FrameServer::new_chunked(Arc::new(source));
    let ids: Vec<_> = (0..4)
        .map(|i| {
            server
                .add_session(SessionConfig {
                    trajectory: trajectory(i),
                    prototype: proto,
                    frame_count: FRAMES,
                    options: options(3, false, RasterKernel::Scalar),
                    in_flight: 1 + i % 3,
                    ring_capacity: FRAMES,
                })
                .expect("valid session config")
        })
        .collect();
    let results = server.run_to_completion();
    assert_eq!(results.len(), ids.len());
    for (i, (id, frames)) in results.iter().enumerate() {
        assert_eq!(*id, ids[i]);
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(
                frame.output, refs[i][k],
                "file-served session {i} frame {k} differs from in-core solo"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Trajectory sampler properties (the server's frame-admission source)
// ---------------------------------------------------------------------------

fn close(a: Vec3, b: Vec3, tol: f32) -> bool {
    a.distance(b) <= tol
}

proptest! {
    /// Out-of-range parameters clamp to the endpoints (non-looped).
    #[test]
    fn sample_clamps_to_endpoints(t in -3.0f32..4.0) {
        let keys = vec![
            PoseKey { eye: Vec3::new(0.0, 0.0, 0.0), target: Vec3::zero() },
            PoseKey { eye: Vec3::new(1.0, 2.0, 0.0), target: Vec3::one() },
            PoseKey { eye: Vec3::new(3.0, 1.0, -1.0), target: Vec3::zero() },
        ];
        let traj = Trajectory::new(keys, false);
        let s = traj.sample(t);
        let expect = traj.sample(t.clamp(0.0, 1.0));
        prop_assert_eq!(s.eye, expect.eye);
        prop_assert_eq!(s.target, expect.target);
    }

    /// A looped trajectory closes: sample(1) returns to sample(0) (within
    /// f32 spline-evaluation noise — u=1 does not cancel exactly).
    #[test]
    fn looped_trajectory_closes(radius in 1.0f32..10.0, height in -2.0f32..2.0) {
        let traj = orbit(Vec3::zero(), radius, height, 7);
        let a = traj.sample(0.0);
        let b = traj.sample(1.0);
        prop_assert!(close(a.eye, b.eye, 1e-4 * radius.max(1.0)));
        prop_assert!(close(a.target, b.target, 1e-4));
    }

    /// `camera_at` is exactly the batch densification, frame by frame —
    /// the server admits single frames, solo renders walk the batch, and
    /// determinism needs them bit-identical.
    #[test]
    fn camera_at_matches_batch_cameras(n in 2usize..40, looped_bit in 0usize..2) {
        let looped = looped_bit == 1;
        let keys = vec![
            PoseKey { eye: Vec3::new(0.0, 1.0, 5.0), target: Vec3::zero() },
            PoseKey { eye: Vec3::new(4.0, 1.5, 0.0), target: Vec3::new(0.5, 0.0, 0.0) },
            PoseKey { eye: Vec3::new(0.0, 2.0, -5.0), target: Vec3::zero() },
            PoseKey { eye: Vec3::new(-4.0, 0.5, 0.0), target: Vec3::new(0.0, 0.5, 0.0) },
        ];
        let traj = Trajectory::new(keys, looped);
        let proto = Camera::look_at(64, 48, 60.0, Vec3::zero(), Vec3::one());
        let batch = traj.cameras(&proto, n);
        for (i, cam) in batch.iter().enumerate() {
            let single = traj.camera_at(&proto, i, n);
            prop_assert!(single.eye == cam.eye, "frame {} eye mismatch", i);
            prop_assert!(single.target == cam.target, "frame {} target mismatch", i);
            prop_assert_eq!(single.width, cam.width);
            prop_assert_eq!(single.height, cam.height);
        }
    }

    /// On equally spaced collinear keys, uniform Catmull–Rom degenerates
    /// to linear interpolation, so the sampled eye must advance
    /// monotonically with `t`.
    #[test]
    fn sample_is_monotone_on_collinear_keys(steps in 3usize..50) {
        let keys: Vec<PoseKey> = (0..5)
            .map(|i| PoseKey {
                eye: Vec3::new(i as f32, 0.0, 0.0),
                target: Vec3::zero(),
            })
            .collect();
        let traj = Trajectory::new(keys, false);
        let mut prev = traj.sample(0.0).eye.x;
        for k in 1..=steps {
            let t = k as f32 / steps as f32;
            let x = traj.sample(t).eye.x;
            prop_assert!(x >= prev - 1e-5, "t={} x={} prev={}", t, x, prev);
            prev = x;
        }
        prop_assert!(close(traj.sample(0.0).eye, Vec3::zero(), 1e-6));
        prop_assert!(close(traj.sample(1.0).eye, Vec3::new(4.0, 0.0, 0.0), 1e-4));
    }
}
