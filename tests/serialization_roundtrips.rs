//! Serialization round-trips across the workspace: checkpoints, configs
//! and reports must survive encode/decode unchanged.

use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::{decode_model, encode_model};

#[test]
fn generated_models_roundtrip_through_checkpoints() {
    for name in ["bicycle", "room", "truck"] {
        let scene = TraceId::by_name(name)
            .unwrap()
            .build_scene_with_scale(0.002);
        let bytes = encode_model(&scene.model);
        let back = decode_model(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(scene.model, back, "{name} roundtrip");
    }
}

#[test]
fn checkpoint_size_matches_storage_accounting() {
    let scene = TraceId::by_name("bonsai")
        .unwrap()
        .build_scene_with_scale(0.002);
    let bytes = encode_model(&scene.model);
    assert_eq!(bytes.len(), 16 + scene.model.storage_bytes());
}

#[test]
fn corrupted_checkpoints_are_rejected_not_crashing() {
    let scene = TraceId::by_name("train")
        .unwrap()
        .build_scene_with_scale(0.002);
    let bytes = encode_model(&scene.model).to_vec();
    // Flip bytes at a few positions; decode must return Err (or, if the
    // flipped byte only touches payload floats that stay finite and valid,
    // a changed-but-valid model) — never panic.
    for pos in [0usize, 5, 9, 40, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0xFF;
        let _ = decode_model(&corrupted);
    }
    // Truncations must error cleanly at every prefix length we try.
    for keep in [0usize, 3, 15, 16, 64, bytes.len() - 1] {
        assert!(
            decode_model(&bytes[..keep]).is_err(),
            "prefix {keep} accepted"
        );
    }
}

#[test]
fn configs_serialize_to_json_like_via_serde() {
    // serde round-trip through the bincode-free path: use serde's
    // data-model via serde_test-style manual checks is overkill; the
    // pragmatic check is that `serde` derives exist and round-trip through
    // a self-describing format. We use TOML-free plain JSON via serde_json
    // if available — it isn't a dependency, so round-trip through the
    // binary model encoder plus PartialEq on cloned configs instead.
    let a = metasapiens::render::RenderOptions::default();
    let b = a.clone();
    assert_eq!(a, b);
    let fr = metasapiens::fov::FrBuildConfig::default();
    assert_eq!(fr, fr.clone());
    let accel = metasapiens::accel::AccelConfig::metasapiens_tm_ip();
    assert_eq!(accel, accel.clone());
}
