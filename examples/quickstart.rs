//! Quickstart: build a MetaSapiens system for one trace and compare it to
//! the dense model on speed and quality.
//!
//! Run with: `cargo run --release --example quickstart`

use metasapiens::eval::{evaluate_foveated, evaluate_model, ScaleFactors};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::{RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;

fn main() {
    // A reduced-scale scene so the example runs in seconds. Scale factors
    // below extrapolate the workload back to full size.
    const SCENE_SCALE: f32 = 0.01;
    let trace = TraceId::by_name("bicycle").expect("trace exists");
    println!("== MetaSapiens quickstart on {trace} ==");
    let scene = trace.build_scene_with_scale(SCENE_SCALE);
    println!(
        "dense model: {} points, {:.1} MB",
        scene.model.len(),
        scene.model.storage_bytes() as f64 / 1e6
    );

    // Build the highest-quality variant.
    let mut config = BuildConfig::new(Variant::H);
    config.train_resolution = (160, 120);
    let system = build_system(&scene, &config);
    println!(
        "{}: L1 = {} points ({:.1}% of dense), total storage {:.1}% of dense",
        system.variant,
        system.l1.len(),
        100.0 * system.l1.len() as f32 / scene.model.len() as f32,
        100.0 * system.storage_fraction()
    );
    println!(
        "foveated levels: {:?} points",
        system.fov.level_point_counts()
    );

    // Evaluate dense vs. MetaSapiens on the training views.
    let cams = system.train_cameras.clone();
    let refs = system.references.clone();
    let scale = ScaleFactors::for_experiment(SCENE_SCALE as f64, cams[0].width, cams[0].height);
    let dense = evaluate_model(&scene.model, &RenderOptions::default(), &cams, &refs, scale);
    let ours = evaluate_foveated(&system.fov, &RenderOptions::default(), &cams, &refs, scale);

    println!(
        "\n{:<16} {:>10} {:>9} {:>9} {:>12}",
        "model", "FPS(model)", "PSNR dB", "SSIM", "intersect."
    );
    println!(
        "{:<16} {:>10.1} {:>9.1} {:>9.3} {:>12.0}",
        "dense", dense.fps, dense.psnr_db, dense.ssim, dense.intersections
    );
    println!(
        "{:<16} {:>10.1} {:>9.1} {:>9.3} {:>12.0}",
        system.variant.name(),
        ours.fps,
        ours.psnr_db,
        ours.ssim,
        ours.intersections
    );
    println!(
        "\nspeedup over dense: {:.1}x (paper: ~7.4x for MetaSapiens-H on mobile GPU)",
        ours.fps / dense.fps
    );

    // One concrete frame for the curious.
    let renderer = Renderer::default();
    let frame = renderer.render(&system.l1, &cams[0]);
    println!(
        "L1 frame: {} splats projected, {} tile intersections, imbalance max/mean = {:.1}",
        frame.stats.points_projected,
        frame.stats.total_intersections,
        frame.stats.imbalance_ratio()
    );
}
