//! VR walkthrough: densify a camera trajectory to 90 FPS (as the paper does
//! in §6), sweep a moving gaze across the display, and check whether the
//! modeled mobile-GPU frame rate sustains the VR target.
//!
//! Run with: `cargo run --release --example vr_walkthrough`

use metasapiens::eval::{foveated_workload, ScaleFactors};
use metasapiens::fov::FoveatedRenderer;
use metasapiens::gpu::GpuCostModel;
use metasapiens::math::Vec2;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::trajectory::orbit;
use metasapiens::scene::Camera;

fn main() {
    const SCENE_SCALE: f32 = 0.008;
    const FRAMES: usize = 24; // a slice of the 1,440-pose trace
    let trace = TraceId::by_name("garden").expect("trace exists");
    println!("== VR walkthrough on {trace} ({FRAMES} frames of a 90 FPS trace) ==");
    let scene = trace.build_scene_with_scale(SCENE_SCALE);

    let system = build_system(&scene, &BuildConfig::new(Variant::M));
    println!(
        "{} built: levels {:?}",
        system.variant,
        system.fov.level_point_counts()
    );

    // Densified poses, VR-like wide-FOV camera.
    let proto = Camera {
        width: 192,
        height: 144,
        fovy: metasapiens::math::deg_to_rad(74.0),
        ..scene.train_cameras[0]
    };
    let radius = scene.spec.radius;
    let traj = orbit(
        metasapiens::math::Vec3::new(0.0, radius * 0.05, 0.0),
        radius * 0.85,
        radius * 0.4,
        8,
    );
    let cameras = traj.cameras(&proto, FRAMES);

    let renderer = FoveatedRenderer::new(RenderOptions::default());
    let gpu = GpuCostModel::xavier();
    let scale = ScaleFactors::for_experiment(SCENE_SCALE as f64, proto.width, proto.height);

    let mut fps_log = Vec::with_capacity(FRAMES);
    for (i, cam) in cameras.iter().enumerate() {
        // Saccade the gaze along a Lissajous path across the display.
        let t = i as f32 / FRAMES as f32;
        let gaze = Vec2::new(
            proto.width as f32 * (0.5 + 0.3 * (t * std::f32::consts::TAU).sin()),
            proto.height as f32 * (0.5 + 0.25 * (2.0 * t * std::f32::consts::TAU).cos()),
        );
        let out = renderer.render(&system.fov, cam, Some(gaze));
        let fps = gpu.fps(&foveated_workload(&out, scale));
        fps_log.push(fps as f32);
        if i % 6 == 0 {
            println!(
                "frame {i:>3}: gaze=({:>5.0},{:>5.0})  intersections={:>8}  blended px={:>6}  modeled FPS={fps:>7.1}",
                gaze.x, gaze.y, out.stats.total_intersections, out.blended_pixels
            );
        }
    }

    let mean = metasapiens::math::stats::mean(&fps_log);
    let p1 = metasapiens::math::stats::percentile(&fps_log, 1.0);
    println!("\nmodeled FPS over the walkthrough: mean {mean:.1}, 1st percentile {p1:.1}");
    println!(
        "VR target 90 FPS sustained: {}",
        if p1 >= 90.0 {
            "YES"
        } else {
            "no (reduced-scale extrapolation)"
        }
    );
}
