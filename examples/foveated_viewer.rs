//! Foveated viewer: render a trace dense vs. foveated, dump PPM images you
//! can open in any viewer, and report the per-region HVSQ that HVS-guided
//! training controls for.
//!
//! Run with: `cargo run --release --example foveated_viewer`
//! Outputs land in `target/foveated_viewer/`.

use metasapiens::fov::FoveatedRenderer;
use metasapiens::hvs::{DisplayGeometry, EccentricityMap, Hvsq, HvsqOptions};
use metasapiens::math::Vec3;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::{Image, RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;
use std::fs;
use std::path::Path;

fn save_ppm(dir: &Path, name: &str, image: &Image) {
    let path = dir.join(name);
    fs::write(&path, image.to_ppm()).expect("write ppm");
    println!("wrote {}", path.display());
}

/// Color-map per-tile intersections into a heatmap image (Fig. 9a style).
fn heatmap(tile_counts: &[u32], tiles_x: u32, tiles_y: u32, tile_size: u32) -> Image {
    let max = tile_counts.iter().copied().max().unwrap_or(1).max(1) as f32;
    let mut img = Image::new(tiles_x * tile_size, tiles_y * tile_size);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let v = tile_counts[(ty * tiles_x + tx) as usize] as f32 / max;
            // Blue → red ramp.
            let c = Vec3::new(v, 0.15 * (1.0 - v), 1.0 - v);
            for y in ty * tile_size..(ty + 1) * tile_size {
                for x in tx * tile_size..(tx + 1) * tile_size {
                    img.set_pixel(x, y, c);
                }
            }
        }
    }
    img
}

fn main() {
    const SCENE_SCALE: f32 = 0.01;
    let out_dir = Path::new("target/foveated_viewer");
    fs::create_dir_all(out_dir).expect("create output dir");

    let trace = TraceId::by_name("drjohnson").expect("trace exists");
    println!("== foveated viewer on {trace} ==");
    let scene = trace.build_scene_with_scale(SCENE_SCALE);
    let system = build_system(&scene, &BuildConfig::new(Variant::H));

    // A wide-FOV view so all four quality regions appear on screen.
    let cam = Camera {
        width: 320,
        height: 240,
        fovy: metasapiens::math::deg_to_rad(74.0),
        ..system.train_cameras[0]
    };

    let renderer = Renderer::default();
    let dense = renderer.render(&scene.model, &cam);
    save_ppm(out_dir, "dense.ppm", &dense.image.clamped());

    let fr = FoveatedRenderer::new(RenderOptions::default());
    let fov = fr.render(&system.fov, &cam, None);
    save_ppm(out_dir, "foveated.ppm", &fov.image.clamped());

    for l in 0..system.fov.level_count() {
        let lvl = renderer.render(system.fov.level_model(l), &cam);
        save_ppm(
            out_dir,
            &format!("level_{}.ppm", l + 1),
            &lvl.image.clamped(),
        );
    }

    let g = fov.stats.grid;
    save_ppm(
        out_dir,
        "tile_heatmap.ppm",
        &heatmap(
            &fov.stats.tile_intersections,
            g.tiles_x,
            g.tiles_y,
            g.tile_size,
        ),
    );

    // Per-region HVSQ of the foveated render against the dense reference.
    let display = DisplayGeometry::new(
        cam.width,
        cam.height,
        metasapiens::math::rad_to_deg(cam.fovx()),
    );
    let hvsq = Hvsq::with_options(
        EccentricityMap::centered(display),
        HvsqOptions {
            stride: 2,
            ..HvsqOptions::default()
        },
    );
    let boundaries = system.fov.regions().boundaries_deg().to_vec();
    let per_region = hvsq.evaluate_regions(&dense.image, &fov.image, &boundaries);
    println!("\nHVSQ per quality region (lower = less discriminable from dense):");
    for (i, q) in per_region.iter().enumerate() {
        let hi = boundaries
            .get(i + 1)
            .map(|b| format!("{b}°"))
            .unwrap_or_else(|| "∞".into());
        println!("  L{} [{}°..{}):  {:.3e}", i + 1, boundaries[i], hi, q);
    }
    println!(
        "\nblended pixels: {} ({:.1}% of the image)",
        fov.blended_pixels,
        100.0 * fov.blended_pixels as f32 / (cam.width * cam.height) as f32
    );
}
