//! Accelerator simulation: run one foveated frame through the GSCore-style
//! pipeline with and without Tile Merging / Incremental Pipelining, and
//! compare cycles, utilization, energy and area (paper §5, §7.3, §7.5).
//!
//! Run with: `cargo run --release --example accelerator_sim`

use metasapiens::accel::{simulate, AccelConfig, AccelWorkload, EnergyModel};
use metasapiens::eval::{foveated_workload, ScaleFactors};
use metasapiens::fov::FoveatedRenderer;
use metasapiens::gpu::GpuCostModel;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;

fn main() {
    const SCENE_SCALE: f32 = 0.01;
    let trace = TraceId::by_name("flowers").expect("trace exists");
    println!("== accelerator simulation on {trace} (MetaSapiens-H workload) ==");
    let scene = trace.build_scene_with_scale(SCENE_SCALE);
    let system = build_system(&scene, &BuildConfig::new(Variant::H));

    let cam = Camera {
        width: 256,
        height: 192,
        fovy: metasapiens::math::deg_to_rad(74.0),
        ..system.train_cameras[0]
    };
    let fr = FoveatedRenderer::new(RenderOptions::default());
    let frame = fr.render(&system.fov, &cam, None);

    // Scale the measured workload to full size for absolute comparisons.
    let scale = ScaleFactors::for_experiment(SCENE_SCALE as f64, cam.width, cam.height);
    let gpu_latency = GpuCostModel::xavier().frame_latency(&foveated_workload(&frame, scale));
    println!(
        "frame workload: {} tiles, {} intersections, imbalance max/mean = {:.1}",
        frame.stats.grid.tile_count(),
        frame.stats.total_intersections,
        frame.stats.imbalance_ratio()
    );
    println!(
        "modeled mobile-GPU latency (full scale): {:.2} ms\n",
        gpu_latency * 1e3
    );

    let workload = AccelWorkload::from_stats(
        &frame.stats,
        Some(&frame.tile_level),
        frame.blended_pixels as u64,
        system.fov.storage_bytes() as u64,
    );

    let configs = [
        AccelConfig::metasapiens_base(),
        AccelConfig::metasapiens_tm(),
        AccelConfig::metasapiens_tm_ip(),
        AccelConfig::gscore(),
    ];
    println!(
        "{:<20} {:>10} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "config", "cycles", "util", "lat (µs)", "energy µJ", "area mm²", "slots"
    );
    let energy_model = EnergyModel::default();
    for config in &configs {
        let sim = simulate(&workload, config);
        let energy = energy_model.frame_energy(&workload, &sim, config);
        println!(
            "{:<20} {:>10} {:>7.1}% {:>10.1} {:>10.1} {:>9.2} {:>9}",
            config.name,
            sim.cycles,
            100.0 * sim.raster_utilization,
            sim.latency_s * 1e6,
            energy.total_j() * 1e6,
            config.area_mm2(),
            sim.units_processed,
        );
    }

    // Speedups relative to the modeled GPU (the Fig. 14 axis). The raw
    // (unscaled) workload runs on both sides for a like-for-like ratio.
    let gpu_small =
        GpuCostModel::xavier().frame_latency(&foveated_workload(&frame, ScaleFactors::identity()));
    println!("\nspeedup over mobile GPU (same reduced workload):");
    for config in &configs {
        let sim = simulate(&workload, config);
        println!("  {:<20} {:>6.1}x", config.name, gpu_small / sim.latency_s);
    }
    println!("\npaper reference: Base ≈ 18.5x, TM+IP ≈ 20.9x (geomean over 13 traces)");
}
