//! The FR baselines of §7.4: SMFR and MMFR.
//!
//! * **SMFR** (Single-Model FR): one dense model; lower-quality regions are
//!   rendered by *randomly sampling* its points — effectively strict
//!   subsetting with no multi-versioning. Fastest, cheapest storage, but the
//!   peripheral quality collapses (its L4 HVSQ is >10× worse, Tbl. 1).
//! * **MMFR** (Multi-Model FR, after Fov-NeRF): each level is an
//!   *independent* model pruned separately from L1 — no subsetting, so all
//!   parameters are per-level. Best peripheral HVSQ but pays the projection
//!   overhead of evaluating every model and nearly 2× storage.

use crate::model::{FoveatedModel, LevelParams};
use crate::render::{FovRenderOutput, FoveatedRenderer, ProjectionSharing};
use ms_hvs::QualityRegions;
use ms_math::Vec2;
use ms_render::Image;
use ms_scene::{Camera, GaussianModel};
use ms_train::ce::{compute_ce, CeOptions};
use ms_train::finetune::{FineTuneConfig, FineTuner};
use ms_train::prune::prune_lowest;

/// Build an SMFR model: strict subsetting of `l1` by **random sampling**
/// (no CE, no multi-versioning). Level point counts follow
/// `level_fractions` like [`crate::FrBuildConfig`].
///
/// # Panics
///
/// Panics when fractions don't match the regions or are invalid.
pub fn build_smfr(
    l1: &GaussianModel,
    regions: QualityRegions,
    level_fractions: &[f32],
    seed: u64,
) -> FoveatedModel {
    assert_eq!(level_fractions.len(), regions.level_count());
    assert!((level_fractions[0] - 1.0).abs() < 1e-6);
    let n = l1.len();
    let levels = regions.level_count();

    // Deterministic shuffle via splitmix-ish hashing.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        let mut h = (i as u64)
            .wrapping_add(seed)
            .wrapping_mul(0x9E3779B97F4A7C15);
        h ^= h >> 31;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        h ^ (h >> 29)
    });

    let mut quality_bound = vec![0u8; n];
    for (l, &frac) in level_fractions.iter().enumerate().take(levels).skip(1) {
        let keep = ((n as f32) * frac).round().max(1.0) as usize;
        for &i in order.iter().take(keep) {
            quality_bound[i] = l as u8;
        }
    }

    // No multi-versioning: every level reads the base parameters.
    let base_params = LevelParams {
        opacity: l1.opacities.clone(),
        dc: (0..n)
            .map(|i| {
                let sh = l1.sh(i);
                [sh[0], sh[1], sh[2]]
            })
            .collect(),
    };
    let level_params = vec![base_params; levels - 1];
    FoveatedModel::new(l1.clone(), quality_bound, level_params, regions)
}

/// An MMFR model: independent per-level models (no parameter sharing).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiModelFr {
    /// One model per quality level; `models[0]` is the L1 model.
    pub models: Vec<GaussianModel>,
    /// The quality regions.
    pub regions: QualityRegions,
}

impl MultiModelFr {
    /// Total storage: the sum over all level models — the multi-model
    /// penalty (Tbl. 1 reports 1.92× the SMFR storage).
    pub fn storage_bytes(&self) -> usize {
        self.models.iter().map(|m| m.storage_bytes()).sum()
    }

    /// Point count per level.
    pub fn level_point_counts(&self) -> Vec<usize> {
        self.models.iter().map(|m| m.len()).collect()
    }
}

/// Build an MMFR model: each level pruned from `l1` by CE to its fraction
/// and fine-tuned independently (all parameters free).
///
/// # Panics
///
/// Panics on invalid fractions or camera/reference mismatch.
pub fn build_mmfr(
    l1: &GaussianModel,
    cameras: &[Camera],
    references: &[Image],
    regions: QualityRegions,
    level_fractions: &[f32],
    finetune: Option<&FineTuneConfig>,
    ce: &CeOptions,
) -> MultiModelFr {
    assert_eq!(level_fractions.len(), regions.level_count());
    assert_eq!(cameras.len(), references.len());
    let n = l1.len();
    let mut models = Vec::with_capacity(regions.level_count());
    models.push(l1.clone());
    let ce_scores = compute_ce(l1, cameras, ce);
    for &frac in &level_fractions[1..] {
        let target = ((n as f32) * frac).round().max(1.0) as usize;
        let (mut m, _) = prune_lowest(l1, &ce_scores, n.saturating_sub(target));
        if let Some(ft) = finetune {
            let mut tuner = FineTuner::new(ft.clone(), m.len());
            tuner.run(&mut m, cameras, references);
        }
        models.push(m);
    }
    MultiModelFr { models, regions }
}

/// Render an SMFR/our-style [`FoveatedModel`] — identical to
/// [`FoveatedRenderer::render`]; provided for symmetry with
/// [`render_mmfr`].
pub fn render_subsetting(
    renderer: &FoveatedRenderer,
    model: &FoveatedModel,
    camera: &Camera,
    gaze: Option<Vec2>,
) -> FovRenderOutput {
    renderer.render(model, camera, gaze)
}

/// Render an MMFR model. Projection cost is accounted **per level** — every
/// independent model must run Projection and Filtering (§4.1, Challenge 1).
pub fn render_mmfr(
    renderer: &FoveatedRenderer,
    model: &MultiModelFr,
    camera: &Camera,
    gaze: Option<Vec2>,
) -> FovRenderOutput {
    let level_models: Vec<&GaussianModel> = model.models.iter().collect();
    renderer.render_levels(
        &level_models,
        &model.regions,
        camera,
        gaze,
        ProjectionSharing::PerLevel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_render::Renderer;
    use ms_scene::dataset::TraceId;

    fn setup() -> (GaussianModel, Vec<Camera>, Vec<Image>) {
        let scene = TraceId::by_name("playroom")
            .unwrap()
            .build_scene_with_scale(0.005);
        let cameras: Vec<Camera> = scene
            .train_cameras
            .iter()
            .step_by(12)
            .take(2)
            .map(|c| Camera {
                width: 80,
                height: 60,
                ..*c
            })
            .collect();
        let renderer = Renderer::default();
        let references: Vec<Image> = cameras
            .iter()
            .map(|c| renderer.render(&scene.model, c).image)
            .collect();
        (scene.model, cameras, references)
    }

    const FRACTIONS: [f32; 4] = [1.0, 0.55, 0.30, 0.16];

    #[test]
    fn smfr_matches_level_counts_and_has_no_overhead() {
        let (l1, _, _) = setup();
        let smfr = build_smfr(&l1, QualityRegions::paper_default(), &FRACTIONS, 7);
        let counts = smfr.level_point_counts();
        assert_eq!(counts[0], l1.len());
        for (l, &f) in FRACTIONS.iter().enumerate().skip(1) {
            let expected = (l1.len() as f32 * f).round() as usize;
            assert!((counts[l] as i64 - expected as i64).unsigned_abs() <= 1);
        }
        // Note: the FoveatedModel accounting charges version slots even when
        // values equal the base; a real SMFR pays none. What matters here is
        // that the subset structure itself adds no point storage.
        assert_eq!(
            smfr.base().storage_bytes(),
            l1.storage_bytes(),
            "subsetting must not duplicate points"
        );
    }

    #[test]
    fn smfr_is_deterministic_per_seed() {
        let (l1, _, _) = setup();
        let a = build_smfr(&l1, QualityRegions::paper_default(), &FRACTIONS, 1);
        let b = build_smfr(&l1, QualityRegions::paper_default(), &FRACTIONS, 1);
        let c = build_smfr(&l1, QualityRegions::paper_default(), &FRACTIONS, 2);
        assert_eq!(a.quality_bounds(), b.quality_bounds());
        assert_ne!(a.quality_bounds(), c.quality_bounds());
    }

    #[test]
    fn mmfr_storage_exceeds_subsetting() {
        let (l1, cams, refs) = setup();
        let mmfr = build_mmfr(
            &l1,
            &cams,
            &refs,
            QualityRegions::paper_default(),
            &FRACTIONS,
            None,
            &CeOptions::default(),
        );
        let smfr = build_smfr(&l1, QualityRegions::paper_default(), &FRACTIONS, 3);
        // MMFR stores every level separately: Σ fractions ≈ 2× the base.
        let expected_ratio = FRACTIONS.iter().sum::<f32>();
        let actual_ratio = mmfr.storage_bytes() as f32 / l1.storage_bytes() as f32;
        assert!(
            (actual_ratio - expected_ratio).abs() < 0.05,
            "ratio {actual_ratio}"
        );
        assert!(mmfr.storage_bytes() > smfr.storage_bytes());
    }

    #[test]
    fn mmfr_projection_cost_is_per_level() {
        let (l1, cams, refs) = setup();
        let regions = QualityRegions::paper_default();
        let mmfr = build_mmfr(
            &l1,
            &cams,
            &refs,
            regions.clone(),
            &FRACTIONS,
            None,
            &CeOptions::default(),
        );
        let smfr = build_smfr(&l1, regions, &FRACTIONS, 3);
        let fr = FoveatedRenderer::default();
        let out_mm = render_mmfr(&fr, &mmfr, &cams[0], None);
        let out_sm = render_subsetting(&fr, &smfr, &cams[0], None);
        assert!(
            out_mm.stats.points_submitted > out_sm.stats.points_submitted,
            "MMFR must project every level's model: {} vs {}",
            out_mm.stats.points_submitted,
            out_sm.stats.points_submitted
        );
    }

    #[test]
    fn mmfr_renders_full_image() {
        let (l1, cams, refs) = setup();
        let mmfr = build_mmfr(
            &l1,
            &cams,
            &refs,
            QualityRegions::paper_default(),
            &FRACTIONS,
            None,
            &CeOptions::default(),
        );
        let out = render_mmfr(&FoveatedRenderer::default(), &mmfr, &cams[0], None);
        assert_eq!(out.image.width(), 80);
        assert_eq!(out.per_level_stats.len(), 4);
    }
}
