//! The hierarchical foveated model representation (Fig. 7 C–D).

use ms_hvs::QualityRegions;
use ms_scene::GaussianModel;
use serde::{Deserialize, Serialize};

/// Multi-versioned parameters of one quality level (levels ≥ 1; level 0
/// uses the base model's parameters directly).
///
/// Only Opacity and the SH DC component are versioned — "these four
/// parameters [opacity + 3 DC coefficients] are empirically found to impact
/// the pixel colors the most" (§4.2). Entries are indexed by base-model
/// point index and are only meaningful for points whose quality bound
/// admits them to this level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelParams {
    /// Per-point opacity override.
    pub opacity: Vec<f32>,
    /// Per-point SH-DC override (RGB DC coefficients).
    pub dc: Vec<[f32; 3]>,
}

/// A foveated PBNR model: L1 base + subset hierarchy + multi-versioned
/// parameters.
///
/// Invariants (checked by [`FoveatedModel::validate`]):
/// * points of level `ℓ+1` are a strict subset of level `ℓ`'s
///   (monotone quality bounds),
/// * level 0 contains every point,
/// * per-level parameter vectors are base-length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoveatedModel {
    /// The L1 (level-0) model carrying all shared parameters.
    base: GaussianModel,
    /// `quality_bound[i]` = highest level index (0-based) that still uses
    /// point `i` (the paper's `m`, Fig. 7-C).
    quality_bound: Vec<u8>,
    /// Multi-versioned parameters for levels `1..level_count`.
    level_params: Vec<LevelParams>,
    /// Eccentricity regions the levels map to.
    regions: QualityRegions,
    /// Materialized per-level models (cached; `level_models[ℓ]` contains
    /// only the points admitted to level ℓ with that level's parameters).
    #[serde(skip)]
    level_models: Vec<GaussianModel>,
    /// For each level, mapping from level-model point index → base index.
    #[serde(skip)]
    level_index_maps: Vec<Vec<u32>>,
}

impl FoveatedModel {
    /// Assemble a foveated model.
    ///
    /// `level_params[ℓ-1]` carries the overrides for level `ℓ`. Pass
    /// base-model copies to express "no override" for a level.
    ///
    /// # Panics
    ///
    /// Panics when the invariants fail (see [`FoveatedModel::validate`]).
    pub fn new(
        base: GaussianModel,
        quality_bound: Vec<u8>,
        level_params: Vec<LevelParams>,
        regions: QualityRegions,
    ) -> Self {
        let mut out = Self {
            base,
            quality_bound,
            level_params,
            regions,
            level_models: Vec::new(),
            level_index_maps: Vec::new(),
        };
        out.validate().expect("invalid foveated model");
        out.materialize();
        out
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.base.len();
        if self.quality_bound.len() != n {
            return Err("quality_bound length mismatch".into());
        }
        let levels = self.level_count();
        if levels == 0 {
            return Err("need at least one level".into());
        }
        for (i, &b) in self.quality_bound.iter().enumerate() {
            if b as usize >= levels {
                return Err(format!("point {i} bound {b} exceeds level count {levels}"));
            }
        }
        if self.level_params.len() != levels - 1 {
            return Err(format!(
                "expected {} level-param sets, got {}",
                levels - 1,
                self.level_params.len()
            ));
        }
        for (l, p) in self.level_params.iter().enumerate() {
            if p.opacity.len() != n || p.dc.len() != n {
                return Err(format!("level {} params wrong length", l + 1));
            }
        }
        self.base.validate()
    }

    fn materialize(&mut self) {
        let levels = self.level_count();
        self.level_models.clear();
        self.level_index_maps.clear();
        for l in 0..levels {
            let indices: Vec<usize> = (0..self.base.len())
                .filter(|&i| self.quality_bound[i] as usize >= l)
                .collect();
            let mut m = self.base.subset(&indices);
            if l >= 1 {
                let params = &self.level_params[l - 1];
                let stride = m.sh_stride();
                for (new_i, &old_i) in indices.iter().enumerate() {
                    m.opacities[new_i] = params.opacity[old_i];
                    m.sh_coeffs[new_i * stride..new_i * stride + 3]
                        .copy_from_slice(&params.dc[old_i]);
                }
            }
            self.level_index_maps
                .push(indices.iter().map(|&i| i as u32).collect());
            self.level_models.push(m);
        }
    }

    /// Number of quality levels (paper uses 4).
    pub fn level_count(&self) -> usize {
        self.regions.level_count()
    }

    /// The quality regions this model renders into.
    pub fn regions(&self) -> &QualityRegions {
        &self.regions
    }

    /// The base (L1) model.
    pub fn base(&self) -> &GaussianModel {
        &self.base
    }

    /// Per-point quality bounds.
    pub fn quality_bounds(&self) -> &[u8] {
        &self.quality_bound
    }

    /// The materialized model of level `l` (0 = highest quality).
    ///
    /// # Panics
    ///
    /// Panics when `l >= level_count`.
    pub fn level_model(&self, l: usize) -> &GaussianModel {
        &self.level_models[l]
    }

    /// Mapping from level-`l` point indices to base indices.
    pub fn level_index_map(&self, l: usize) -> &[u32] {
        &self.level_index_maps[l]
    }

    /// Point count per level (non-increasing by the subset invariant).
    pub fn level_point_counts(&self) -> Vec<usize> {
        self.level_models.iter().map(|m| m.len()).collect()
    }

    /// Total storage in bytes: the base model plus the multi-versioned
    /// parameters (4 floats per point per *extra* level it participates in).
    /// This is the paper's "about 6%" overhead accounting (§7.4): unlike
    /// MMFR, subsetting stores each point once.
    pub fn storage_bytes(&self) -> usize {
        let base = self.base.storage_bytes();
        let mut extra_versions = 0usize;
        for &b in &self.quality_bound {
            extra_versions += b as usize; // one extra version per level ≥ 1
        }
        base + extra_versions * 4 * 4 // opacity + 3 DC floats
    }

    /// Multi-versioning overhead relative to the base model.
    pub fn storage_overhead(&self) -> f32 {
        let base = self.base.storage_bytes();
        if base == 0 {
            return 0.0;
        }
        (self.storage_bytes() - base) as f32 / base as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};

    fn base_model(n: usize) -> GaussianModel {
        let mut m = GaussianModel::new(3);
        for i in 0..n {
            m.push_solid(
                Vec3::new(i as f32 * 0.1, 0.0, 0.0),
                Vec3::splat(0.1),
                Quat::identity(),
                0.5,
                Vec3::new(0.5, 0.5, 0.5),
            );
        }
        m
    }

    fn no_override(base: &GaussianModel) -> LevelParams {
        LevelParams {
            opacity: base.opacities.clone(),
            dc: (0..base.len())
                .map(|i| {
                    let sh = base.sh(i);
                    [sh[0], sh[1], sh[2]]
                })
                .collect(),
        }
    }

    fn sample() -> FoveatedModel {
        let base = base_model(8);
        // Bounds: 8 points, half drop out at each level.
        let bounds = vec![3, 3, 2, 2, 1, 1, 0, 0];
        let params = vec![no_override(&base), no_override(&base), no_override(&base)];
        FoveatedModel::new(base, bounds, params, QualityRegions::paper_default())
    }

    #[test]
    fn level_counts_are_monotone_subsets() {
        let fm = sample();
        let counts = fm.level_point_counts();
        assert_eq!(counts, vec![8, 6, 4, 2]);
        // Subset invariant: level l+1 indices ⊆ level l indices.
        for l in 0..3 {
            let a: std::collections::HashSet<u32> = fm.level_index_map(l).iter().copied().collect();
            for &i in fm.level_index_map(l + 1) {
                assert!(
                    a.contains(&i),
                    "level {} point {i} missing from level {l}",
                    l + 1
                );
            }
        }
    }

    #[test]
    fn level_zero_contains_all_points() {
        let fm = sample();
        assert_eq!(fm.level_model(0).len(), fm.base().len());
    }

    #[test]
    fn storage_overhead_counts_extra_versions() {
        let fm = sample();
        // Extra versions = sum of bounds = 3+3+2+2+1+1 = 12 → 12·16 bytes.
        let expected_extra = 12 * 16;
        assert_eq!(
            fm.storage_bytes() - fm.base().storage_bytes(),
            expected_extra
        );
        // Overhead stays small relative to a full-SH model (the paper's
        // ~6% figure assumes most points bound out at L1; here the bound
        // distribution is deliberately uniform, so allow more headroom).
        assert!(
            fm.storage_overhead() < 0.15,
            "overhead {}",
            fm.storage_overhead()
        );
    }

    #[test]
    fn level_params_override_opacity_and_dc() {
        let base = base_model(4);
        let bounds = vec![1, 1, 0, 0];
        let mut p = no_override(&base);
        p.opacity = vec![0.9; 4];
        p.dc = vec![[1.0, 2.0, 3.0]; 4];
        let fm = FoveatedModel::new(
            base,
            bounds,
            vec![p, no_override(&base_model(4)), no_override(&base_model(4))],
            QualityRegions::paper_default(),
        );
        let l1 = fm.level_model(1);
        assert_eq!(l1.len(), 2);
        assert_eq!(l1.opacities[0], 0.9);
        assert_eq!(&l1.sh(0)[..3], &[1.0, 2.0, 3.0]);
        // Base model untouched.
        assert_eq!(fm.level_model(0).opacities[0], 0.5);
    }

    #[test]
    #[should_panic]
    fn bound_exceeding_levels_panics() {
        let base = base_model(2);
        let p = no_override(&base);
        let _ = FoveatedModel::new(
            base,
            vec![7, 0],
            vec![p.clone(), p.clone(), p],
            QualityRegions::paper_default(),
        );
    }

    #[test]
    #[should_panic]
    fn wrong_param_count_panics() {
        let base = base_model(2);
        let p = no_override(&base);
        let _ = FoveatedModel::new(base, vec![0, 0], vec![p], QualityRegions::paper_default());
    }
}
