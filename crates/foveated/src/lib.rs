//! Foveated PBNR (paper §4).
//!
//! Renders different eccentricity regions of the image with models of
//! different quality, exploiting the acuity fall-off of peripheral vision.
//! The crate provides:
//!
//! * [`FoveatedModel`] — the paper's data representation: a hierarchy of
//!   models where the points of level `ℓ+1` are a **strict subset** of level
//!   `ℓ`'s points (quality bounds, Fig. 7-C), with **selective
//!   multi-versioning** of exactly two parameter groups — Opacity and the
//!   SH DC color — per level (Fig. 7-D). Total point storage equals the L1
//!   model's; the multi-versioned parameters add only a few percent.
//! * [`build_foveated`] — the §4.3 training procedure: each level is pruned
//!   from its predecessor by Computational Efficiency and its
//!   multi-versioned parameters are fine-tuned (no scale decay: scales are
//!   shared across levels).
//! * [`FoveatedRenderer`] — the augmented pipeline of Fig. 7-E: per-level
//!   point filtering, region-masked rasterization and boundary blending.
//! * [`baselines`] — the two FR baselines of §7.4: SMFR (strict subsetting
//!   by random sampling, no multi-versioning) and MMFR (fully independent
//!   per-level models, no subsetting).
//!
//! # Example
//!
//! ```
//! use ms_scene::dataset::TraceId;
//! use ms_fov::{build_foveated, FrBuildConfig, FoveatedRenderer};
//!
//! let scene = TraceId::by_name("room").unwrap().build_scene_with_scale(0.004);
//! let cams: Vec<_> = scene.train_cameras.iter().take(2)
//!     .map(|c| ms_scene::Camera { width: 64, height: 48, ..*c })
//!     .collect();
//! let renderer = ms_render::Renderer::default();
//! let refs: Vec<_> = cams.iter().map(|c| renderer.render(&scene.model, c).image).collect();
//! let config = FrBuildConfig { finetune: None, ..FrBuildConfig::default() };
//! let fr = build_foveated(&scene.model, &cams, &refs, &config);
//! assert_eq!(fr.level_count(), 4);
//! let out = FoveatedRenderer::default().render(&fr, &cams[0], None);
//! assert_eq!(out.image.width(), 64);
//! ```

#![deny(missing_docs)]

pub mod baselines;
mod build;
mod model;
mod render;

pub use build::{build_foveated, build_foveated_hvsq, FrBuildConfig};
pub use model::{FoveatedModel, LevelParams};
pub use render::{FovRenderOutput, FoveatedRenderer};
