//! The foveated rendering pipeline (Fig. 7-E): Projection → Filtering →
//! Sorting → Rasterization → Blending.

use crate::model::FoveatedModel;
use ms_hvs::{DisplayGeometry, EccentricityMap, QualityRegions};
use ms_math::{rad_to_deg, Vec2};
use ms_render::{Image, RenderOptions, RenderStats, Renderer};
use ms_scene::{Camera, GaussianModel};

/// Result of a foveated render.
#[derive(Debug, Clone, PartialEq)]
pub struct FovRenderOutput {
    /// The blended foveated image.
    pub image: Image,
    /// Merged workload statistics across levels (per-tile intersections are
    /// summed element-wise; projection is counted once for subsetting
    /// models, per-level for multi-model baselines). In the merged profile,
    /// Project *work counters* follow the same sharing model (so
    /// `profile.items(Project) == points_projected` always holds), while
    /// Project *wall times* sum every level's measured projection cost —
    /// don't compute items/wall throughput from the merged Project samples.
    pub stats: RenderStats,
    /// Raw per-level statistics.
    pub per_level_stats: Vec<RenderStats>,
    /// Dominant quality level per tile (row-major) — the accelerator
    /// simulator's input alongside the intersection counts.
    pub tile_level: Vec<u8>,
    /// Number of pixels rendered twice for boundary blending.
    pub blended_pixels: usize,
}

/// How per-level projection cost is accounted in the merged stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProjectionSharing {
    /// Subsetting (ours/SMFR): projection + filtering run once over the
    /// base point set (paper §4.2).
    Shared,
    /// Multi-model (MMFR): every level projects its own model.
    PerLevel,
}

/// Renders [`FoveatedModel`]s (and, internally, multi-model baselines).
#[derive(Debug, Clone)]
pub struct FoveatedRenderer {
    renderer: Renderer,
}

impl Default for FoveatedRenderer {
    fn default() -> Self {
        Self::new(RenderOptions::default())
    }
}

impl FoveatedRenderer {
    /// Create a foveated renderer from base render options.
    ///
    /// # Panics
    ///
    /// Panics when the options are invalid.
    pub fn new(options: RenderOptions) -> Self {
        Self {
            renderer: Renderer::new(options),
        }
    }

    /// The underlying renderer options.
    pub fn options(&self) -> &RenderOptions {
        self.renderer.options()
    }

    /// Render a foveated model. `gaze` is in pixels (`None` = image
    /// center, the fixation the paper's objective metrics assume).
    pub fn render(
        &self,
        model: &FoveatedModel,
        camera: &Camera,
        gaze: Option<Vec2>,
    ) -> FovRenderOutput {
        let level_models: Vec<&GaussianModel> = (0..model.level_count())
            .map(|l| model.level_model(l))
            .collect();
        self.render_levels(
            &level_models,
            model.regions(),
            camera,
            gaze,
            ProjectionSharing::Shared,
        )
    }

    /// Render an arbitrary stack of per-level models (used by the SMFR/MMFR
    /// baselines and exposed through `baselines`).
    pub(crate) fn render_levels(
        &self,
        level_models: &[&GaussianModel],
        regions: &QualityRegions,
        camera: &Camera,
        gaze: Option<Vec2>,
        sharing: ProjectionSharing,
    ) -> FovRenderOutput {
        assert_eq!(
            level_models.len(),
            regions.level_count(),
            "one model per quality region required"
        );
        let display = DisplayGeometry::new(camera.width, camera.height, rad_to_deg(camera.fovx()));
        let gaze = gaze.unwrap_or_else(|| display.center());
        let ecc = EccentricityMap::new(display, gaze);

        let n_pixels = (camera.width * camera.height) as usize;
        let levels = regions.level_count();
        // Per-pixel (level, blend weight toward the next level).
        let mut pixel_level = vec![0u8; n_pixels];
        let mut pixel_blend = vec![0.0f32; n_pixels];
        for (i, &e) in ecc.values().iter().enumerate() {
            let (l, w) = regions.blend_toward_next(e);
            pixel_level[i] = l as u8;
            pixel_blend[i] = w;
        }

        // Per-level pixel masks: a level renders its own region plus the
        // blend band of the previous region that leads into it.
        //
        // With `RenderOptions::lod >= 2`, the *peripheral* levels (every
        // level but the foveal l == 0) render a coarse subset — every
        // `lod`-th splat by global index with opacity rescaled, the exact
        // subset `ms_scene::SceneSource::load_coarse_chunk_into` serves per
        // chunk — so far-eccentricity tiles pay for a fraction of the
        // splats. The selection is deterministic per stride; the LOD frame
        // is intentionally not bit-identical to the full one.
        let lod = self.renderer.options().lod_stride();
        let mut level_images: Vec<Image> = Vec::with_capacity(levels);
        let mut per_level_stats: Vec<RenderStats> = Vec::with_capacity(levels);
        for (l, level_model) in level_models.iter().enumerate().take(levels) {
            let mask: Vec<bool> = (0..n_pixels)
                .map(|i| {
                    let pl = pixel_level[i] as usize;
                    pl == l || (l >= 1 && pl == l - 1 && pixel_blend[i] > 0.0)
                })
                .collect();
            let coarse = match lod {
                Some(stride) if l >= 1 => Some(ms_scene::coarse_subset(level_model, stride, 0)),
                _ => None,
            };
            let render_model: &GaussianModel = coarse.as_ref().unwrap_or(level_model);
            let out = self
                .renderer
                .render_masked(render_model, camera, |_| true, &mask);
            level_images.push(out.image);
            per_level_stats.push(out.stats);
        }

        // Blend: pixels in a blend band were rendered by both adjacent
        // levels; interpolate. Others copy their level's render.
        let mut image = Image::new(camera.width, camera.height);
        let mut blended_pixels = 0usize;
        for y in 0..camera.height {
            for x in 0..camera.width {
                let i = (y * camera.width + x) as usize;
                let l = pixel_level[i] as usize;
                let w = pixel_blend[i];
                let c = if w > 0.0 && l + 1 < levels {
                    blended_pixels += 1;
                    level_images[l]
                        .pixel(x, y)
                        .lerp(level_images[l + 1].pixel(x, y), w)
                } else {
                    level_images[l].pixel(x, y)
                };
                image.set_pixel(x, y, c);
            }
        }

        // Merge stats. Per-level stage profiles fold into one frame profile
        // (per-stage wall times and work counters sum across levels), so the
        // merged stats stay the single source the accelerator workload is
        // derived from.
        let grid = per_level_stats[0].grid;
        let mut tile_intersections = vec![0u32; per_level_stats[0].tile_intersections.len()];
        let mut blend_steps = 0u64;
        let mut profile = ms_render::FrameProfile::default();
        for (l, s) in per_level_stats.iter().enumerate() {
            for (acc, &v) in tile_intersections.iter_mut().zip(&s.tile_intersections) {
                *acc += v;
            }
            blend_steps += s.blend_steps;
            if sharing == ProjectionSharing::Shared && l > 0 {
                // Subsetting projects once over the base set; levels beyond
                // the first re-project only because the reference renderer
                // has no shared projection cache. Zero their Project *work
                // counters* so the merged Project counter equals
                // `points_projected` (the modeled shared-projection work,
                // the invariant `AccelWorkload::from_stats` relies on) —
                // but keep their wall times, which were genuinely spent.
                let adjusted = ms_render::FrameProfile {
                    samples: s
                        .profile
                        .samples
                        .iter()
                        .map(|smp| {
                            if smp.kind == ms_render::StageKind::Project {
                                ms_render::StageSample { items: 0, ..*smp }
                            } else {
                                *smp
                            }
                        })
                        .collect(),
                    raster: s.profile.raster,
                    chunk_bytes_peak: s.profile.chunk_bytes_peak,
                    projected_bytes_peak: s.profile.projected_bytes_peak,
                    cache: s.profile.cache,
                };
                profile.absorb(&adjusted);
            } else {
                profile.absorb(&s.profile);
            }
        }
        let total_intersections = tile_intersections.iter().map(|&v| v as u64).sum();
        let (points_projected, points_submitted) = match sharing {
            // Subsetting: projection and filtering execute once, over the
            // base set (= level 0's model).
            ProjectionSharing::Shared => (
                per_level_stats[0].points_projected,
                per_level_stats[0].points_submitted,
            ),
            ProjectionSharing::PerLevel => (
                per_level_stats.iter().map(|s| s.points_projected).sum(),
                per_level_stats.iter().map(|s| s.points_submitted).sum(),
            ),
        };

        // Dominant level per tile (majority of pixels).
        let ts = grid.tile_size;
        let mut tile_level = vec![0u8; grid.tile_count()];
        for ty in 0..grid.tiles_y {
            for tx in 0..grid.tiles_x {
                let mut counts = vec![0u32; levels];
                let x_end = ((tx + 1) * ts).min(camera.width);
                let y_end = ((ty + 1) * ts).min(camera.height);
                for y in (ty * ts)..y_end {
                    for x in (tx * ts)..x_end {
                        counts[pixel_level[(y * camera.width + x) as usize] as usize] += 1;
                    }
                }
                let dominant = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, c)| *c)
                    .map(|(l, _)| l as u8)
                    .unwrap_or(0);
                tile_level[(ty * grid.tiles_x + tx) as usize] = dominant;
            }
        }

        FovRenderOutput {
            image,
            stats: RenderStats {
                grid,
                tile_intersections,
                points_projected,
                points_submitted,
                total_intersections,
                blend_steps,
                point_tiles_used: Vec::new(),
                point_pixels_dominated: Vec::new(),
                // Each level renders under its own merge schedule over its
                // own bins, so a single per-tile unit map does not exist for
                // the merged frame — consult `per_level_stats` for the §4.3
                // work-unit data.
                tile_unit: Vec::new(),
                profile,
            },
            per_level_stats,
            tile_level,
            blended_pixels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_foveated, FrBuildConfig};
    use ms_scene::dataset::TraceId;

    /// Render options with 8-px tiles: at test resolutions the default
    /// 16-px tiles are so coarse that nearly every tile straddles a region
    /// boundary, which double-counts cross-level work the real (high-res)
    /// configuration doesn't pay.
    fn fr_opts() -> RenderOptions {
        RenderOptions {
            tile_size: 8,
            ..RenderOptions::default()
        }
    }

    fn setup() -> (FoveatedModel, Vec<Camera>, Vec<Image>) {
        let scene = TraceId::by_name("room")
            .unwrap()
            .build_scene_with_scale(0.006);
        let cameras: Vec<Camera> = scene
            .train_cameras
            .iter()
            .step_by(10)
            .take(2)
            // Wide VR-like FOV (fovx ≈ 88°): with a narrow camera most of
            // the image is foveal and FR has nothing to relax.
            .map(|c| Camera {
                width: 128,
                height: 96,
                fovy: ms_math::deg_to_rad(74.0),
                ..*c
            })
            .collect();
        let renderer = Renderer::new(fr_opts());
        let references: Vec<Image> = cameras
            .iter()
            .map(|c| renderer.render(&scene.model, c).image)
            .collect();
        let config = FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        };
        let fr = build_foveated(&scene.model, &cameras, &references, &config);
        (fr, cameras, references)
    }

    #[test]
    fn foveated_render_produces_full_image() {
        let (fr, cameras, _) = setup();
        let out = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        assert_eq!(out.image.width(), 128);
        assert_eq!(out.per_level_stats.len(), 4);
        assert_eq!(out.tile_level.len(), out.stats.grid.tile_count());
    }

    #[test]
    fn foveated_render_cheaper_than_dense() {
        let (fr, cameras, _) = setup();
        let fov = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        let dense = Renderer::new(fr_opts()).render(fr.base(), &cameras[0]);
        assert!(
            fov.stats.total_intersections < dense.stats.total_intersections,
            "FR intersections {} should undercut dense {}",
            fov.stats.total_intersections,
            dense.stats.total_intersections
        );
    }

    #[test]
    fn foveal_region_matches_l1_render() {
        let (fr, cameras, _) = setup();
        let out = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        let dense = Renderer::new(fr_opts()).render(fr.level_model(0), &cameras[0]);
        // Center pixel is deep inside R1 (no blending): exact L1 color.
        let c = out.image.pixel(64, 48);
        let d = dense.image.pixel(64, 48);
        assert!((c - d).length() < 1e-6, "foveal pixel differs: {c} vs {d}");
    }

    #[test]
    fn workload_concentrates_at_gaze() {
        let (fr, cameras, _) = setup();
        let out = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        let grid = out.stats.grid;
        // Compare the center tile against the corner tile.
        let center_idx = ((grid.tiles_y / 2) * grid.tiles_x + grid.tiles_x / 2) as usize;
        let corner_idx = 0usize;
        let center = out.stats.tile_intersections[center_idx];
        let corner = out.stats.tile_intersections[corner_idx];
        assert!(
            center > corner,
            "center tile ({center}) should out-work corner tile ({corner})"
        );
    }

    #[test]
    fn gaze_shift_moves_high_quality_region() {
        let (fr, cameras, _) = setup();
        let r = FoveatedRenderer::new(fr_opts());
        let left = r.render(&fr, &cameras[0], Some(Vec2::new(12.0, 48.0)));
        // Tile level at the left edge should be 0 when gazing left.
        let grid = left.stats.grid;
        let left_tile = (grid.tiles_y / 2 * grid.tiles_x) as usize;
        assert_eq!(left.tile_level[left_tile], 0);
        // And the right edge should be peripheral.
        let right_tile = (grid.tiles_y / 2 * grid.tiles_x + grid.tiles_x - 1) as usize;
        assert!(left.tile_level[right_tile] >= 2);
    }

    #[test]
    fn blending_touches_boundary_pixels_only() {
        let (fr, cameras, _) = setup();
        let out = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        let n = (128 * 96) as usize;
        assert!(out.blended_pixels > 0, "some pixels must blend");
        assert!(
            out.blended_pixels < n / 2,
            "blending should be a minority of pixels"
        );
    }

    #[test]
    fn merged_projection_counts_base_once() {
        let (fr, cameras, _) = setup();
        let out = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        assert_eq!(out.stats.points_submitted, fr.base().len());
        // Per-level projected sums exceed the shared count (subsetting wins).
        let sum: usize = out.per_level_stats.iter().map(|s| s.points_projected).sum();
        assert!(sum >= out.stats.points_projected);
    }

    #[test]
    fn peripheral_lod_cuts_work_and_keeps_fovea_exact() {
        let (fr, cameras, _) = setup();
        let full = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        let lod_opts = RenderOptions {
            lod: 4,
            ..fr_opts()
        };
        let coarse = FoveatedRenderer::new(lod_opts.clone()).render(&fr, &cameras[0], None);
        // Deterministic per stride: the same LOD frame twice.
        let again = FoveatedRenderer::new(lod_opts).render(&fr, &cameras[0], None);
        assert_eq!(coarse, again);
        // Decimating the peripheral levels must cut binned work.
        assert!(
            coarse.stats.total_intersections < full.stats.total_intersections,
            "lod intersections {} should undercut full {}",
            coarse.stats.total_intersections,
            full.stats.total_intersections
        );
        // The foveal level never decimates: deep-foveal pixels are exact.
        assert_eq!(coarse.image.pixel(64, 48), full.image.pixel(64, 48));
        // lod = 0 and 1 are both "off" — bit-identical to the full render.
        for off in [0usize, 1] {
            let opts = RenderOptions {
                lod: off,
                ..fr_opts()
            };
            let out = FoveatedRenderer::new(opts).render(&fr, &cameras[0], None);
            assert_eq!(out, full, "lod={off} must be the identity");
        }
    }

    #[test]
    fn merged_profile_counters_match_merged_stats() {
        use ms_render::StageKind;
        let (fr, cameras, _) = setup();
        let out = FoveatedRenderer::new(fr_opts()).render(&fr, &cameras[0], None);
        let p = &out.stats.profile;
        // The merged profile must agree with the merged headline stats —
        // the "renderer and simulator agree by construction" invariant.
        assert_eq!(
            p.items(StageKind::Project),
            out.stats.points_projected as u64
        );
        assert_eq!(p.items(StageKind::Bin), out.stats.total_intersections);
        assert_eq!(p.items(StageKind::Raster), out.stats.blend_steps);
    }
}
