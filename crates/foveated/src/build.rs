//! Building a foveated model from an L1 model (paper §4.3).
//!
//! "We first train the highest-quality L1 model ... We then prune a L1 model
//! to obtain a L2 model, which is pruned down to obtain a L3 model; this
//! continues until the desired level is achieved." Each level's
//! multi-versioned parameters (Opacity, SH-DC) are fine-tuned while shared
//! parameters — including scales — stay frozen ("during iterative
//! re-training we do not apply scale decay, because an ellipse scale is not
//! part of the multi-versioned parameters").

use crate::model::{FoveatedModel, LevelParams};
use ms_hvs::QualityRegions;
use ms_render::Image;
use ms_scene::{Camera, GaussianModel};
use ms_train::ce::{compute_ce, CeOptions};
use ms_train::finetune::{FineTuneConfig, FineTuner};
use ms_train::prune::prune_lowest;
use serde::{Deserialize, Serialize};

/// Configuration of the level-construction procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrBuildConfig {
    /// Eccentricity regions (one level per region).
    pub regions: QualityRegions,
    /// Point budget of each level as a fraction of the L1 point count.
    /// Must start at 1.0 and decrease. The defaults keep enough peripheral
    /// coverage for the multi-versioned fine-tuning to restore pooled
    /// feature statistics (the metamerism HVS-guided training targets);
    /// pruning much deeper opens holes no opacity retuning can fill.
    pub level_fractions: Vec<f32>,
    /// Per-level fine-tuning of the multi-versioned parameters (`None`
    /// skips tuning — the SMFR-like fast path used in unit tests).
    pub finetune: Option<FineTuneConfig>,
    /// CE options for the per-level pruning.
    pub ce: CeOptions,
}

impl Default for FrBuildConfig {
    fn default() -> Self {
        Self {
            regions: QualityRegions::paper_default(),
            level_fractions: vec![1.0, 0.65, 0.45, 0.30],
            finetune: Some(FineTuneConfig {
                iterations: 12,
                scale_decay: None,
                ..FineTuneConfig::default()
            }),
            ce: CeOptions::default(),
        }
    }
}

impl FrBuildConfig {
    /// Validate fractions against the regions.
    pub fn validate(&self) -> Result<(), String> {
        if self.level_fractions.len() != self.regions.level_count() {
            return Err(format!(
                "{} fractions for {} regions",
                self.level_fractions.len(),
                self.regions.level_count()
            ));
        }
        if (self.level_fractions[0] - 1.0).abs() > 1e-6 {
            return Err("level 0 fraction must be 1.0".into());
        }
        if !self.level_fractions.windows(2).all(|w| w[1] <= w[0]) {
            return Err("fractions must be non-increasing".into());
        }
        if self.level_fractions.iter().any(|&f| f <= 0.0) {
            return Err("fractions must be positive".into());
        }
        if let Some(ft) = &self.finetune {
            if ft.scale_decay.is_some() {
                return Err("scale decay is not allowed in level training (§4.3)".into());
            }
        }
        Ok(())
    }
}

/// Build a foveated model from a (pruned, scale-decayed) L1 model.
///
/// `references` are ground-truth images for `cameras` (typically dense-model
/// renders); they anchor the per-level fine-tuning.
///
/// # Panics
///
/// Panics on invalid configuration or camera/reference mismatch.
pub fn build_foveated(
    l1: &GaussianModel,
    cameras: &[Camera],
    references: &[Image],
    config: &FrBuildConfig,
) -> FoveatedModel {
    config.validate().expect("invalid FR build config");
    assert_eq!(cameras.len(), references.len());
    assert!(!cameras.is_empty());

    let levels = config.regions.level_count();
    let n = l1.len();
    let mut quality_bound = vec![0u8; n];
    let mut level_params: Vec<LevelParams> = Vec::with_capacity(levels - 1);

    // Working state: the current level's model and its base-index mapping.
    let mut current_model = l1.clone();
    let mut current_base_indices: Vec<usize> = (0..n).collect();

    for l in 1..levels {
        let target = ((n as f32) * config.level_fractions[l]).round().max(1.0) as usize;
        let remove = current_model.len().saturating_sub(target);

        // Prune by CE within the current level's model.
        let ce = compute_ce(&current_model, cameras, &config.ce);
        let (mut next_model, kept_local) = prune_lowest(&current_model, &ce, remove);
        let next_base_indices: Vec<usize> = kept_local
            .iter()
            .map(|&k| current_base_indices[k])
            .collect();

        // Survivors reach level l.
        for &bi in &next_base_indices {
            quality_bound[bi] = l as u8;
        }

        // Fine-tune the multi-versioned parameters of this level.
        if let Some(ft) = &config.finetune {
            let mut tuner = FineTuner::new(ft.clone(), next_model.len());
            tuner.run(&mut next_model, cameras, references);
        }

        // Record full-length parameter vectors for this level (entries for
        // non-member points default to the base values — they are never
        // read because the quality bound excludes those points).
        let mut opacity: Vec<f32> = l1.opacities.clone();
        let mut dc: Vec<[f32; 3]> = (0..n)
            .map(|i| {
                let sh = l1.sh(i);
                [sh[0], sh[1], sh[2]]
            })
            .collect();
        let stride = next_model.sh_stride();
        for (local, &bi) in next_base_indices.iter().enumerate() {
            opacity[bi] = next_model.opacities[local];
            let sh = &next_model.sh_coeffs[local * stride..local * stride + 3];
            dc[bi] = [sh[0], sh[1], sh[2]];
        }
        level_params.push(LevelParams { opacity, dc });

        current_model = next_model;
        current_base_indices = next_base_indices;
    }

    FoveatedModel::new(
        l1.clone(),
        quality_bound,
        level_params,
        config.regions.clone(),
    )
}

/// HVSQ-threshold-controlled level construction — the full §4.3 procedure.
///
/// Instead of fixed per-level point fractions, each level is pruned
/// iteratively (rate `prune_rate` per round) **while its own quality
/// region's HVSQ stays within `hvsq_slack` × the L1 model's HVSQ** against
/// the dense references — "we control for L_quality so that the HVSQ at
/// all quality levels is the same as that of L1 such that the human visual
/// quality is consistent across the entire visual field". After each prune
/// round the multi-versioned parameters are re-tuned; when the region HVSQ
/// exceeds the budget the previous round's point set is kept.
///
/// # Panics
///
/// Panics on camera/reference mismatch or an empty camera set.
pub fn build_foveated_hvsq(
    l1: &GaussianModel,
    cameras: &[Camera],
    references: &[Image],
    config: &FrBuildConfig,
    prune_rate: f32,
    hvsq_slack: f32,
    max_rounds: usize,
) -> FoveatedModel {
    use ms_hvs::{DisplayGeometry, EccentricityMap, Hvsq, HvsqOptions};
    use ms_render::Renderer;

    assert_eq!(cameras.len(), references.len());
    assert!(!cameras.is_empty());
    assert!(prune_rate > 0.0 && prune_rate < 1.0);

    let levels = config.regions.level_count();
    let n = l1.len();
    let boundaries = config.regions.boundaries_deg().to_vec();
    let renderer = Renderer::new(config.ce.render.clone());

    // HVSQ evaluators per camera (gaze at center, as during training).
    let evaluators: Vec<Hvsq> = cameras
        .iter()
        .map(|cam| {
            let display =
                DisplayGeometry::new(cam.width, cam.height, ms_math::rad_to_deg(cam.fovx()));
            Hvsq::with_options(
                EccentricityMap::centered(display),
                HvsqOptions {
                    stride: 2,
                    ..HvsqOptions::default()
                },
            )
        })
        .collect();
    let region_hvsq = |model: &GaussianModel, level: usize| -> f32 {
        let lo = boundaries[level];
        let hi = boundaries.get(level + 1).copied().unwrap_or(f32::INFINITY);
        let mut acc = 0.0f32;
        for ((cam, reference), hvsq) in cameras.iter().zip(references).zip(&evaluators) {
            let img = renderer.render(model, cam).image;
            acc += hvsq.evaluate(reference, &img, Some((lo, hi)));
        }
        acc / cameras.len() as f32
    };

    // The quality budget: L1's HVSQ in its own (foveal) region.
    let budget = region_hvsq(l1, 0).max(1e-9) * hvsq_slack.max(1.0);

    let mut quality_bound = vec![0u8; n];
    let mut level_params: Vec<LevelParams> = Vec::with_capacity(levels - 1);
    let mut current_model = l1.clone();
    let mut current_base_indices: Vec<usize> = (0..n).collect();

    for l in 1..levels {
        let mut accepted_model = current_model.clone();
        let mut accepted_indices = current_base_indices.clone();
        for _ in 0..max_rounds {
            if accepted_model.len() < 8 {
                break;
            }
            let ce = compute_ce(&accepted_model, cameras, &config.ce);
            let remove = ((accepted_model.len() as f32) * prune_rate).round() as usize;
            let (mut candidate, kept_local) = prune_lowest(&accepted_model, &ce, remove);
            if let Some(ft) = &config.finetune {
                let mut tuner = FineTuner::new(ft.clone(), candidate.len());
                tuner.run(&mut candidate, cameras, references);
            }
            if region_hvsq(&candidate, l) > budget {
                break; // quality breached: keep the previous round's set
            }
            accepted_indices = kept_local.iter().map(|&k| accepted_indices[k]).collect();
            accepted_model = candidate;
        }

        for &bi in &accepted_indices {
            quality_bound[bi] = l as u8;
        }
        let mut opacity: Vec<f32> = l1.opacities.clone();
        let mut dc: Vec<[f32; 3]> = (0..n)
            .map(|i| {
                let sh = l1.sh(i);
                [sh[0], sh[1], sh[2]]
            })
            .collect();
        let stride = accepted_model.sh_stride();
        for (local, &bi) in accepted_indices.iter().enumerate() {
            opacity[bi] = accepted_model.opacities[local];
            let sh = &accepted_model.sh_coeffs[local * stride..local * stride + 3];
            dc[bi] = [sh[0], sh[1], sh[2]];
        }
        level_params.push(LevelParams { opacity, dc });
        current_model = accepted_model;
        current_base_indices = accepted_indices;
    }

    FoveatedModel::new(
        l1.clone(),
        quality_bound,
        level_params,
        config.regions.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_render::Renderer;
    use ms_scene::dataset::TraceId;

    fn setup() -> (GaussianModel, Vec<Camera>, Vec<Image>) {
        let scene = TraceId::by_name("counter")
            .unwrap()
            .build_scene_with_scale(0.005);
        let cameras: Vec<Camera> = scene
            .train_cameras
            .iter()
            .step_by(12)
            .take(2)
            .map(|c| Camera {
                width: 80,
                height: 60,
                ..*c
            })
            .collect();
        let renderer = Renderer::default();
        let references: Vec<Image> = cameras
            .iter()
            .map(|c| renderer.render(&scene.model, c).image)
            .collect();
        (scene.model, cameras, references)
    }

    #[test]
    fn build_respects_level_fractions() {
        let (l1, cams, refs) = setup();
        let config = FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        };
        let fr = build_foveated(&l1, &cams, &refs, &config);
        let counts = fr.level_point_counts();
        assert_eq!(counts[0], l1.len());
        for (l, &frac) in config.level_fractions.iter().enumerate() {
            let expected = (l1.len() as f32 * frac).round() as usize;
            assert!(
                (counts[l] as i64 - expected as i64).unsigned_abs() <= 1,
                "level {l}: {} vs expected {expected}",
                counts[l]
            );
        }
    }

    #[test]
    fn subset_invariant_holds() {
        let (l1, cams, refs) = setup();
        let config = FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        };
        let fr = build_foveated(&l1, &cams, &refs, &config);
        for l in 0..fr.level_count() - 1 {
            let upper: std::collections::HashSet<u32> =
                fr.level_index_map(l).iter().copied().collect();
            for &i in fr.level_index_map(l + 1) {
                assert!(upper.contains(&i));
            }
        }
    }

    #[test]
    fn finetuning_improves_peripheral_level() {
        let (l1, cams, refs) = setup();
        let plain = build_foveated(
            &l1,
            &cams,
            &refs,
            &FrBuildConfig {
                finetune: None,
                ..FrBuildConfig::default()
            },
        );
        let tuned = build_foveated(
            &l1,
            &cams,
            &refs,
            &FrBuildConfig {
                finetune: Some(FineTuneConfig {
                    iterations: 25,
                    scale_decay: None,
                    ..FineTuneConfig::default()
                }),
                ..FrBuildConfig::default()
            },
        );
        // The L4 model of the tuned build should approximate the reference
        // better than the un-tuned subset (multi-versioning at work).
        let renderer = Renderer::default();
        let mse_plain = renderer
            .render(plain.level_model(3), &cams[0])
            .image
            .mse(&refs[0]);
        let mse_tuned = renderer
            .render(tuned.level_model(3), &cams[0])
            .image
            .mse(&refs[0]);
        assert!(
            mse_tuned < mse_plain,
            "multi-version tuning should help: {mse_plain} → {mse_tuned}"
        );
    }

    #[test]
    fn storage_overhead_is_small() {
        let (l1, cams, refs) = setup();
        let config = FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        };
        let fr = build_foveated(&l1, &cams, &refs, &config);
        // Paper: ~6% for 4 multi-versioned params out of ~60.
        let overhead = fr.storage_overhead();
        assert!(overhead > 0.0 && overhead < 0.15, "overhead {overhead}");
    }

    #[test]
    fn hvsq_guided_build_respects_quality_budget() {
        let (l1, cams, refs) = setup();
        let config = FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        };
        let fr = build_foveated_hvsq(&l1, &cams, &refs, &config, 0.2, 3.0, 4);
        let counts = fr.level_point_counts();
        // Levels shrink monotonically and the hierarchy stays valid.
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "{counts:?}");
        }
        assert_eq!(counts[0], l1.len());
        fr.validate().unwrap();
    }

    #[test]
    fn hvsq_guided_build_prunes_less_under_tight_budget() {
        let (l1, cams, refs) = setup();
        let config = FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        };
        let tight = build_foveated_hvsq(&l1, &cams, &refs, &config, 0.25, 1.0, 6);
        let loose = build_foveated_hvsq(&l1, &cams, &refs, &config, 0.25, 50.0, 6);
        // A looser quality budget admits deeper pruning at the last level.
        let t = tight.level_point_counts();
        let lo = loose.level_point_counts();
        assert!(lo[3] <= t[3], "loose {lo:?} vs tight {t:?}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = FrBuildConfig {
            level_fractions: vec![1.0, 0.5],
            ..FrBuildConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FrBuildConfig {
            level_fractions: vec![0.9, 0.5, 0.3, 0.1],
            ..FrBuildConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FrBuildConfig {
            level_fractions: vec![1.0, 0.5, 0.6, 0.1],
            ..FrBuildConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = FrBuildConfig::default();
        if let Some(ft) = &mut c.finetune {
            ft.scale_decay = Some(ms_train::scale_decay::ScaleDecayOptions::default());
        }
        assert!(c.validate().is_err());
    }
}
