//! Linear-algebra and numerical primitives for the MetaSapiens PBNR stack.
//!
//! This crate provides the small, dependency-free math substrate every other
//! crate in the workspace builds on:
//!
//! * [`Vec2`], [`Vec3`], [`Vec4`] — column vectors with the usual operators.
//! * [`Mat3`], [`Mat4`] — row-major small matrices with the transforms needed
//!   by a splatting renderer (look-at, perspective, covariance conjugation).
//! * [`Quat`] — unit quaternions for Gaussian orientations and pose slerp.
//! * [`sh`] — real spherical-harmonics basis (degrees 0–3) used for
//!   view-dependent Gaussian color, matching the 3DGS convention.
//! * [`Conic2`] / [`Cov2`] — the 2-D projected covariance machinery used by
//!   EWA splatting (invert covariance, eigen extents, point-inside tests).
//! * [`simd`] — portable 4-lane `f32`/`u32` vectors (`[T; 4]` wrappers with
//!   per-lane scalar semantics) used by the batched rasterization kernels.
//! * [`stats`] — summary statistics (mean/std/percentiles/boxplots) used by
//!   the evaluation harness to reproduce the paper's boxplot figures.
//!
//! # Example
//!
//! ```
//! use ms_math::{Vec3, Mat3, Quat};
//!
//! let q = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), std::f32::consts::FRAC_PI_2);
//! let r: Mat3 = q.to_mat3();
//! let v = r * Vec3::new(1.0, 0.0, 0.0);
//! assert!((v.z - -1.0).abs() < 1e-5);
//! ```

#![deny(missing_docs)]

mod aabb;
mod conic;
mod mat;
mod quat;
pub mod sh;
pub mod simd;
pub mod stats;
mod vec;

pub use aabb::{Aabb2, Aabb3, TileRect};
pub use conic::{Conic2, Cov2};
pub use mat::{Mat3, Mat4};
pub use quat::Quat;
pub use vec::{Vec2, Vec3, Vec4};

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f32) -> f32 {
    deg * std::f32::consts::PI / 180.0
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f32) -> f32 {
    rad * 180.0 / std::f32::consts::PI
}

/// Clamp a float to `[lo, hi]`.
#[inline]
pub fn clampf(x: f32, lo: f32, hi: f32) -> f32 {
    x.max(lo).min(hi)
}

/// Linear interpolation between `a` and `b` by `t` (unclamped).
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Smoothstep interpolation (clamped, C¹-continuous), used when blending
/// adjacent foveation quality levels.
#[inline]
pub fn smoothstep(edge0: f32, edge1: f32, x: f32) -> f32 {
    if edge0 >= edge1 {
        return if x < edge0 { 0.0 } else { 1.0 };
    }
    let t = clampf((x - edge0) / (edge1 - edge0), 0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Sigmoid, used to map unconstrained opacity logits to `(0, 1)` exactly as
/// 3DGS does during training.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Inverse sigmoid (logit). Input is clamped away from {0, 1} for stability.
#[inline]
pub fn inverse_sigmoid(y: f32) -> f32 {
    let y = clampf(y, 1e-6, 1.0 - 1e-6);
    (y / (1.0 - y)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deg_rad_roundtrip() {
        for d in [-180.0f32, -33.0, 0.0, 18.0, 27.0, 90.0, 360.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-4);
        }
    }

    #[test]
    fn smoothstep_endpoints_and_midpoint() {
        assert_eq!(smoothstep(0.0, 1.0, -1.0), 0.0);
        assert_eq!(smoothstep(0.0, 1.0, 2.0), 1.0);
        assert!((smoothstep(0.0, 1.0, 0.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn smoothstep_degenerate_edge_is_step() {
        assert_eq!(smoothstep(1.0, 1.0, 0.5), 0.0);
        assert_eq!(smoothstep(1.0, 1.0, 1.5), 1.0);
    }

    #[test]
    fn sigmoid_logit_roundtrip() {
        for y in [0.01f32, 0.25, 0.5, 0.9, 0.999] {
            assert!((sigmoid(inverse_sigmoid(y)) - y).abs() < 1e-4);
        }
    }

    #[test]
    fn lerp_basics() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }
}
