//! Unit quaternions for Gaussian orientations and pose interpolation.

use crate::{Mat3, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// Quaternion stored as `(w, x, y, z)`, matching the 3DGS checkpoint layout.
///
/// Gaussians store their ellipsoid orientation as a (normalized) quaternion;
/// camera trajectories use [`Quat::slerp`] for smooth pose interpolation when
/// densifying the sparse dataset poses into 90 FPS traces (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// X imaginary part.
    pub x: f32,
    /// Y imaginary part.
    pub y: f32,
    /// Z imaginary part.
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Self::identity()
    }
}

impl Quat {
    /// The identity rotation.
    #[inline]
    pub const fn identity() -> Self {
        Self {
            w: 1.0,
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
    }

    /// Construct from components (w, x, y, z). Not normalized automatically.
    #[inline]
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Self { w, x, y, z }
    }

    /// Rotation of `angle` radians about (normalized) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let axis = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Self::new(c, axis.x * s, axis.y * s, axis.z * s)
    }

    /// Squared norm.
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Norm.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_squared().sqrt()
    }

    /// Normalized copy. Returns identity for a (near-)zero quaternion.
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n <= f32::EPSILON {
            Self::identity()
        } else {
            Self::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// Conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Quaternion dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f32 {
        self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Rotate a vector by this (unit) quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q v q*; expanded to avoid constructing intermediates.
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Convert to a rotation matrix. The quaternion is normalized first, so
    /// raw (trainable, unnormalized) quaternion parameters are accepted.
    pub fn to_mat3(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        )
    }

    /// Spherical linear interpolation from `self` to `rhs` by `t ∈ [0, 1]`.
    ///
    /// Takes the shorter arc and falls back to normalized lerp when the
    /// endpoints are nearly parallel.
    pub fn slerp(self, rhs: Self, t: f32) -> Self {
        let a = self.normalized();
        let mut b = rhs.normalized();
        let mut cos_theta = a.dot(b);
        if cos_theta < 0.0 {
            // Take the short way around.
            b = Self::new(-b.w, -b.x, -b.y, -b.z);
            cos_theta = -cos_theta;
        }
        if cos_theta > 0.9995 {
            // Nearly parallel: nlerp.
            return Self::new(
                crate::lerp(a.w, b.w, t),
                crate::lerp(a.x, b.x, t),
                crate::lerp(a.y, b.y, t),
                crate::lerp(a.z, b.z, t),
            )
            .normalized();
        }
        let theta = cos_theta.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let wa = ((1.0 - t) * theta).sin() / sin_theta;
        let wb = (t * theta).sin() / sin_theta;
        Self::new(
            wa * a.w + wb * b.w,
            wa * a.x + wb * b.x,
            wa * a.y + wb * b.y,
            wa * a.z + wb * b.z,
        )
    }
}

impl Mul for Quat {
    type Output = Self;
    fn mul(self, r: Self) -> Self {
        Self::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert!(Quat::identity().rotate(v).distance(v) < 1e-6);
    }

    #[test]
    fn rotate_90_about_z() {
        let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), FRAC_PI_2);
        let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!(v.distance(Vec3::new(0.0, 1.0, 0.0)) < 1e-5);
    }

    #[test]
    fn mat3_agrees_with_rotate() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.3), 1.1);
        let m = q.to_mat3();
        let v = Vec3::new(0.2, -0.8, 1.5);
        assert!((m * v).distance(q.rotate(v)) < 1e-5);
    }

    #[test]
    fn composition_matches_matrix_product() {
        let a = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.7);
        let b = Quat::from_axis_angle(Vec3::new(1.0, 0.0, 0.0), -0.4);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let via_quat = (a * b).rotate(v);
        let via_mats = a.to_mat3() * (b.to_mat3() * v);
        assert!(via_quat.distance(via_mats) < 1e-4);
    }

    #[test]
    fn slerp_endpoints() {
        let a = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.3);
        let b = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 2.1);
        assert!(a.slerp(b, 0.0).dot(a).abs() > 0.9999);
        assert!(a.slerp(b, 1.0).dot(b).abs() > 0.9999);
    }

    #[test]
    fn slerp_halfway_bisects_angle() {
        let a = Quat::identity();
        let b = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), PI / 2.0);
        let mid = a.slerp(b, 0.5);
        let expect = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), PI / 4.0);
        assert!(mid.dot(expect).abs() > 0.9999);
    }

    #[test]
    fn zero_quat_normalizes_to_identity() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized(), Quat::identity());
    }

    proptest! {
        #[test]
        fn rotation_preserves_length(
            axis in proptest::array::uniform3(-1.0f32..1.0),
            angle in -PI..PI,
            v in proptest::array::uniform3(-10.0f32..10.0),
        ) {
            let axis = Vec3::from(axis);
            prop_assume!(axis.length() > 1e-3);
            let q = Quat::from_axis_angle(axis, angle);
            let v = Vec3::from(v);
            prop_assert!((q.rotate(v).length() - v.length()).abs() < 1e-3);
        }

        #[test]
        fn to_mat3_is_orthonormal(
            axis in proptest::array::uniform3(-1.0f32..1.0),
            angle in -PI..PI,
        ) {
            let axis = Vec3::from(axis);
            prop_assume!(axis.length() > 1e-3);
            let m = Quat::from_axis_angle(axis, angle).to_mat3();
            let should_be_id = m * m.transposed();
            for i in 0..3 {
                for j in 0..3 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((should_be_id.m[i][j] - expect).abs() < 1e-4);
                }
            }
            prop_assert!((m.determinant() - 1.0).abs() < 1e-3);
        }

        #[test]
        fn slerp_output_is_unit(
            angle_a in -PI..PI,
            angle_b in -PI..PI,
            t in 0.0f32..1.0,
        ) {
            let a = Quat::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), angle_a);
            let b = Quat::from_axis_angle(Vec3::new(-0.5, 0.1, 0.9), angle_b);
            prop_assert!((a.slerp(b, t).norm() - 1.0).abs() < 1e-4);
        }
    }
}
