//! Small column vectors (`Vec2`, `Vec3`, `Vec4`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

macro_rules! impl_vec_common {
    ($name:ident, $n:expr, [$($f:ident),+]) => {
        impl $name {
            /// Vector with all components set to `v`.
            #[inline]
            pub const fn splat(v: f32) -> Self {
                Self { $($f: v),+ }
            }

            /// Zero vector.
            #[inline]
            pub const fn zero() -> Self {
                Self::splat(0.0)
            }

            /// Vector of ones.
            #[inline]
            pub const fn one() -> Self {
                Self::splat(1.0)
            }

            /// Dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> f32 {
                0.0 $(+ self.$f * rhs.$f)+
            }

            /// Squared Euclidean length.
            #[inline]
            pub fn length_squared(self) -> f32 {
                self.dot(self)
            }

            /// Euclidean length.
            #[inline]
            pub fn length(self) -> f32 {
                self.length_squared().sqrt()
            }

            /// Distance to `rhs`.
            #[inline]
            pub fn distance(self, rhs: Self) -> f32 {
                (self - rhs).length()
            }

            /// Unit-length copy. Returns the zero vector when the length is
            /// (near) zero rather than producing NaNs.
            #[inline]
            pub fn normalized(self) -> Self {
                let len = self.length();
                if len <= f32::EPSILON {
                    Self::zero()
                } else {
                    self / len
                }
            }

            /// Component-wise product.
            #[inline]
            pub fn hadamard(self, rhs: Self) -> Self {
                Self { $($f: self.$f * rhs.$f),+ }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self { $($f: self.$f.min(rhs.$f)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self { $($f: self.$f.max(rhs.$f)),+ }
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { $($f: self.$f.abs()),+ }
            }

            /// Largest component.
            #[inline]
            pub fn max_component(self) -> f32 {
                let mut m = f32::NEG_INFINITY;
                $( m = m.max(self.$f); )+
                m
            }

            /// Smallest component.
            #[inline]
            pub fn min_component(self) -> f32 {
                let mut m = f32::INFINITY;
                $( m = m.min(self.$f); )+
                m
            }

            /// Linear interpolation toward `rhs` by `t`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self + (rhs - self) * t
            }

            /// True when every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$f.is_finite())+
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }

        impl Mul<f32> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                Self { $($f: self.$f * rhs),+ }
            }
        }

        impl Mul<$name> for f32 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl Div<f32> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f32) -> Self {
                Self { $($f: self.$f / rhs),+ }
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl MulAssign<f32> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) {
                *self = *self * rhs;
            }
        }

        impl DivAssign<f32> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f32) {
                *self = *self / rhs;
            }
        }

        impl Index<usize> for $name {
            type Output = f32;
            #[inline]
            fn index(&self, i: usize) -> &f32 {
                let arr: &[f32; $n] = unsafe { &*(self as *const Self as *const [f32; $n]) };
                &arr[i]
            }
        }

        impl IndexMut<usize> for $name {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut f32 {
                let arr: &mut [f32; $n] = unsafe { &mut *(self as *mut Self as *mut [f32; $n]) };
                &mut arr[i]
            }
        }
    };
}

/// 2-D vector (image-plane positions, tile coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// 3-D vector (world/view positions, scales, RGB colors).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// 4-D vector (homogeneous coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl_vec_common!(Vec2, 2, [x, y]);
impl_vec_common!(Vec3, 3, [x, y, z]);
impl_vec_common!(Vec4, 4, [x, y, z, w]);

impl Vec2 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Perpendicular (rotated 90° counter-clockwise).
    #[inline]
    pub fn perp(self) -> Self {
        Self::new(-self.y, self.x)
    }

    /// 2-D cross product (z of the 3-D cross of the embedded vectors).
    #[inline]
    pub fn cross(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }
}

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Drop to the XY plane.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Extend with a `w` component.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }
}

impl Vec4 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Truncate to XYZ.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division (`xyz / w`).
    ///
    /// # Panics
    ///
    /// Does not panic; division by a zero `w` yields non-finite components the
    /// caller is expected to cull (see `Vec3::is_finite`).
    #[inline]
    pub fn project(self) -> Vec3 {
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

impl From<[f32; 2]> for Vec2 {
    fn from(a: [f32; 2]) -> Self {
        Self::new(a[0], a[1])
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<[f32; 4]> for Vec4 {
    fn from(a: [f32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Vec2> for [f32; 2] {
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl From<Vec4> for [f32; 4] {
    fn from(v: Vec4) -> Self {
        [v.x, v.y, v.z, v.w]
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-4);
        assert!(c.dot(b).abs() < 1e-4);
    }

    #[test]
    fn normalize_zero_is_zero() {
        assert_eq!(Vec3::zero().normalized(), Vec3::zero());
    }

    #[test]
    fn project_divides_by_w() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing_matches_fields() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        let mut w = v;
        w[1] = 9.0;
        assert_eq!(w.y, 9.0);
    }

    #[test]
    fn perp_rotates_ccw() {
        let v = Vec2::new(1.0, 0.0);
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
    }

    fn finite_f32() -> impl Strategy<Value = f32> {
        -1.0e3f32..1.0e3f32
    }

    proptest! {
        #[test]
        fn dot_commutes(ax in finite_f32(), ay in finite_f32(), az in finite_f32(),
                        bx in finite_f32(), by in finite_f32(), bz in finite_f32()) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a.dot(b) - b.dot(a)).abs() <= 1e-2);
        }

        #[test]
        fn normalized_has_unit_length(ax in finite_f32(), ay in finite_f32(), az in finite_f32()) {
            let a = Vec3::new(ax, ay, az);
            prop_assume!(a.length() > 1e-3);
            prop_assert!((a.normalized().length() - 1.0).abs() < 1e-4);
        }

        #[test]
        fn triangle_inequality(ax in finite_f32(), ay in finite_f32(), az in finite_f32(),
                               bx in finite_f32(), by in finite_f32(), bz in finite_f32()) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a + b).length() <= a.length() + b.length() + 1e-2);
        }

        #[test]
        fn lerp_endpoints(ax in finite_f32(), bx in finite_f32()) {
            let a = Vec2::new(ax, 0.0);
            let b = Vec2::new(bx, 1.0);
            prop_assert!((a.lerp(b, 0.0) - a).length() < 1e-4);
            prop_assert!((a.lerp(b, 1.0) - b).length() < 1e-3);
        }
    }
}
