//! Axis-aligned bounding boxes and integer tile rectangles.

use crate::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// 2-D axis-aligned bounding box (inclusive min, exclusive max by convention
/// of the callers that rasterize it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb2 {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

impl Aabb2 {
    /// Construct from corners (no ordering check; see [`Aabb2::is_valid`]).
    pub const fn new(min: Vec2, max: Vec2) -> Self {
        Self { min, max }
    }

    /// A box centered at `c` with half-extent `r` in both axes.
    pub fn from_center_radius(c: Vec2, r: f32) -> Self {
        Self::new(Vec2::new(c.x - r, c.y - r), Vec2::new(c.x + r, c.y + r))
    }

    /// True when `min <= max` component-wise.
    pub fn is_valid(&self) -> bool {
        self.min.x <= self.max.x && self.min.y <= self.max.y
    }

    /// Box width and height.
    pub fn size(&self) -> Vec2 {
        self.max - self.min
    }

    /// Intersection with another box, or `None` when disjoint.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let out = Self::new(self.min.max(other.min), self.max.min(other.max));
        out.is_valid().then_some(out)
    }

    /// True when `p` lies inside (min-inclusive, max-exclusive).
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }
}

/// 3-D axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb3 {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb3 {
    /// Construct from corners.
    pub const fn new(min: Vec3, max: Vec3) -> Self {
        Self { min, max }
    }

    /// The smallest box containing every point of the iterator, or `None`
    /// when the iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = Self::new(first, first);
        for p in it {
            bb.min = bb.min.min(p);
            bb.max = bb.max.max(p);
        }
        Some(bb)
    }

    /// Center of the box.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Width/height/depth.
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the box diagonal; a common scene-scale normalizer.
    pub fn diagonal(&self) -> f32 {
        self.size().length()
    }
}

/// Inclusive integer rectangle of tile coordinates `[x0, x1] × [y0, y1]`.
///
/// Produced by the projection stage for every splat: the set of pixel tiles
/// whose extent the splat's bounding circle overlaps. The number of tiles in
/// this rectangle is exactly the splat's *Comp* cost in the paper's
/// Computational-Efficiency metric (Eqn. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileRect {
    /// First tile column.
    pub x0: u32,
    /// First tile row.
    pub y0: u32,
    /// Last tile column (inclusive).
    pub x1: u32,
    /// Last tile row (inclusive).
    pub y1: u32,
}

impl TileRect {
    /// Compute the tile rectangle covered by a circle of radius `radius`
    /// centered at `center` (both in pixels) on a grid of `tiles_x × tiles_y`
    /// tiles of `tile_size` pixels. Returns `None` when the circle misses the
    /// image entirely.
    pub fn from_circle(
        center: Vec2,
        radius: f32,
        tile_size: u32,
        tiles_x: u32,
        tiles_y: u32,
    ) -> Option<Self> {
        if tiles_x == 0 || tiles_y == 0 || radius < 0.0 {
            return None;
        }
        let ts = tile_size as f32;
        let min_x = ((center.x - radius) / ts).floor();
        let min_y = ((center.y - radius) / ts).floor();
        let max_x = ((center.x + radius) / ts).floor();
        let max_y = ((center.y + radius) / ts).floor();
        if max_x < 0.0 || max_y < 0.0 || min_x >= tiles_x as f32 || min_y >= tiles_y as f32 {
            return None;
        }
        Some(Self {
            x0: min_x.max(0.0) as u32,
            y0: min_y.max(0.0) as u32,
            x1: (max_x.min((tiles_x - 1) as f32)).max(0.0) as u32,
            y1: (max_y.min((tiles_y - 1) as f32)).max(0.0) as u32,
        })
    }

    /// Number of tiles in the rectangle.
    pub fn tile_count(&self) -> u32 {
        (self.x1 - self.x0 + 1) * (self.y1 - self.y0 + 1)
    }

    /// Iterate over `(tx, ty)` tile coordinates in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (x0, x1) = (self.x0, self.x1);
        (self.y0..=self.y1).flat_map(move |ty| (x0..=x1).map(move |tx| (tx, ty)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn aabb2_intersection_basic() {
        let a = Aabb2::new(Vec2::new(0.0, 0.0), Vec2::new(4.0, 4.0));
        let b = Aabb2::new(Vec2::new(2.0, 2.0), Vec2::new(6.0, 6.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.min, Vec2::new(2.0, 2.0));
        assert_eq!(i.max, Vec2::new(4.0, 4.0));
    }

    #[test]
    fn aabb2_disjoint_is_none() {
        let a = Aabb2::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0));
        let b = Aabb2::new(Vec2::new(2.0, 2.0), Vec2::new(3.0, 3.0));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn aabb3_from_points() {
        let bb = Aabb3::from_points([
            Vec3::new(1.0, 5.0, -1.0),
            Vec3::new(-2.0, 0.0, 3.0),
            Vec3::new(0.0, 1.0, 0.0),
        ])
        .unwrap();
        assert_eq!(bb.min, Vec3::new(-2.0, 0.0, -1.0));
        assert_eq!(bb.max, Vec3::new(1.0, 5.0, 3.0));
        assert!(Aabb3::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn tile_rect_small_circle_one_tile() {
        let r = TileRect::from_circle(Vec2::new(8.0, 8.0), 2.0, 16, 10, 10).unwrap();
        assert_eq!(r.tile_count(), 1);
        assert_eq!((r.x0, r.y0), (0, 0));
    }

    #[test]
    fn tile_rect_spanning_circle() {
        // Circle at a tile corner with radius > 0 touches 4 tiles.
        let r = TileRect::from_circle(Vec2::new(16.0, 16.0), 1.0, 16, 10, 10).unwrap();
        assert_eq!(r.tile_count(), 4);
    }

    #[test]
    fn tile_rect_off_screen_is_none() {
        assert!(TileRect::from_circle(Vec2::new(-100.0, -100.0), 5.0, 16, 10, 10).is_none());
        assert!(TileRect::from_circle(Vec2::new(1000.0, 8.0), 5.0, 16, 10, 10).is_none());
    }

    #[test]
    fn tile_rect_clamps_to_grid() {
        let r = TileRect::from_circle(Vec2::new(0.0, 0.0), 1e6, 16, 4, 3).unwrap();
        assert_eq!(r.tile_count(), 12);
    }

    #[test]
    fn tile_rect_iter_matches_count() {
        let r = TileRect {
            x0: 1,
            y0: 2,
            x1: 3,
            y1: 4,
        };
        assert_eq!(r.iter().count() as u32, r.tile_count());
    }

    proptest! {
        #[test]
        fn circle_tiles_cover_center(
            cx in 0.0f32..160.0, cy in 0.0f32..160.0, radius in 0.1f32..50.0,
        ) {
            let r = TileRect::from_circle(Vec2::new(cx, cy), radius, 16, 10, 10).unwrap();
            let tx = (cx / 16.0).floor().clamp(0.0, 9.0) as u32;
            let ty = (cy / 16.0).floor().clamp(0.0, 9.0) as u32;
            prop_assert!(r.x0 <= tx && tx <= r.x1);
            prop_assert!(r.y0 <= ty && ty <= r.y1);
        }

        #[test]
        fn bigger_radius_never_fewer_tiles(
            cx in 0.0f32..160.0, cy in 0.0f32..160.0, radius in 0.1f32..40.0,
        ) {
            let small = TileRect::from_circle(Vec2::new(cx, cy), radius, 16, 10, 10).unwrap();
            let big = TileRect::from_circle(Vec2::new(cx, cy), radius * 2.0, 16, 10, 10).unwrap();
            prop_assert!(big.tile_count() >= small.tile_count());
        }
    }
}
