//! 2-D projected-covariance (conic) machinery for EWA splatting.
//!
//! After a 3-D Gaussian is projected to the image plane its footprint is a
//! 2-D Gaussian with covariance [`Cov2`]. Rasterization evaluates the Gaussian
//! through the inverse covariance — the [`Conic2`] — and bounds its extent by
//! a few standard deviations to find the pixel tiles it intersects.

use crate::Vec2;
use serde::{Deserialize, Serialize};

/// Symmetric 2×2 covariance matrix `[[a, b], [b, c]]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cov2 {
    /// Variance along x.
    pub a: f32,
    /// Covariance term.
    pub b: f32,
    /// Variance along y.
    pub c: f32,
}

impl Cov2 {
    /// Construct from the upper-triangular entries.
    #[inline]
    pub const fn new(a: f32, b: f32, c: f32) -> Self {
        Self { a, b, c }
    }

    /// Isotropic covariance with variance `v`.
    #[inline]
    pub const fn isotropic(v: f32) -> Self {
        Self { a: v, b: 0.0, c: v }
    }

    /// Determinant.
    #[inline]
    pub fn determinant(self) -> f32 {
        self.a * self.c - self.b * self.b
    }

    /// Add `v` to both diagonal entries. 3DGS dilates the screen-space
    /// covariance by 0.3 px² as a low-pass filter; Mip-Splatting makes this
    /// scale-aware.
    #[inline]
    pub fn dilated(self, v: f32) -> Self {
        Self::new(self.a + v, self.b, self.c + v)
    }

    /// Eigenvalues, largest first. For a symmetric 2×2 matrix both are real.
    pub fn eigenvalues(self) -> (f32, f32) {
        let mid = 0.5 * (self.a + self.c);
        let disc = (0.25 * (self.a - self.c).powi(2) + self.b * self.b)
            .max(0.0)
            .sqrt();
        (mid + disc, mid - disc)
    }

    /// Radius (in pixels) that covers `k` standard deviations of the larger
    /// principal axis. 3DGS uses `k = 3`.
    pub fn bounding_radius(self, k: f32) -> f32 {
        let (l1, _) = self.eigenvalues();
        k * l1.max(0.0).sqrt()
    }

    /// Invert to conic form. Returns `None` for (near-)degenerate footprints,
    /// which the projection stage culls.
    pub fn to_conic(self) -> Option<Conic2> {
        let det = self.determinant();
        if det <= 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        Some(Conic2 {
            a: self.c * inv_det,
            b: -self.b * inv_det,
            c: self.a * inv_det,
        })
    }
}

/// Inverse 2-D covariance `[[a, b], [b, c]]` (a.k.a. the conic matrix).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Conic2 {
    /// Inverse-covariance xx entry.
    pub a: f32,
    /// Inverse-covariance xy entry.
    pub b: f32,
    /// Inverse-covariance yy entry.
    pub c: f32,
}

impl Conic2 {
    /// Squared Mahalanobis distance of offset `d` from the Gaussian center:
    /// `dᵀ Σ⁻¹ d`.
    #[inline]
    pub fn mahalanobis_sq(self, d: Vec2) -> f32 {
        self.a * d.x * d.x + 2.0 * self.b * d.x * d.y + self.c * d.y * d.y
    }

    /// Gaussian falloff `exp(-½ dᵀ Σ⁻¹ d)` of offset `d`.
    #[inline]
    pub fn gaussian_weight(self, d: Vec2) -> f32 {
        let power = -0.5 * self.mahalanobis_sq(d);
        if power > 0.0 {
            // Numerical guard: a positive power means d ≈ 0 with rounding.
            1.0
        } else {
            power.exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn isotropic_eigenvalues_are_equal() {
        let (l1, l2) = Cov2::isotropic(4.0).eigenvalues();
        assert!((l1 - 4.0).abs() < 1e-6);
        assert!((l2 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn bounding_radius_isotropic() {
        // variance 4 → σ = 2 → 3σ = 6.
        assert!((Cov2::isotropic(4.0).bounding_radius(3.0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn conic_inverts_covariance() {
        let cov = Cov2::new(5.0, 1.0, 2.0);
        let conic = cov.to_conic().unwrap();
        // Σ Σ⁻¹ = I
        let p00 = cov.a * conic.a + cov.b * conic.b;
        let p01 = cov.a * conic.b + cov.b * conic.c;
        let p11 = cov.b * conic.b + cov.c * conic.c;
        assert!((p00 - 1.0).abs() < 1e-5);
        assert!(p01.abs() < 1e-5);
        assert!((p11 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn degenerate_covariance_yields_none() {
        assert!(Cov2::new(1.0, 1.0, 1.0).to_conic().is_none());
        assert!(Cov2::new(0.0, 0.0, 0.0).to_conic().is_none());
    }

    #[test]
    fn gaussian_weight_peaks_at_center() {
        let conic = Cov2::new(2.0, 0.3, 1.0).to_conic().unwrap();
        assert!((conic.gaussian_weight(Vec2::zero()) - 1.0).abs() < 1e-6);
        assert!(conic.gaussian_weight(Vec2::new(1.0, 1.0)) < 1.0);
    }

    #[test]
    fn dilation_grows_radius() {
        let c = Cov2::new(1.0, 0.2, 0.5);
        assert!(c.dilated(0.3).bounding_radius(3.0) > c.bounding_radius(3.0));
    }

    proptest! {
        #[test]
        fn eigenvalues_bracket_trace(a in 0.1f32..20.0, b in -2.0f32..2.0, c in 0.1f32..20.0) {
            prop_assume!(a * c - b * b > 1e-3);
            let cov = Cov2::new(a, b, c);
            let (l1, l2) = cov.eigenvalues();
            prop_assert!(l1 >= l2);
            prop_assert!(((l1 + l2) - (a + c)).abs() < 1e-3);
            prop_assert!((l1 * l2 - cov.determinant()).abs() / cov.determinant().max(1.0) < 1e-2);
        }

        #[test]
        fn mahalanobis_is_nonnegative_for_pd(
            a in 0.1f32..20.0, b in -2.0f32..2.0, c in 0.1f32..20.0,
            dx in -50.0f32..50.0, dy in -50.0f32..50.0,
        ) {
            prop_assume!(a * c - b * b > 1e-3);
            let conic = Cov2::new(a, b, c).to_conic().unwrap();
            prop_assert!(conic.mahalanobis_sq(Vec2::new(dx, dy)) >= -1e-3);
        }

        #[test]
        fn weight_monotone_along_ray(
            a in 0.1f32..20.0, c in 0.1f32..20.0,
            dx in -5.0f32..5.0, dy in -5.0f32..5.0,
        ) {
            let conic = Cov2::new(a, 0.0, c).to_conic().unwrap();
            let d = Vec2::new(dx, dy);
            prop_assert!(conic.gaussian_weight(d) >= conic.gaussian_weight(d * 2.0) - 1e-6);
        }
    }
}
