//! Real spherical harmonics (SH) up to degree 3, 3DGS convention.
//!
//! Gaussian colors are view-dependent: each point stores per-channel SH
//! coefficients, and the rendered color for a view direction `d` is
//! `c = Σₗₘ SHₗₘ · Yₗₘ(d)` pushed through `+0.5` and a clamp, exactly as in
//! the reference 3DGS implementation. Degree 0 (the "DC" component) carries
//! the base color; this is the component MetaSapiens selectively
//! multi-versions across foveation levels (paper §4.2).

use crate::Vec3;

/// Number of SH coefficients for a given degree (`(deg+1)²`).
pub const fn coeff_count(degree: usize) -> usize {
    (degree + 1) * (degree + 1)
}

/// Maximum SH degree supported (matches 3DGS).
pub const MAX_DEGREE: usize = 3;

/// Total coefficients at [`MAX_DEGREE`].
pub const MAX_COEFFS: usize = coeff_count(MAX_DEGREE); // 16

// Real SH basis constants (Condon–Shortley phase folded in, 3DGS values).
const SH_C0: f32 = 0.282_094_79;
const SH_C1: f32 = 0.488_602_51;
const SH_C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_2,
];
const SH_C3: [f32; 7] = [
    -0.590_043_6,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_33,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_6,
];

/// Evaluate the SH basis functions for unit direction `d` into `out`.
///
/// Only the first `coeff_count(degree)` entries of `out` are written.
///
/// # Panics
///
/// Panics if `degree > MAX_DEGREE` or `out` is shorter than
/// `coeff_count(degree)`.
pub fn eval_basis(degree: usize, d: Vec3, out: &mut [f32]) {
    assert!(degree <= MAX_DEGREE, "SH degree {degree} > {MAX_DEGREE}");
    let n = coeff_count(degree);
    assert!(
        out.len() >= n,
        "basis buffer too short: {} < {n}",
        out.len()
    );

    out[0] = SH_C0;
    if degree == 0 {
        return;
    }
    let (x, y, z) = (d.x, d.y, d.z);
    out[1] = -SH_C1 * y;
    out[2] = SH_C1 * z;
    out[3] = -SH_C1 * x;
    if degree == 1 {
        return;
    }
    let (xx, yy, zz) = (x * x, y * y, z * z);
    let (xy, yz, xz) = (x * y, y * z, x * z);
    out[4] = SH_C2[0] * xy;
    out[5] = SH_C2[1] * yz;
    out[6] = SH_C2[2] * (2.0 * zz - xx - yy);
    out[7] = SH_C2[3] * xz;
    out[8] = SH_C2[4] * (xx - yy);
    if degree == 2 {
        return;
    }
    out[9] = SH_C3[0] * y * (3.0 * xx - yy);
    out[10] = SH_C3[1] * xy * z;
    out[11] = SH_C3[2] * y * (4.0 * zz - xx - yy);
    out[12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy);
    out[13] = SH_C3[4] * x * (4.0 * zz - xx - yy);
    out[14] = SH_C3[5] * z * (xx - yy);
    out[15] = SH_C3[6] * x * (xx - yy - 2.0 * zz);
}

/// Evaluate an SH color for view direction `view_dir` (from camera to point,
/// need not be normalized) given per-channel coefficients.
///
/// `coeffs` is laid out `[c0_r, c0_g, c0_b, c1_r, c1_g, c1_b, ...]` with
/// `coeff_count(degree)` triplets. The result follows the 3DGS convention of
/// adding 0.5 and clamping at zero (no upper clamp — HDR-ish highlights are
/// clamped at the image stage).
///
/// # Panics
///
/// Panics if `coeffs.len() < 3 * coeff_count(degree)` or the degree exceeds
/// [`MAX_DEGREE`].
pub fn eval_color(degree: usize, view_dir: Vec3, coeffs: &[f32]) -> Vec3 {
    let n = coeff_count(degree);
    assert!(
        coeffs.len() >= 3 * n,
        "need {} SH coefficients, got {}",
        3 * n,
        coeffs.len()
    );
    let d = view_dir.normalized();
    let mut basis = [0.0f32; MAX_COEFFS];
    eval_basis(degree, d, &mut basis);
    let mut c = Vec3::zero();
    for (i, &b) in basis.iter().take(n).enumerate() {
        c.x += b * coeffs[3 * i];
        c.y += b * coeffs[3 * i + 1];
        c.z += b * coeffs[3 * i + 2];
    }
    (c + Vec3::splat(0.5)).max(Vec3::zero())
}

/// Convert a linear RGB color in `[0, 1]` to the DC coefficient triplet that
/// reproduces it under [`eval_color`] with all higher-order terms zero.
pub fn rgb_to_dc(rgb: Vec3) -> [f32; 3] {
    let v = (rgb - Vec3::splat(0.5)) / SH_C0;
    [v.x, v.y, v.z]
}

/// Inverse of [`rgb_to_dc`]: the color produced by a DC-only expansion.
pub fn dc_to_rgb(dc: [f32; 3]) -> Vec3 {
    Vec3::new(dc[0], dc[1], dc[2]) * SH_C0 + Vec3::splat(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coeff_counts() {
        assert_eq!(coeff_count(0), 1);
        assert_eq!(coeff_count(1), 4);
        assert_eq!(coeff_count(2), 9);
        assert_eq!(coeff_count(3), 16);
        assert_eq!(MAX_COEFFS, 16);
    }

    #[test]
    fn dc_roundtrip() {
        for rgb in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.5, 0.25),
            Vec3::new(0.9, 0.9, 0.9),
        ] {
            let dc = rgb_to_dc(rgb);
            assert!(dc_to_rgb(dc).distance(rgb) < 1e-5);
        }
    }

    #[test]
    fn dc_only_color_is_view_independent() {
        let mut coeffs = vec![0.0f32; 3 * MAX_COEFFS];
        let dc = rgb_to_dc(Vec3::new(0.7, 0.2, 0.4));
        coeffs[0] = dc[0];
        coeffs[1] = dc[1];
        coeffs[2] = dc[2];
        let c1 = eval_color(3, Vec3::new(1.0, 0.0, 0.0), &coeffs);
        let c2 = eval_color(3, Vec3::new(0.0, -1.0, 0.5), &coeffs);
        assert!(c1.distance(c2) < 1e-5);
        assert!(c1.distance(Vec3::new(0.7, 0.2, 0.4)) < 1e-5);
    }

    #[test]
    fn higher_bands_modulate_with_view() {
        let mut coeffs = vec![0.0f32; 3 * 4];
        // DC gray plus a band-1 z-lobe on red.
        let dc = rgb_to_dc(Vec3::splat(0.5));
        coeffs[..3].copy_from_slice(&dc);
        coeffs[3 * 2] = 1.0; // Y_1^0 (z) on red channel
        let from_top = eval_color(1, Vec3::new(0.0, 0.0, 1.0), &coeffs);
        let from_bottom = eval_color(1, Vec3::new(0.0, 0.0, -1.0), &coeffs);
        assert!(from_top.x > from_bottom.x);
        assert!((from_top.y - from_bottom.y).abs() < 1e-6);
    }

    #[test]
    fn eval_color_clamps_negative() {
        let mut coeffs = vec![0.0f32; 3];
        coeffs[0] = -10.0; // hugely negative red DC
        let c = eval_color(0, Vec3::new(0.0, 0.0, 1.0), &coeffs);
        assert_eq!(c.x, 0.0);
    }

    #[test]
    #[should_panic]
    fn eval_color_rejects_short_buffer() {
        let coeffs = vec![0.0f32; 3];
        let _ = eval_color(1, Vec3::new(0.0, 0.0, 1.0), &coeffs);
    }

    /// Band-1 basis functions integrate to zero over the sphere; check a
    /// crude Monte-Carlo version of orthogonality to DC.
    #[test]
    fn band1_integrates_to_zero() {
        let mut sum = [0.0f64; 4];
        let n = 20_000;
        let mut state = 0x12345678u64;
        let mut rng = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / (1u64 << 24) as f32
        };
        let mut basis = [0.0f32; 4];
        for _ in 0..n {
            // Uniform sphere via z/phi sampling.
            let z = 2.0 * rng() - 1.0;
            let phi = 2.0 * std::f32::consts::PI * rng();
            let r = (1.0 - z * z).max(0.0).sqrt();
            let d = Vec3::new(r * phi.cos(), r * phi.sin(), z);
            eval_basis(1, d, &mut basis);
            for (s, b) in sum.iter_mut().zip(basis.iter()) {
                *s += *b as f64;
            }
        }
        for s in &sum[1..] {
            assert!((s / n as f64).abs() < 0.02, "band-1 mean not ~0: {s}");
        }
    }

    proptest! {
        #[test]
        fn basis_is_bounded(dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0) {
            let d = Vec3::new(dx, dy, dz);
            prop_assume!(d.length() > 1e-3);
            let mut basis = [0.0f32; MAX_COEFFS];
            eval_basis(3, d.normalized(), &mut basis);
            for b in basis {
                prop_assert!(b.abs() < 3.0, "basis value out of expected bound: {b}");
            }
        }

        #[test]
        fn eval_color_never_negative(
            dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0,
            coeffs in proptest::collection::vec(-2.0f32..2.0, 48),
        ) {
            let d = Vec3::new(dx, dy, dz);
            prop_assume!(d.length() > 1e-3);
            let c = eval_color(3, d, &coeffs);
            prop_assert!(c.x >= 0.0 && c.y >= 0.0 && c.z >= 0.0);
        }
    }
}
