//! Portable fixed-width SIMD lanes for the rasterization kernels.
//!
//! These are plain `[T; 4]` wrappers with `#[inline]` per-lane operations —
//! no `std::simd`, no intrinsics, no nightly features. Every lane op is the
//! *scalar* `f32`/`u32` operation applied element-wise, which gives two
//! properties the renderer's determinism contract depends on:
//!
//! * **Bit-exactness per lane.** `F32x4::min` is `f32::min` four times,
//!   lane addition is IEEE `f32` addition, comparisons have scalar NaN
//!   semantics. A kernel that runs the same op sequence per lane as a
//!   scalar reference therefore produces bit-identical results — there is
//!   no fused-multiply-add, no flush-to-zero, no vendor `min` NaN quirk to
//!   diverge on.
//! * **Autovectorization.** The element-wise loops are the exact shape
//!   LLVM's SLP/loop vectorizers turn into `movaps`-style packed ops on
//!   every target with 128-bit vectors, so the batching still pays off in
//!   machine code without any per-target code in this crate.
//!
//! Masked accumulation uses [`Mask4::select`] (and friends) rather than
//! multiply-by-zero tricks: a retired lane keeps its previous value
//! *bit-for-bit*, including signed zeros and NaN payloads, exactly as if
//! the scalar loop had `break`-ed for that pixel.

/// Four `f32` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F32x4(pub [f32; 4]);

/// Four `u32` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct U32x4(pub [u32; 4]);

/// Four boolean lanes gating per-lane operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Mask4(pub [bool; 4]);

/// Number of lanes in every vector of this module.
pub const LANES: usize = 4;

impl F32x4 {
    /// Broadcast `v` into all lanes.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self([v; 4])
    }

    /// Build from four lane values.
    #[inline]
    pub const fn new(a: f32, b: f32, c: f32, d: f32) -> Self {
        Self([a, b, c, d])
    }

    /// Lane `i`.
    #[inline]
    pub fn lane(self, i: usize) -> f32 {
        self.0[i]
    }

    /// The lane array.
    #[inline]
    pub const fn to_array(self) -> [f32; 4] {
        self.0
    }

    /// Per-lane `f32::min` (scalar NaN semantics, unlike hardware `minps`).
    #[inline]
    pub fn min(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i].min(o.0[i])))
    }

    /// Per-lane `self < o`.
    #[inline]
    pub fn lt(self, o: Self) -> Mask4 {
        Mask4(std::array::from_fn(|i| self.0[i] < o.0[i]))
    }

    /// Per-lane `self > o`.
    #[inline]
    pub fn gt(self, o: Self) -> Mask4 {
        Mask4(std::array::from_fn(|i| self.0[i] > o.0[i]))
    }
}

impl std::ops::Add for F32x4 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] + o.0[i]))
    }
}

impl std::ops::Sub for F32x4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] - o.0[i]))
    }
}

impl std::ops::Mul for F32x4 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] * o.0[i]))
    }
}

impl U32x4 {
    /// Broadcast `v` into all lanes.
    #[inline]
    pub const fn splat(v: u32) -> Self {
        Self([v; 4])
    }

    /// Lane `i`.
    #[inline]
    pub fn lane(self, i: usize) -> u32 {
        self.0[i]
    }

    /// The lane array.
    #[inline]
    pub const fn to_array(self) -> [u32; 4] {
        self.0
    }

    /// Sum of all lanes, widened to `u64` so it cannot overflow.
    #[inline]
    pub fn wide_sum(self) -> u64 {
        self.0.iter().map(|&v| v as u64).sum()
    }
}

impl std::ops::Add for U32x4 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i].wrapping_add(o.0[i])))
    }
}

impl Mask4 {
    /// All lanes on.
    #[inline]
    pub const fn all_on() -> Self {
        Self([true; 4])
    }

    /// Whether any lane is on.
    #[inline]
    pub fn any(self) -> bool {
        self.0[0] | self.0[1] | self.0[2] | self.0[3]
    }

    /// Whether all lanes are on.
    #[inline]
    pub fn all(self) -> bool {
        self.0[0] & self.0[1] & self.0[2] & self.0[3]
    }

    /// Lane `i`.
    #[inline]
    pub fn lane(self, i: usize) -> bool {
        self.0[i]
    }

    /// Per-lane `if self { a } else { b }` on `f32` lanes.
    #[inline]
    pub fn select(self, a: F32x4, b: F32x4) -> F32x4 {
        F32x4(std::array::from_fn(
            |i| if self.0[i] { a.0[i] } else { b.0[i] },
        ))
    }

    /// Per-lane `if self { a } else { b }` on `u32` lanes.
    #[inline]
    pub fn select_u32(self, a: U32x4, b: U32x4) -> U32x4 {
        U32x4(std::array::from_fn(
            |i| if self.0[i] { a.0[i] } else { b.0[i] },
        ))
    }

    /// Count of on lanes.
    #[inline]
    pub fn count(self) -> u32 {
        self.0[0] as u32 + self.0[1] as u32 + self.0[2] as u32 + self.0[3] as u32
    }

    /// The mask as `0`/`1` integer lanes (for branch-free counters).
    #[inline]
    pub fn to_u32x4(self) -> U32x4 {
        U32x4(std::array::from_fn(|i| self.0[i] as u32))
    }
}

impl std::ops::BitAnd for Mask4 {
    type Output = Self;
    #[inline]
    fn bitand(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] & o.0[i]))
    }
}

impl std::ops::BitOr for Mask4 {
    type Output = Self;
    #[inline]
    fn bitor(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] | o.0[i]))
    }
}

impl std::ops::Not for Mask4 {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        Self(std::array::from_fn(|i| !self.0[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arithmetic_matches_scalar() {
        let a = F32x4::new(1.0, -2.5, 0.0, 1e30);
        let b = F32x4::new(0.5, 4.0, -0.0, 1e30);
        for i in 0..LANES {
            assert_eq!((a + b).lane(i), a.lane(i) + b.lane(i));
            assert_eq!((a - b).lane(i), a.lane(i) - b.lane(i));
            assert_eq!((a * b).lane(i), a.lane(i) * b.lane(i));
            assert_eq!(a.min(b).lane(i), a.lane(i).min(b.lane(i)));
        }
    }

    #[test]
    fn comparisons_have_scalar_nan_semantics() {
        let nan = F32x4::new(f32::NAN, 1.0, f32::NAN, -1.0);
        let one = F32x4::splat(1.0);
        // NaN compares false both ways, exactly like scalar f32.
        assert_eq!(nan.lt(one).0, [false, false, false, true]);
        assert_eq!(nan.gt(one).0, [false, false, false, false]);
        // min keeps f32::min's NaN behavior (returns the non-NaN operand).
        assert_eq!(nan.min(one).lane(0), 1.0);
    }

    #[test]
    fn select_preserves_bits() {
        let a = F32x4::new(1.0, -0.0, f32::NAN, 3.0);
        let b = F32x4::new(9.0, 0.0, 2.0, f32::NAN);
        let m = Mask4([true, false, true, false]);
        let s = m.select(a, b);
        assert_eq!(s.lane(0).to_bits(), 1.0f32.to_bits());
        assert_eq!(s.lane(1).to_bits(), 0.0f32.to_bits()); // kept b's +0.0
        assert!(s.lane(2).is_nan());
        assert!(s.lane(3).is_nan());
        let u = m.select_u32(U32x4::splat(7), U32x4::splat(u32::MAX));
        assert_eq!(u.to_array(), [7, u32::MAX, 7, u32::MAX]);
    }

    #[test]
    fn mask_reductions() {
        assert!(Mask4::all_on().all());
        assert!(Mask4::all_on().any());
        let m = Mask4([false, true, false, false]);
        assert!(m.any() && !m.all());
        assert_eq!(m.count(), 1);
        assert_eq!((!m).count(), 3);
        assert_eq!((m & Mask4::all_on()), m);
        assert_eq!((m | !m), Mask4::all_on());
    }

    #[test]
    fn u32_accumulation() {
        let m = Mask4([true, false, true, true]);
        assert_eq!(m.to_u32x4().to_array(), [1, 0, 1, 1]);
        let acc = U32x4::splat(5) + m.to_u32x4();
        assert_eq!(acc.to_array(), [6, 5, 6, 6]);
        assert_eq!(acc.wide_sum(), 23);
        // Lane addition wraps rather than panicking in debug builds.
        assert_eq!((U32x4::splat(u32::MAX) + U32x4::splat(2)).lane(0), 1);
        assert_eq!(U32x4::splat(u32::MAX).wide_sum(), 4 * (u32::MAX as u64));
    }
}
