//! Small row-major matrices (`Mat3`, `Mat4`).

use crate::{Vec3, Vec4};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// 3×3 row-major matrix.
///
/// Used for rotations, covariance matrices and the EWA Jacobian.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows-major storage: `m[row][col]`.
    pub m: [[f32; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Mat3 {
    /// Identity matrix.
    pub const fn identity() -> Self {
        Self {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Matrix of all zeros.
    pub const fn zero() -> Self {
        Self { m: [[0.0; 3]; 3] }
    }

    /// Build from rows.
    pub const fn from_rows(r0: [f32; 3], r1: [f32; 3], r2: [f32; 3]) -> Self {
        Self { m: [r0, r1, r2] }
    }

    /// Diagonal matrix.
    pub const fn from_diagonal(d: Vec3) -> Self {
        Self {
            m: [[d.x, 0.0, 0.0], [0.0, d.y, 0.0], [0.0, 0.0, d.z]],
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Self {
        let m = &self.m;
        Self::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Determinant.
    pub fn determinant(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse, or `None` when the matrix is singular.
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / det;
        let c = |r0: usize, c0: usize, r1: usize, c1: usize| {
            m[r0][c0] * m[r1][c1] - m[r0][c1] * m[r1][c0]
        };
        Some(Self::from_rows(
            [
                c(1, 1, 2, 2) * inv_det,
                -c(0, 1, 2, 2) * inv_det,
                c(0, 1, 1, 2) * inv_det,
            ],
            [
                -c(1, 0, 2, 2) * inv_det,
                c(0, 0, 2, 2) * inv_det,
                -c(0, 0, 1, 2) * inv_det,
            ],
            [
                c(1, 0, 2, 1) * inv_det,
                -c(0, 0, 2, 1) * inv_det,
                c(0, 0, 1, 1) * inv_det,
            ],
        ))
    }

    /// Row `i` as a vector.
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.m.iter().flatten().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Conjugate a symmetric matrix: `self * s * selfᵀ`.
    ///
    /// This is the covariance transform used when rotating a Gaussian
    /// (`Σ' = R Σ Rᵀ`) and when projecting 3-D covariance with the EWA
    /// Jacobian (`Σ₂ = J W Σ Wᵀ Jᵀ`).
    pub fn conjugate_symmetric(&self, s: &Mat3) -> Mat3 {
        *self * *s * self.transposed()
    }
}

impl Mul for Mat3 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for (k, rhs_row) in rhs.m.iter().enumerate() {
                    acc += self.m[i][k] * rhs_row[j];
                }
                out.m[i][j] = acc;
            }
        }
        out
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul<f32> for Mat3 {
    type Output = Self;
    fn mul(self, s: f32) -> Self {
        let mut out = self;
        for row in &mut out.m {
            for v in row {
                *v *= s;
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] -= rhs.m[i][j];
            }
        }
        out
    }
}

/// 4×4 row-major matrix for homogeneous transforms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// Row-major storage: `m[row][col]`.
    pub m: [[f32; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Mat4 {
    /// Identity matrix.
    pub const fn identity() -> Self {
        Self {
            m: [
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ],
        }
    }

    /// Build from rows.
    pub const fn from_rows(r0: [f32; 4], r1: [f32; 4], r2: [f32; 4], r3: [f32; 4]) -> Self {
        Self {
            m: [r0, r1, r2, r3],
        }
    }

    /// Translation matrix.
    pub fn from_translation(t: Vec3) -> Self {
        Self::from_rows(
            [1.0, 0.0, 0.0, t.x],
            [0.0, 1.0, 0.0, t.y],
            [0.0, 0.0, 1.0, t.z],
            [0.0, 0.0, 0.0, 1.0],
        )
    }

    /// Embed a 3×3 rotation in the upper-left block.
    pub fn from_mat3(r: Mat3) -> Self {
        let m = r.m;
        Self::from_rows(
            [m[0][0], m[0][1], m[0][2], 0.0],
            [m[1][0], m[1][1], m[1][2], 0.0],
            [m[2][0], m[2][1], m[2][2], 0.0],
            [0.0, 0.0, 0.0, 1.0],
        )
    }

    /// Right-handed look-at view matrix. The camera at `eye` looks toward
    /// `target`; the view space has +X right, +Y up, and the camera looking
    /// down **−Z**.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized(); // forward
        let s = f.cross(up).normalized(); // right
        let u = s.cross(f); // corrected up
        Self::from_rows(
            [s.x, s.y, s.z, -s.dot(eye)],
            [u.x, u.y, u.z, -u.dot(eye)],
            [-f.x, -f.y, -f.z, f.dot(eye)],
            [0.0, 0.0, 0.0, 1.0],
        )
    }

    /// Right-handed perspective projection (OpenGL-style clip space,
    /// z ∈ [−1, 1]).
    ///
    /// `fovy` is the vertical field of view in radians.
    ///
    /// # Panics
    ///
    /// Panics if `fovy`, `aspect` or the near/far planes are non-positive, or
    /// if `near >= far`.
    pub fn perspective(fovy: f32, aspect: f32, near: f32, far: f32) -> Self {
        assert!(fovy > 0.0 && aspect > 0.0, "fovy/aspect must be positive");
        assert!(near > 0.0 && far > near, "require 0 < near < far");
        let f = 1.0 / (fovy / 2.0).tan();
        Self::from_rows(
            [f / aspect, 0.0, 0.0, 0.0],
            [0.0, f, 0.0, 0.0],
            [
                0.0,
                0.0,
                (far + near) / (near - far),
                (2.0 * far * near) / (near - far),
            ],
            [0.0, 0.0, -1.0, 0.0],
        )
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Self {
        let mut out = Mat4::identity();
        for i in 0..4 {
            for j in 0..4 {
                out.m[i][j] = self.m[j][i];
            }
        }
        out
    }

    /// Upper-left 3×3 block.
    pub fn upper_left3(&self) -> Mat3 {
        Mat3::from_rows(
            [self.m[0][0], self.m[0][1], self.m[0][2]],
            [self.m[1][0], self.m[1][1], self.m[1][2]],
            [self.m[2][0], self.m[2][1], self.m[2][2]],
        )
    }

    /// Transform a point (w = 1), returning the homogeneous result.
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        *self * p.extend(1.0)
    }

    /// Transform a direction (w = 0) using only the linear part.
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        self.upper_left3() * v
    }

    /// Rigid-transform inverse (valid for rotation+translation matrices).
    pub fn rigid_inverse(&self) -> Self {
        let r = self.upper_left3().transposed();
        let t = Vec3::new(self.m[0][3], self.m[1][3], self.m[2][3]);
        let new_t = -(r * t);
        let mut out = Self::from_mat3(r);
        out.m[0][3] = new_t.x;
        out.m[1][3] = new_t.y;
        out.m[2][3] = new_t.z;
        out
    }
}

impl Mul for Mat4 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Mat4 { m: [[0.0; 4]; 4] };
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for (k, rhs_row) in rhs.m.iter().enumerate() {
                    acc += self.m[i][k] * rhs_row[j];
                }
                out.m[i][j] = acc;
            }
        }
        out
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;
    fn mul(self, v: Vec4) -> Vec4 {
        let r = |i: usize| {
            self.m[i][0] * v.x + self.m[i][1] * v.y + self.m[i][2] * v.z + self.m[i][3] * v.w
        };
        Vec4::new(r(0), r(1), r(2), r(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_mat3_close(a: &Mat3, b: &Mat3, tol: f32) {
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (a.m[i][j] - b.m[i][j]).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a.m[i][j],
                    b.m[i][j]
                );
            }
        }
    }

    #[test]
    fn identity_multiplication() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]);
        assert_mat3_close(&(a * Mat3::identity()), &a, 1e-6);
        assert_mat3_close(&(Mat3::identity() * a), &a, 1e-6);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat3::from_rows([2.0, 1.0, 0.5], [0.0, 3.0, 1.0], [1.0, 0.0, 2.0]);
        let inv = a.inverse().expect("invertible");
        assert_mat3_close(&(a * inv), &Mat3::identity(), 1e-4);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn look_at_centers_target_on_negative_z() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let view = Mat4::look_at(eye, Vec3::zero(), Vec3::new(0.0, 1.0, 0.0));
        let p = view.transform_point(Vec3::zero()).project();
        assert!(p.x.abs() < 1e-5 && p.y.abs() < 1e-5);
        assert!(
            (p.z - -5.0).abs() < 1e-5,
            "target should be 5 units down -Z, got {p}"
        );
    }

    #[test]
    fn perspective_maps_near_far_to_clip_bounds() {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        let near = (proj * Vec4::new(0.0, 0.0, -0.1, 1.0)).project();
        let far = (proj * Vec4::new(0.0, 0.0, -100.0, 1.0)).project();
        assert!((near.z - -1.0).abs() < 1e-4);
        assert!((far.z - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn perspective_rejects_bad_planes() {
        let _ = Mat4::perspective(1.0, 1.0, 10.0, 1.0);
    }

    #[test]
    fn rigid_inverse_undoes_look_at() {
        let view = Mat4::look_at(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 0.5, -1.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let inv = view.rigid_inverse();
        let p = Vec3::new(0.3, -0.7, 2.0);
        let back = inv
            .transform_point(view.transform_point(p).project())
            .project();
        assert!(back.distance(p) < 1e-4);
    }

    #[test]
    fn conjugate_symmetric_preserves_symmetry() {
        let r = Mat3::from_rows([0.8, -0.6, 0.0], [0.6, 0.8, 0.0], [0.0, 0.0, 1.0]);
        let s = Mat3::from_diagonal(Vec3::new(1.0, 4.0, 9.0));
        let c = r.conjugate_symmetric(&s);
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.m[i][j] - c.m[j][i]).abs() < 1e-5);
            }
        }
    }

    proptest! {
        #[test]
        fn det_of_product_is_product_of_dets(
            vals in proptest::array::uniform9(-3.0f32..3.0),
            vals2 in proptest::array::uniform9(-3.0f32..3.0),
        ) {
            let a = Mat3::from_rows(
                [vals[0], vals[1], vals[2]],
                [vals[3], vals[4], vals[5]],
                [vals[6], vals[7], vals[8]],
            );
            let b = Mat3::from_rows(
                [vals2[0], vals2[1], vals2[2]],
                [vals2[3], vals2[4], vals2[5]],
                [vals2[6], vals2[7], vals2[8]],
            );
            let lhs = (a * b).determinant();
            let rhs = a.determinant() * b.determinant();
            let scale = lhs.abs().max(rhs.abs()).max(1.0);
            prop_assert!((lhs - rhs).abs() / scale < 1e-3);
        }

        #[test]
        fn transpose_is_involution(vals in proptest::array::uniform9(-10.0f32..10.0)) {
            let a = Mat3::from_rows(
                [vals[0], vals[1], vals[2]],
                [vals[3], vals[4], vals[5]],
                [vals[6], vals[7], vals[8]],
            );
            prop_assert_eq!(a.transposed().transposed(), a);
        }
    }
}
