//! Summary statistics used by the evaluation harness.
//!
//! The paper reports several distributions as boxplots (Fig. 3 FPS
//! distributions, Fig. 9b tile-intersection distributions). [`BoxplotSummary`]
//! reproduces the quartile/whisker convention the paper states: whiskers at
//! 1.5·IQR beyond the quartiles.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Geometric mean of positive values; 0 when any value is non-positive or the
/// slice is empty. Used for the paper's "geomean speedup" numbers (§7.3).
pub fn geomean(xs: &[f32]) -> f32 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f32>() / xs.len() as f32).exp()
}

/// Linear-interpolated percentile (`p ∈ [0, 100]`); 0 for an empty slice.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0) * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = rank - lo as f32;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Five-number summary plus 1.5·IQR whiskers, matching the paper's boxplots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// Minimum observation.
    pub min: f32,
    /// Lower whisker: smallest observation ≥ Q1 − 1.5·IQR.
    pub whisker_lo: f32,
    /// First quartile.
    pub q1: f32,
    /// Median.
    pub median: f32,
    /// Third quartile.
    pub q3: f32,
    /// Upper whisker: largest observation ≤ Q3 + 1.5·IQR.
    pub whisker_hi: f32,
    /// Maximum observation.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f32,
    /// Number of observations.
    pub count: usize,
}

impl BoxplotSummary {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn from_samples(xs: &[f32]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let q1 = percentile(xs, 25.0);
        let median = percentile(xs, 50.0);
        let q3 = percentile(xs, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut whisker_lo = f32::INFINITY;
        let mut whisker_hi = f32::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
            if x >= lo_fence {
                whisker_lo = whisker_lo.min(x);
            }
            if x <= hi_fence {
                whisker_hi = whisker_hi.max(x);
            }
        }
        // With interpolated quartiles the nearest in-fence observation can sit
        // inside the box; clamp whiskers to the box edges (matplotlib rule).
        whisker_lo = whisker_lo.min(q1);
        whisker_hi = whisker_hi.max(q3);
        Some(Self {
            min,
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            max,
            mean: mean(xs),
            count: xs.len(),
        })
    }

    /// Observations outside the whisker fences.
    pub fn outliers(xs: &[f32]) -> Vec<f32> {
        match Self::from_samples(xs) {
            None => Vec::new(),
            Some(s) => xs
                .iter()
                .copied()
                .filter(|&x| x < s.whisker_lo || x > s.whisker_hi)
                .collect(),
        }
    }
}

/// Two-sided binomial test against `p = 0.5`, the significance test the user
/// study uses (Fig. 11: "binomial test on the average result; p < 0.01").
///
/// Returns the probability of observing a count at least as extreme as
/// `successes` out of `trials` under the null hypothesis of no preference.
pub fn binomial_test_two_sided(successes: u64, trials: u64) -> f64 {
    if trials == 0 {
        return 1.0;
    }
    let k = successes.min(trials);
    // P(X = i) for X ~ Binomial(n, 0.5) computed in log space.
    let n = trials;
    let log_half_n = n as f64 * 0.5f64.ln();
    let mut log_choose = 0.0f64; // ln C(n, 0)
    let mut pmf = vec![0.0f64; (n + 1) as usize];
    for i in 0..=n {
        if i > 0 {
            log_choose += ((n - i + 1) as f64).ln() - (i as f64).ln();
        }
        pmf[i as usize] = (log_choose + log_half_n).exp();
    }
    let p_obs = pmf[k as usize];
    let p: f64 = pmf.iter().filter(|&&pi| pi <= p_obs * (1.0 + 1e-7)).sum();
    p.min(1.0)
}

/// One-sided binomial test: probability of at least `successes` successes in
/// `trials` fair-coin flips. Used for the "users prefer ours" direction.
pub fn binomial_test_at_least(successes: u64, trials: u64) -> f64 {
    if trials == 0 {
        return 1.0;
    }
    let n = trials;
    let log_half_n = n as f64 * 0.5f64.ln();
    let mut log_choose = 0.0f64;
    let mut p = 0.0f64;
    for i in 0..=n {
        if i > 0 {
            log_choose += ((n - i + 1) as f64).ln() - (i as f64).ln();
        }
        if i >= successes {
            p += (log_choose + log_half_n).exp();
        }
    }
    p.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert!(BoxplotSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn geomean_of_speedups() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-5);
        assert_eq!(geomean(&[1.0, -1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-6);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-6);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn boxplot_detects_outlier() {
        let mut xs = vec![10.0; 20];
        for (i, x) in xs.iter_mut().enumerate() {
            *x += (i % 5) as f32 * 0.1;
        }
        xs.push(100.0);
        let s = BoxplotSummary::from_samples(&xs).unwrap();
        assert!(s.whisker_hi < 100.0);
        assert_eq!(BoxplotSummary::outliers(&xs), vec![100.0]);
    }

    #[test]
    fn binomial_test_extremes() {
        // All 96 of 96 comparisons preferring one method is overwhelming.
        assert!(binomial_test_two_sided(96, 96) < 1e-20);
        // A perfect 48/96 tie is not significant.
        assert!(binomial_test_two_sided(48, 96) > 0.9);
        assert_eq!(binomial_test_two_sided(0, 0), 1.0);
    }

    #[test]
    fn binomial_at_least_monotone() {
        let p_60 = binomial_test_at_least(60, 96);
        let p_70 = binomial_test_at_least(70, 96);
        assert!(p_70 < p_60);
        assert!(binomial_test_at_least(0, 96) > 0.999);
    }

    proptest! {
        #[test]
        fn boxplot_is_ordered(xs in proptest::collection::vec(-100.0f32..100.0, 1..200)) {
            let s = BoxplotSummary::from_samples(&xs).unwrap();
            prop_assert!(s.min <= s.whisker_lo + 1e-6);
            prop_assert!(s.whisker_lo <= s.q1 + 1e-4);
            prop_assert!(s.q1 <= s.median + 1e-4);
            prop_assert!(s.median <= s.q3 + 1e-4);
            prop_assert!(s.q3 <= s.whisker_hi + 1e-4);
            prop_assert!(s.whisker_hi <= s.max + 1e-6);
        }

        #[test]
        fn percentile_within_range(xs in proptest::collection::vec(-100.0f32..100.0, 1..100), p in 0.0f32..100.0) {
            let v = percentile(&xs, p);
            let lo = xs.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }

        #[test]
        fn binomial_p_in_unit_interval(k in 0u64..50, n in 1u64..50) {
            prop_assume!(k <= n);
            let p = binomial_test_two_sided(k, n);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
