//! Analytical mobile-GPU cost model (Jetson AGX Xavier's Volta GPU).
//!
//! The paper measures FPS on the Xavier's mobile Volta GPU [paper §6]. We
//! cannot run CUDA here, so FPS is *modeled*: the renderer measures the
//! exact workload a frame generates (points projected, tile-ellipse
//! intersections, compositing steps, pixels blended) and this crate converts
//! the workload into an estimated frame latency using per-operation costs
//! derived from the Xavier's published capabilities (512 CUDA cores at
//! ~1.37 GHz ≈ 1.4 FP32 TFLOP/s, ~137 GB/s LPDDR4x).
//!
//! The model is anchored to the paper's own finding (Fig. 4) that latency
//! tracks tile-ellipse intersections: the dominant terms are proportional
//! to intersections (sorting + duplication traffic) and to per-pixel
//! compositing work. Constants are calibrated so a full-scale dense 3DGS
//! trace (≈6 M points, ≈30 M intersections at 1080p-class resolution) lands
//! in the paper's "generally below 10 FPS" range; *relative* speedups are
//! the meaningful output.
//!
//! # Example
//!
//! ```
//! use ms_gpu::{FrameWorkload, GpuCostModel};
//!
//! let w = FrameWorkload {
//!     points_submitted: 6_000_000,
//!     points_projected: 3_000_000,
//!     total_intersections: 30_000_000,
//!     blend_steps: 400_000_000,
//!     pixels: 1920 * 1080,
//!     blended_pixels: 0,
//!     per_pixel_sort: false,
//! };
//! let fps = GpuCostModel::xavier().fps(&w);
//! assert!(fps > 1.0 && fps < 15.0, "dense full-scale model ≈ single-digit FPS, got {fps}");
//! ```

#![deny(missing_docs)]

use ms_render::RenderStats;
use serde::{Deserialize, Serialize};

/// The workload of one rendered frame, as counted by the renderer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameWorkload {
    /// Points submitted to projection (model size; MMFR pays per level).
    pub points_submitted: usize,
    /// Points surviving culling.
    pub points_projected: usize,
    /// Tile-ellipse intersections (duplication + sorting traffic).
    pub total_intersections: u64,
    /// Per-pixel compositing steps actually executed.
    pub blend_steps: u64,
    /// Pixels shaded.
    pub pixels: u64,
    /// Pixels rendered twice and interpolated (FR blending overhead).
    pub blended_pixels: u64,
    /// StopThePop-style per-pixel re-sorting.
    pub per_pixel_sort: bool,
}

impl FrameWorkload {
    /// Extract the workload from render statistics. Every term is what the
    /// renderer's staged pipeline measured; `pixels` is the exact image
    /// area (`TileGridDims::pixel_count`), not the tile grid padded to
    /// `tile_size²`.
    pub fn from_stats(stats: &RenderStats, per_pixel_sort: bool) -> Self {
        Self {
            points_submitted: stats.points_submitted,
            points_projected: stats.points_projected,
            total_intersections: stats.total_intersections,
            blend_steps: stats.blend_steps,
            pixels: stats.grid.pixel_count(),
            blended_pixels: 0,
            per_pixel_sort,
        }
    }

    /// Add foveation blending overhead.
    pub fn with_blended_pixels(mut self, blended: u64) -> Self {
        self.blended_pixels = blended;
        self
    }

    /// Scale the workload to a full-size configuration
    /// (granularity-preserving). Experiments run on reduced scenes
    /// (`point_factor` = 1/scene-scale) and reduced resolutions
    /// (`pixel_factor` = full pixels / rendered pixels):
    ///
    /// * point-proportional terms scale by `point_factor`;
    /// * intersection and compositing terms scale by `pixel_factor` only:
    ///   a full-scale reconstruction has `point_factor`× more but
    ///   correspondingly *smaller* splats, so per-tile overdraw — and with
    ///   it total tile-ellipse intersections per tile — is
    ///   granularity-invariant, while the tile count grows with resolution;
    /// * pixel terms scale by `pixel_factor`.
    pub fn scaled(&self, point_factor: f64, pixel_factor: f64) -> Self {
        let pf = point_factor.max(0.0);
        let xf = pixel_factor.max(0.0);
        Self {
            points_submitted: (self.points_submitted as f64 * pf) as usize,
            points_projected: (self.points_projected as f64 * pf) as usize,
            total_intersections: (self.total_intersections as f64 * xf) as u64,
            blend_steps: (self.blend_steps as f64 * xf) as u64,
            pixels: (self.pixels as f64 * xf) as u64,
            blended_pixels: (self.blended_pixels as f64 * xf) as u64,
            per_pixel_sort: self.per_pixel_sort,
        }
    }
}

/// Per-operation GPU costs (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuCostModel {
    /// Fixed per-frame overhead (kernel launches, sync).
    pub c_fixed: f64,
    /// Per submitted point (fetch + cull test).
    pub c_point_submit: f64,
    /// Per projected point (covariance projection, SH eval).
    pub c_point_project: f64,
    /// Per tile-ellipse intersection (key generation + radix sort + list
    /// traffic).
    pub c_intersection: f64,
    /// Per executed compositing step (Gaussian eval + alpha blend).
    pub c_blend_step: f64,
    /// Per output pixel (framebuffer traffic).
    pub c_pixel: f64,
    /// Per FR-blended pixel (read two colors + interpolate).
    pub c_blend_pixel: f64,
    /// Multiplier on compositing when per-pixel sorting is on
    /// (StopThePop's gather + re-sort overhead).
    pub per_pixel_sort_factor: f64,
}

impl GpuCostModel {
    /// Constants calibrated for the Xavier's mobile Volta GPU.
    pub fn xavier() -> Self {
        Self {
            c_fixed: 1.0e-3,
            c_point_submit: 2.0e-9,
            c_point_project: 12.0e-9,
            c_intersection: 6.0e-9,
            c_blend_step: 5.0e-10,
            c_pixel: 1.0e-9,
            c_blend_pixel: 4.0e-9,
            per_pixel_sort_factor: 1.9,
        }
    }

    /// Estimated frame latency in seconds.
    pub fn frame_latency(&self, w: &FrameWorkload) -> f64 {
        let raster_factor = if w.per_pixel_sort {
            self.per_pixel_sort_factor
        } else {
            1.0
        };
        self.c_fixed
            + self.c_point_submit * w.points_submitted as f64
            + self.c_point_project * w.points_projected as f64
            + self.c_intersection * w.total_intersections as f64
            + self.c_blend_step * w.blend_steps as f64 * raster_factor
            + self.c_pixel * w.pixels as f64
            + self.c_blend_pixel * w.blended_pixels as f64
    }

    /// Estimated frames per second.
    pub fn fps(&self, w: &FrameWorkload) -> f64 {
        1.0 / self.frame_latency(w)
    }

    /// Estimated energy per frame in joules, using the Xavier's ~20 W GPU
    /// power envelope under full rasterization load. Used as the GPU side of
    /// the §7.3 energy comparison.
    pub fn frame_energy(&self, w: &FrameWorkload) -> f64 {
        const GPU_POWER_W: f64 = 20.0;
        self.frame_latency(w) * GPU_POWER_W
    }
}

impl Default for GpuCostModel {
    fn default() -> Self {
        Self::xavier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dense_workload() -> FrameWorkload {
        FrameWorkload {
            points_submitted: 6_000_000,
            points_projected: 3_000_000,
            total_intersections: 30_000_000,
            blend_steps: 400_000_000,
            pixels: 1920 * 1080,
            blended_pixels: 0,
            per_pixel_sort: false,
        }
    }

    #[test]
    fn dense_model_is_below_real_time() {
        let fps = GpuCostModel::xavier().fps(&dense_workload());
        assert!(
            fps < 15.0,
            "paper: dense PBNR well below real-time, got {fps}"
        );
        assert!(fps > 1.0);
    }

    #[test]
    fn order_of_magnitude_fewer_intersections_near_order_speedup() {
        let model = GpuCostModel::xavier();
        let dense = dense_workload();
        let pruned = FrameWorkload {
            points_submitted: 900_000,
            points_projected: 450_000,
            total_intersections: 3_000_000,
            blend_steps: 40_000_000,
            ..dense
        };
        let speedup = model.fps(&pruned) / model.fps(&dense);
        assert!(speedup > 5.0 && speedup < 12.0, "speedup {speedup}");
    }

    #[test]
    fn per_pixel_sort_slows_rasterization() {
        let model = GpuCostModel::xavier();
        let mut w = dense_workload();
        let base = model.fps(&w);
        w.per_pixel_sort = true;
        assert!(model.fps(&w) < base);
    }

    #[test]
    fn blended_pixels_cost_extra() {
        let model = GpuCostModel::xavier();
        let w = dense_workload();
        let w_blend = w.with_blended_pixels(500_000);
        assert!(model.frame_latency(&w_blend) > model.frame_latency(&w));
    }

    #[test]
    fn scaling_composes() {
        let w = dense_workload();
        let s = w.scaled(2.0, 4.0);
        assert_eq!(s.points_submitted, 12_000_000);
        // Intersections are granularity-invariant per tile: they scale with
        // resolution (tile count), not with point count.
        assert_eq!(s.total_intersections, 120_000_000);
        assert_eq!(s.pixels, 4 * 1920 * 1080);
        let identity = w.scaled(1.0, 1.0);
        assert_eq!(identity, w);
    }

    #[test]
    fn energy_tracks_latency() {
        let model = GpuCostModel::xavier();
        let w = dense_workload();
        assert!((model.frame_energy(&w) - model.frame_latency(&w) * 20.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn latency_is_monotone_in_workload(
            pts in 0usize..10_000_000,
            isect in 0u64..100_000_000,
            blend in 0u64..1_000_000_000,
        ) {
            let model = GpuCostModel::xavier();
            let base = FrameWorkload {
                points_submitted: pts,
                points_projected: pts / 2,
                total_intersections: isect,
                blend_steps: blend,
                pixels: 1_000_000,
                blended_pixels: 0,
                per_pixel_sort: false,
            };
            let bigger = FrameWorkload {
                total_intersections: isect + 1_000,
                blend_steps: blend + 1_000,
                ..base
            };
            prop_assert!(model.frame_latency(&bigger) > model.frame_latency(&base));
        }
    }
}
