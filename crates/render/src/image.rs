//! Linear-RGB floating-point image.

use ms_math::Vec3;
use serde::{Deserialize, Serialize};

/// An RGB image with `f32` linear-light channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<Vec3>,
}

impl Image {
    /// A black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, Vec3::zero())
    }

    /// An image filled with `color`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn filled(width: u32, height: u32, color: Vec3) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![color; (width * height) as usize],
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn pixel(&self, x: u32, y: u32) -> Vec3 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[(y * self.width + x) as usize]
    }

    /// Set the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set_pixel(&mut self, x: u32, y: u32, c: Vec3) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[(y * self.width + x) as usize] = c;
    }

    /// Raw pixel slice (row-major).
    #[inline]
    pub fn pixels(&self) -> &[Vec3] {
        &self.data
    }

    /// Mutable raw pixel slice (row-major).
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [Vec3] {
        &mut self.data
    }

    /// Clamp all channels to `[0, 1]`.
    pub fn clamped(&self) -> Self {
        let mut out = self.clone();
        for p in &mut out.data {
            *p = p.max(Vec3::zero()).min(Vec3::one());
        }
        out
    }

    /// Mean squared error against another image of identical dimensions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mse(&self, other: &Self) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimension mismatch"
        );
        let mut acc = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = *a - *b;
            acc += (d.x * d.x + d.y * d.y + d.z * d.z) as f64;
        }
        (acc / (self.data.len() as f64 * 3.0)) as f32
    }

    /// Per-pixel luminance (Rec. 709 weights).
    pub fn luminance(&self) -> Vec<f32> {
        self.data
            .iter()
            .map(|p| 0.2126 * p.x + 0.7152 * p.y + 0.0722 * p.z)
            .collect()
    }

    /// Encode as a binary PPM (P6, 8-bit) for eyeballing outputs.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.data {
            let c = p.max(Vec3::zero()).min(Vec3::one());
            out.push((c.x * 255.0 + 0.5) as u8);
            out.push((c.y * 255.0 + 0.5) as u8);
            out.push((c.z * 255.0 + 0.5) as u8);
        }
        out
    }

    /// Linear blend of two images: `self * (1-t) + other * t` with a
    /// per-pixel weight map. Used for foveation boundary blending.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch between images or the weight map.
    pub fn blend_with(&self, other: &Self, weights: &[f32]) -> Self {
        assert_eq!((self.width, self.height), (other.width, other.height));
        assert_eq!(weights.len(), self.data.len(), "weight map size mismatch");
        let mut out = self.clone();
        for ((p, o), &w) in out.data.iter_mut().zip(&other.data).zip(weights) {
            *p = p.lerp(*o, w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.pixel_count(), 12);
        img.set_pixel(3, 2, Vec3::one());
        assert_eq!(img.pixel(3, 2), Vec3::one());
        assert_eq!(img.pixel(0, 0), Vec3::zero());
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        let _ = Image::new(0, 4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let img = Image::new(4, 3);
        let _ = img.pixel(4, 0);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let img = Image::filled(8, 8, Vec3::new(0.5, 0.2, 0.7));
        assert_eq!(img.mse(&img), 0.0);
    }

    #[test]
    fn mse_scales_with_difference() {
        let a = Image::filled(8, 8, Vec3::zero());
        let b = Image::filled(8, 8, Vec3::splat(0.5));
        assert!((a.mse(&b) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn clamp_bounds_channels() {
        let img = Image::filled(2, 2, Vec3::new(-1.0, 0.5, 3.0));
        let c = img.clamped();
        assert_eq!(c.pixel(0, 0), Vec3::new(0.0, 0.5, 1.0));
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(5, 4);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 4\n255\n"));
        assert_eq!(ppm.len(), 11 + 5 * 4 * 3);
    }

    #[test]
    fn blend_with_weights() {
        let a = Image::filled(2, 1, Vec3::zero());
        let b = Image::filled(2, 1, Vec3::one());
        let out = a.blend_with(&b, &[0.0, 0.5]);
        assert_eq!(out.pixel(0, 0), Vec3::zero());
        assert_eq!(out.pixel(1, 0), Vec3::splat(0.5));
    }

    #[test]
    fn luminance_weights() {
        let img = Image::filled(1, 1, Vec3::new(1.0, 1.0, 1.0));
        let l = img.luminance();
        assert!((l[0] - 1.0).abs() < 1e-4);
    }
}
