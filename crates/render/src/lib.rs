//! CPU tile-based Gaussian-splatting renderer.
//!
//! Implements the three-stage PBNR pipeline of the paper's §2.1 — Projection,
//! Sorting, Rasterization — as a from-scratch CPU renderer:
//!
//! 1. **Projection** ([`project_model`]): cull, transform each Gaussian to
//!    view space, project its 3-D covariance through the EWA Jacobian to a
//!    2-D screen-space covariance, evaluate SH color for the view, and bound
//!    the splat's extent to a tile rectangle.
//! 2. **Sorting** ([`TileBins`]): duplicate splats into per-tile lists and
//!    sort each list front-to-back by depth (or per-pixel for the
//!    StopThePop-style mode).
//! 3. **Rasterization** ([`Renderer::render`]): per-pixel alpha compositing
//!    of Eqn. 1 with transmittance early-stop, scheduled over the
//!    work-unit list of the §4.3 tile-merge pass ([`MergedTileSchedule`]) —
//!    adjacent low-occupancy tiles coalesce into super-tiles when
//!    [`RenderOptions::merge_threshold`] is set.
//!
//! The renderer doubles as the measurement instrument for the paper's
//! analysis: [`RenderStats`] exposes per-tile intersection counts (the
//! workload-imbalance data of Fig. 9), per-point tile usage (`Comp`/`U` in
//! Eqns. 3 and 5) and per-point pixel-dominance counts (`Val` in Eqn. 3).
//!
//! # Example
//!
//! ```
//! use ms_scene::{GaussianModel, Camera};
//! use ms_render::{Renderer, RenderOptions};
//! use ms_math::{Vec3, Quat};
//!
//! let mut model = GaussianModel::new(0);
//! model.push_solid(Vec3::zero(), Vec3::splat(0.3), Quat::identity(), 0.9,
//!                  Vec3::new(1.0, 0.2, 0.1));
//! let cam = Camera::look_at(64, 64, 60.0, Vec3::new(0.0, 0.0, 3.0), Vec3::zero());
//! let out = Renderer::new(RenderOptions::default()).render(&model, &cam);
//! let center = out.image.pixel(32, 32);
//! assert!(center.x > 0.5); // red splat covers the center
//! ```

#![deny(missing_docs)]

mod binning;
mod frame;
mod image;
mod options;
mod par;
pub mod pipeline;
mod projection;
mod raster;
mod stats;

pub use binning::{MergedTileSchedule, SuperTile, TileBins};
pub use frame::{FrameArena, FrameInFlight, SceneRef};
pub use image::Image;
pub use options::{RasterKernel, RasterStaging, RenderOptions, SortMode};
pub use pipeline::{FrameProfile, Profiler, Stage, StageKind, StageSample};
pub use projection::{
    project_model, project_model_filtered, project_model_filtered_into, project_model_offset_into,
    ProjectedSplat,
};
pub use raster::{RasterScratch, RenderOutput, Renderer};
pub use stats::{RasterWork, RenderStats, TileGridDims};
