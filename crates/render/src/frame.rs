//! Resumable frames: [`FrameInFlight`] runs the staged pipeline one stage
//! at a time, and [`FrameArena`] recycles a frame's scratch buffers into
//! the next one.
//!
//! [`Renderer::render`](crate::Renderer::render) executes a frame as one
//! synchronous call. A frame *server* (the `ms_serve` crate) instead wants
//! many frames **in flight at once** — Project/Bin of one session's next
//! frame overlapping Raster/Composite of another's — which requires the
//! pipeline to be suspendable between stages. [`Renderer::begin_frame`]
//! returns a [`FrameInFlight`]: a self-contained state machine that owns
//! the frame's camera and intermediate buffers and advances exactly one
//! stage per [`run_stage`](FrameInFlight::run_stage) call. The stage
//! sequence, stage inputs, and profiling are byte-for-byte the ones the
//! monolithic path runs — `render` itself is implemented on top of this
//! machine — so a frame's output is bit-identical no matter how its stages
//! were interleaved with other frames'.
//!
//! [`FrameArena`] holds the large per-frame allocations (the
//! projected-splat vector, the CSR offset/index buffers, and the raster
//! workers' staging scratch pool). A finished frame returns its arena from
//! [`FrameInFlight::finish`]; handing it to the next
//! [`begin_frame`](crate::Renderer::begin_frame) turns the steady-state
//! per-frame cost into buffer reuse instead of allocation. Buffers are
//! cleared before reuse, so arenas never leak data between frames (or
//! sessions) and `FrameArena::default()` is always a valid cold start.

use crate::binning::{ChunkedBinBuilder, MergedTileSchedule, TileBins};
use crate::options::RenderOptions;
use crate::pipeline::{
    BinStage, CompositeStage, Composited, MergeStage, Profiler, ProjectStage, RasterStage,
    StageKind,
};
use crate::projection::{project_model_offset_into, ProjectedSplat};
use crate::raster::{RasterScratch, RenderOutput, Renderer, UnitResult};
use crate::stats::TileGridDims;
use ms_scene::{CacheStats, Camera, ChunkCache, GaussianModel, SceneSource, SourceError};
use std::time::{Duration, Instant};

/// The scene a frame reads its splats from: either a fully resident
/// [`GaussianModel`] (the classic path) or an out-of-core
/// [`SceneSource`](ms_scene::SceneSource) streamed chunk by chunk.
///
/// A `SceneRef` is a borrow, cheap to copy; the frame machinery never
/// clones the underlying data. `&GaussianModel` converts implicitly
/// (`From`), so in-core call sites read exactly as before. With LOD off,
/// the chunked path is bit-identical to the in-core path over the
/// concatenated chunks — pixels, winners and every work counter — for
/// every chunk size and thread count (see `tests/determinism.rs`).
#[derive(Clone, Copy)]
pub enum SceneRef<'a> {
    /// The whole model resident in one `Vec`-of-arrays.
    InCore(&'a GaussianModel),
    /// A chunked source with a bounded resident budget; only one chunk of
    /// it is materialized at a time while the frame streams Project + Bin.
    Chunked(&'a (dyn SceneSource + Sync)),
}

impl<'a> From<&'a GaussianModel> for SceneRef<'a> {
    fn from(model: &'a GaussianModel) -> Self {
        SceneRef::InCore(model)
    }
}

impl SceneRef<'_> {
    /// Total number of points in the scene (the chunked total is the sum
    /// over chunks — the same count the concatenated in-core model has).
    pub fn total_points(&self) -> usize {
        match self {
            SceneRef::InCore(model) => model.len(),
            SceneRef::Chunked(source) => source.total_points(),
        }
    }

    /// Whether this scene streams through the chunked Project/Bin path.
    pub fn is_chunked(&self) -> bool {
        matches!(self, SceneRef::Chunked(_))
    }
}

impl std::fmt::Debug for SceneRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SceneRef::InCore(model) => f
                .debug_struct("SceneRef::InCore")
                .field("points", &model.len())
                .finish(),
            SceneRef::Chunked(source) => f
                .debug_struct("SceneRef::Chunked")
                .field("points", &source.total_points())
                .field("chunks", &source.chunk_count())
                .finish(),
        }
    }
}

/// Recyclable scratch storage for one frame: the projected-splat vector,
/// the CSR `(offsets, indices)` buffers, and the Raster stage's per-worker
/// staging scratch pool. Returned by [`FrameInFlight::finish`] with
/// contents cleared (capacity retained) and accepted by
/// [`Renderer::begin_frame`]; `FrameArena::default()` is a valid cold
/// start that simply allocates on first use.
#[derive(Debug, Default)]
pub struct FrameArena {
    pub(crate) splats: Vec<ProjectedSplat>,
    pub(crate) offsets: Vec<u32>,
    pub(crate) indices: Vec<u32>,
    pub(crate) raster: Vec<RasterScratch>,
}

/// Admission predicate of the unfiltered pipeline, as a named `fn` so
/// [`FrameInFlight`] has a concrete (non-closure) `ProjectStage` type.
fn admit_all(_point: usize) -> bool {
    true
}

/// Unwrap the chunked source a streaming frame step was begun with,
/// mirroring the in-core arm's scene-kind and size checks.
fn expect_chunked<'a>(scene: SceneRef<'a>, model_len: usize) -> &'a (dyn SceneSource + Sync) {
    let SceneRef::Chunked(source) = scene else {
        panic!("frame begun on a chunked source driven with an in-core model")
    };
    debug_assert_eq!(
        source.total_points(),
        model_len,
        "source changed size since begin_frame"
    );
    source
}

/// The streaming half of a chunked frame: the chunk-count and chunk-scatter
/// passes share this state, which owns the bin builder, the double-buffered
/// chunk-decode storage, and the per-frame cache/residency accounting.
///
/// # Double buffering
///
/// While the frame projects (and counts or scatters) chunk `k` out of
/// `chunk`, the *next* chunk `k + 1` decodes on the worker pool into
/// `next_chunk` — a one-deep prefetch, so at most two chunk buffers are
/// ever resident (the `cache_budget + 2 × chunk_bytes` budget documented on
/// [`RenderOptions::cache_budget_bytes`](crate::RenderOptions)). Chunks are
/// still *consumed* strictly in index order — the prefetch only moves the
/// decode earlier in time, never reorders it — and a prefetched load's
/// error is held in `prefetched` until its chunk would have been consumed,
/// so a failing source surfaces the same error at the same chunk index as
/// the unprefetched path.
struct ChunkStream {
    builder: ChunkedBinBuilder,
    /// Chunk buffer currently being projected (the resident-budget unit).
    chunk: GaussianModel,
    /// Prefetch target: chunk `next + 1` decodes into this buffer while
    /// `chunk` is projected; the buffers swap when it is consumed.
    next_chunk: GaussianModel,
    /// Outcome of the in-flight prefetch, if one was issued: the cache
    /// access for chunk `next` now sitting in `next_chunk`, or the load
    /// error to surface when that chunk is consumed.
    prefetched: Option<Result<ms_scene::CacheAccess, SourceError>>,
    /// Reused per-chunk projection buffer.
    scratch: Vec<ProjectedSplat>,
    /// The final visible-splat vector (filled during pass 2); carried from
    /// pass 1 so the arena's recycled capacity is not dropped.
    splats: Vec<ProjectedSplat>,
    /// Next chunk index of the current pass.
    next: usize,
    /// Accumulated wall time attributed to the Project sample.
    project_wall: Duration,
    /// Accumulated wall time attributed to the Bin sample.
    bin_wall: Duration,
    /// Running peaks for the frame-profile memory counters. The chunk peak
    /// counts the largest *single* buffer, matching the pre-prefetch
    /// meaning; the two-buffer residency is the documented budget, not a
    /// measured counter.
    chunk_bytes_peak: u64,
    projected_bytes_peak: u64,
    /// Cache traffic this frame generated (lands in the frame profile).
    cache: CacheStats,
}

impl ChunkStream {
    fn new(options: &RenderOptions, grid: TileGridDims, arena: FrameArena) -> Self {
        let mut splats = arena.splats;
        splats.clear();
        ChunkStream {
            builder: ChunkedBinBuilder::new(
                grid,
                options.resolved_threads(),
                (arena.offsets, arena.indices),
            ),
            chunk: GaussianModel::new(0),
            next_chunk: GaussianModel::new(0),
            prefetched: None,
            scratch: Vec::new(),
            splats,
            next: 0,
            project_wall: Duration::ZERO,
            bin_wall: Duration::ZERO,
            chunk_bytes_peak: 0,
            projected_bytes_peak: 0,
            cache: CacheStats::default(),
        }
    }

    /// Obtain chunk `self.next` (from the prefetch buffer or a fresh cache
    /// load) and project it into `scratch` with its global point-index
    /// base, so projected `point_index` values match the concatenated
    /// in-core model's; then kick off the prefetch of the following chunk
    /// on the worker pool, overlapping its decode with the projection.
    fn load_and_project(
        &mut self,
        cache: &ChunkCache,
        source: &(dyn SceneSource + Sync),
        camera: &Camera,
        options: &RenderOptions,
    ) -> Result<(), SourceError> {
        let index = self.next;
        let access = match self.prefetched.take() {
            Some(result) => {
                std::mem::swap(&mut self.chunk, &mut self.next_chunk);
                result?
            }
            None => cache.load_into(source, index, 0, &mut self.chunk)?,
        };
        if access.hit {
            self.cache.hits += 1;
        } else {
            self.cache.misses += 1;
        }
        self.cache.evictions += access.evictions;
        self.cache.resident_bytes_peak = self.cache.resident_bytes_peak.max(cache.resident_bytes());
        let base =
            u32::try_from(source.chunk_base(index)).expect("scene exceeds u32 point indexing");
        let next_index = index + 1;
        if next_index < source.chunk_count() {
            let chunk = &self.chunk;
            let next_chunk = &mut self.next_chunk;
            let prefetched = &mut self.prefetched;
            let scratch = &mut self.scratch;
            rayon::scope(|s| {
                s.spawn(move |_| {
                    *prefetched = Some(cache.load_into(source, next_index, 0, next_chunk));
                });
                project_model_offset_into(chunk, camera, options, base, &admit_all, scratch);
            });
        } else {
            project_model_offset_into(
                &self.chunk,
                camera,
                options,
                base,
                &admit_all,
                &mut self.scratch,
            );
        }
        Ok(())
    }

    /// Advance the chunk-count pass by one chunk.
    fn step_count(
        &mut self,
        cache: &ChunkCache,
        source: &(dyn SceneSource + Sync),
        camera: &Camera,
        options: &RenderOptions,
    ) -> Result<(), SourceError> {
        let start = Instant::now();
        self.load_and_project(cache, source, camera, options)?;
        self.project_wall += start.elapsed();
        let start = Instant::now();
        self.builder.count_chunk(&self.scratch);
        self.bin_wall += start.elapsed();
        self.observe_peaks();
        self.next += 1;
        Ok(())
    }

    /// Advance the chunk-scatter pass by one chunk.
    fn step_scatter(
        &mut self,
        cache: &ChunkCache,
        source: &(dyn SceneSource + Sync),
        camera: &Camera,
        options: &RenderOptions,
    ) -> Result<(), SourceError> {
        let start = Instant::now();
        self.load_and_project(cache, source, camera, options)?;
        self.project_wall += start.elapsed();
        let start = Instant::now();
        // CSR indices address the *visible-splat* vector, so the chunk's
        // scatter base is where its projection lands in that vector —
        // chunks append in order, making every tile segment fill in global
        // splat order (the in-core fill) for any chunk size.
        self.builder
            .scatter_chunk(&self.scratch, self.splats.len() as u32);
        self.bin_wall += start.elapsed();
        self.splats.extend_from_slice(&self.scratch);
        self.observe_peaks();
        self.next += 1;
        Ok(())
    }

    fn observe_peaks(&mut self) {
        self.chunk_bytes_peak = self.chunk_bytes_peak.max(self.chunk.storage_bytes() as u64);
        self.projected_bytes_peak = self
            .projected_bytes_peak
            .max((self.scratch.len() * std::mem::size_of::<ProjectedSplat>()) as u64);
    }

    /// Recover the arena-owned buffers from a failed frame (cleared, with
    /// capacity retained) so the fault costs no steady-state allocations.
    /// The raster scratch pool lives on `FrameInFlight` and rejoins in
    /// [`FrameInFlight::into_failure`].
    fn into_arena(self) -> FrameArena {
        let ChunkStream {
            builder,
            mut splats,
            ..
        } = self;
        splats.clear();
        let (offsets, indices) = builder.into_recycle();
        FrameArena {
            splats,
            offsets,
            indices,
            raster: Vec::new(),
        }
    }
}

/// Where a [`FrameInFlight`] is in the Project → Bin → Merge → Raster →
/// Composite pipeline, carrying the intermediates produced so far.
enum State {
    /// Nothing ran yet; holds the recycled arena.
    Project { arena: FrameArena },
    /// Streaming pass 1 over a chunked source (reported as the Project
    /// stage): each [`run_stage`](FrameInFlight::run_stage) call obtains
    /// one chunk (prefetch buffer, chunk cache, or source decode), projects
    /// it into the recycled `scratch` buffer with its global point-index
    /// base, and accumulates per-tile intersection counts into the builder
    /// — then drops the chunk. At most two chunk buffers (current +
    /// prefetch) are ever resident.
    ChunkCount(ChunkStream),
    /// Streaming pass 2 over the same chunks in the same order (reported
    /// as the Bin stage): re-obtain one chunk per call — a cache hit when
    /// the budget held onto pass 1's decode — scatter its CSR indices with
    /// persistent per-tile cursors, and append its projection to the
    /// visible-splat vector. After the last chunk the tile segments are
    /// depth-sorted and the frame joins the in-core pipeline at Merge.
    ChunkScatter {
        stream: ChunkStream,
        /// Total intersections from [`ChunkedBinBuilder::seal`] — the Bin
        /// sample's work counter.
        total_intersections: u64,
    },
    /// A chunk load failed. The frame is abandoned — no output exists —
    /// but its recycled buffers were recovered into `arena` so the fault
    /// does not cost the owner its allocation steady state
    /// ([`FrameInFlight::into_failure`] hands both back).
    Failed {
        error: SourceError,
        arena: FrameArena,
    },
    /// Project done.
    Bin {
        splats: Vec<ProjectedSplat>,
        recycle: (Vec<u32>, Vec<u32>),
    },
    /// Bin done.
    Merge {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
    },
    /// Merge done.
    Raster {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
        schedule: MergedTileSchedule,
    },
    /// Raster done.
    Composite {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
        schedule: MergedTileSchedule,
        units: Vec<UnitResult>,
    },
    /// Composite done; [`FrameInFlight::finish`] assembles the output.
    Done {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
        schedule: MergedTileSchedule,
        composited: Composited,
    },
    /// A stage panicked mid-transition (the state was taken and never put
    /// back). Any further use of the frame is a bug.
    Poisoned,
}

/// A frame suspended between pipeline stages.
///
/// Created by [`Renderer::begin_frame`]; driven by repeated
/// [`run_stage`](FrameInFlight::run_stage) calls (each executes exactly one
/// stage) and consumed by [`finish`](FrameInFlight::finish) once done. The
/// frame owns its camera and every intermediate buffer, so independent
/// frames — of one session or many — can be advanced in any interleaving,
/// including concurrently from worker-pool tasks (`FrameInFlight` is
/// `Send`): the output is bit-identical to
/// [`Renderer::render`](crate::Renderer::render) on the same model and
/// camera by construction, because `render` runs this exact machine to
/// completion.
pub struct FrameInFlight {
    camera: Camera,
    model_len: usize,
    profiler: Profiler,
    state: State,
    /// Raster staging scratch pool, taken out of the incoming arena so the
    /// Raster stage can borrow it mutably alongside the pipeline state;
    /// rejoins the arena in [`finish`](Self::finish).
    raster_scratch: Vec<RasterScratch>,
    /// `(chunk_bytes_peak, projected_bytes_peak)` measured by the chunked
    /// streaming passes; `None` on the in-core path, whose peaks are
    /// derived from the final splat vector when the output is assembled.
    peaks: Option<(u64, u64)>,
    /// Chunk-cache traffic measured by the streaming passes; zeros on the
    /// in-core path, which never touches the cache.
    cache_stats: CacheStats,
}

impl std::fmt::Debug for FrameInFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameInFlight")
            .field(
                "camera",
                &format_args!("{}x{}", self.camera.width, self.camera.height),
            )
            .field("model_len", &self.model_len)
            .field("next_stage", &self.next_stage())
            .finish()
    }
}

impl FrameInFlight {
    /// Start a frame at the Project stage (in-core scenes) or at the
    /// chunk-counting pass (chunked sources). Callers go through
    /// [`Renderer::begin_frame`] / [`Renderer::begin_frame_source`], which
    /// perform the camera checks first.
    pub(crate) fn new(
        camera: Camera,
        scene: SceneRef<'_>,
        options: &RenderOptions,
        mut arena: FrameArena,
    ) -> Self {
        let raster_scratch = std::mem::take(&mut arena.raster);
        let state = match scene {
            SceneRef::InCore(_) => State::Project { arena },
            SceneRef::Chunked(_) => {
                let grid = TileGridDims::for_image(camera.width, camera.height, options.tile_size);
                State::ChunkCount(ChunkStream::new(options, grid, arena))
            }
        };
        Self {
            camera,
            model_len: scene.total_points(),
            profiler: Profiler::default(),
            state,
            raster_scratch,
            peaks: None,
            cache_stats: CacheStats::default(),
        }
    }

    /// The camera this frame renders.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Whether every stage has run ([`finish`](Self::finish) is ready).
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done { .. })
    }

    /// Whether a chunk load failed and the frame was abandoned — no output
    /// exists; consume with [`into_failure`](Self::into_failure) to recover
    /// the error and the recycled arena. A failure is confined to this
    /// frame: nothing shared (renderer, cache, worker pool) is poisoned,
    /// and the next frame begun from the recovered arena renders exactly
    /// as if this one had never run.
    pub fn is_failed(&self) -> bool {
        matches!(self.state, State::Failed { .. })
    }

    /// The stage the next [`run_stage`](Self::run_stage) call will execute,
    /// or `None` once the frame is done — or failed, which also has no
    /// next stage to run.
    pub fn next_stage(&self) -> Option<StageKind> {
        match self.state {
            State::Project { .. } | State::ChunkCount { .. } => Some(StageKind::Project),
            State::Bin { .. } | State::ChunkScatter { .. } => Some(StageKind::Bin),
            State::Merge { .. } => Some(StageKind::Merge),
            State::Raster { .. } => Some(StageKind::Raster),
            State::Composite { .. } => Some(StageKind::Composite),
            State::Done { .. } | State::Failed { .. } => None,
            State::Poisoned => panic!("frame poisoned by an earlier stage panic"),
        }
    }

    /// Execute the next pipeline step; returns `true` once the frame needs
    /// no more pumping — finished ([`is_done`](Self::is_done), collect with
    /// [`finish`](Self::finish)) or failed ([`is_failed`](Self::is_failed),
    /// collect with [`into_failure`](Self::into_failure)).
    /// `renderer` and `scene` must be the ones the frame was begun
    /// with — the frame carries no back-references so it can be `Send` and
    /// self-contained, and the frame server guarantees the pairing by
    /// owning both. `scene` accepts a plain `&GaussianModel` (in-core
    /// frames) or a [`SceneRef`].
    ///
    /// In-core frames advance exactly one pipeline stage per call. Chunked
    /// frames advance one *chunk* per call while in the streaming Project
    /// and Bin passes (so a frame server interleaves chunk work across
    /// sessions at the same granularity it interleaves stages), then one
    /// stage per call from Merge on.
    ///
    /// A chunk-load failure does **not** panic: the frame transitions to
    /// the failed state (recovering its recycled buffers) and further
    /// calls are no-ops returning `true`.
    ///
    /// # Panics
    ///
    /// Panics when called on a finished or poisoned frame, when the scene
    /// kind differs from the one the frame was begun with, or (debug only)
    /// when the scene changed size since [`Renderer::begin_frame`].
    pub fn run_stage<'a>(&mut self, renderer: &Renderer, scene: impl Into<SceneRef<'a>>) -> bool {
        let scene = scene.into();
        let options = renderer.options();
        self.state = match std::mem::replace(&mut self.state, State::Poisoned) {
            State::Project { arena } => {
                let SceneRef::InCore(model) = scene else {
                    panic!("frame begun on an in-core model driven with a chunked source")
                };
                debug_assert_eq!(
                    model.len(),
                    self.model_len,
                    "model changed size since begin_frame"
                );
                let mut stage = ProjectStage {
                    model,
                    camera: &self.camera,
                    options,
                    admit: admit_all,
                    recycle: arena.splats,
                };
                let splats = self.profiler.run(&mut stage, ());
                State::Bin {
                    splats,
                    recycle: (arena.offsets, arena.indices),
                }
            }
            State::ChunkCount(mut stream) => {
                let source = expect_chunked(scene, self.model_len);
                let mut failed = None;
                if stream.next < source.chunk_count() {
                    if let Err(e) =
                        stream.step_count(renderer.chunk_cache(), source, &self.camera, options)
                    {
                        failed = Some(e);
                    }
                }
                if let Some(error) = failed {
                    State::Failed {
                        error,
                        arena: stream.into_arena(),
                    }
                } else if stream.next == source.chunk_count() {
                    let start = Instant::now();
                    let total_intersections = stream.builder.seal();
                    stream.bin_wall += start.elapsed();
                    // Pass 2 restarts the chunk walk; the last counted chunk
                    // never prefetched a successor, so the buffer is free.
                    debug_assert!(stream.prefetched.is_none());
                    stream.next = 0;
                    State::ChunkScatter {
                        stream,
                        total_intersections,
                    }
                } else {
                    State::ChunkCount(stream)
                }
            }
            State::ChunkScatter {
                mut stream,
                total_intersections,
            } => {
                let source = expect_chunked(scene, self.model_len);
                let mut failed = None;
                if stream.next < source.chunk_count() {
                    if let Err(e) =
                        stream.step_scatter(renderer.chunk_cache(), source, &self.camera, options)
                    {
                        failed = Some(e);
                    }
                }
                if let Some(error) = failed {
                    State::Failed {
                        error,
                        arena: stream.into_arena(),
                    }
                } else if stream.next == source.chunk_count() {
                    let ChunkStream {
                        builder,
                        splats,
                        project_wall,
                        mut bin_wall,
                        chunk_bytes_peak,
                        projected_bytes_peak,
                        cache,
                        ..
                    } = stream;
                    let start = Instant::now();
                    let bins = builder.finish(&splats);
                    bin_wall += start.elapsed();
                    // One aggregate sample per stage, so chunked profiles
                    // carry the same sample sequence (and equal kind/items
                    // pairs) as in-core ones.
                    self.profiler
                        .record(StageKind::Project, project_wall, splats.len() as u64);
                    self.profiler
                        .record(StageKind::Bin, bin_wall, total_intersections);
                    self.peaks = Some((chunk_bytes_peak, projected_bytes_peak));
                    self.cache_stats = cache;
                    State::Merge { splats, bins }
                } else {
                    State::ChunkScatter {
                        stream,
                        total_intersections,
                    }
                }
            }
            State::Bin { splats, recycle } => {
                let grid = TileGridDims::for_image(
                    self.camera.width,
                    self.camera.height,
                    options.tile_size,
                );
                let mut stage = BinStage {
                    splats: &splats,
                    grid,
                    mask: None,
                    threads: options.resolved_threads(),
                    recycle,
                };
                let bins = self.profiler.run(&mut stage, ());
                State::Merge { splats, bins }
            }
            State::Merge { splats, bins } => {
                let mut stage = MergeStage { options };
                let schedule = self.profiler.run(&mut stage, &bins);
                State::Raster {
                    splats,
                    bins,
                    schedule,
                }
            }
            State::Raster {
                splats,
                bins,
                schedule,
            } => {
                let mut stage = RasterStage {
                    splats: &splats,
                    options,
                    camera: &self.camera,
                    mask: None,
                    scratch: &mut self.raster_scratch,
                };
                let units = self.profiler.run(&mut stage, (&bins, &schedule));
                State::Composite {
                    splats,
                    bins,
                    schedule,
                    units,
                }
            }
            State::Composite {
                splats,
                bins,
                schedule,
                units,
            } => {
                let mut stage = CompositeStage {
                    camera: &self.camera,
                    options,
                    track_winners: options.track_point_stats,
                };
                let composited = self.profiler.run(&mut stage, units);
                State::Done {
                    splats,
                    bins,
                    schedule,
                    composited,
                }
            }
            // A failed frame absorbs further pumps as no-ops: a scheduler
            // that queued stage work before observing the failure must be
            // able to drain it harmlessly.
            state @ State::Failed { .. } => state,
            State::Done { .. } => panic!("run_stage called on a finished frame"),
            State::Poisoned => panic!("frame poisoned by an earlier stage panic"),
        };
        self.is_done() || self.is_failed()
    }

    /// Consume the finished frame: assemble its [`RenderOutput`] (the same
    /// statistics path the monolithic renderer uses) and return the cleared
    /// [`FrameArena`] for the next frame.
    ///
    /// # Panics
    ///
    /// Panics unless [`is_done`](Self::is_done) — drive the frame with
    /// [`run_stage`](Self::run_stage) first.
    pub fn finish(self, renderer: &Renderer) -> (RenderOutput, FrameArena) {
        let State::Done {
            mut splats,
            bins,
            schedule,
            composited,
        } = self.state
        else {
            panic!("finish called before the frame completed");
        };
        let mut output = crate::raster::assemble_output(
            renderer.options(),
            self.model_len,
            &splats,
            &bins,
            &schedule,
            composited,
            self.profiler,
        );
        // The chunked streaming passes measured their own residency peaks
        // (bounded by the chunk size); the in-core defaults from
        // `assemble_output` stand otherwise.
        if let Some((chunk_peak, projected_peak)) = self.peaks {
            output.stats.profile.chunk_bytes_peak = chunk_peak;
            output.stats.profile.projected_bytes_peak = projected_peak;
        }
        output.stats.profile.cache = self.cache_stats;
        splats.clear();
        let (mut offsets, mut indices) = bins.into_buffers();
        offsets.clear();
        indices.clear();
        let mut raster = self.raster_scratch;
        for scratch in &mut raster {
            scratch.clear();
        }
        (
            output,
            FrameArena {
                splats,
                offsets,
                indices,
                raster,
            },
        )
    }

    /// Consume a failed frame, yielding the chunk-load error and the
    /// recovered [`FrameArena`] (cleared, capacity retained — including the
    /// raster scratch pool). The arena is exactly as reusable as one from
    /// [`finish`](Self::finish): the failure poisons nothing, so the next
    /// frame begun from it renders bit-identically to a cold start.
    ///
    /// # Panics
    ///
    /// Panics unless [`is_failed`](Self::is_failed).
    pub fn into_failure(self) -> (SourceError, FrameArena) {
        let State::Failed { error, mut arena } = self.state else {
            panic!("into_failure called on a frame that did not fail");
        };
        let mut raster = self.raster_scratch;
        for scratch in &mut raster {
            scratch.clear();
        }
        arena.raster = raster;
        (error, arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};

    /// A small multi-splat scene that exercises every stage (several tiles
    /// occupied, overlapping depths).
    fn scene() -> (GaussianModel, Camera) {
        let mut m = GaussianModel::new(0);
        for i in 0..40 {
            let f = i as f32;
            m.push_solid(
                Vec3::new(
                    (f * 0.13).sin() * 1.2,
                    (f * 0.29).cos() * 0.9,
                    f * 0.05 - 1.0,
                ),
                Vec3::splat(0.12 + 0.01 * (f * 0.7).sin().abs()),
                Quat::identity(),
                0.6,
                Vec3::new(f / 40.0, 1.0 - f / 40.0, 0.5),
            );
        }
        let camera = Camera::look_at(64, 48, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        (m, camera)
    }

    #[test]
    fn staged_frame_matches_monolithic_render() {
        let (model, camera) = scene();
        let options = crate::RenderOptions::with_point_stats();
        let renderer = Renderer::new(options);
        let reference = renderer.render(&model, &camera);

        let mut frame = renderer.begin_frame(&model, &camera, FrameArena::default());
        let expected = [
            StageKind::Project,
            StageKind::Bin,
            StageKind::Merge,
            StageKind::Raster,
            StageKind::Composite,
        ];
        for (i, kind) in expected.iter().enumerate() {
            assert_eq!(frame.next_stage(), Some(*kind));
            assert!(!frame.is_done());
            let done = frame.run_stage(&renderer, &model);
            assert_eq!(done, i + 1 == expected.len());
        }
        assert_eq!(frame.next_stage(), None);
        let (output, arena) = frame.finish(&renderer);
        assert_eq!(output, reference);
        // The recycled arena comes back cleared but with capacity.
        assert!(arena.splats.is_empty());
        assert!(arena.offsets.is_empty());
        assert!(arena.indices.is_empty());
        assert!(arena.splats.capacity() > 0);
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        let (model, camera) = scene();
        let renderer = Renderer::new(crate::RenderOptions::with_tile_merging());
        let (first, arena) = renderer.render_with_arena(&model, &camera, FrameArena::default());
        let (second, _) = renderer.render_with_arena(&model, &camera, arena);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "finish called before the frame completed")]
    fn finish_before_done_panics() {
        let (model, camera) = scene();
        let renderer = Renderer::default();
        let mut frame = renderer.begin_frame(&model, &camera, FrameArena::default());
        frame.run_stage(&renderer, &model);
        frame.finish(&renderer);
    }

    #[test]
    #[should_panic(expected = "run_stage called on a finished frame")]
    fn run_stage_after_done_panics() {
        let (model, camera) = scene();
        let renderer = Renderer::default();
        let mut frame = renderer.begin_frame(&model, &camera, FrameArena::default());
        while !frame.run_stage(&renderer, &model) {}
        frame.run_stage(&renderer, &model);
    }

    /// `FrameInFlight` must stay `Send` — the frame server moves frames
    /// into worker-pool tasks.
    #[test]
    fn frame_in_flight_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FrameInFlight>();
        assert_send::<FrameArena>();
    }

    #[test]
    fn chunked_render_matches_in_core_for_every_chunk_size() {
        let (model, camera) = scene();
        let renderer = Renderer::new(crate::RenderOptions::with_point_stats());
        let reference = renderer.render(&model, &camera);
        let mut arena = FrameArena::default();
        for chunk_splats in [1, 7, 39, 40, 1000] {
            let source = ms_scene::InCoreSource::new(model.clone(), chunk_splats);
            let out;
            (out, arena) = renderer.render_source_with_arena(&source, &camera, arena);
            assert_eq!(out, reference, "chunk size {chunk_splats}");
            // Profile equality compares (kind, items) pairs — the chunked
            // aggregate samples must mirror the in-core stage sequence.
            assert_eq!(
                out.stats.profile, reference.stats.profile,
                "chunk size {chunk_splats}"
            );
        }
    }

    #[test]
    fn chunked_peak_counters_are_bounded_by_chunk_size() {
        let (model, camera) = scene();
        let renderer = Renderer::default();
        let reference = renderer.render(&model, &camera);
        // In-core: no chunk buffer, projection scratch is the whole
        // visible-splat vector.
        assert_eq!(reference.stats.profile.chunk_bytes_peak, 0);
        assert_eq!(
            reference.stats.profile.projected_bytes_peak,
            (reference.stats.points_projected * std::mem::size_of::<ProjectedSplat>()) as u64
        );
        let chunk_splats = 7;
        let source = ms_scene::InCoreSource::new(model.clone(), chunk_splats);
        let out = renderer.render_source(&source, &camera);
        let chunked = &out.stats.profile;
        assert!(chunked.chunk_bytes_peak > 0);
        // One chunk's worth of points bounds both peaks, model size does not.
        let max_chunk_bytes = {
            let mut probe = GaussianModel::new(0);
            model.clone_range_into(0..chunk_splats, &mut probe);
            probe.storage_bytes() as u64
        };
        assert!(chunked.chunk_bytes_peak <= max_chunk_bytes);
        assert!(
            chunked.projected_bytes_peak
                <= (chunk_splats * std::mem::size_of::<ProjectedSplat>()) as u64
        );
        assert!(chunked.projected_bytes_peak < reference.stats.profile.projected_bytes_peak);
    }

    #[test]
    fn empty_model_renders_clear_frame_in_core_and_chunked() {
        let model = GaussianModel::new(0);
        let camera = Camera::look_at(32, 24, 60.0, Vec3::new(0.0, 0.0, 3.0), Vec3::zero());
        let renderer = Renderer::new(crate::RenderOptions {
            background: Vec3::new(0.1, 0.2, 0.3),
            ..crate::RenderOptions::default()
        });
        let reference = renderer.render(&model, &camera);
        for px in 0..32u32 {
            assert_eq!(reference.image.pixel(px, 11), Vec3::new(0.1, 0.2, 0.3));
        }
        // An empty model is a 0-chunk source; the streaming passes must
        // degenerate cleanly instead of indexing a first chunk.
        let source = ms_scene::InCoreSource::new(model, 4096);
        assert_eq!(source.chunk_count(), 0);
        let out = renderer.render_source(&source, &camera);
        assert_eq!(out, reference);
    }
}
