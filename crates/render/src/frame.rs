//! Resumable frames: [`FrameInFlight`] runs the staged pipeline one stage
//! at a time, and [`FrameArena`] recycles a frame's scratch buffers into
//! the next one.
//!
//! [`Renderer::render`](crate::Renderer::render) executes a frame as one
//! synchronous call. A frame *server* (the `ms_serve` crate) instead wants
//! many frames **in flight at once** — Project/Bin of one session's next
//! frame overlapping Raster/Composite of another's — which requires the
//! pipeline to be suspendable between stages. [`Renderer::begin_frame`]
//! returns a [`FrameInFlight`]: a self-contained state machine that owns
//! the frame's camera and intermediate buffers and advances exactly one
//! stage per [`run_stage`](FrameInFlight::run_stage) call. The stage
//! sequence, stage inputs, and profiling are byte-for-byte the ones the
//! monolithic path runs — `render` itself is implemented on top of this
//! machine — so a frame's output is bit-identical no matter how its stages
//! were interleaved with other frames'.
//!
//! [`FrameArena`] holds the large per-frame allocations (the
//! projected-splat vector, the CSR offset/index buffers, and the raster
//! workers' staging scratch pool). A finished frame returns its arena from
//! [`FrameInFlight::finish`]; handing it to the next
//! [`begin_frame`](crate::Renderer::begin_frame) turns the steady-state
//! per-frame cost into buffer reuse instead of allocation. Buffers are
//! cleared before reuse, so arenas never leak data between frames (or
//! sessions) and `FrameArena::default()` is always a valid cold start.

use crate::binning::{MergedTileSchedule, TileBins};
use crate::pipeline::{
    BinStage, CompositeStage, Composited, MergeStage, Profiler, ProjectStage, RasterStage,
    StageKind,
};
use crate::projection::ProjectedSplat;
use crate::raster::{RasterScratch, RenderOutput, Renderer, UnitResult};
use crate::stats::TileGridDims;
use ms_scene::{Camera, GaussianModel};

/// Recyclable scratch storage for one frame: the projected-splat vector,
/// the CSR `(offsets, indices)` buffers, and the Raster stage's per-worker
/// staging scratch pool. Returned by [`FrameInFlight::finish`] with
/// contents cleared (capacity retained) and accepted by
/// [`Renderer::begin_frame`]; `FrameArena::default()` is a valid cold
/// start that simply allocates on first use.
#[derive(Debug, Default)]
pub struct FrameArena {
    pub(crate) splats: Vec<ProjectedSplat>,
    pub(crate) offsets: Vec<u32>,
    pub(crate) indices: Vec<u32>,
    pub(crate) raster: Vec<RasterScratch>,
}

/// Admission predicate of the unfiltered pipeline, as a named `fn` so
/// [`FrameInFlight`] has a concrete (non-closure) `ProjectStage` type.
fn admit_all(_point: usize) -> bool {
    true
}

/// Where a [`FrameInFlight`] is in the Project → Bin → Merge → Raster →
/// Composite pipeline, carrying the intermediates produced so far.
enum State {
    /// Nothing ran yet; holds the recycled arena.
    Project { arena: FrameArena },
    /// Project done.
    Bin {
        splats: Vec<ProjectedSplat>,
        recycle: (Vec<u32>, Vec<u32>),
    },
    /// Bin done.
    Merge {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
    },
    /// Merge done.
    Raster {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
        schedule: MergedTileSchedule,
    },
    /// Raster done.
    Composite {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
        schedule: MergedTileSchedule,
        units: Vec<UnitResult>,
    },
    /// Composite done; [`FrameInFlight::finish`] assembles the output.
    Done {
        splats: Vec<ProjectedSplat>,
        bins: TileBins,
        schedule: MergedTileSchedule,
        composited: Composited,
    },
    /// A stage panicked mid-transition (the state was taken and never put
    /// back). Any further use of the frame is a bug.
    Poisoned,
}

/// A frame suspended between pipeline stages.
///
/// Created by [`Renderer::begin_frame`]; driven by repeated
/// [`run_stage`](FrameInFlight::run_stage) calls (each executes exactly one
/// stage) and consumed by [`finish`](FrameInFlight::finish) once done. The
/// frame owns its camera and every intermediate buffer, so independent
/// frames — of one session or many — can be advanced in any interleaving,
/// including concurrently from worker-pool tasks (`FrameInFlight` is
/// `Send`): the output is bit-identical to
/// [`Renderer::render`](crate::Renderer::render) on the same model and
/// camera by construction, because `render` runs this exact machine to
/// completion.
pub struct FrameInFlight {
    camera: Camera,
    model_len: usize,
    profiler: Profiler,
    state: State,
    /// Raster staging scratch pool, taken out of the incoming arena so the
    /// Raster stage can borrow it mutably alongside the pipeline state;
    /// rejoins the arena in [`finish`](Self::finish).
    raster_scratch: Vec<RasterScratch>,
}

impl std::fmt::Debug for FrameInFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameInFlight")
            .field(
                "camera",
                &format_args!("{}x{}", self.camera.width, self.camera.height),
            )
            .field("model_len", &self.model_len)
            .field("next_stage", &self.next_stage())
            .finish()
    }
}

impl FrameInFlight {
    /// Start a frame at the Project stage. Callers go through
    /// [`Renderer::begin_frame`], which performs the camera checks first.
    pub(crate) fn new(camera: Camera, model_len: usize, mut arena: FrameArena) -> Self {
        let raster_scratch = std::mem::take(&mut arena.raster);
        Self {
            camera,
            model_len,
            profiler: Profiler::default(),
            state: State::Project { arena },
            raster_scratch,
        }
    }

    /// The camera this frame renders.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Whether every stage has run ([`finish`](Self::finish) is ready).
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done { .. })
    }

    /// The stage the next [`run_stage`](Self::run_stage) call will execute,
    /// or `None` once the frame is done.
    pub fn next_stage(&self) -> Option<StageKind> {
        match self.state {
            State::Project { .. } => Some(StageKind::Project),
            State::Bin { .. } => Some(StageKind::Bin),
            State::Merge { .. } => Some(StageKind::Merge),
            State::Raster { .. } => Some(StageKind::Raster),
            State::Composite { .. } => Some(StageKind::Composite),
            State::Done { .. } => None,
            State::Poisoned => panic!("frame poisoned by an earlier stage panic"),
        }
    }

    /// Execute the next pipeline stage; returns `true` once the frame is
    /// done. `renderer` and `model` must be the ones the frame was begun
    /// with — the frame carries no back-references so it can be `Send` and
    /// self-contained, and the frame server guarantees the pairing by
    /// owning both.
    ///
    /// # Panics
    ///
    /// Panics when called on a finished or poisoned frame, or (debug only)
    /// when `model` has a different length than at
    /// [`Renderer::begin_frame`].
    pub fn run_stage(&mut self, renderer: &Renderer, model: &GaussianModel) -> bool {
        let options = renderer.options();
        self.state = match std::mem::replace(&mut self.state, State::Poisoned) {
            State::Project { arena } => {
                debug_assert_eq!(
                    model.len(),
                    self.model_len,
                    "model changed size since begin_frame"
                );
                let mut stage = ProjectStage {
                    model,
                    camera: &self.camera,
                    options,
                    admit: admit_all,
                    recycle: arena.splats,
                };
                let splats = self.profiler.run(&mut stage, ());
                State::Bin {
                    splats,
                    recycle: (arena.offsets, arena.indices),
                }
            }
            State::Bin { splats, recycle } => {
                let grid = TileGridDims::for_image(
                    self.camera.width,
                    self.camera.height,
                    options.tile_size,
                );
                let mut stage = BinStage {
                    splats: &splats,
                    grid,
                    mask: None,
                    threads: options.resolved_threads(),
                    recycle,
                };
                let bins = self.profiler.run(&mut stage, ());
                State::Merge { splats, bins }
            }
            State::Merge { splats, bins } => {
                let mut stage = MergeStage { options };
                let schedule = self.profiler.run(&mut stage, &bins);
                State::Raster {
                    splats,
                    bins,
                    schedule,
                }
            }
            State::Raster {
                splats,
                bins,
                schedule,
            } => {
                let mut stage = RasterStage {
                    splats: &splats,
                    options,
                    camera: &self.camera,
                    mask: None,
                    scratch: &mut self.raster_scratch,
                };
                let units = self.profiler.run(&mut stage, (&bins, &schedule));
                State::Composite {
                    splats,
                    bins,
                    schedule,
                    units,
                }
            }
            State::Composite {
                splats,
                bins,
                schedule,
                units,
            } => {
                let mut stage = CompositeStage {
                    camera: &self.camera,
                    options,
                    track_winners: options.track_point_stats,
                };
                let composited = self.profiler.run(&mut stage, units);
                State::Done {
                    splats,
                    bins,
                    schedule,
                    composited,
                }
            }
            State::Done { .. } => panic!("run_stage called on a finished frame"),
            State::Poisoned => panic!("frame poisoned by an earlier stage panic"),
        };
        self.is_done()
    }

    /// Consume the finished frame: assemble its [`RenderOutput`] (the same
    /// statistics path the monolithic renderer uses) and return the cleared
    /// [`FrameArena`] for the next frame.
    ///
    /// # Panics
    ///
    /// Panics unless [`is_done`](Self::is_done) — drive the frame with
    /// [`run_stage`](Self::run_stage) first.
    pub fn finish(self, renderer: &Renderer) -> (RenderOutput, FrameArena) {
        let State::Done {
            mut splats,
            bins,
            schedule,
            composited,
        } = self.state
        else {
            panic!("finish called before the frame completed");
        };
        let output = crate::raster::assemble_output(
            renderer.options(),
            self.model_len,
            &splats,
            &bins,
            &schedule,
            composited,
            self.profiler,
        );
        splats.clear();
        let (mut offsets, mut indices) = bins.into_buffers();
        offsets.clear();
        indices.clear();
        let mut raster = self.raster_scratch;
        for scratch in &mut raster {
            scratch.clear();
        }
        (
            output,
            FrameArena {
                splats,
                offsets,
                indices,
                raster,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};

    /// A small multi-splat scene that exercises every stage (several tiles
    /// occupied, overlapping depths).
    fn scene() -> (GaussianModel, Camera) {
        let mut m = GaussianModel::new(0);
        for i in 0..40 {
            let f = i as f32;
            m.push_solid(
                Vec3::new(
                    (f * 0.13).sin() * 1.2,
                    (f * 0.29).cos() * 0.9,
                    f * 0.05 - 1.0,
                ),
                Vec3::splat(0.12 + 0.01 * (f * 0.7).sin().abs()),
                Quat::identity(),
                0.6,
                Vec3::new(f / 40.0, 1.0 - f / 40.0, 0.5),
            );
        }
        let camera = Camera::look_at(64, 48, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        (m, camera)
    }

    #[test]
    fn staged_frame_matches_monolithic_render() {
        let (model, camera) = scene();
        let options = crate::RenderOptions::with_point_stats();
        let renderer = Renderer::new(options);
        let reference = renderer.render(&model, &camera);

        let mut frame = renderer.begin_frame(&model, &camera, FrameArena::default());
        let expected = [
            StageKind::Project,
            StageKind::Bin,
            StageKind::Merge,
            StageKind::Raster,
            StageKind::Composite,
        ];
        for (i, kind) in expected.iter().enumerate() {
            assert_eq!(frame.next_stage(), Some(*kind));
            assert!(!frame.is_done());
            let done = frame.run_stage(&renderer, &model);
            assert_eq!(done, i + 1 == expected.len());
        }
        assert_eq!(frame.next_stage(), None);
        let (output, arena) = frame.finish(&renderer);
        assert_eq!(output, reference);
        // The recycled arena comes back cleared but with capacity.
        assert!(arena.splats.is_empty());
        assert!(arena.offsets.is_empty());
        assert!(arena.indices.is_empty());
        assert!(arena.splats.capacity() > 0);
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        let (model, camera) = scene();
        let renderer = Renderer::new(crate::RenderOptions::with_tile_merging());
        let (first, arena) = renderer.render_with_arena(&model, &camera, FrameArena::default());
        let (second, _) = renderer.render_with_arena(&model, &camera, arena);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "finish called before the frame completed")]
    fn finish_before_done_panics() {
        let (model, camera) = scene();
        let renderer = Renderer::default();
        let mut frame = renderer.begin_frame(&model, &camera, FrameArena::default());
        frame.run_stage(&renderer, &model);
        frame.finish(&renderer);
    }

    #[test]
    #[should_panic(expected = "run_stage called on a finished frame")]
    fn run_stage_after_done_panics() {
        let (model, camera) = scene();
        let renderer = Renderer::default();
        let mut frame = renderer.begin_frame(&model, &camera, FrameArena::default());
        while !frame.run_stage(&renderer, &model) {}
        frame.run_stage(&renderer, &model);
    }

    /// `FrameInFlight` must stay `Send` — the frame server moves frames
    /// into worker-pool tasks.
    #[test]
    fn frame_in_flight_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FrameInFlight>();
        assert_send::<FrameArena>();
    }
}
