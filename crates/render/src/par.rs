//! Shared sharding helper for the parallel pipeline stages.

use std::ops::Range;
use std::sync::Mutex;

/// The contiguous range shard `w` of `shards` covers in `0..n` — the exact
/// split [`shard_map`] uses, exposed so a second pass over the same items
/// (the CSR scatter) can walk the ranges its per-shard pass-1 results were
/// built from.
pub(crate) fn shard_range(n: usize, shards: usize, w: usize) -> Range<usize> {
    if shards <= 1 {
        return 0..n;
    }
    let chunk = n.div_ceil(shards).max(1);
    (w * chunk).min(n)..((w + 1) * chunk).min(n)
}

/// Split `0..n` into `shards` contiguous ranges, run `f` over each on the
/// worker pool, and return the per-shard results **in range order** — the
/// property the deterministic concatenation/merge steps of Project and Bin
/// rely on.
///
/// `shards <= 1` runs inline on the calling thread without touching the
/// pool. Over-sharding is safe: ranges are clamped to `n`, so trailing
/// shards simply receive empty ranges.
pub(crate) fn shard_map<T, F>(n: usize, shards: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if shards <= 1 {
        return vec![f(0..n)];
    }
    let slots: Vec<Mutex<Option<T>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let f = &f;
    rayon::scope(|s| {
        for (w, slot) in slots.iter().enumerate() {
            s.spawn(move |_| {
                *slot.lock().expect("shard slot poisoned") = Some(f(shard_range(n, shards, w)));
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(w, slot)| {
            slot.into_inner()
                .expect("shard slot poisoned")
                .unwrap_or_else(|| panic!("shard {w} missing"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ranges must partition `0..n` in order, for every shard count —
    /// including shard counts far above `n` (regression: a shard start
    /// past `n` used to underflow the range and panic downstream).
    #[test]
    fn shards_partition_in_order() {
        for n in [0usize, 1, 5, 7, 513, 1000] {
            for shards in [1usize, 2, 3, 4, 16, 515, 2000] {
                let ranges = shard_map(n, shards, |r| r);
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start, "n={n} shards={shards}");
                    assert!(r.end >= r.start && r.end <= n, "n={n} shards={shards}");
                    expect_start = r.end;
                }
                assert_eq!(expect_start, n, "n={n} shards={shards} must cover 0..n");
            }
        }
    }

    /// `shard_range` must reproduce exactly the ranges `shard_map` hands
    /// its closure — the CSR scatter relies on walking the same splat
    /// ranges its pass-1 counts came from.
    #[test]
    fn shard_range_matches_shard_map() {
        for n in [0usize, 1, 5, 513, 1000] {
            for shards in [1usize, 2, 3, 16, 2000] {
                let ranges = shard_map(n, shards, |r| r);
                for (w, r) in ranges.iter().enumerate() {
                    assert_eq!(*r, shard_range(n, shards, w), "n={n} shards={shards} w={w}");
                }
            }
        }
    }

    #[test]
    fn results_keep_shard_order() {
        let parts = shard_map(100, 7, |r| r.start);
        let mut sorted = parts.clone();
        sorted.sort_unstable();
        assert_eq!(parts, sorted);
    }
}
