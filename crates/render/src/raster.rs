//! Rasterization kernels and the top-level [`Renderer`].
//!
//! The renderer itself is thin: every entry point assembles the staged
//! frame pipeline from [`crate::pipeline`] (Project → Bin → Merge →
//! Raster → Composite) and runs it under a [`Profiler`], so per-stage wall
//! time and work counters land in [`RenderStats::profile`]. This module
//! keeps the per-work-unit and per-pixel compositing kernels the Raster
//! stage executes.
//!
//! # Scalar and SIMD kernels
//!
//! The per-tile compositing inner loop exists twice, selected by
//! [`RenderOptions::raster_kernel`](crate::options::RasterKernel):
//!
//! * [`composite_pixel`] — the scalar reference: one pixel front-to-back
//!   over its tile's depth-sorted CSR list.
//! * [`composite_row4`] — four horizontally-adjacent pixels of one tile
//!   row batched onto [`ms_math::simd`] lanes. Each CSR splat is broadcast
//!   against the four pixel centers; admission (`alpha_min`), the
//!   `alpha_max` clamp, color/transmittance/winner accumulation and the
//!   `t < t_min` early-stop all happen per lane under a [`Mask4`], so a
//!   lane that retires early freezes exactly where the scalar loop would
//!   have `break`-ed.
//!
//! The two kernels are **bit-identical by construction**: every `f32`
//! operation an admitted contribution executes — including association
//! order inside the conic evaluation — is the same scalar op in the same
//! order, just four pixels at a time (the lane ops in `ms_math::simd` are
//! plain per-lane scalar ops, so there is no FMA contraction or vendor
//! `min` quirk to diverge on). The one shortcut the SIMD kernel takes, the
//! far-tail `exp` skip, is gated by a conservative threshold with enough
//! margin that it provably only skips contributions the scalar kernel
//! would have rejected (`alpha < alpha_min`) anyway — see
//! [`splat_cull_data`], which also derives a conservative bounding box of
//! the admission region so whole far-tail splats skip a 4-pixel group
//! without any lane arithmetic. [`rasterize_unit`] drives full 4-pixel groups
//! through the SIMD kernel and row remainders or masked-pixel gaps through
//! the scalar one, so any pixel mix still composes to the scalar frame.
//!
//! # Tile staging
//!
//! How the SIMD path feeds [`composite_row4`] is itself a knob
//! ([`RenderOptions::raster_staging`](crate::options::RasterStaging)):
//!
//! * **Per-row** ([`stage_row`]) — the PR 6 reference: every tile row
//!   re-walks the tile's depth-sorted CSR list, culls against the
//!   admission boxes and gathers survivors. O(tile_rows × csr_len) cull
//!   work per tile.
//! * **Per-tile** ([`stage_tile`]) — one CSR walk culls each splat once,
//!   stages its row-invariant terms into SoA buffers, and derives its
//!   inclusive row interval from the admission box with the *same* float
//!   predicate the per-row path evaluates (exact binary search, so the
//!   admitted set per row is identical by construction, not merely by
//!   slack). A counting sort over the intervals then schedules the staged
//!   splats by row — depth order preserved within each row — and each row
//!   gathers only its own interval-active splats
//!   ([`TileStage::gather_row`]). O(csr_len + Σ active-rows) per tile.
//!
//! Both paths push identical [`RowSplat`] sequences, so the compositing
//! kernels cannot observe which one ran. The per-tile SoA buffers live in
//! [`RasterScratch`], recycled across tiles, work units and (through
//! [`FrameArena`](crate::FrameArena)) frames; the
//! [`RasterWork`](crate::RasterWork) counters in the frame profile record
//! how much row-iteration work the interval scheduler avoided.

use crate::binning::{SuperTile, TileBins};
use crate::options::{RasterKernel, RasterStaging, RenderOptions, SortMode};
use crate::pipeline::{
    BinStage, CompositeStage, Composited, MergeStage, Profiler, ProjectStage, RasterStage,
};
use crate::projection::ProjectedSplat;
use crate::stats::{RasterWork, RenderStats, TileGridDims};
use ms_math::simd::{F32x4, Mask4, U32x4};
use ms_math::Vec2;
use ms_scene::{Camera, ChunkCache, GaussianModel, SceneSource, SourceError};
use std::sync::Arc;

/// Result of a render pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderOutput {
    /// The rendered image.
    pub image: crate::image::Image,
    /// Workload statistics of the pass.
    pub stats: RenderStats,
    /// Winning splat *point index* per pixel (`u32::MAX` = none); empty
    /// unless `track_point_stats` was set. Row-major. Exposed so
    /// determinism tests can compare full winner buffers, not just their
    /// per-point aggregation.
    pub winners: Vec<u32>,
}

/// The tile-based splatting renderer.
///
/// Cloning is cheap and shares the renderer's [`ChunkCache`]: clones (and
/// renderers built with [`Renderer::with_chunk_cache`]) hit each other's
/// decoded chunks when streaming the same [`SceneSource`]. The cache only
/// changes where chunk bytes come from, never what a frame computes, so
/// sharing is invisible to the determinism contract.
#[derive(Debug, Clone)]
pub struct Renderer {
    options: RenderOptions,
    chunk_cache: Arc<ChunkCache>,
}

/// Output of rasterizing one work unit (a [`SuperTile`] rectangle of
/// tiles) — what the parallel Raster stage distributes and the Composite
/// stage merges. A band is the degenerate full-row rectangle, so the
/// unmerged pipeline produces exactly the PR 3/4 band results.
#[derive(Debug)]
pub struct UnitResult {
    /// First pixel column of the unit.
    pub x_start: u32,
    /// First pixel row of the unit.
    pub y_start: u32,
    /// Pixel width of the unit, clipped to the image.
    pub width: u32,
    /// Pixels (row-major within the unit, `width` per row).
    pub pixels: Vec<ms_math::Vec3>,
    /// Winning splat *point index* per pixel (`u32::MAX` = none).
    pub winners: Vec<u32>,
    /// Compositing steps executed.
    pub blend_steps: u64,
    /// Staging work counters for the unit's tiles (zeros under the scalar
    /// kernel, which stages nothing).
    pub work: RasterWork,
}

impl Renderer {
    /// Create a renderer.
    ///
    /// # Panics
    ///
    /// Panics when `options` fail validation — configuration errors are
    /// programmer errors here, not runtime conditions.
    pub fn new(options: RenderOptions) -> Self {
        options.validate().expect("invalid render options");
        let budget = options.resolved_cache_budget();
        Self {
            options,
            chunk_cache: Arc::new(ChunkCache::new(budget)),
        }
    }

    /// Create a renderer that shares an existing [`ChunkCache`] instead of
    /// allocating its own — the frame server uses this so every session
    /// rendering the same scene hits one cache. The cache's budget wins
    /// over whatever `options.cache_budget_bytes` would have resolved to.
    ///
    /// # Panics
    ///
    /// Panics when `options` fail validation, exactly like [`Renderer::new`].
    pub fn with_chunk_cache(options: RenderOptions, cache: Arc<ChunkCache>) -> Self {
        options.validate().expect("invalid render options");
        Self {
            options,
            chunk_cache: cache,
        }
    }

    /// The active options.
    pub fn options(&self) -> &RenderOptions {
        &self.options
    }

    /// The renderer's chunk cache (shared with clones and any renderer
    /// built from it via [`Renderer::with_chunk_cache`]).
    pub fn chunk_cache(&self) -> &Arc<ChunkCache> {
        &self.chunk_cache
    }

    /// Render `model` from `camera`.
    pub fn render(&self, model: &GaussianModel, camera: &Camera) -> RenderOutput {
        self.render_with_arena(model, camera, crate::FrameArena::default())
            .0
    }

    /// [`Renderer::render`] through the resumable per-stage machinery
    /// ([`Renderer::begin_frame`] + [`FrameInFlight::run_stage`]), reusing
    /// `arena`'s scratch buffers instead of allocating per frame; returns
    /// the output plus the recycled arena for the next frame. This *is*
    /// `render` — `render` routes through it with a fresh arena — so the
    /// output is bit-identical regardless of where the arena came from.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing.
    ///
    /// [`FrameInFlight::run_stage`]: crate::FrameInFlight::run_stage
    pub fn render_with_arena(
        &self,
        model: &GaussianModel,
        camera: &Camera,
        arena: crate::FrameArena,
    ) -> (RenderOutput, crate::FrameArena) {
        let mut frame = self.begin_frame(model, camera, arena);
        while !frame.run_stage(self, model) {}
        frame.finish(self)
    }

    /// Start a resumable frame: the returned [`FrameInFlight`] owns the
    /// frame's intermediate buffers and advances one pipeline stage per
    /// [`run_stage`] call, so a scheduler (the `ms_serve` frame server) can
    /// interleave the stages of many frames on the worker pool. `arena`
    /// provides recycled scratch storage from a previous frame
    /// ([`FrameInFlight::finish`] returns it); `FrameArena::default()` is a
    /// valid cold start.
    ///
    /// Options were validated at [`Renderer::new`]; this per-frame entry
    /// point only debug-asserts that invariant instead of re-validating on
    /// the hot path.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing.
    ///
    /// [`FrameInFlight`]: crate::FrameInFlight
    /// [`FrameInFlight::finish`]: crate::FrameInFlight::finish
    /// [`run_stage`]: crate::FrameInFlight::run_stage
    pub fn begin_frame(
        &self,
        model: &GaussianModel,
        camera: &Camera,
        arena: crate::FrameArena,
    ) -> crate::FrameInFlight {
        self.begin_frame_source(crate::SceneRef::InCore(model), camera, arena)
    }

    /// [`Renderer::begin_frame`] over a [`SceneRef`](crate::SceneRef):
    /// in-core scenes start at the Project stage exactly as `begin_frame`
    /// does; chunked sources start at the streaming chunk-count pass, and
    /// each [`run_stage`](crate::FrameInFlight::run_stage) call advances
    /// one *chunk* until the stream joins the common pipeline at Merge —
    /// so a frame server interleaves chunked frames exactly like in-core
    /// ones, at chunk granularity.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing.
    pub fn begin_frame_source(
        &self,
        scene: crate::SceneRef<'_>,
        camera: &Camera,
        arena: crate::FrameArena,
    ) -> crate::FrameInFlight {
        check_camera(camera);
        debug_assert!(
            self.options.validate().is_ok(),
            "Renderer options invalidated after construction"
        );
        crate::FrameInFlight::new(*camera, scene, &self.options, arena)
    }

    /// Render a chunked [`SceneSource`](ms_scene::SceneSource) without ever
    /// materializing the whole model: Project and the CSR count pass stream
    /// chunk by chunk, then a second streamed pass re-projects and scatters
    /// — peak chunk and projected-splat scratch residency are bounded by
    /// the chunk size (and recorded in the frame profile's
    /// `chunk_bytes_peak` / `projected_bytes_peak`). With LOD off the
    /// output is bit-identical — pixels, winners, work counters — to
    /// [`Renderer::render`] on the concatenated model, for every chunk
    /// size.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing, or when the source fails to deliver a chunk.
    pub fn render_source(
        &self,
        source: &(dyn SceneSource + Sync),
        camera: &Camera,
    ) -> RenderOutput {
        self.render_source_with_arena(source, camera, crate::FrameArena::default())
            .0
    }

    /// [`Renderer::render_source`] reusing `arena`'s scratch buffers, the
    /// chunked analogue of [`Renderer::render_with_arena`].
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing, or when the source fails to deliver a chunk.
    pub fn render_source_with_arena(
        &self,
        source: &(dyn SceneSource + Sync),
        camera: &Camera,
        arena: crate::FrameArena,
    ) -> (RenderOutput, crate::FrameArena) {
        let (result, arena) = self.try_render_source_with_arena(source, camera, arena);
        match result {
            Ok(output) => (output, arena),
            Err(e) => panic!("loading scene chunk failed: {e}"),
        }
    }

    /// [`Renderer::render_source`] with chunk-load failures surfaced as an
    /// `Err` instead of a panic. A failed load abandons the frame cleanly —
    /// no partial image is produced and nothing poisons the renderer; the
    /// next render is unaffected.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing (configuration errors stay panics; only *source* failures
    /// are runtime conditions).
    pub fn try_render_source(
        &self,
        source: &(dyn SceneSource + Sync),
        camera: &Camera,
    ) -> Result<RenderOutput, SourceError> {
        self.try_render_source_with_arena(source, camera, crate::FrameArena::default())
            .0
    }

    /// [`Renderer::try_render_source`] reusing `arena`'s scratch buffers.
    /// The arena comes back usable in *both* outcomes: a failed frame
    /// recycles its buffers into the returned arena exactly like a finished
    /// one, so callers keep their allocation steady state across faults.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing.
    pub fn try_render_source_with_arena(
        &self,
        source: &(dyn SceneSource + Sync),
        camera: &Camera,
        arena: crate::FrameArena,
    ) -> (Result<RenderOutput, SourceError>, crate::FrameArena) {
        let scene = crate::SceneRef::Chunked(source);
        let mut frame = self.begin_frame_source(scene, camera, arena);
        while !frame.run_stage(self, scene) {}
        if frame.is_failed() {
            let (error, arena) = frame.into_failure();
            return (Err(error), arena);
        }
        let (output, arena) = frame.finish(self);
        (Ok(output), arena)
    }

    /// Render with a per-point admission predicate (the foveation Filtering
    /// stage drops points whose quality bound excludes them). The predicate
    /// is `Fn + Sync` because projection shards evaluate it concurrently
    /// when `threads != 1`.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image (zero width or height)
    /// or exceeds `u32` pixel addressing — rejected here, at pipeline
    /// entry, instead of surfacing as a divide-by-zero or a wrapped pixel
    /// index deep in the pipeline.
    pub fn render_filtered<F: Fn(usize) -> bool + Sync>(
        &self,
        model: &GaussianModel,
        camera: &Camera,
        admit: F,
    ) -> RenderOutput {
        check_camera(camera);
        let mut profiler = Profiler::default();
        let splats = profiler.run(
            &mut ProjectStage {
                model,
                camera,
                options: &self.options,
                admit,
                recycle: Vec::new(),
            },
            (),
        );
        self.run_pipeline(model.len(), &splats, camera, None, profiler)
    }

    /// Render only the pixels where `mask` is true (row-major, one entry
    /// per pixel); masked-out pixels keep the background color. Tiles with
    /// no active pixel are skipped entirely — splats are not even duplicated
    /// into them, mirroring the foveation Filtering stage (Fig. 7-E).
    ///
    /// # Panics
    ///
    /// Panics when `mask.len() != width * height`, or when `camera` has a
    /// zero-pixel image or exceeds `u32` pixel addressing. The mask-size
    /// comparison is done in `u64`: at extreme dimensions `width * height`
    /// overflows `u32`, which used to let a wrong-sized mask slip past the
    /// check.
    pub fn render_masked<F: Fn(usize) -> bool + Sync>(
        &self,
        model: &GaussianModel,
        camera: &Camera,
        admit: F,
        mask: &[bool],
    ) -> RenderOutput {
        check_camera(camera);
        assert_eq!(
            mask.len() as u64,
            camera.width as u64 * camera.height as u64,
            "pixel mask size mismatch"
        );
        let mut profiler = Profiler::default();
        let splats = profiler.run(
            &mut ProjectStage {
                model,
                camera,
                options: &self.options,
                admit,
                recycle: Vec::new(),
            },
            (),
        );
        self.run_pipeline(model.len(), &splats, camera, Some(mask), profiler)
    }

    /// Rasterize pre-projected splats. Exposed so callers that re-render the
    /// same projection (e.g. the trainer's forward/backward passes) can skip
    /// re-projection; the resulting profile carries no Project sample.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing.
    pub fn render_splats(
        &self,
        model_len: usize,
        splats: &[ProjectedSplat],
        camera: &Camera,
    ) -> RenderOutput {
        check_camera(camera);
        self.run_pipeline(model_len, splats, camera, None, Profiler::default())
    }

    /// Run Bin → Merge → Raster → Composite over projected splats and
    /// assemble [`RenderStats`] from what the stages measured.
    fn run_pipeline(
        &self,
        model_len: usize,
        splats: &[ProjectedSplat],
        camera: &Camera,
        mask: Option<&[bool]>,
        mut profiler: Profiler,
    ) -> RenderOutput {
        let grid = TileGridDims::for_image(camera.width, camera.height, self.options.tile_size);
        let track = self.options.track_point_stats;

        let bins = profiler.run(
            &mut BinStage {
                splats,
                grid,
                mask,
                threads: self.options.resolved_threads(),
                recycle: (Vec::new(), Vec::new()),
            },
            (),
        );
        let schedule = profiler.run(
            &mut MergeStage {
                options: &self.options,
            },
            &bins,
        );
        // One-shot render paths allocate their staging scratch locally; the
        // resumable frame path recycles it through the `FrameArena` instead.
        let mut raster_scratch = Vec::new();
        let units = profiler.run(
            &mut RasterStage {
                splats,
                options: &self.options,
                camera,
                mask,
                scratch: &mut raster_scratch,
            },
            (&bins, &schedule),
        );
        let composited = profiler.run(
            &mut CompositeStage {
                camera,
                options: &self.options,
                track_winners: track,
            },
            units,
        );
        assemble_output(
            &self.options,
            model_len,
            splats,
            &bins,
            &schedule,
            composited,
            profiler,
        )
    }
}

/// Assemble the final [`RenderOutput`] from the pipeline's stage outputs —
/// the shared tail of [`Renderer`]'s monolithic path and the resumable
/// [`FrameInFlight`](crate::FrameInFlight) path, so both produce the exact
/// same statistics by construction.
pub(crate) fn assemble_output(
    options: &RenderOptions,
    model_len: usize,
    splats: &[ProjectedSplat],
    bins: &TileBins,
    schedule: &crate::binning::MergedTileSchedule,
    composited: Composited,
    profiler: Profiler,
) -> RenderOutput {
    let Composited {
        image,
        winners,
        blend_steps,
        raster,
    } = composited;
    let mut profile = profiler.finish();
    profile.raster = raster;
    // In-core residency peaks: no chunk buffer, and the projection scratch
    // *is* the whole visible-splat vector. The chunked frame path overrides
    // both with the per-chunk peaks it measured while streaming.
    profile.projected_bytes_peak = std::mem::size_of_val(splats) as u64;
    let tile_intersections = bins.intersection_counts();
    let total_intersections = bins.total_intersections();
    // The per-tile → work-unit map is recorded only when occupancy
    // merging actually ran; the identity band schedule reflects
    // scheduling granularity, not a merge decision, and recording it
    // would make the accelerator simulator treat whole bands as TMU
    // output.
    let tile_unit = if options.merge_enabled() {
        schedule.tile_unit_map()
    } else {
        Vec::new()
    };
    let (point_tiles_used, point_pixels_dominated) = if options.track_point_stats {
        // Derived from the CSR bins so masked-out tiles do not count:
        // every CSR index entry is one (tile, splat) intersection.
        let mut tiles_used = vec![0u32; model_len];
        for &si in bins.indices() {
            tiles_used[splats[si as usize].point_index as usize] += 1;
        }
        let mut dominated = vec![0u32; model_len];
        for &w in &winners {
            if w != u32::MAX {
                dominated[w as usize] += 1;
            }
        }
        (tiles_used, dominated)
    } else {
        (Vec::new(), Vec::new())
    };

    RenderOutput {
        image,
        stats: RenderStats {
            grid: bins.grid(),
            tile_intersections,
            points_projected: splats.len(),
            points_submitted: model_len,
            total_intersections,
            blend_steps,
            point_tiles_used,
            point_pixels_dominated,
            tile_unit,
            profile,
        },
        winners,
    }
}

impl Default for Renderer {
    fn default() -> Self {
        Self::new(RenderOptions::default())
    }
}

/// Reject degenerate cameras at pipeline entry: a zero-width or zero-height
/// image would reach the composite stage's `pixels / width` row arithmetic
/// as a divide-by-zero far from the actual mistake. Images beyond `u32`
/// pixel addressing are rejected too — per-pixel indices (`y * width + x`)
/// are computed in `u32` throughout the hot path, so admitting a larger
/// image would wrap silently instead of failing loudly.
fn check_camera(camera: &Camera) {
    assert!(
        camera.width > 0 && camera.height > 0,
        "degenerate camera: {}x{} image has no pixels",
        camera.width,
        camera.height
    );
    assert!(
        camera.width as u64 * camera.height as u64 <= u32::MAX as u64,
        "camera {}x{} exceeds u32 pixel addressing",
        camera.width,
        camera.height
    );
}

/// Recyclable per-worker scratch for one raster work unit: the per-tile
/// staging buffers (`TileStage`), the per-row staged splat sequence, the
/// per-row-staging admission culls and the per-pixel sort-mode gather
/// buffer. One instance serves one raster worker at a time; the Raster
/// stage keeps a pool of `threads` instances, recycled across work units
/// and — through [`FrameArena`](crate::FrameArena) — across frames, so the
/// steady-state raster hot path allocates nothing.
#[derive(Debug, Default)]
pub struct RasterScratch {
    /// Per-(tile, splat) admission culls (per-row staging path).
    culls: Vec<SplatCull>,
    /// Staged splat sequence of the current tile row.
    row: Vec<RowSplat>,
    /// Per-tile SoA staging buffers (per-tile staging path).
    stage: TileStage,
    /// Per-pixel sort-mode contribution gather buffer.
    contribs: Vec<(f32, f32, ms_math::Vec3, u32)>,
}

impl RasterScratch {
    /// Drop contents, keep capacity — called when an arena is returned so
    /// recycled scratch never leaks splat data between frames or sessions.
    pub(crate) fn clear(&mut self) {
        self.culls.clear();
        self.row.clear();
        self.stage.clear();
        self.contribs.clear();
    }
}

/// Rasterize one work unit (a rectangle of tiles, clipped to the image).
///
/// Each pixel composites against **its own tile's** depth-sorted CSR list —
/// the unit rectangle only decides which pixels this call owns — so two
/// schedules that partition the grid differently produce bit-identical
/// pixels, winners and blend-step counts. This is the invariant behind
/// both determinism axes (thread count and merged-vs-unmerged).
/// `scratch` only carries recycled buffer capacity; its contents are
/// overwritten per tile, so which worker's scratch arrives cannot change a
/// pixel either.
pub(crate) fn rasterize_unit(
    options: &RenderOptions,
    splats: &[ProjectedSplat],
    bins: &TileBins,
    camera: &Camera,
    unit: &SuperTile,
    mask: Option<&[bool]>,
    scratch: &mut RasterScratch,
) -> UnitResult {
    let grid = bins.grid();
    let ts = grid.tile_size;
    // Clip in u64: at extreme dimensions `tx1 * ts` can exceed u32 even
    // though the clipped result fits.
    let x_start = unit.tx0 * ts;
    let y_start = unit.ty0 * ts;
    let x_end = (unit.tx1 as u64 * ts as u64).min(camera.width as u64) as u32;
    let y_end = (unit.ty1 as u64 * ts as u64).min(camera.height as u64) as u32;
    let (unit_w, unit_h) = (x_end - x_start, y_end - y_start);
    let mut pixels = vec![options.background; (unit_w * unit_h) as usize];
    let track = options.track_point_stats;
    // The winner buffer is only consumed by the Composite merge when point
    // statistics are on; without them it used to be a dead image-sized
    // allocation per work unit.
    let mut winners = if track {
        vec![u32::MAX; (unit_w * unit_h) as usize]
    } else {
        Vec::new()
    };
    let mut blend_steps = 0u64;
    let mut work = RasterWork::default();
    let simd =
        options.sort_mode == SortMode::PerTile && options.resolved_kernel() == RasterKernel::Simd4;
    let per_tile_staging = simd && options.resolved_staging() == RasterStaging::PerTile;
    let RasterScratch {
        culls,
        row,
        stage,
        contribs,
    } = scratch;

    for ty in unit.ty0..unit.ty1 {
        for tx in unit.tx0..unit.tx1 {
            let list = bins.tile(tx, ty);
            if list.is_empty() {
                continue;
            }
            let tx_start = tx * ts;
            let tx_end = (tx_start as u64 + ts as u64).min(camera.width as u64) as u32;
            let ty_start = ty * ts;
            let ty_end = (ty_start as u64 + ts as u64).min(camera.height as u64) as u32;
            // Row-invariant pixel-center columns of this tile, shared by
            // both staging paths' column-overlap cull.
            let row_x_lo = tx_start as f32 + 0.5;
            let row_x_hi = (tx_end - 1) as f32 + 0.5;
            if simd {
                let rows = (ty_end - ty_start) as u64;
                if per_tile_staging {
                    let culled = stage
                        .stage_tile(options, splats, list, ty_start, ty_end, row_x_lo, row_x_hi);
                    work.splats_staged += list.len() as u64 - culled;
                    work.splats_culled += culled;
                    // One row iteration per scheduled (row, splat) pair.
                    work.row_iterations += stage.schedule_len() as u64;
                } else {
                    splat_cull_data(options, splats, list, culls);
                    work.splats_staged += list.len() as u64;
                    work.row_iterations += rows * list.len() as u64;
                }
                work.row_iteration_bound += rows * list.len() as u64;
            }
            for y in ty_start..ty_end {
                // Per-tile staging needs no per-row work at all: the
                // kernel below reads the staged SoA through the row's
                // schedule slice directly.
                if simd && !per_tile_staging {
                    stage_row(splats, list, culls, y as f32 + 0.5, row_x_lo, row_x_hi, row);
                }
                let mut x = tx_start;
                while x < tx_end {
                    // Full 4-pixel groups with no masked-out gap take the
                    // SIMD kernel; remainders and gapped groups run the
                    // scalar kernel pixel by pixel (bit-identical, so the
                    // grouping never shows in the output).
                    let group = (tx_end - x).min(4);
                    let whole = group == 4
                        && mask.map_or(true, |m| {
                            let base = (y * camera.width + x) as usize;
                            m[base] && m[base + 1] && m[base + 2] && m[base + 3]
                        });
                    if simd && whole {
                        let px_x = F32x4::new(
                            x as f32 + 0.5,
                            (x + 1) as f32 + 0.5,
                            (x + 2) as f32 + 0.5,
                            (x + 3) as f32 + 0.5,
                        );
                        let (colors, group_winners, steps) = if per_tile_staging {
                            composite_row4(
                                options,
                                stage.row_iter(
                                    y - ty_start,
                                    y as f32 + 0.5,
                                    px_x.lane(0),
                                    px_x.lane(3),
                                ),
                                px_x,
                            )
                        } else {
                            composite_row4(options, row.iter().copied(), px_x)
                        };
                        let out_idx = ((y - y_start) * unit_w + (x - x_start)) as usize;
                        pixels[out_idx..out_idx + 4].copy_from_slice(&colors);
                        if track {
                            winners[out_idx..out_idx + 4].copy_from_slice(&group_winners);
                        }
                        blend_steps += steps;
                        x += 4;
                        continue;
                    }
                    for x in x..x + group {
                        if let Some(mask) = mask {
                            if !mask[(y * camera.width + x) as usize] {
                                continue;
                            }
                        }
                        let px = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
                        let out_idx = ((y - y_start) * unit_w + (x - x_start)) as usize;
                        let (color, winner, steps) = match options.sort_mode {
                            SortMode::PerTile => composite_pixel(options, splats, list, px),
                            SortMode::PerPixel => {
                                composite_pixel_sorted(options, splats, list, px, contribs)
                            }
                        };
                        pixels[out_idx] = color;
                        if track {
                            winners[out_idx] = winner;
                        }
                        blend_steps += steps;
                    }
                    x += group;
                }
            }
        }
    }
    UnitResult {
        x_start,
        y_start,
        width: unit_w,
        pixels,
        winners,
        blend_steps,
        work,
    }
}

/// Composite one pixel front-to-back over a depth-sorted splat list.
/// Returns (color, dominating point index or MAX, blend steps).
#[inline]
fn composite_pixel(
    o: &RenderOptions,
    splats: &[ProjectedSplat],
    list: &[u32],
    px: Vec2,
) -> (ms_math::Vec3, u32, u64) {
    let mut color = ms_math::Vec3::zero();
    let mut t = 1.0f32;
    let mut best_w = 0.0f32;
    let mut best = u32::MAX;
    let mut steps = 0u64;
    for &si in list {
        let s = &splats[si as usize];
        let alpha = (s.opacity * s.conic.gaussian_weight(px - s.center)).min(o.alpha_max);
        if alpha < o.alpha_min {
            continue;
        }
        steps += 1;
        let w = t * alpha;
        color += s.color * w;
        if w > best_w {
            best_w = w;
            best = s.point_index;
        }
        t *= 1.0 - alpha;
        if t < o.t_min {
            break;
        }
    }
    color += o.background * t;
    (color, best, steps)
}

/// Margin subtracted from the admission log-threshold before the SIMD
/// kernel may skip a lane's `exp`. The bound must absorb every rounding
/// error in the comparison chain (`ln`, the division, `expf`, the opacity
/// multiply — each within a few ulp, so relative error well under 1e-5),
/// and `e^(1/16) ≈ 1.065` leaves four orders of magnitude of slack. A
/// power of two, so the subtraction itself is exact for all reachable
/// magnitudes of the threshold.
const EXP_SKIP_MARGIN: f32 = 1.0 / 16.0;

/// Relative + absolute inflation applied to the admission ellipse's
/// bounding box so that `f32` rounding in its derivation (one multiply,
/// one divide, one square root, one subtraction — each within a few ulp)
/// can never shrink it below the true extent. A thousandth relatively and
/// a whole pixel absolutely dwarf those errors at any magnitude a
/// projected splat can reach.
const CULL_BOX_RELATIVE_SLACK: f32 = 1.001;
/// See [`CULL_BOX_RELATIVE_SLACK`].
const CULL_BOX_ABSOLUTE_SLACK: f32 = 1.0;

/// Per-splat admission-culling data for one tile list, precomputed once
/// per raster unit by [`splat_cull_data`] and consumed by
/// [`composite_row4`].
#[derive(Debug, Clone, Copy)]
struct SplatCull {
    /// Lower bound on the Gaussian exponent below which admission
    /// provably fails (so the `exp` call may be skipped per lane).
    power_floor: f32,
    /// Conservative pixel-space bounding box of the admission ellipse
    /// `power ≥ power_floor`; pixels outside it provably fail admission,
    /// so a whole 4-pixel group outside skips the splat without touching
    /// any lane arithmetic. `x_lo > x_hi` encodes "always skip" (the splat
    /// can never pass admission anywhere).
    x_lo: f32,
    /// See `x_lo`.
    x_hi: f32,
    /// Bounding-box rows, same contract as `x_lo`/`x_hi`.
    y_lo: f32,
    /// See `y_lo`.
    y_hi: f32,
}

impl SplatCull {
    /// Never skip anything — the exact per-lane path decides.
    const EXACT: Self = Self {
        power_floor: f32::NEG_INFINITY,
        x_lo: f32::NEG_INFINITY,
        x_hi: f32::INFINITY,
        y_lo: f32::NEG_INFINITY,
        y_hi: f32::INFINITY,
    };
}

/// Per-splat admission culls: a lower bound on the Gaussian exponent below
/// which a contribution **provably** fails the `alpha_min` admission test
/// (letting [`composite_row4`] skip the dominant `exp` call per lane), plus
/// a conservative bounding box of the region where admission is possible
/// at all (letting it skip far-tail splats before any lane arithmetic).
///
/// For splat `s`, scalar admission computes
/// `alpha = min(opacity · e^power, alpha_max)` and rejects `alpha <
/// alpha_min`. Rearranged, rejection is certain when `power <
/// ln(alpha_min / opacity)`; the stored floor subtracts
/// [`EXP_SKIP_MARGIN`] so that even with worst-case `f32` rounding in
/// `ln`, `/`, `expf` and the multiply, `power < power_floor` implies the
/// scalar kernel computes `alpha < alpha_min` — the skip can never admit
/// differently than the scalar path, which is what keeps the kernels
/// bit-identical. Degenerate inputs degrade safely: `alpha_min == 0`
/// yields `-∞` (never skip — scalar admits zero-alpha contributions),
/// non-positive or NaN opacity yields `+∞`/NaN (always/never skip, both
/// consistent with scalar admission), and NaN `power` compares false so it
/// always takes the exact path.
///
/// The bounding box comes from the same floor: `power ≥ power_floor` is
/// the ellipse `a·dx² + 2b·dx·dy + c·dy² ≤ r²` with `r² = -2·power_floor`,
/// whose axis-aligned extents are `|dx| ≤ √(c·r²/det)`,
/// `|dy| ≤ √(a·r²/det)` with `det = ac − b²`. Outside those extents
/// (inflated by [`CULL_BOX_RELATIVE_SLACK`]/[`CULL_BOX_ABSOLUTE_SLACK`] to
/// absorb the rounding of the derivation itself) `power < power_floor`
/// holds for every pixel, so skipping the whole splat is exactly as safe
/// as the per-lane floor test. The box is only used when the conic is
/// positive definite (`a > 0`, `c > 0`, `det > 0`); any other shape —
/// including NaNs — falls back to [`SplatCull::EXACT`]. An `r² ≤ 0` floor
/// means admission is impossible everywhere (`opacity · e^margin ≤
/// alpha_min`), encoded as an empty box.
fn splat_cull_data(
    o: &RenderOptions,
    splats: &[ProjectedSplat],
    list: &[u32],
    out: &mut Vec<SplatCull>,
) {
    out.clear();
    out.extend(list.iter().map(|&si| splat_cull(o, &splats[si as usize])));
}

/// One splat's admission cull — the per-splat body of [`splat_cull_data`],
/// shared verbatim by the per-tile staging prepass so both staging paths
/// cull against the exact same `f32` boxes and floors.
fn splat_cull(o: &RenderOptions, s: &ProjectedSplat) -> SplatCull {
    let power_floor = (o.alpha_min / s.opacity).ln() - EXP_SKIP_MARGIN;
    let r2 = -2.0 * power_floor;
    if r2.is_nan() {
        return SplatCull::EXACT;
    }
    if r2 <= 0.0 {
        // Even `power = 0` (splat center) provably fails admission:
        // the splat contributes nowhere, skip it everywhere.
        return SplatCull {
            power_floor,
            x_lo: f32::INFINITY,
            x_hi: f32::NEG_INFINITY,
            y_lo: f32::INFINITY,
            y_hi: f32::NEG_INFINITY,
        };
    }
    let (a, b, c) = (s.conic.a, s.conic.b, s.conic.c);
    let det = a * c - b * b;
    if !(det > 0.0 && a > 0.0 && c > 0.0) {
        // Not a positive-definite ellipse (or NaN): no finite
        // admission region to bound — use the exact path, which is
        // always correct.
        return SplatCull {
            power_floor,
            ..SplatCull::EXACT
        };
    }
    let hw_x = (c * r2 / det).sqrt() * CULL_BOX_RELATIVE_SLACK + CULL_BOX_ABSOLUTE_SLACK;
    let hw_y = (a * r2 / det).sqrt() * CULL_BOX_RELATIVE_SLACK + CULL_BOX_ABSOLUTE_SLACK;
    SplatCull {
        power_floor,
        x_lo: s.center.x - hw_x,
        x_hi: s.center.x + hw_x,
        y_lo: s.center.y - hw_y,
        y_hi: s.center.y + hw_y,
    }
}

/// One depth-ordered splat of a tile row, staged by [`stage_row`]: the
/// row-invariant conic terms are precomputed (with the scalar kernel's own
/// association order, so they are the *same* `f32` values the scalar
/// kernel would produce) and the fields the inner loop touches sit in one
/// compact record, so the row's pixel groups stream a contiguous array
/// instead of chasing the CSR list into the full splat table.
#[derive(Debug, Clone, Copy)]
struct RowSplat {
    /// Splat center column.
    center_x: f32,
    /// `conic.a`.
    a: f32,
    /// `2.0 * conic.b` — the scalar kernel's own grouping.
    b2: f32,
    /// `py - center.y` for this row.
    dy: f32,
    /// `(conic.c * dy) * dy`, scalar association.
    c_dy2: f32,
    /// Admission floor on the Gaussian exponent (see [`SplatCull`]).
    power_floor: f32,
    /// Admission-box columns (see [`SplatCull`]).
    x_lo: f32,
    /// See `x_lo`.
    x_hi: f32,
    /// Splat opacity.
    opacity: f32,
    /// Splat color.
    color: ms_math::Vec3,
    /// Source point index (winner tracking).
    point_index: u32,
}

/// Stage one tile row for [`composite_row4`]: walk the tile's depth-sorted
/// CSR list once, drop every splat whose admission box provably misses the
/// row (wrong rows entirely, or columns outside `[row_x_lo, row_x_hi]` —
/// both exactly as safe as the per-lane floor test, see
/// [`splat_cull_data`]), and gather the survivors' row-invariant terms.
/// Depth order is preserved, so the groups composite the same admitted
/// sequence the scalar kernel would.
#[allow(clippy::too_many_arguments)]
fn stage_row(
    splats: &[ProjectedSplat],
    list: &[u32],
    culls: &[SplatCull],
    py: f32,
    row_x_lo: f32,
    row_x_hi: f32,
    out: &mut Vec<RowSplat>,
) {
    out.clear();
    for (&si, cull) in list.iter().zip(culls) {
        // NaN bounds compare false on every test — never dropped.
        if py < cull.y_lo || py > cull.y_hi || row_x_hi < cull.x_lo || row_x_lo > cull.x_hi {
            continue;
        }
        let s = &splats[si as usize];
        let dy = py - s.center.y;
        out.push(RowSplat {
            center_x: s.center.x,
            a: s.conic.a,
            b2: 2.0 * s.conic.b,
            dy,
            c_dy2: (s.conic.c * dy) * dy,
            power_floor: cull.power_floor,
            x_lo: cull.x_lo,
            x_hi: cull.x_hi,
            opacity: s.opacity,
            color: s.color,
            point_index: s.point_index,
        });
    }
}

/// Per-tile staging prepass + row-interval scheduler — the
/// [`RasterStaging::PerTile`] replacement for calling [`stage_row`] once
/// per row.
///
/// [`TileStage::stage_tile`] walks the tile's depth-sorted CSR list
/// *once*: it computes the same admission cull as the per-row path
/// ([`splat_cull`], verbatim), drops splats whose box misses the tile's
/// columns or every tile row, and writes each survivor's splat-invariant
/// terms into SoA buffers **in CSR depth order**, together with the
/// inclusive row interval its admission box covers. A counting sort over
/// those intervals then builds a per-row schedule
/// (`row_splats[row_offsets[r]..row_offsets[r + 1]]` = the depth-ordered
/// staged indices active on row `r`), so [`TileStage::gather_row`] touches
/// only the splats whose interval covers the row — O(csr_len +
/// Σ intervals) per tile instead of the per-row path's O(rows × csr_len)
/// re-walk.
///
/// # Bit-identity with the per-row path
///
/// [`stage_row`] keeps splat `s` on row `y` iff `!(py < y_lo || py > y_hi
/// || row_x_hi < x_lo || row_x_lo > x_hi)` with `py = y as f32 + 0.5`.
/// The column test is row-invariant, so it is evaluated once here with the
/// same operands. The row tests are resolved into an interval by binary
/// search **on those exact `f32` predicates**: `py` is monotone
/// nondecreasing in `y`, so `py < y_lo` flips true→false at most once and
/// `py > y_hi` flips false→true at most once across the tile's rows, and
/// the partition points bound precisely the rows the per-row test would
/// keep (NaN bounds compare false everywhere → full interval, exactly
/// like [`stage_row`] never dropping on NaN). Scattering survivors in
/// staging order keeps each row's schedule slice in CSR depth order, and
/// [`TileStage::gather_row`] computes the dy-dependent terms with the same
/// association (`py - center_y`, `(c · dy) · dy`) from verbatim-staged
/// fields — so both paths push identical [`RowSplat`] sequences and the
/// kernels composite identical bits.
#[derive(Debug, Default)]
pub(crate) struct TileStage {
    /// Splat center column, staged verbatim.
    center_x: Vec<f32>,
    /// Splat center row, staged verbatim (`dy = py - center_y` per row).
    center_y: Vec<f32>,
    /// `conic.a`, staged verbatim.
    a: Vec<f32>,
    /// `2.0 * conic.b` — same grouping as [`stage_row`], computed once.
    b2: Vec<f32>,
    /// `conic.c`, staged verbatim (`c_dy2 = (c * dy) * dy` per row).
    c: Vec<f32>,
    /// Admission floor (see [`SplatCull`]).
    power_floor: Vec<f32>,
    /// Admission-box columns (see [`SplatCull`]).
    x_lo: Vec<f32>,
    /// See `x_lo`.
    x_hi: Vec<f32>,
    /// Splat opacity.
    opacity: Vec<f32>,
    /// Splat color.
    color: Vec<ms_math::Vec3>,
    /// Source point index (winner tracking).
    point_index: Vec<u32>,
    /// First tile-relative row of the splat's interval.
    y0: Vec<u32>,
    /// One past the last tile-relative row of the splat's interval.
    y_end: Vec<u32>,
    /// Counting-sort schedule: row `r` owns
    /// `row_splats[row_offsets[r]..row_offsets[r + 1]]`.
    row_offsets: Vec<usize>,
    /// Staged-splat indices, depth-ordered within each row's slice.
    row_splats: Vec<u32>,
    /// Scatter cursors, one per row (scratch for the schedule build).
    cursor: Vec<usize>,
}

/// First `y` in `[lo, hi)` with `!pred(y)`, for `pred` monotone
/// true→false over the range (the row-interval partition-point search).
/// Returns `hi` when `pred` holds everywhere.
fn row_partition(lo: u32, hi: u32, pred: impl Fn(u32) -> bool) -> u32 {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

impl TileStage {
    /// Stage one tile: cull, write survivors' splat-invariant terms in
    /// depth order, and build the row-interval schedule. Rows are the
    /// pixel rows `ty_start..ty_end`; `row_x_lo`/`row_x_hi` are the tile's
    /// first/last pixel-center columns (the row-invariant operands of the
    /// column cull). Returns how many of the tile's `list` splats were
    /// culled (dropped entirely — provably admitted nowhere in the tile).
    #[allow(clippy::too_many_arguments)]
    fn stage_tile(
        &mut self,
        o: &RenderOptions,
        splats: &[ProjectedSplat],
        list: &[u32],
        ty_start: u32,
        ty_end: u32,
        row_x_lo: f32,
        row_x_hi: f32,
    ) -> u64 {
        self.clear();
        let mut culled = 0u64;
        for &si in list {
            let s = &splats[si as usize];
            let cull = splat_cull(o, s);
            // Same column test as `stage_row`, hoisted out of the row
            // loop: NaN bounds compare false — never dropped.
            if row_x_hi < cull.x_lo || row_x_lo > cull.x_hi {
                culled += 1;
                continue;
            }
            // Partition points of the exact per-row predicates (see the
            // type-level bit-identity note). `!(py > y_hi)` is NOT
            // `py <= y_hi`: a NaN bound must keep every row, exactly as
            // the negated per-row skip test does.
            let first = row_partition(ty_start, ty_end, |y| (y as f32 + 0.5) < cull.y_lo);
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let end = row_partition(ty_start, ty_end, |y| !((y as f32 + 0.5) > cull.y_hi));
            if first >= end {
                culled += 1;
                continue;
            }
            self.center_x.push(s.center.x);
            self.center_y.push(s.center.y);
            self.a.push(s.conic.a);
            self.b2.push(2.0 * s.conic.b);
            self.c.push(s.conic.c);
            self.power_floor.push(cull.power_floor);
            self.x_lo.push(cull.x_lo);
            self.x_hi.push(cull.x_hi);
            self.opacity.push(s.opacity);
            self.color.push(s.color);
            self.point_index.push(s.point_index);
            self.y0.push(first - ty_start);
            self.y_end.push(end - ty_start);
        }
        // Counting sort of the intervals into a per-row schedule:
        // count, prefix-sum, then scatter in staging (= depth) order so
        // each row's slice stays depth-ordered.
        let rows = (ty_end - ty_start) as usize;
        self.row_offsets.clear();
        self.row_offsets.resize(rows + 1, 0);
        for i in 0..self.y0.len() {
            for r in self.y0[i]..self.y_end[i] {
                self.row_offsets[r as usize + 1] += 1;
            }
        }
        for r in 0..rows {
            self.row_offsets[r + 1] += self.row_offsets[r];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.row_offsets[..rows]);
        self.row_splats.resize(self.row_offsets[rows], 0);
        for i in 0..self.y0.len() {
            for r in self.y0[i]..self.y_end[i] {
                let slot = self.cursor[r as usize];
                self.cursor[r as usize] += 1;
                self.row_splats[slot] = i as u32;
            }
        }
        culled
    }

    /// Depth-ordered [`RowSplat`] sequence for tile-relative row `r`
    /// (pixel-center row `py`), pre-culled against one 4-pixel group's
    /// column span `[gx_lo, gx_hi]` and materialized lazily from the
    /// staged SoA — no per-row buffer is written.
    ///
    /// The column test is [`composite_row4`]'s own whole-group cull
    /// (`gx_hi < x_lo || gx_lo > x_hi`, NaN bounds never skip) hoisted in
    /// front of the load of the other staged fields: a skipped splat
    /// produces no lane arithmetic either way, so filtering here is
    /// invisible to the kernel. The dy-dependent terms use the per-row
    /// path's exact association order (`py - center_y`, `(c · dy) · dy`
    /// on verbatim-staged fields), so the surviving sequence carries the
    /// same values [`stage_row`] pushes.
    fn row_iter(
        &self,
        r: u32,
        py: f32,
        gx_lo: f32,
        gx_hi: f32,
    ) -> impl Iterator<Item = RowSplat> + '_ {
        let start = self.row_offsets[r as usize];
        let end = self.row_offsets[r as usize + 1];
        self.row_splats[start..end].iter().filter_map(move |&i| {
            let i = i as usize;
            if gx_hi < self.x_lo[i] || gx_lo > self.x_hi[i] {
                return None;
            }
            let dy = py - self.center_y[i];
            Some(RowSplat {
                center_x: self.center_x[i],
                a: self.a[i],
                b2: self.b2[i],
                dy,
                c_dy2: (self.c[i] * dy) * dy,
                power_floor: self.power_floor[i],
                x_lo: self.x_lo[i],
                x_hi: self.x_hi[i],
                opacity: self.opacity[i],
                color: self.color[i],
                point_index: self.point_index[i],
            })
        })
    }

    /// Total scheduled (row, splat) pairs for the staged tile —
    /// Σ interval lengths, the per-tile path's actual row-iteration count.
    fn schedule_len(&self) -> usize {
        self.row_splats.len()
    }

    /// Drop contents, keep capacity.
    fn clear(&mut self) {
        self.center_x.clear();
        self.center_y.clear();
        self.a.clear();
        self.b2.clear();
        self.c.clear();
        self.power_floor.clear();
        self.x_lo.clear();
        self.x_hi.clear();
        self.opacity.clear();
        self.color.clear();
        self.point_index.clear();
        self.y0.clear();
        self.y_end.clear();
        self.row_offsets.clear();
        self.row_splats.clear();
        self.cursor.clear();
    }
}

/// Composite four horizontally-adjacent pixels of one tile row
/// front-to-back over the row's staged splat sequence — the 4-lane
/// counterpart of [`composite_pixel`], bit-identical to running it on each
/// pixel.
///
/// `row` is the row's depth-ordered [`RowSplat`] sequence: the buffer
/// [`stage_row`] filled (per-row staging) or [`TileStage::row_iter`]'s
/// lazy view of the per-tile schedule — both yield identical values, so
/// the kernel cannot tell the staging paths apart.
///
/// Lane `i` is the pixel centered at `(px_x.lane(i), py)` for the row
/// `row` was staged for. Per splat, the conic is evaluated for all four
/// lanes (same association order as
/// `Conic2::mahalanobis_sq`/`gaussian_weight`, with the lane-invariant `y`
/// terms staged once in scalar — identical values, not just close), then
/// each lane independently runs the scalar admission/blend sequence under
/// its activity mask. A lane retires exactly when the scalar loop would
/// have `break`-ed (an *admitted* contribution pushed its transmittance
/// below `t_min`); the group stops early once all four lanes retire.
///
/// Returns the four colors, the four winning point indices, and the total
/// blend steps across the lanes.
#[inline]
fn composite_row4(
    o: &RenderOptions,
    row: impl Iterator<Item = RowSplat>,
    px_x: F32x4,
) -> ([ms_math::Vec3; 4], [u32; 4], u64) {
    let mut cr = F32x4::splat(0.0);
    let mut cg = F32x4::splat(0.0);
    let mut cb = F32x4::splat(0.0);
    let mut t = F32x4::splat(1.0);
    let mut best_w = F32x4::splat(0.0);
    let mut best = U32x4::splat(u32::MAX);
    // Per-lane step counters stay in `u32` lanes (a lane admits each list
    // entry at most once and tile lists are indexed by `u32`, so they
    // cannot wrap) and widen once on return.
    let mut steps = U32x4::splat(0);
    let mut active = Mask4::all_on();
    let alpha_min = F32x4::splat(o.alpha_min);
    let alpha_max = F32x4::splat(o.alpha_max);
    let t_min = F32x4::splat(o.t_min);
    let one = F32x4::splat(1.0);
    let (gx_lo, gx_hi) = (px_x.lane(0), px_x.lane(3));

    for s in row {
        if !active.any() {
            break;
        }
        // Whole-group cull: if all four pixel centers lie outside the
        // splat's conservative admission box, every lane provably fails
        // the `alpha_min` test — skip without touching lane arithmetic.
        // NaN bounds compare false on every test, i.e. never skip.
        if gx_hi < s.x_lo || gx_lo > s.x_hi {
            continue;
        }
        // Mirror `Conic2::mahalanobis_sq` term by term: `a·dx·dx` and
        // `(2b)·dx·dy` vary per lane; the lane-invariant `y` terms were
        // staged once in scalar with the scalar kernel's association.
        let dx = px_x - F32x4::splat(s.center_x);
        let m = F32x4::splat(s.a) * dx * dx
            + F32x4::splat(s.b2) * dx * F32x4::splat(s.dy)
            + F32x4::splat(s.c_dy2);
        let power = F32x4::splat(-0.5) * m;

        // Lanes provably below the admission threshold skip the exp — the
        // only transcendental in the loop (see `splat_cull_data` for
        // why this cannot disagree with scalar admission). Everything
        // around this block is straight-line lane arithmetic.
        let need = active & !power.lt(F32x4::splat(s.power_floor));
        if !need.any() {
            continue;
        }
        let w = F32x4(std::array::from_fn(|l| {
            if need.lane(l) {
                // `Conic2::gaussian_weight`'s positive-power guard, per lane.
                if power.lane(l) > 0.0 {
                    1.0
                } else {
                    power.lane(l).exp()
                }
            } else {
                0.0
            }
        }));
        let alpha = (F32x4::splat(s.opacity) * w).min(alpha_max);
        // Scalar admission is `!(alpha < alpha_min)` — keep the same
        // comparison so NaN alphas are admitted exactly like the scalar
        // kernel admits them.
        let admit = need & !alpha.lt(alpha_min);
        if !admit.any() {
            continue;
        }
        steps = steps + admit.to_u32x4();
        let wgt = t * alpha;
        cr = admit.select(cr + F32x4::splat(s.color.x) * wgt, cr);
        cg = admit.select(cg + F32x4::splat(s.color.y) * wgt, cg);
        cb = admit.select(cb + F32x4::splat(s.color.z) * wgt, cb);
        let won = admit & wgt.gt(best_w);
        best_w = won.select(wgt, best_w);
        best = won.select_u32(U32x4::splat(s.point_index), best);
        t = admit.select(t * (one - alpha), t);
        // The scalar loop checks `t < t_min` only after an *admitted*
        // contribution — a lane that never admits anything never retires.
        active = active & !(admit & t.lt(t_min));
    }

    let bg = o.background;
    cr = cr + F32x4::splat(bg.x) * t;
    cg = cg + F32x4::splat(bg.y) * t;
    cb = cb + F32x4::splat(bg.z) * t;
    let colors = std::array::from_fn(|l| ms_math::Vec3::new(cr.lane(l), cg.lane(l), cb.lane(l)));
    (colors, best.to_array(), steps.wide_sum())
}

/// Per-pixel sorted compositing (StopThePop-style).
///
/// Our splats retain only their center depth, so the per-pixel key is
/// the same center depth the tile sort used — the output matches
/// [`composite_pixel`], but the gather+sort cost per pixel is
/// real, which is what the StopThePop FPS baseline measures (it trades
/// throughput for view-consistent ordering).
#[inline]
fn composite_pixel_sorted(
    o: &RenderOptions,
    splats: &[ProjectedSplat],
    list: &[u32],
    px: Vec2,
    contribs: &mut Vec<(f32, f32, ms_math::Vec3, u32)>,
) -> (ms_math::Vec3, u32, u64) {
    contribs.clear();
    for &si in list {
        let s = &splats[si as usize];
        let alpha = (s.opacity * s.conic.gaussian_weight(px - s.center)).min(o.alpha_max);
        if alpha < o.alpha_min {
            continue;
        }
        contribs.push((s.depth, alpha, s.color, s.point_index));
    }
    // Stable sort on `total_cmp`: a total order (no NaN "equal to
    // everything" escape hatch like the old `partial_cmp(..).unwrap_or
    // (Equal)`), and identical to it for the non-NaN depths projection
    // emits, so the output is unchanged.
    contribs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut color = ms_math::Vec3::zero();
    let mut t = 1.0f32;
    let mut best_w = 0.0f32;
    let mut best = u32::MAX;
    let mut steps = 0u64;
    for &(_, alpha, c, pi) in contribs.iter() {
        steps += 1;
        let w = t * alpha;
        color += c * w;
        if w > best_w {
            best_w = w;
            best = pi;
        }
        t *= 1.0 - alpha;
        if t < o.t_min {
            break;
        }
    }
    color += o.background * t;
    (color, best, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StageKind;
    use ms_math::{Quat, Vec3};

    fn cam(w: u32, h: u32) -> Camera {
        Camera::look_at(w, h, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero())
    }

    fn solid_model(points: &[(Vec3, Vec3, f32, Vec3)]) -> GaussianModel {
        let mut m = GaussianModel::new(0);
        for &(pos, scale, opacity, rgb) in points {
            m.push_solid(pos, scale, Quat::identity(), opacity, rgb);
        }
        m
    }

    #[test]
    fn empty_model_renders_background() {
        let m = GaussianModel::new(0);
        let opts = RenderOptions {
            background: Vec3::new(0.1, 0.2, 0.3),
            ..RenderOptions::default()
        };
        let out = Renderer::new(opts).render(&m, &cam(64, 64));
        assert_eq!(out.image.pixel(10, 10), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(out.stats.total_intersections, 0);
    }

    #[test]
    fn single_splat_colors_center() {
        let m = solid_model(&[(
            Vec3::zero(),
            Vec3::splat(0.3),
            0.95,
            Vec3::new(1.0, 0.0, 0.0),
        )]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let c = out.image.pixel(32, 32);
        assert!(c.x > 0.7, "center should be strongly red, got {c}");
        assert!(c.y < 0.3);
        // Corner far from the splat should stay black.
        let corner = out.image.pixel(1, 1);
        assert!(corner.x < 0.1, "corner should be dark, got {corner}");
    }

    #[test]
    fn nearer_splat_occludes() {
        let m = solid_model(&[
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.99,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.4),
                0.99,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let c = out.image.pixel(32, 32);
        assert!(c.y > c.x, "near green splat should dominate: {c}");
    }

    #[test]
    fn model_order_does_not_matter() {
        let a = solid_model(&[
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let b = solid_model(&[
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
        ]);
        let ra = Renderer::default().render(&a, &cam(64, 64));
        let rb = Renderer::default().render(&b, &cam(64, 64));
        assert!(ra.image.mse(&rb.image) < 1e-10);
    }

    #[test]
    fn per_pixel_sort_matches_per_tile_for_center_depth() {
        let m = solid_model(&[
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.3, 0.1, 1.0),
                Vec3::splat(0.4),
                0.8,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let opts = RenderOptions {
            sort_mode: SortMode::PerPixel,
            ..RenderOptions::default()
        };
        let pp = Renderer::new(opts).render(&m, &cam(64, 64));
        let pt = Renderer::default().render(&m, &cam(64, 64));
        assert!(pp.image.mse(&pt.image) < 1e-10);
    }

    #[test]
    fn parallel_matches_serial() {
        let m = solid_model(&[
            (
                Vec3::new(-0.5, 0.0, 0.0),
                Vec3::splat(0.3),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.5, 0.2, 0.5),
                Vec3::splat(0.25),
                0.7,
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(0.0, -0.4, -0.5),
                Vec3::splat(0.35),
                0.8,
                Vec3::new(0.0, 0.0, 1.0),
            ),
        ]);
        let mut opts = RenderOptions {
            threads: 4,
            track_point_stats: true,
            ..RenderOptions::default()
        };
        let par = Renderer::new(opts.clone()).render(&m, &cam(96, 80));
        opts.threads = 1;
        let ser = Renderer::new(opts).render(&m, &cam(96, 80));
        assert!(par.image.mse(&ser.image) < 1e-12);
        assert_eq!(
            par.image, ser.image,
            "parallel must be bit-exact, not just close"
        );
        assert_eq!(par.winners, ser.winners);
        assert_eq!(
            par.stats.point_pixels_dominated,
            ser.stats.point_pixels_dominated
        );
        assert_eq!(par.stats.blend_steps, ser.stats.blend_steps);
        assert_eq!(par.stats, ser.stats, "profile equality ignores wall time");
    }

    #[test]
    fn dominance_counts_assign_pixels() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.5), 0.95, Vec3::one())]);
        let out = Renderer::new(RenderOptions::with_point_stats()).render(&m, &cam(64, 64));
        assert_eq!(out.stats.point_pixels_dominated.len(), 1);
        assert!(out.stats.point_pixels_dominated[0] > 100);
        assert!(out.stats.point_tiles_used[0] >= 1);
    }

    #[test]
    fn occluded_point_dominates_nothing() {
        let m = solid_model(&[
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.6),
                0.99,
                Vec3::new(0.0, 1.0, 0.0),
            ),
            // Same center but farther and smaller: fully hidden.
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.1),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
        ]);
        let out = Renderer::new(RenderOptions::with_point_stats()).render(&m, &cam(64, 64));
        let dom = &out.stats.point_pixels_dominated;
        assert!(dom[0] > 0);
        assert_eq!(dom[1], 0, "occluded point should dominate no pixels");
    }

    #[test]
    fn transmittance_early_stop_reduces_blend_steps() {
        // A stack of opaque splats: early-stop should keep blend steps far
        // below (pixels × splats).
        let pts: Vec<(Vec3, Vec3, f32, Vec3)> = (0..20)
            .map(|i| {
                (
                    Vec3::new(0.0, 0.0, i as f32 * 0.01),
                    Vec3::splat(0.4),
                    0.99,
                    Vec3::one(),
                )
            })
            .collect();
        let m = solid_model(&pts);
        let out = Renderer::new(RenderOptions::with_point_stats()).render(&m, &cam(64, 64));
        let naive = out.stats.total_intersections * (16 * 16) as u64;
        assert!(out.stats.blend_steps < naive / 2, "early stop ineffective");
    }

    #[test]
    fn render_filtered_excludes_points() {
        let m = solid_model(&[
            (
                Vec3::zero(),
                Vec3::splat(0.4),
                0.95,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::zero(),
                Vec3::splat(0.4),
                0.95,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let r = Renderer::default();
        let only_red = r.render_filtered(&m, &cam(64, 64), |i| i == 0);
        let c = only_red.image.pixel(32, 32);
        assert!(c.x > 0.5 && c.y < 0.1);
        assert_eq!(only_red.stats.points_projected, 1);
    }

    #[test]
    #[should_panic(expected = "degenerate camera")]
    fn zero_width_camera_rejected_at_entry() {
        // Regression: a zero-width camera used to reach CompositeStage's
        // `pixels / width` as a divide-by-zero.
        let m = GaussianModel::new(0);
        let camera = Camera {
            width: 0,
            ..cam(64, 64)
        };
        let _ = Renderer::default().render(&m, &camera);
    }

    #[test]
    #[should_panic(expected = "degenerate camera")]
    fn zero_height_camera_rejected_at_entry() {
        let m = GaussianModel::new(0);
        let camera = Camera {
            height: 0,
            ..cam(64, 64)
        };
        let _ = Renderer::default().render_masked(&m, &camera, |_| true, &[]);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 pixel addressing")]
    fn oversized_camera_rejected_at_entry() {
        // Regression: at 65536×65536 the old mask-size assert computed
        // width * height in u32, wrapped to 0, and let an empty mask slip
        // through toward a multi-terabyte render. Such images are now
        // rejected outright at entry — per-pixel indices are u32
        // throughout the hot path and would wrap silently.
        let m = GaussianModel::new(0);
        let camera = Camera {
            width: 65536,
            height: 65536,
            ..cam(64, 64)
        };
        let _ = Renderer::default().render_masked(&m, &camera, |_| true, &[]);
    }

    #[test]
    #[should_panic(expected = "pixel mask size mismatch")]
    fn wrong_sized_mask_rejected() {
        let m = GaussianModel::new(0);
        let _ = Renderer::default().render_masked(&m, &cam(64, 64), |_| true, &[true; 100]);
    }

    #[test]
    fn stats_grid_covers_image() {
        let m = GaussianModel::new(0);
        let out = Renderer::default().render(&m, &cam(100, 70));
        assert_eq!(out.stats.grid.tiles_x, 7); // ceil(100/16)
        assert_eq!(out.stats.grid.tiles_y, 5); // ceil(70/16)
        assert_eq!(out.stats.tile_intersections.len(), 35);
        assert_eq!(out.stats.grid.pixel_count(), 100 * 70);
    }

    #[test]
    fn alpha_max_caps_single_splat() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.5), 1.0, Vec3::one())]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let c = out.image.pixel(32, 32);
        // alpha capped at 0.99 → some background leaks through.
        assert!(c.x <= 0.9901);
    }

    #[test]
    fn profile_records_all_five_stages() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.4), 0.9, Vec3::one())]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let kinds: Vec<StageKind> = out.stats.profile.samples.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::Project,
                StageKind::Bin,
                StageKind::Merge,
                StageKind::Raster,
                StageKind::Composite
            ]
        );
        // Counters mirror the headline stats.
        let p = &out.stats.profile;
        assert_eq!(
            p.items(StageKind::Project),
            out.stats.points_projected as u64
        );
        assert_eq!(p.items(StageKind::Bin), out.stats.total_intersections);
        // Merging disabled by default: the schedule is one band per tile
        // row (64 px / 16 px tiles = 4 bands), and no unit map is recorded.
        assert_eq!(p.items(StageKind::Merge), 4);
        assert!(out.stats.tile_unit.is_empty());
        assert_eq!(p.items(StageKind::Raster), out.stats.blend_steps);
        assert_eq!(p.items(StageKind::Composite), 64 * 64);
    }

    #[test]
    fn merged_render_is_bit_identical_and_records_schedule() {
        let m = solid_model(&[
            (
                Vec3::new(-0.5, 0.0, 0.0),
                Vec3::splat(0.3),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.4, 0.3, 0.5),
                Vec3::splat(0.2),
                0.8,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let camera = cam(96, 96);
        let plain = Renderer::new(RenderOptions {
            track_point_stats: true,
            ..RenderOptions::default()
        })
        .render(&m, &camera);
        let merged = Renderer::new(RenderOptions {
            track_point_stats: true,
            ..RenderOptions::with_tile_merging()
        })
        .render(&m, &camera);
        assert_eq!(merged.image, plain.image, "merging must not change pixels");
        assert_eq!(merged.winners, plain.winners);
        assert_eq!(merged.stats.blend_steps, plain.stats.blend_steps);
        assert_eq!(
            merged.stats.tile_intersections,
            plain.stats.tile_intersections
        );
        // The merged run records the schedule; the unit counters partition
        // the per-tile counts.
        assert_eq!(merged.stats.tile_unit.len(), merged.stats.grid.tile_count());
        assert!(merged.stats.work_unit_count() > 0);
        assert_eq!(
            merged
                .stats
                .unit_intersections()
                .iter()
                .map(|&u| u as u64)
                .sum::<u64>(),
            merged.stats.total_intersections
        );
        assert!(plain.stats.tile_unit.is_empty());
    }

    fn kernel_opts(kernel: RasterKernel) -> RenderOptions {
        RenderOptions {
            raster_kernel: kernel,
            track_point_stats: true,
            ..RenderOptions::default()
        }
    }

    /// A small scene with overlap, occlusion and off-center splats so the
    /// four lanes of a group genuinely diverge (different admission,
    /// different early-stop depths).
    fn divergent_model() -> GaussianModel {
        solid_model(&[
            (
                Vec3::new(-0.6, 0.1, 0.0),
                Vec3::splat(0.35),
                0.97,
                Vec3::new(1.0, 0.1, 0.0),
            ),
            (
                Vec3::new(0.5, -0.2, 0.6),
                Vec3::splat(0.2),
                0.6,
                Vec3::new(0.0, 1.0, 0.3),
            ),
            (
                Vec3::new(0.1, 0.4, -0.7),
                Vec3::splat(0.45),
                0.99,
                Vec3::new(0.2, 0.0, 1.0),
            ),
            (
                Vec3::new(0.0, -0.5, 0.2),
                Vec3::splat(0.15),
                0.3,
                Vec3::new(1.0, 1.0, 0.0),
            ),
        ])
    }

    #[test]
    fn simd_kernel_matches_scalar_bit_for_bit() {
        // 97×61: not multiples of the tile size or the lane width, so both
        // tile-edge remainders and ragged image edges are exercised.
        let m = divergent_model();
        let camera = cam(97, 61);
        let scalar = Renderer::new(kernel_opts(RasterKernel::Scalar)).render(&m, &camera);
        let simd = Renderer::new(kernel_opts(RasterKernel::Simd4)).render(&m, &camera);
        assert_eq!(simd.image, scalar.image, "pixels must be bit-identical");
        assert_eq!(simd.winners, scalar.winners);
        assert_eq!(simd.stats.blend_steps, scalar.stats.blend_steps);
        assert_eq!(simd.stats, scalar.stats);
    }

    #[test]
    fn simd_kernel_matches_scalar_under_mask_gaps() {
        // A mask with holes inside 4-pixel groups forces the gap fallback.
        let m = divergent_model();
        let camera = cam(64, 48);
        let mask: Vec<bool> = (0..(64 * 48)).map(|i| i % 5 != 2 && i % 11 != 0).collect();
        let scalar = Renderer::new(kernel_opts(RasterKernel::Scalar)).render_masked(
            &m,
            &camera,
            |_| true,
            &mask,
        );
        let simd = Renderer::new(kernel_opts(RasterKernel::Simd4)).render_masked(
            &m,
            &camera,
            |_| true,
            &mask,
        );
        assert_eq!(simd.image, scalar.image);
        assert_eq!(simd.winners, scalar.winners);
        assert_eq!(simd.stats, scalar.stats);
    }

    #[test]
    fn simd_kernel_handles_lane_divergent_early_stop() {
        // A stack of near-opaque splats slightly offset from each other:
        // adjacent pixels cross `t_min` after different splat counts, so
        // lanes retire at different loop iterations.
        let pts: Vec<(Vec3, Vec3, f32, Vec3)> = (0..24)
            .map(|i| {
                (
                    Vec3::new(0.03 * i as f32 - 0.3, 0.02 * i as f32, i as f32 * 0.02),
                    Vec3::splat(0.3),
                    0.98,
                    Vec3::new(1.0 / (i + 1) as f32, 0.5, 0.2),
                )
            })
            .collect();
        let m = solid_model(&pts);
        let camera = cam(80, 64);
        let scalar = Renderer::new(kernel_opts(RasterKernel::Scalar)).render(&m, &camera);
        let simd = Renderer::new(kernel_opts(RasterKernel::Simd4)).render(&m, &camera);
        assert_eq!(simd.image, scalar.image);
        assert_eq!(simd.winners, scalar.winners);
        assert_eq!(simd.stats.blend_steps, scalar.stats.blend_steps);
    }

    #[test]
    fn per_pixel_sort_mode_ignores_kernel_selection() {
        let m = divergent_model();
        let camera = cam(64, 64);
        let a = Renderer::new(RenderOptions {
            sort_mode: SortMode::PerPixel,
            raster_kernel: RasterKernel::Scalar,
            ..RenderOptions::default()
        })
        .render(&m, &camera);
        let b = Renderer::new(RenderOptions {
            sort_mode: SortMode::PerPixel,
            raster_kernel: RasterKernel::Simd4,
            ..RenderOptions::default()
        })
        .render(&m, &camera);
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn winner_buffers_empty_without_point_stats() {
        // Satellite regression: without point statistics the per-unit
        // winner buffers (and the assembled output buffer) stay empty
        // instead of allocating a dead image-sized vec per work unit.
        let m = divergent_model();
        let out = Renderer::default().render(&m, &cam(64, 64));
        assert!(out.winners.is_empty());
        let with = Renderer::new(RenderOptions::with_point_stats()).render(&m, &cam(64, 64));
        assert_eq!(with.winners.len(), 64 * 64);
    }

    #[test]
    fn pre_projected_renders_skip_the_project_stage() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.4), 0.9, Vec3::one())]);
        let camera = cam(64, 64);
        let opts = RenderOptions::default();
        let splats = crate::projection::project_model(&m, &camera, &opts);
        let out = Renderer::new(opts).render_splats(m.len(), &splats, &camera);
        assert!(out
            .stats
            .profile
            .samples
            .iter()
            .all(|s| s.kind != StageKind::Project));
        assert_eq!(out.stats.profile.samples.len(), 4);
    }
}
