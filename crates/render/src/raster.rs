//! Rasterization kernels and the top-level [`Renderer`].
//!
//! The renderer itself is thin: every entry point assembles the staged
//! frame pipeline from [`crate::pipeline`] (Project → Bin → Merge →
//! Raster → Composite) and runs it under a [`Profiler`], so per-stage wall
//! time and work counters land in [`RenderStats::profile`]. This module
//! keeps the per-work-unit and per-pixel compositing kernels the Raster
//! stage executes.

use crate::binning::{SuperTile, TileBins};
use crate::options::{RenderOptions, SortMode};
use crate::pipeline::{
    BinStage, CompositeStage, Composited, MergeStage, Profiler, ProjectStage, RasterStage,
};
use crate::projection::ProjectedSplat;
use crate::stats::{RenderStats, TileGridDims};
use ms_math::Vec2;
use ms_scene::{Camera, GaussianModel};

/// Result of a render pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderOutput {
    /// The rendered image.
    pub image: crate::image::Image,
    /// Workload statistics of the pass.
    pub stats: RenderStats,
    /// Winning splat *point index* per pixel (`u32::MAX` = none); empty
    /// unless `track_point_stats` was set. Row-major. Exposed so
    /// determinism tests can compare full winner buffers, not just their
    /// per-point aggregation.
    pub winners: Vec<u32>,
}

/// The tile-based splatting renderer.
#[derive(Debug, Clone)]
pub struct Renderer {
    options: RenderOptions,
}

/// Output of rasterizing one work unit (a [`SuperTile`] rectangle of
/// tiles) — what the parallel Raster stage distributes and the Composite
/// stage merges. A band is the degenerate full-row rectangle, so the
/// unmerged pipeline produces exactly the PR 3/4 band results.
#[derive(Debug)]
pub struct UnitResult {
    /// First pixel column of the unit.
    pub x_start: u32,
    /// First pixel row of the unit.
    pub y_start: u32,
    /// Pixel width of the unit, clipped to the image.
    pub width: u32,
    /// Pixels (row-major within the unit, `width` per row).
    pub pixels: Vec<ms_math::Vec3>,
    /// Winning splat *point index* per pixel (`u32::MAX` = none).
    pub winners: Vec<u32>,
    /// Compositing steps executed.
    pub blend_steps: u64,
}

impl Renderer {
    /// Create a renderer.
    ///
    /// # Panics
    ///
    /// Panics when `options` fail validation — configuration errors are
    /// programmer errors here, not runtime conditions.
    pub fn new(options: RenderOptions) -> Self {
        options.validate().expect("invalid render options");
        Self { options }
    }

    /// The active options.
    pub fn options(&self) -> &RenderOptions {
        &self.options
    }

    /// Render `model` from `camera`.
    pub fn render(&self, model: &GaussianModel, camera: &Camera) -> RenderOutput {
        self.render_filtered(model, camera, |_| true)
    }

    /// Render with a per-point admission predicate (the foveation Filtering
    /// stage drops points whose quality bound excludes them). The predicate
    /// is `Fn + Sync` because projection shards evaluate it concurrently
    /// when `threads != 1`.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image (zero width or height)
    /// or exceeds `u32` pixel addressing — rejected here, at pipeline
    /// entry, instead of surfacing as a divide-by-zero or a wrapped pixel
    /// index deep in the pipeline.
    pub fn render_filtered<F: Fn(usize) -> bool + Sync>(
        &self,
        model: &GaussianModel,
        camera: &Camera,
        admit: F,
    ) -> RenderOutput {
        check_camera(camera);
        let mut profiler = Profiler::default();
        let splats = profiler.run(
            &mut ProjectStage {
                model,
                camera,
                options: &self.options,
                admit,
            },
            (),
        );
        self.run_pipeline(model.len(), &splats, camera, None, profiler)
    }

    /// Render only the pixels where `mask` is true (row-major, one entry
    /// per pixel); masked-out pixels keep the background color. Tiles with
    /// no active pixel are skipped entirely — splats are not even duplicated
    /// into them, mirroring the foveation Filtering stage (Fig. 7-E).
    ///
    /// # Panics
    ///
    /// Panics when `mask.len() != width * height`, or when `camera` has a
    /// zero-pixel image or exceeds `u32` pixel addressing. The mask-size
    /// comparison is done in `u64`: at extreme dimensions `width * height`
    /// overflows `u32`, which used to let a wrong-sized mask slip past the
    /// check.
    pub fn render_masked<F: Fn(usize) -> bool + Sync>(
        &self,
        model: &GaussianModel,
        camera: &Camera,
        admit: F,
        mask: &[bool],
    ) -> RenderOutput {
        check_camera(camera);
        assert_eq!(
            mask.len() as u64,
            camera.width as u64 * camera.height as u64,
            "pixel mask size mismatch"
        );
        let mut profiler = Profiler::default();
        let splats = profiler.run(
            &mut ProjectStage {
                model,
                camera,
                options: &self.options,
                admit,
            },
            (),
        );
        self.run_pipeline(model.len(), &splats, camera, Some(mask), profiler)
    }

    /// Rasterize pre-projected splats. Exposed so callers that re-render the
    /// same projection (e.g. the trainer's forward/backward passes) can skip
    /// re-projection; the resulting profile carries no Project sample.
    ///
    /// # Panics
    ///
    /// Panics when `camera` has a zero-pixel image or exceeds `u32` pixel
    /// addressing.
    pub fn render_splats(
        &self,
        model_len: usize,
        splats: &[ProjectedSplat],
        camera: &Camera,
    ) -> RenderOutput {
        check_camera(camera);
        self.run_pipeline(model_len, splats, camera, None, Profiler::default())
    }

    /// Run Bin → Merge → Raster → Composite over projected splats and
    /// assemble [`RenderStats`] from what the stages measured.
    fn run_pipeline(
        &self,
        model_len: usize,
        splats: &[ProjectedSplat],
        camera: &Camera,
        mask: Option<&[bool]>,
        mut profiler: Profiler,
    ) -> RenderOutput {
        let grid = TileGridDims::for_image(camera.width, camera.height, self.options.tile_size);
        let track = self.options.track_point_stats;

        let bins = profiler.run(
            &mut BinStage {
                splats,
                grid,
                mask,
                threads: self.options.resolved_threads(),
            },
            (),
        );
        let schedule = profiler.run(
            &mut MergeStage {
                options: &self.options,
            },
            &bins,
        );
        let units = profiler.run(
            &mut RasterStage {
                splats,
                options: &self.options,
                camera,
                mask,
            },
            (&bins, &schedule),
        );
        let Composited {
            image,
            winners,
            blend_steps,
        } = profiler.run(
            &mut CompositeStage {
                camera,
                options: &self.options,
                track_winners: track,
            },
            units,
        );

        let tile_intersections = bins.intersection_counts();
        let total_intersections = bins.total_intersections();
        // The per-tile → work-unit map is recorded only when occupancy
        // merging actually ran; the identity band schedule reflects
        // scheduling granularity, not a merge decision, and recording it
        // would make the accelerator simulator treat whole bands as TMU
        // output.
        let tile_unit = if self.options.merge_enabled() {
            schedule.tile_unit_map()
        } else {
            Vec::new()
        };
        let (point_tiles_used, point_pixels_dominated) = if track {
            // Derived from the CSR bins so masked-out tiles do not count:
            // every CSR index entry is one (tile, splat) intersection.
            let mut tiles_used = vec![0u32; model_len];
            for &si in bins.indices() {
                tiles_used[splats[si as usize].point_index as usize] += 1;
            }
            let mut dominated = vec![0u32; model_len];
            for &w in &winners {
                if w != u32::MAX {
                    dominated[w as usize] += 1;
                }
            }
            (tiles_used, dominated)
        } else {
            (Vec::new(), Vec::new())
        };

        RenderOutput {
            image,
            stats: RenderStats {
                grid,
                tile_intersections,
                points_projected: splats.len(),
                points_submitted: model_len,
                total_intersections,
                blend_steps,
                point_tiles_used,
                point_pixels_dominated,
                tile_unit,
                profile: profiler.finish(),
            },
            winners,
        }
    }
}

impl Default for Renderer {
    fn default() -> Self {
        Self::new(RenderOptions::default())
    }
}

/// Reject degenerate cameras at pipeline entry: a zero-width or zero-height
/// image would reach the composite stage's `pixels / width` row arithmetic
/// as a divide-by-zero far from the actual mistake. Images beyond `u32`
/// pixel addressing are rejected too — per-pixel indices (`y * width + x`)
/// are computed in `u32` throughout the hot path, so admitting a larger
/// image would wrap silently instead of failing loudly.
fn check_camera(camera: &Camera) {
    assert!(
        camera.width > 0 && camera.height > 0,
        "degenerate camera: {}x{} image has no pixels",
        camera.width,
        camera.height
    );
    assert!(
        camera.width as u64 * camera.height as u64 <= u32::MAX as u64,
        "camera {}x{} exceeds u32 pixel addressing",
        camera.width,
        camera.height
    );
}

/// Rasterize one work unit (a rectangle of tiles, clipped to the image).
///
/// Each pixel composites against **its own tile's** depth-sorted CSR list —
/// the unit rectangle only decides which pixels this call owns — so two
/// schedules that partition the grid differently produce bit-identical
/// pixels, winners and blend-step counts. This is the invariant behind
/// both determinism axes (thread count and merged-vs-unmerged).
pub(crate) fn rasterize_unit(
    options: &RenderOptions,
    splats: &[ProjectedSplat],
    bins: &TileBins,
    camera: &Camera,
    unit: &SuperTile,
    mask: Option<&[bool]>,
) -> UnitResult {
    let grid = bins.grid();
    let ts = grid.tile_size;
    // Clip in u64: at extreme dimensions `tx1 * ts` can exceed u32 even
    // though the clipped result fits.
    let x_start = unit.tx0 * ts;
    let y_start = unit.ty0 * ts;
    let x_end = (unit.tx1 as u64 * ts as u64).min(camera.width as u64) as u32;
    let y_end = (unit.ty1 as u64 * ts as u64).min(camera.height as u64) as u32;
    let (unit_w, unit_h) = (x_end - x_start, y_end - y_start);
    let mut pixels = vec![options.background; (unit_w * unit_h) as usize];
    let mut winners = vec![u32::MAX; (unit_w * unit_h) as usize];
    let mut blend_steps = 0u64;
    let track = options.track_point_stats;

    // Scratch buffer for the per-pixel sort mode.
    let mut contribs: Vec<(f32, f32, ms_math::Vec3, u32)> = Vec::new();

    for ty in unit.ty0..unit.ty1 {
        for tx in unit.tx0..unit.tx1 {
            let list = bins.tile(tx, ty);
            if list.is_empty() {
                continue;
            }
            let tx_start = tx * ts;
            let tx_end = (tx_start as u64 + ts as u64).min(camera.width as u64) as u32;
            let ty_start = ty * ts;
            let ty_end = (ty_start as u64 + ts as u64).min(camera.height as u64) as u32;
            for y in ty_start..ty_end {
                for x in tx_start..tx_end {
                    if let Some(mask) = mask {
                        if !mask[(y * camera.width + x) as usize] {
                            continue;
                        }
                    }
                    let px = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
                    let out_idx = ((y - y_start) * unit_w + (x - x_start)) as usize;
                    match options.sort_mode {
                        SortMode::PerTile => {
                            let (color, winner, steps) = composite_pixel(options, splats, list, px);
                            pixels[out_idx] = color;
                            if track {
                                winners[out_idx] = winner;
                            }
                            blend_steps += steps;
                        }
                        SortMode::PerPixel => {
                            let (color, winner, steps) =
                                composite_pixel_sorted(options, splats, list, px, &mut contribs);
                            pixels[out_idx] = color;
                            if track {
                                winners[out_idx] = winner;
                            }
                            blend_steps += steps;
                        }
                    }
                }
            }
        }
    }
    UnitResult {
        x_start,
        y_start,
        width: unit_w,
        pixels,
        winners,
        blend_steps,
    }
}

/// Composite one pixel front-to-back over a depth-sorted splat list.
/// Returns (color, dominating point index or MAX, blend steps).
#[inline]
fn composite_pixel(
    o: &RenderOptions,
    splats: &[ProjectedSplat],
    list: &[u32],
    px: Vec2,
) -> (ms_math::Vec3, u32, u64) {
    let mut color = ms_math::Vec3::zero();
    let mut t = 1.0f32;
    let mut best_w = 0.0f32;
    let mut best = u32::MAX;
    let mut steps = 0u64;
    for &si in list {
        let s = &splats[si as usize];
        let alpha = (s.opacity * s.conic.gaussian_weight(px - s.center)).min(o.alpha_max);
        if alpha < o.alpha_min {
            continue;
        }
        steps += 1;
        let w = t * alpha;
        color += s.color * w;
        if w > best_w {
            best_w = w;
            best = s.point_index;
        }
        t *= 1.0 - alpha;
        if t < o.t_min {
            break;
        }
    }
    color += o.background * t;
    (color, best, steps)
}

/// Per-pixel sorted compositing (StopThePop-style).
///
/// Our splats retain only their center depth, so the per-pixel key is
/// the same center depth the tile sort used — the output matches
/// [`composite_pixel`], but the gather+sort cost per pixel is
/// real, which is what the StopThePop FPS baseline measures (it trades
/// throughput for view-consistent ordering).
#[inline]
fn composite_pixel_sorted(
    o: &RenderOptions,
    splats: &[ProjectedSplat],
    list: &[u32],
    px: Vec2,
    contribs: &mut Vec<(f32, f32, ms_math::Vec3, u32)>,
) -> (ms_math::Vec3, u32, u64) {
    contribs.clear();
    for &si in list {
        let s = &splats[si as usize];
        let alpha = (s.opacity * s.conic.gaussian_weight(px - s.center)).min(o.alpha_max);
        if alpha < o.alpha_min {
            continue;
        }
        contribs.push((s.depth, alpha, s.color, s.point_index));
    }
    contribs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut color = ms_math::Vec3::zero();
    let mut t = 1.0f32;
    let mut best_w = 0.0f32;
    let mut best = u32::MAX;
    let mut steps = 0u64;
    for &(_, alpha, c, pi) in contribs.iter() {
        steps += 1;
        let w = t * alpha;
        color += c * w;
        if w > best_w {
            best_w = w;
            best = pi;
        }
        t *= 1.0 - alpha;
        if t < o.t_min {
            break;
        }
    }
    color += o.background * t;
    (color, best, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StageKind;
    use ms_math::{Quat, Vec3};

    fn cam(w: u32, h: u32) -> Camera {
        Camera::look_at(w, h, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero())
    }

    fn solid_model(points: &[(Vec3, Vec3, f32, Vec3)]) -> GaussianModel {
        let mut m = GaussianModel::new(0);
        for &(pos, scale, opacity, rgb) in points {
            m.push_solid(pos, scale, Quat::identity(), opacity, rgb);
        }
        m
    }

    #[test]
    fn empty_model_renders_background() {
        let m = GaussianModel::new(0);
        let opts = RenderOptions {
            background: Vec3::new(0.1, 0.2, 0.3),
            ..RenderOptions::default()
        };
        let out = Renderer::new(opts).render(&m, &cam(64, 64));
        assert_eq!(out.image.pixel(10, 10), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(out.stats.total_intersections, 0);
    }

    #[test]
    fn single_splat_colors_center() {
        let m = solid_model(&[(
            Vec3::zero(),
            Vec3::splat(0.3),
            0.95,
            Vec3::new(1.0, 0.0, 0.0),
        )]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let c = out.image.pixel(32, 32);
        assert!(c.x > 0.7, "center should be strongly red, got {c}");
        assert!(c.y < 0.3);
        // Corner far from the splat should stay black.
        let corner = out.image.pixel(1, 1);
        assert!(corner.x < 0.1, "corner should be dark, got {corner}");
    }

    #[test]
    fn nearer_splat_occludes() {
        let m = solid_model(&[
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.99,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.4),
                0.99,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let c = out.image.pixel(32, 32);
        assert!(c.y > c.x, "near green splat should dominate: {c}");
    }

    #[test]
    fn model_order_does_not_matter() {
        let a = solid_model(&[
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let b = solid_model(&[
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
        ]);
        let ra = Renderer::default().render(&a, &cam(64, 64));
        let rb = Renderer::default().render(&b, &cam(64, 64));
        assert!(ra.image.mse(&rb.image) < 1e-10);
    }

    #[test]
    fn per_pixel_sort_matches_per_tile_for_center_depth() {
        let m = solid_model(&[
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.4),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.3, 0.1, 1.0),
                Vec3::splat(0.4),
                0.8,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let opts = RenderOptions {
            sort_mode: SortMode::PerPixel,
            ..RenderOptions::default()
        };
        let pp = Renderer::new(opts).render(&m, &cam(64, 64));
        let pt = Renderer::default().render(&m, &cam(64, 64));
        assert!(pp.image.mse(&pt.image) < 1e-10);
    }

    #[test]
    fn parallel_matches_serial() {
        let m = solid_model(&[
            (
                Vec3::new(-0.5, 0.0, 0.0),
                Vec3::splat(0.3),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.5, 0.2, 0.5),
                Vec3::splat(0.25),
                0.7,
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(0.0, -0.4, -0.5),
                Vec3::splat(0.35),
                0.8,
                Vec3::new(0.0, 0.0, 1.0),
            ),
        ]);
        let mut opts = RenderOptions {
            threads: 4,
            track_point_stats: true,
            ..RenderOptions::default()
        };
        let par = Renderer::new(opts.clone()).render(&m, &cam(96, 80));
        opts.threads = 1;
        let ser = Renderer::new(opts).render(&m, &cam(96, 80));
        assert!(par.image.mse(&ser.image) < 1e-12);
        assert_eq!(
            par.image, ser.image,
            "parallel must be bit-exact, not just close"
        );
        assert_eq!(par.winners, ser.winners);
        assert_eq!(
            par.stats.point_pixels_dominated,
            ser.stats.point_pixels_dominated
        );
        assert_eq!(par.stats.blend_steps, ser.stats.blend_steps);
        assert_eq!(par.stats, ser.stats, "profile equality ignores wall time");
    }

    #[test]
    fn dominance_counts_assign_pixels() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.5), 0.95, Vec3::one())]);
        let out = Renderer::new(RenderOptions::with_point_stats()).render(&m, &cam(64, 64));
        assert_eq!(out.stats.point_pixels_dominated.len(), 1);
        assert!(out.stats.point_pixels_dominated[0] > 100);
        assert!(out.stats.point_tiles_used[0] >= 1);
    }

    #[test]
    fn occluded_point_dominates_nothing() {
        let m = solid_model(&[
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::splat(0.6),
                0.99,
                Vec3::new(0.0, 1.0, 0.0),
            ),
            // Same center but farther and smaller: fully hidden.
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::splat(0.1),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
        ]);
        let out = Renderer::new(RenderOptions::with_point_stats()).render(&m, &cam(64, 64));
        let dom = &out.stats.point_pixels_dominated;
        assert!(dom[0] > 0);
        assert_eq!(dom[1], 0, "occluded point should dominate no pixels");
    }

    #[test]
    fn transmittance_early_stop_reduces_blend_steps() {
        // A stack of opaque splats: early-stop should keep blend steps far
        // below (pixels × splats).
        let pts: Vec<(Vec3, Vec3, f32, Vec3)> = (0..20)
            .map(|i| {
                (
                    Vec3::new(0.0, 0.0, i as f32 * 0.01),
                    Vec3::splat(0.4),
                    0.99,
                    Vec3::one(),
                )
            })
            .collect();
        let m = solid_model(&pts);
        let out = Renderer::new(RenderOptions::with_point_stats()).render(&m, &cam(64, 64));
        let naive = out.stats.total_intersections * (16 * 16) as u64;
        assert!(out.stats.blend_steps < naive / 2, "early stop ineffective");
    }

    #[test]
    fn render_filtered_excludes_points() {
        let m = solid_model(&[
            (
                Vec3::zero(),
                Vec3::splat(0.4),
                0.95,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::zero(),
                Vec3::splat(0.4),
                0.95,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let r = Renderer::default();
        let only_red = r.render_filtered(&m, &cam(64, 64), |i| i == 0);
        let c = only_red.image.pixel(32, 32);
        assert!(c.x > 0.5 && c.y < 0.1);
        assert_eq!(only_red.stats.points_projected, 1);
    }

    #[test]
    #[should_panic(expected = "degenerate camera")]
    fn zero_width_camera_rejected_at_entry() {
        // Regression: a zero-width camera used to reach CompositeStage's
        // `pixels / width` as a divide-by-zero.
        let m = GaussianModel::new(0);
        let camera = Camera {
            width: 0,
            ..cam(64, 64)
        };
        let _ = Renderer::default().render(&m, &camera);
    }

    #[test]
    #[should_panic(expected = "degenerate camera")]
    fn zero_height_camera_rejected_at_entry() {
        let m = GaussianModel::new(0);
        let camera = Camera {
            height: 0,
            ..cam(64, 64)
        };
        let _ = Renderer::default().render_masked(&m, &camera, |_| true, &[]);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 pixel addressing")]
    fn oversized_camera_rejected_at_entry() {
        // Regression: at 65536×65536 the old mask-size assert computed
        // width * height in u32, wrapped to 0, and let an empty mask slip
        // through toward a multi-terabyte render. Such images are now
        // rejected outright at entry — per-pixel indices are u32
        // throughout the hot path and would wrap silently.
        let m = GaussianModel::new(0);
        let camera = Camera {
            width: 65536,
            height: 65536,
            ..cam(64, 64)
        };
        let _ = Renderer::default().render_masked(&m, &camera, |_| true, &[]);
    }

    #[test]
    #[should_panic(expected = "pixel mask size mismatch")]
    fn wrong_sized_mask_rejected() {
        let m = GaussianModel::new(0);
        let _ = Renderer::default().render_masked(&m, &cam(64, 64), |_| true, &[true; 100]);
    }

    #[test]
    fn stats_grid_covers_image() {
        let m = GaussianModel::new(0);
        let out = Renderer::default().render(&m, &cam(100, 70));
        assert_eq!(out.stats.grid.tiles_x, 7); // ceil(100/16)
        assert_eq!(out.stats.grid.tiles_y, 5); // ceil(70/16)
        assert_eq!(out.stats.tile_intersections.len(), 35);
        assert_eq!(out.stats.grid.pixel_count(), 100 * 70);
    }

    #[test]
    fn alpha_max_caps_single_splat() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.5), 1.0, Vec3::one())]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let c = out.image.pixel(32, 32);
        // alpha capped at 0.99 → some background leaks through.
        assert!(c.x <= 0.9901);
    }

    #[test]
    fn profile_records_all_five_stages() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.4), 0.9, Vec3::one())]);
        let out = Renderer::default().render(&m, &cam(64, 64));
        let kinds: Vec<StageKind> = out.stats.profile.samples.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::Project,
                StageKind::Bin,
                StageKind::Merge,
                StageKind::Raster,
                StageKind::Composite
            ]
        );
        // Counters mirror the headline stats.
        let p = &out.stats.profile;
        assert_eq!(
            p.items(StageKind::Project),
            out.stats.points_projected as u64
        );
        assert_eq!(p.items(StageKind::Bin), out.stats.total_intersections);
        // Merging disabled by default: the schedule is one band per tile
        // row (64 px / 16 px tiles = 4 bands), and no unit map is recorded.
        assert_eq!(p.items(StageKind::Merge), 4);
        assert!(out.stats.tile_unit.is_empty());
        assert_eq!(p.items(StageKind::Raster), out.stats.blend_steps);
        assert_eq!(p.items(StageKind::Composite), 64 * 64);
    }

    #[test]
    fn merged_render_is_bit_identical_and_records_schedule() {
        let m = solid_model(&[
            (
                Vec3::new(-0.5, 0.0, 0.0),
                Vec3::splat(0.3),
                0.9,
                Vec3::new(1.0, 0.0, 0.0),
            ),
            (
                Vec3::new(0.4, 0.3, 0.5),
                Vec3::splat(0.2),
                0.8,
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let camera = cam(96, 96);
        let plain = Renderer::new(RenderOptions {
            track_point_stats: true,
            ..RenderOptions::default()
        })
        .render(&m, &camera);
        let merged = Renderer::new(RenderOptions {
            track_point_stats: true,
            ..RenderOptions::with_tile_merging()
        })
        .render(&m, &camera);
        assert_eq!(merged.image, plain.image, "merging must not change pixels");
        assert_eq!(merged.winners, plain.winners);
        assert_eq!(merged.stats.blend_steps, plain.stats.blend_steps);
        assert_eq!(
            merged.stats.tile_intersections,
            plain.stats.tile_intersections
        );
        // The merged run records the schedule; the unit counters partition
        // the per-tile counts.
        assert_eq!(merged.stats.tile_unit.len(), merged.stats.grid.tile_count());
        assert!(merged.stats.work_unit_count() > 0);
        assert_eq!(
            merged
                .stats
                .unit_intersections()
                .iter()
                .map(|&u| u as u64)
                .sum::<u64>(),
            merged.stats.total_intersections
        );
        assert!(plain.stats.tile_unit.is_empty());
    }

    #[test]
    fn pre_projected_renders_skip_the_project_stage() {
        let m = solid_model(&[(Vec3::zero(), Vec3::splat(0.4), 0.9, Vec3::one())]);
        let camera = cam(64, 64);
        let opts = RenderOptions::default();
        let splats = crate::projection::project_model(&m, &camera, &opts);
        let out = Renderer::new(opts).render_splats(m.len(), &splats, &camera);
        assert!(out
            .stats
            .profile
            .samples
            .iter()
            .all(|s| s.kind != StageKind::Project));
        assert_eq!(out.stats.profile.samples.len(), 4);
    }
}
