//! The staged frame pipeline: **Project → Bin → Merge → Raster →
//! Composite**.
//!
//! `ARCHITECTURE.md` at the repository root is the canonical home of the
//! pipeline/determinism contract; this module doc restates the parts it
//! implements.
//!
//! # Stage graph
//!
//! Every frame flows through five named stages, mirroring the tile pipeline
//! of the paper's §2.1 (Projection → Sorting → Rasterization) with the
//! §4.3 tile-merge pass between sorting and rasterization and an explicit
//! composite step for work-unit assembly:
//!
//! ```text
//!   GaussianModel ──▶ [Project] ──▶ Vec<ProjectedSplat>
//!                                     │      (sharded over point ranges)
//!                                     ▼
//!                                  [Bin]     counting-sort CSR tile bins
//!                                     │      (sharded pass 1 + parallel sorts)
//!                                     ▼
//!                                  [Merge]   occupancy-driven super-tiles
//!                                     │      (serial scan over CSR offsets)
//!                                     ▼
//!                                  [Raster]  per-work-unit compositing
//!                                     │      (serial or `threads`-way parallel)
//!                                     ▼
//!                                  [Composite] unit merge → Image + winners
//! ```
//!
//! The Merge stage partitions the tile grid into rectangular
//! [`SuperTile`](crate::SuperTile) work units. With merging disabled
//! (`merge_threshold == 0`, the default) it emits the identity band
//! schedule — one unit per tile row, the PR 3/4 scheduling granularity.
//! With merging enabled, adjacent low-occupancy tiles coalesce (bounded by
//! `merge_max_extent` per side and by the mean tile occupancy per unit), so
//! sparse peripheral tiles stop consuming scheduling slots of their own.
//!
//! # Parallelism and the determinism contract
//!
//! Three of the five stages parallelize across the persistent worker pool
//! when [`RenderOptions::threads`](crate::RenderOptions) is not `1`
//! (Merge is a cheap serial scan, Composite a cheap serial merge):
//!
//! * **Project** shards the model's point range into contiguous chunks;
//!   chunk outputs concatenate in chunk order, so splat order stays model
//!   order.
//! * **Bin** shards CSR pass 1 (counting) over contiguous splat ranges and
//!   merges the per-worker count arrays before the prefix sum; the pass-2
//!   scatter re-walks the same ranges with per-worker cursor bases into
//!   disjoint per-tile slot ranges (shard-ordered, so segments still fill
//!   in model order), and the per-tile depth sorts run on disjoint
//!   segments.
//! * **Raster** distributes the Merge stage's work units over workers; each
//!   unit result lands in its own slot and units are assembled in schedule
//!   order.
//!
//! The contract, enforced by `tests/determinism.rs`: for every thread
//! count (including auto), a frame's image, winner buffer and
//! [`FrameProfile`] work counters are **bit-identical** to the
//! `threads = 1` serial reference, on plain, masked and filtered renders.
//! Only wall times may differ between runs. Tile merging extends the
//! contract along a second axis: because a pixel is always composited
//! against *its own tile's* depth-sorted CSR list — a super-tile only
//! regroups tiles into one scheduling slot — the merged render's image and
//! winner buffer are bit-identical to the unmerged render's for every
//! thread count too. Merging changes scheduling, never pixels.
//!
//! The Raster stage has two more interchangeable axes: the compositing
//! *kernel* and the splat *staging* strategy.
//! [`RenderOptions::raster_kernel`](crate::RenderOptions) selects between
//! the scalar reference and the 4-lane SIMD kernel (`Auto`, the default,
//! honors the `MS_RASTER_KERNEL` env var and otherwise picks SIMD); the
//! seam sits inside a work unit, per group of four row pixels — full
//! unmasked groups run the batched kernel, remainders and masked groups
//! fall back to the scalar one.
//! [`RenderOptions::raster_staging`](crate::RenderOptions) selects how the
//! SIMD kernel's per-row splat sequences are staged: re-walking the tile's
//! CSR list every row (`PerRow`, the PR 6 reference) or one per-tile
//! prepass plus a row-interval schedule (`PerTile`, the default; `Auto`
//! honors `MS_RASTER_STAGING`). Kernels and staging paths are
//! bit-identical by construction (see `raster.rs` and the "Raster hot
//! path" section of `ARCHITECTURE.md`), so kernel and staging choice, like
//! thread count and merging, change wall time, never pixels.
//!
//! Each stage is a [`Stage`] implementation executed by a [`Profiler`],
//! which records one [`StageSample`] per stage — wall time plus a
//! stage-specific work counter — into the [`FrameProfile`] returned inside
//! [`RenderStats`](crate::RenderStats). The counters are the paper's
//! workload quantities, measured where they are produced:
//!
//! | Stage     | work counter                                      |
//! |-----------|---------------------------------------------------|
//! | Project   | splats surviving culling (`points_projected`)     |
//! | Bin       | tile-ellipse intersections (CSR index length)     |
//! | Merge     | raster work units emitted (super-tiles or bands)  |
//! | Raster    | compositing steps executed (after early-stop)     |
//! | Composite | pixels written to the output image                |
//!
//! # How `AccelWorkload` is derived from `RenderStats`
//!
//! The accelerator simulator (`ms-accel`) consumes exactly what the
//! renderer measured — there is no independent re-derivation:
//!
//! * per-tile intersection counts come straight from the CSR offset
//!   deltas ([`TileBins::intersection_counts`](crate::TileBins)), carried
//!   in `RenderStats::tile_intersections`;
//! * per-tile pixel counts come from the tile grid clipped to the image
//!   ([`TileGridDims::tile_pixel_count`](crate::TileGridDims)), so edge
//!   tiles are not padded to `tile_size²`;
//! * projection work is the Project stage's counter; compositing work is
//!   the Raster stage's counter.
//!
//! By construction, a frame's simulated workload and its measured software
//! workload are the same numbers.

use crate::binning::{MergedTileSchedule, TileBins};
use crate::image::Image;
use crate::options::RenderOptions;
use crate::projection::{project_model_filtered_into, ProjectedSplat};
use crate::raster::{rasterize_unit, RasterScratch, UnitResult};
use crate::stats::{RasterWork, TileGridDims};
use ms_scene::{CacheStats, Camera, GaussianModel};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The five pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Cull + project Gaussians to screen-space splats.
    Project,
    /// Build depth-sorted CSR tile bins (the paper's Sorting stage).
    Bin,
    /// Partition the tile grid into raster work units, coalescing adjacent
    /// low-occupancy tiles into super-tiles (the paper's §4.3 Tile Merging).
    Merge,
    /// Per-work-unit alpha compositing (the paper's Rasterization stage).
    Raster,
    /// Merge rasterized work units into the output image.
    Composite,
}

impl StageKind {
    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Project => "project",
            StageKind::Bin => "bin",
            StageKind::Merge => "merge",
            StageKind::Raster => "raster",
            StageKind::Composite => "composite",
        }
    }
}

/// One stage execution: wall time plus the stage's work counter.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StageSample {
    /// Which stage ran.
    pub kind: StageKind,
    /// Wall-clock time the stage took.
    pub wall: Duration,
    /// Stage-specific work counter (see the module table).
    pub items: u64,
}

/// Per-frame execution profile: one [`StageSample`] per executed stage, in
/// execution order.
///
/// Frames rendered from pre-projected splats
/// ([`Renderer::render_splats`](crate::Renderer::render_splats)) carry no
/// `Project` sample — the profile records what actually ran.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrameProfile {
    /// Samples in execution order.
    pub samples: Vec<StageSample>,
    /// Raster staging/scheduling work counters, summed over the frame's
    /// work units (see [`RasterWork`] for the per-path semantics; all
    /// zeros under the scalar kernel, which stages nothing).
    pub raster: RasterWork,
    /// Peak bytes of source-model data resident at once: the largest
    /// chunk's [`storage_bytes`](ms_scene::GaussianModel::storage_bytes) on
    /// the chunked path, `0` on the in-core path (the model is the caller's,
    /// not the frame's). Deterministic per configuration; excluded from
    /// profile equality like wall times.
    #[serde(default)]
    pub chunk_bytes_peak: u64,
    /// Peak bytes of projected-splat scratch resident at once: the largest
    /// per-chunk projection buffer on the chunked path (bounded by the
    /// chunk size — the memory claim the chunked pipeline exists for), or
    /// the whole visible splat vector on the in-core path. The final
    /// visible splat set the rasterizer consumes is counted separately by
    /// neither — it is the frame's working set, identical on both paths.
    /// Deterministic per configuration; excluded from profile equality.
    #[serde(default)]
    pub projected_bytes_peak: u64,
    /// Chunk-cache traffic this frame generated: hits, misses, evictions
    /// and the cache's resident-bytes high-water mark as observed during
    /// the frame (see [`ms_scene::ChunkCache`]). All zeros on the in-core
    /// path, which never touches the cache. Excluded from profile equality
    /// like the byte peaks and wall times: the cache changes *where* chunk
    /// bytes come from, never what the frame computes, and hit/miss splits
    /// legitimately differ across cache budgets and shared-cache session
    /// interleavings that must compare equal.
    #[serde(default)]
    pub cache: CacheStats,
}

/// Equality compares the *semantic* part of the profile — stage kinds and
/// work counters — and deliberately ignores wall times, which differ
/// between otherwise identical runs. This keeps `RenderStats: PartialEq`
/// meaningful for determinism tests.
///
/// The [`RasterWork`] counters are also excluded: they describe how a
/// kernel/staging configuration did the work, not what it produced, and
/// they legitimately differ across configurations that must compare equal
/// (scalar stages nothing; per-row and per-tile staging count iterations
/// differently). Their own determinism — same counters for the same
/// configuration across thread counts and schedules — is asserted
/// explicitly in `tests/determinism.rs` instead.
impl PartialEq for FrameProfile {
    fn eq(&self, other: &Self) -> bool {
        self.samples.len() == other.samples.len()
            && self
                .samples
                .iter()
                .zip(&other.samples)
                .all(|(a, b)| a.kind == b.kind && a.items == b.items)
    }
}

impl FrameProfile {
    /// Total wall time over `kind` samples.
    pub fn wall(&self, kind: StageKind) -> Duration {
        self.samples
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.wall)
            .sum()
    }

    /// Total work counter over `kind` samples.
    pub fn items(&self, kind: StageKind) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.items)
            .sum()
    }

    /// Total wall time across all stages.
    pub fn total_wall(&self) -> Duration {
        self.samples.iter().map(|s| s.wall).sum()
    }

    /// Fold `other`'s samples into `self` (used by the foveated renderer to
    /// aggregate per-level passes into one frame profile).
    ///
    /// Merging is **by kind, first occurrence wins the slot**: each of
    /// `other`'s samples adds its wall time and work counter to the first
    /// existing sample of the same [`StageKind`]; kinds `self` has not seen
    /// yet are appended in `other`'s order. Absorbing therefore preserves
    /// `self`'s stage ordering (and execution order overall when both
    /// profiles ran the standard Project → Bin → Raster → Composite graph),
    /// but collapses repeated samples of one kind into a single aggregate —
    /// `samples` is no longer one entry per execution after a merge.
    pub fn absorb(&mut self, other: &FrameProfile) {
        for s in &other.samples {
            match self.samples.iter_mut().find(|m| m.kind == s.kind) {
                Some(m) => {
                    m.wall += s.wall;
                    m.items += s.items;
                }
                None => self.samples.push(*s),
            }
        }
        self.raster.accumulate(&other.raster);
        self.chunk_bytes_peak = self.chunk_bytes_peak.max(other.chunk_bytes_peak);
        self.projected_bytes_peak = self.projected_bytes_peak.max(other.projected_bytes_peak);
        self.cache.accumulate(&other.cache);
    }
}

/// A named unit of frame work with a measurable output.
///
/// Stages are deliberately synchronous and single-shot: the pipeline's
/// control flow lives in [`Profiler::run`], not in the stages, so adding a
/// stage (or reordering around one) is a local change.
pub trait Stage {
    /// Input consumed by the stage.
    type In;
    /// Output produced by the stage.
    type Out;

    /// Which pipeline stage this is.
    fn kind(&self) -> StageKind;

    /// Execute the stage.
    fn run(&mut self, input: Self::In) -> Self::Out;

    /// The stage's work counter, measured on its output.
    fn items(&self, out: &Self::Out) -> u64;
}

/// Runs stages and accumulates their [`StageSample`]s.
#[derive(Debug, Default)]
pub struct Profiler {
    samples: Vec<StageSample>,
}

impl Profiler {
    /// Time one stage and record its sample.
    pub fn run<S: Stage>(&mut self, stage: &mut S, input: S::In) -> S::Out {
        let start = Instant::now();
        let out = stage.run(input);
        self.samples.push(StageSample {
            kind: stage.kind(),
            wall: start.elapsed(),
            items: stage.items(&out),
        });
        out
    }

    /// Record a pre-timed sample. The chunked scene path runs Project and
    /// Bin incrementally (one chunk per pump) and cannot hand [`Profiler::run`]
    /// a single closure per stage, so it accumulates wall time and work
    /// counters itself and deposits one aggregate sample per stage here —
    /// keeping the sample sequence (and thus profile equality) identical to
    /// the in-core pipeline's.
    pub(crate) fn record(&mut self, kind: StageKind, wall: Duration, items: u64) {
        self.samples.push(StageSample { kind, wall, items });
    }

    /// Finish the frame, yielding its profile. The [`RasterWork`] counters
    /// start zeroed — the pipeline driver fills them in from the Composite
    /// stage's per-unit sums; the memory-peak counters likewise start zeroed
    /// and are filled in when the output is assembled.
    pub fn finish(self) -> FrameProfile {
        FrameProfile {
            samples: self.samples,
            raster: RasterWork::default(),
            chunk_bytes_peak: 0,
            projected_bytes_peak: 0,
            cache: CacheStats::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Concrete stages
// ---------------------------------------------------------------------------

/// Projection stage: model → screen-space splats (with admission predicate).
///
/// Points are sharded over contiguous ranges onto the worker pool when
/// `options.threads != 1`; shard outputs concatenate in range order, so
/// splat order stays model order for every thread count. The predicate is
/// `Fn + Sync` because shards evaluate it concurrently.
pub struct ProjectStage<'a, F: Fn(usize) -> bool + Sync> {
    /// Model to project.
    pub model: &'a GaussianModel,
    /// View camera.
    pub camera: &'a Camera,
    /// Render options.
    pub options: &'a RenderOptions,
    /// Per-point admission predicate (foveation Filtering).
    pub admit: F,
    /// Recycled splat storage (from a [`FrameArena`](crate::FrameArena));
    /// cleared before use, so only its capacity matters. Empty is fine.
    pub recycle: Vec<ProjectedSplat>,
}

impl<F: Fn(usize) -> bool + Sync> Stage for ProjectStage<'_, F> {
    type In = ();
    type Out = Vec<ProjectedSplat>;

    fn kind(&self) -> StageKind {
        StageKind::Project
    }

    fn run(&mut self, _input: ()) -> Self::Out {
        let mut out = std::mem::take(&mut self.recycle);
        project_model_filtered_into(self.model, self.camera, self.options, &self.admit, &mut out);
        out
    }

    fn items(&self, out: &Self::Out) -> u64 {
        out.len() as u64
    }
}

/// Binning stage: splats → depth-sorted CSR tile bins, optionally restricted
/// to tiles with at least one active mask pixel.
///
/// The CSR counting pass and the per-tile depth sorts run on `threads`
/// workers (per-worker count arrays merge before the prefix sum; sort
/// segments are disjoint), so the bins are bit-identical for every thread
/// count.
pub struct BinStage<'a> {
    /// Splats to bin.
    pub splats: &'a [ProjectedSplat],
    /// Tile grid.
    pub grid: TileGridDims,
    /// Optional per-pixel mask (row-major, `width × height`).
    pub mask: Option<&'a [bool]>,
    /// Worker count for the sharded CSR build (resolved, `>= 1`).
    pub threads: usize,
    /// Recycled CSR `(offsets, indices)` storage (from
    /// [`TileBins::into_buffers`] via a [`FrameArena`](crate::FrameArena));
    /// rebuilt from scratch, so only its capacity matters. Empty is fine.
    pub recycle: (Vec<u32>, Vec<u32>),
}

impl Stage for BinStage<'_> {
    type In = ();
    type Out = TileBins;

    fn kind(&self) -> StageKind {
        StageKind::Bin
    }

    fn run(&mut self, _input: ()) -> Self::Out {
        let (offsets, indices) = std::mem::take(&mut self.recycle);
        match self.mask {
            None => TileBins::build_with_threads_into(
                self.splats,
                self.grid,
                self.threads,
                offsets,
                indices,
            ),
            Some(mask) => {
                let g = self.grid;
                TileBins::build_filtered_with_threads_into(
                    self.splats,
                    g,
                    |tx, ty| {
                        let x_end = ((tx + 1) * g.tile_size).min(g.width);
                        let y_end = ((ty + 1) * g.tile_size).min(g.height);
                        for y in (ty * g.tile_size)..y_end {
                            for x in (tx * g.tile_size)..x_end {
                                if mask[(y * g.width + x) as usize] {
                                    return true;
                                }
                            }
                        }
                        false
                    },
                    self.threads,
                    offsets,
                    indices,
                )
            }
        }
    }

    fn items(&self, out: &Self::Out) -> u64 {
        out.total_intersections()
    }
}

/// Merge stage: CSR tile bins → the raster work-unit schedule.
///
/// With merging disabled (the default) this emits the identity band
/// schedule — one unit per tile row — so the pipeline's scheduling
/// granularity matches the pre-merge behavior exactly. With merging
/// enabled, adjacent low-occupancy tiles coalesce into rectangular
/// super-tiles (see [`MergedTileSchedule::merge_low_occupancy`]). The plan
/// is a single serial O(tiles) scan over the CSR offsets, so it is
/// deterministic for every thread count by construction.
pub struct MergeStage<'a> {
    /// Render options (merge knobs).
    pub options: &'a RenderOptions,
}

impl<'a> Stage for MergeStage<'a> {
    type In = &'a TileBins;
    type Out = MergedTileSchedule;

    fn kind(&self) -> StageKind {
        StageKind::Merge
    }

    fn run(&mut self, bins: &'a TileBins) -> Self::Out {
        if self.options.merge_enabled() {
            MergedTileSchedule::merge_low_occupancy(
                bins,
                self.options.merge_threshold,
                self.options.merge_max_extent,
            )
        } else {
            MergedTileSchedule::bands(bins.grid())
        }
    }

    fn items(&self, out: &Self::Out) -> u64 {
        out.units().len() as u64
    }
}

/// Rasterization stage: tile bins + merge schedule → per-work-unit pixel
/// rectangles.
///
/// Work units (super-tiles, or whole bands when merging is off) are
/// independent, so they rasterize on `threads` workers pulling unit indices
/// from a shared counter. Unit results land in per-unit slots, making the
/// output — and therefore the composited image — bit-identical for every
/// thread count; `threads == 1` runs inline without spawning. Every pixel
/// composites against its own tile's CSR list regardless of which unit the
/// tile was scheduled in, so the schedule shape cannot change a pixel.
pub struct RasterStage<'a> {
    /// Projected splats (bins index into these).
    pub splats: &'a [ProjectedSplat],
    /// Render options.
    pub options: &'a RenderOptions,
    /// View camera.
    pub camera: &'a Camera,
    /// Optional per-pixel mask.
    pub mask: Option<&'a [bool]>,
    /// Per-worker staging scratch pool, recycled through a
    /// [`FrameArena`](crate::FrameArena). Grown to one
    /// [`RasterScratch`] per worker on demand; contents are overwritten
    /// per tile, so which worker gets which scratch cannot change a
    /// pixel. Empty is fine.
    pub scratch: &'a mut Vec<RasterScratch>,
}

impl<'a> Stage for RasterStage<'a> {
    type In = (&'a TileBins, &'a MergedTileSchedule);
    type Out = Vec<UnitResult>;

    fn kind(&self) -> StageKind {
        StageKind::Raster
    }

    fn run(&mut self, (bins, schedule): Self::In) -> Self::Out {
        let units = schedule.units();
        let threads = self.options.resolved_threads().min(units.len().max(1));
        if threads <= 1 || units.len() <= 1 {
            if self.scratch.is_empty() {
                self.scratch.push(RasterScratch::default());
            }
            let scratch = &mut self.scratch[0];
            let mut out = Vec::with_capacity(units.len());
            for unit in units {
                out.push(rasterize_unit(
                    self.options,
                    self.splats,
                    bins,
                    self.camera,
                    unit,
                    self.mask,
                    scratch,
                ));
            }
            return out;
        }

        // Workers pop unit indices from a shared counter; each unit result
        // lands in its own slot, so assembly order — and the composited
        // image — is independent of scheduling. Each worker owns one
        // scratch from the recycled pool for its whole run.
        if self.scratch.len() < threads {
            self.scratch.resize_with(threads, RasterScratch::default);
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<UnitResult>>> = (0..units.len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let splats = self.splats;
        let options = self.options;
        let camera = self.camera;
        let mask = self.mask;
        rayon::scope(|s| {
            for scratch in self.scratch.iter_mut().take(threads) {
                let next = &next;
                let slots = &slots;
                s.spawn(move |_| loop {
                    let u = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if u >= units.len() {
                        break;
                    }
                    let unit =
                        rasterize_unit(options, splats, bins, camera, &units[u], mask, scratch);
                    *slots[u].lock().expect("unit slot poisoned") = Some(unit);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(u, cell)| {
                cell.into_inner()
                    .expect("unit slot poisoned")
                    .unwrap_or_else(|| panic!("work unit {u} missing"))
            })
            .collect()
    }

    fn items(&self, out: &Self::Out) -> u64 {
        out.iter().map(|b| b.blend_steps).sum()
    }
}

/// Composite stage: ordered work units → final image (+ per-pixel winners).
pub struct CompositeStage<'a> {
    /// View camera (output dimensions).
    pub camera: &'a Camera,
    /// Background color for pixels no work unit covers.
    pub options: &'a RenderOptions,
    /// Whether winner tracking is on.
    pub track_winners: bool,
}

/// Output of the composite stage.
pub struct Composited {
    /// The assembled image.
    pub image: Image,
    /// Winning point index per pixel (`u32::MAX` = none); empty unless
    /// winner tracking is on.
    pub winners: Vec<u32>,
    /// Total compositing steps across work units.
    pub blend_steps: u64,
    /// Raster staging/scheduling work counters summed across work units
    /// (destined for [`FrameProfile::raster`]).
    pub raster: RasterWork,
}

impl Stage for CompositeStage<'_> {
    type In = Vec<UnitResult>;
    type Out = Composited;

    fn kind(&self) -> StageKind {
        StageKind::Composite
    }

    fn run(&mut self, units: Vec<UnitResult>) -> Self::Out {
        let cam = self.camera;
        let mut image = Image::filled(cam.width, cam.height, self.options.background);
        let mut winners: Vec<u32> = if self.track_winners {
            vec![u32::MAX; (cam.width * cam.height) as usize]
        } else {
            Vec::new()
        };
        let mut blend_steps = 0u64;
        let mut raster = RasterWork::default();
        for unit in units {
            blend_steps += unit.blend_steps;
            raster.accumulate(&unit.work);
            let rows = unit.pixels.len() as u32 / unit.width.max(1);
            for dy in 0..rows {
                let y = unit.y_start + dy;
                for dx in 0..unit.width {
                    let x = unit.x_start + dx;
                    let idx = (dy * unit.width + dx) as usize;
                    image.set_pixel(x, y, unit.pixels[idx]);
                    if self.track_winners {
                        winners[(y * cam.width + x) as usize] = unit.winners[idx];
                    }
                }
            }
        }
        Composited {
            image,
            winners,
            blend_steps,
            raster,
        }
    }

    fn items(&self, out: &Self::Out) -> u64 {
        (out.image.width() * out.image.height()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_equality_ignores_wall_time() {
        let a = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Bin,
                wall: Duration::from_millis(5),
                items: 42,
            }],
            ..FrameProfile::default()
        };
        let b = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Bin,
                wall: Duration::from_millis(900),
                items: 42,
            }],
            ..FrameProfile::default()
        };
        assert_eq!(a, b);
        let c = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Bin,
                wall: Duration::ZERO,
                items: 43,
            }],
            ..FrameProfile::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn absorb_merges_by_kind() {
        let mut a = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Raster,
                wall: Duration::from_micros(10),
                items: 100,
            }],
            ..FrameProfile::default()
        };
        let b = FrameProfile {
            samples: vec![
                StageSample {
                    kind: StageKind::Raster,
                    wall: Duration::from_micros(5),
                    items: 50,
                },
                StageSample {
                    kind: StageKind::Project,
                    wall: Duration::from_micros(1),
                    items: 7,
                },
            ],
            ..FrameProfile::default()
        };
        a.absorb(&b);
        assert_eq!(a.items(StageKind::Raster), 150);
        assert_eq!(a.items(StageKind::Project), 7);
        assert_eq!(a.wall(StageKind::Raster), Duration::from_micros(15));
        assert_eq!(a.samples.len(), 2);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(StageKind::Project.name(), "project");
        assert_eq!(StageKind::Bin.name(), "bin");
        assert_eq!(StageKind::Merge.name(), "merge");
        assert_eq!(StageKind::Raster.name(), "raster");
        assert_eq!(StageKind::Composite.name(), "composite");
    }
}
