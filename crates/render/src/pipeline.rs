//! The staged frame pipeline: **Project → Bin → Raster → Composite**.
//!
//! # Stage graph
//!
//! Every frame flows through four named stages, mirroring the tile pipeline
//! of the paper's §2.1 (Projection → Sorting → Rasterization) with an
//! explicit composite step for band assembly:
//!
//! ```text
//!   GaussianModel ──▶ [Project] ──▶ Vec<ProjectedSplat>
//!                                     │      (sharded over point ranges)
//!                                     ▼
//!                                  [Bin]     counting-sort CSR tile bins
//!                                     │      (sharded pass 1 + parallel sorts)
//!                                     ▼
//!                                  [Raster]  per-band compositing
//!                                     │      (serial or `threads`-way parallel)
//!                                     ▼
//!                                  [Composite] band merge → Image + winners
//! ```
//!
//! # Parallelism and the determinism contract
//!
//! Three of the four stages parallelize across the persistent worker pool
//! when [`RenderOptions::threads`](crate::RenderOptions) is not `1`
//! (Composite is a cheap serial merge):
//!
//! * **Project** shards the model's point range into contiguous chunks;
//!   chunk outputs concatenate in chunk order, so splat order stays model
//!   order.
//! * **Bin** shards CSR pass 1 (counting) over contiguous splat ranges and
//!   merges the per-worker count arrays before the prefix sum; the scatter
//!   pass stays a serial walk in model order, and the per-tile depth sorts
//!   run on disjoint segments.
//! * **Raster** distributes tile bands over workers; each band result lands
//!   in its own slot and bands are assembled in index order.
//!
//! The contract, enforced by `tests/determinism.rs`: for every thread
//! count (including auto), a frame's image, winner buffer and
//! [`FrameProfile`] work counters are **bit-identical** to the
//! `threads = 1` serial reference, on both plain and masked renders. Only
//! wall times may differ between runs.
//!
//! Each stage is a [`Stage`] implementation executed by a [`Profiler`],
//! which records one [`StageSample`] per stage — wall time plus a
//! stage-specific work counter — into the [`FrameProfile`] returned inside
//! [`RenderStats`](crate::RenderStats). The counters are the paper's
//! workload quantities, measured where they are produced:
//!
//! | Stage     | work counter                                      |
//! |-----------|---------------------------------------------------|
//! | Project   | splats surviving culling (`points_projected`)     |
//! | Bin       | tile-ellipse intersections (CSR index length)     |
//! | Raster    | compositing steps executed (after early-stop)     |
//! | Composite | pixels written to the output image                |
//!
//! # How `AccelWorkload` is derived from `RenderStats`
//!
//! The accelerator simulator (`ms-accel`) consumes exactly what the
//! renderer measured — there is no independent re-derivation:
//!
//! * per-tile intersection counts come straight from the CSR offset
//!   deltas ([`TileBins::intersection_counts`](crate::TileBins)), carried
//!   in `RenderStats::tile_intersections`;
//! * per-tile pixel counts come from the tile grid clipped to the image
//!   ([`TileGridDims::tile_pixel_count`](crate::TileGridDims)), so edge
//!   tiles are not padded to `tile_size²`;
//! * projection work is the Project stage's counter; compositing work is
//!   the Raster stage's counter.
//!
//! By construction, a frame's simulated workload and its measured software
//! workload are the same numbers.

use crate::binning::TileBins;
use crate::image::Image;
use crate::options::RenderOptions;
use crate::projection::{project_model_filtered, ProjectedSplat};
use crate::raster::{rasterize_band, BandResult};
use crate::stats::TileGridDims;
use ms_scene::{Camera, GaussianModel};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The four pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Cull + project Gaussians to screen-space splats.
    Project,
    /// Build depth-sorted CSR tile bins (the paper's Sorting stage).
    Bin,
    /// Per-band alpha compositing (the paper's Rasterization stage).
    Raster,
    /// Merge rasterized bands into the output image.
    Composite,
}

impl StageKind {
    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Project => "project",
            StageKind::Bin => "bin",
            StageKind::Raster => "raster",
            StageKind::Composite => "composite",
        }
    }
}

/// One stage execution: wall time plus the stage's work counter.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StageSample {
    /// Which stage ran.
    pub kind: StageKind,
    /// Wall-clock time the stage took.
    pub wall: Duration,
    /// Stage-specific work counter (see the module table).
    pub items: u64,
}

/// Per-frame execution profile: one [`StageSample`] per executed stage, in
/// execution order.
///
/// Frames rendered from pre-projected splats
/// ([`Renderer::render_splats`](crate::Renderer::render_splats)) carry no
/// `Project` sample — the profile records what actually ran.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrameProfile {
    /// Samples in execution order.
    pub samples: Vec<StageSample>,
}

/// Equality compares the *semantic* part of the profile — stage kinds and
/// work counters — and deliberately ignores wall times, which differ
/// between otherwise identical runs. This keeps `RenderStats: PartialEq`
/// meaningful for determinism tests.
impl PartialEq for FrameProfile {
    fn eq(&self, other: &Self) -> bool {
        self.samples.len() == other.samples.len()
            && self
                .samples
                .iter()
                .zip(&other.samples)
                .all(|(a, b)| a.kind == b.kind && a.items == b.items)
    }
}

impl FrameProfile {
    /// Total wall time over `kind` samples.
    pub fn wall(&self, kind: StageKind) -> Duration {
        self.samples
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.wall)
            .sum()
    }

    /// Total work counter over `kind` samples.
    pub fn items(&self, kind: StageKind) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.items)
            .sum()
    }

    /// Total wall time across all stages.
    pub fn total_wall(&self) -> Duration {
        self.samples.iter().map(|s| s.wall).sum()
    }

    /// Fold `other`'s samples into `self` (used by the foveated renderer to
    /// aggregate per-level passes into one frame profile).
    ///
    /// Merging is **by kind, first occurrence wins the slot**: each of
    /// `other`'s samples adds its wall time and work counter to the first
    /// existing sample of the same [`StageKind`]; kinds `self` has not seen
    /// yet are appended in `other`'s order. Absorbing therefore preserves
    /// `self`'s stage ordering (and execution order overall when both
    /// profiles ran the standard Project → Bin → Raster → Composite graph),
    /// but collapses repeated samples of one kind into a single aggregate —
    /// `samples` is no longer one entry per execution after a merge.
    pub fn absorb(&mut self, other: &FrameProfile) {
        for s in &other.samples {
            match self.samples.iter_mut().find(|m| m.kind == s.kind) {
                Some(m) => {
                    m.wall += s.wall;
                    m.items += s.items;
                }
                None => self.samples.push(*s),
            }
        }
    }
}

/// A named unit of frame work with a measurable output.
///
/// Stages are deliberately synchronous and single-shot: the pipeline's
/// control flow lives in [`Profiler::run`], not in the stages, so adding a
/// stage (or reordering around one) is a local change.
pub trait Stage {
    /// Input consumed by the stage.
    type In;
    /// Output produced by the stage.
    type Out;

    /// Which pipeline stage this is.
    fn kind(&self) -> StageKind;

    /// Execute the stage.
    fn run(&mut self, input: Self::In) -> Self::Out;

    /// The stage's work counter, measured on its output.
    fn items(&self, out: &Self::Out) -> u64;
}

/// Runs stages and accumulates their [`StageSample`]s.
#[derive(Debug, Default)]
pub struct Profiler {
    samples: Vec<StageSample>,
}

impl Profiler {
    /// Time one stage and record its sample.
    pub fn run<S: Stage>(&mut self, stage: &mut S, input: S::In) -> S::Out {
        let start = Instant::now();
        let out = stage.run(input);
        self.samples.push(StageSample {
            kind: stage.kind(),
            wall: start.elapsed(),
            items: stage.items(&out),
        });
        out
    }

    /// Finish the frame, yielding its profile.
    pub fn finish(self) -> FrameProfile {
        FrameProfile {
            samples: self.samples,
        }
    }
}

// ---------------------------------------------------------------------------
// Concrete stages
// ---------------------------------------------------------------------------

/// Projection stage: model → screen-space splats (with admission predicate).
///
/// Points are sharded over contiguous ranges onto the worker pool when
/// `options.threads != 1`; shard outputs concatenate in range order, so
/// splat order stays model order for every thread count. The predicate is
/// `Fn + Sync` because shards evaluate it concurrently.
pub struct ProjectStage<'a, F: Fn(usize) -> bool + Sync> {
    /// Model to project.
    pub model: &'a GaussianModel,
    /// View camera.
    pub camera: &'a Camera,
    /// Render options.
    pub options: &'a RenderOptions,
    /// Per-point admission predicate (foveation Filtering).
    pub admit: F,
}

impl<F: Fn(usize) -> bool + Sync> Stage for ProjectStage<'_, F> {
    type In = ();
    type Out = Vec<ProjectedSplat>;

    fn kind(&self) -> StageKind {
        StageKind::Project
    }

    fn run(&mut self, _input: ()) -> Self::Out {
        project_model_filtered(self.model, self.camera, self.options, &self.admit)
    }

    fn items(&self, out: &Self::Out) -> u64 {
        out.len() as u64
    }
}

/// Binning stage: splats → depth-sorted CSR tile bins, optionally restricted
/// to tiles with at least one active mask pixel.
///
/// The CSR counting pass and the per-tile depth sorts run on `threads`
/// workers (per-worker count arrays merge before the prefix sum; sort
/// segments are disjoint), so the bins are bit-identical for every thread
/// count.
pub struct BinStage<'a> {
    /// Splats to bin.
    pub splats: &'a [ProjectedSplat],
    /// Tile grid.
    pub grid: TileGridDims,
    /// Optional per-pixel mask (row-major, `width × height`).
    pub mask: Option<&'a [bool]>,
    /// Worker count for the sharded CSR build (resolved, `>= 1`).
    pub threads: usize,
}

impl Stage for BinStage<'_> {
    type In = ();
    type Out = TileBins;

    fn kind(&self) -> StageKind {
        StageKind::Bin
    }

    fn run(&mut self, _input: ()) -> Self::Out {
        match self.mask {
            None => TileBins::build_with_threads(self.splats, self.grid, self.threads),
            Some(mask) => {
                let g = self.grid;
                TileBins::build_filtered_with_threads(
                    self.splats,
                    g,
                    |tx, ty| {
                        let x_end = ((tx + 1) * g.tile_size).min(g.width);
                        let y_end = ((ty + 1) * g.tile_size).min(g.height);
                        for y in (ty * g.tile_size)..y_end {
                            for x in (tx * g.tile_size)..x_end {
                                if mask[(y * g.width + x) as usize] {
                                    return true;
                                }
                            }
                        }
                        false
                    },
                    self.threads,
                )
            }
        }
    }

    fn items(&self, out: &Self::Out) -> u64 {
        out.total_intersections()
    }
}

/// Rasterization stage: tile bins → per-band pixel runs.
///
/// Bands (horizontal tile rows) are independent, so they rasterize on
/// `threads` workers pulling band indices from a shared counter. Band
/// results land in per-band slots, making the output — and therefore the
/// composited image — bit-identical for every thread count;
/// `threads == 1` runs inline without spawning.
pub struct RasterStage<'a> {
    /// Projected splats (bins index into these).
    pub splats: &'a [ProjectedSplat],
    /// Render options.
    pub options: &'a RenderOptions,
    /// View camera.
    pub camera: &'a Camera,
    /// Optional per-pixel mask.
    pub mask: Option<&'a [bool]>,
}

impl<'a> Stage for RasterStage<'a> {
    type In = &'a TileBins;
    type Out = Vec<BandResult>;

    fn kind(&self) -> StageKind {
        StageKind::Raster
    }

    fn run(&mut self, bins: &'a TileBins) -> Self::Out {
        let grid = bins.grid();
        let threads = self
            .options
            .resolved_threads()
            .min(grid.tiles_y.max(1) as usize);
        if threads <= 1 || grid.tiles_y <= 1 {
            return (0..grid.tiles_y)
                .map(|ty| {
                    rasterize_band(self.options, self.splats, bins, self.camera, ty, self.mask)
                })
                .collect();
        }

        // Workers pop band indices from a shared counter; each band result
        // lands in its own slot, so assembly order — and the composited
        // image — is independent of scheduling.
        let next = std::sync::atomic::AtomicU32::new(0);
        let slots: Vec<std::sync::Mutex<Option<BandResult>>> = (0..grid.tiles_y)
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let splats = self.splats;
        let options = self.options;
        let camera = self.camera;
        let mask = self.mask;
        rayon::scope(|s| {
            for _ in 0..threads {
                let next = &next;
                let slots = &slots;
                s.spawn(move |_| loop {
                    let ty = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if ty >= grid.tiles_y {
                        break;
                    }
                    let band = rasterize_band(options, splats, bins, camera, ty, mask);
                    *slots[ty as usize].lock().expect("band slot poisoned") = Some(band);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(ty, cell)| {
                cell.into_inner()
                    .expect("band slot poisoned")
                    .unwrap_or_else(|| panic!("band {ty} missing"))
            })
            .collect()
    }

    fn items(&self, out: &Self::Out) -> u64 {
        out.iter().map(|b| b.blend_steps).sum()
    }
}

/// Composite stage: ordered bands → final image (+ per-pixel winners).
pub struct CompositeStage<'a> {
    /// View camera (output dimensions).
    pub camera: &'a Camera,
    /// Background color for pixels no band covers.
    pub options: &'a RenderOptions,
    /// Whether winner tracking is on.
    pub track_winners: bool,
}

/// Output of the composite stage.
pub struct Composited {
    /// The assembled image.
    pub image: Image,
    /// Winning point index per pixel (`u32::MAX` = none); empty unless
    /// winner tracking is on.
    pub winners: Vec<u32>,
    /// Total compositing steps across bands.
    pub blend_steps: u64,
}

impl Stage for CompositeStage<'_> {
    type In = Vec<BandResult>;
    type Out = Composited;

    fn kind(&self) -> StageKind {
        StageKind::Composite
    }

    fn run(&mut self, bands: Vec<BandResult>) -> Self::Out {
        let cam = self.camera;
        let mut image = Image::filled(cam.width, cam.height, self.options.background);
        let mut winners: Vec<u32> = if self.track_winners {
            vec![u32::MAX; (cam.width * cam.height) as usize]
        } else {
            Vec::new()
        };
        let mut blend_steps = 0u64;
        for band in bands {
            blend_steps += band.blend_steps;
            let rows = band.pixels.len() as u32 / cam.width;
            for dy in 0..rows {
                let y = band.y_start + dy;
                for x in 0..cam.width {
                    let idx = (dy * cam.width + x) as usize;
                    image.set_pixel(x, y, band.pixels[idx]);
                    if self.track_winners {
                        winners[(y * cam.width + x) as usize] = band.winners[idx];
                    }
                }
            }
        }
        Composited {
            image,
            winners,
            blend_steps,
        }
    }

    fn items(&self, out: &Self::Out) -> u64 {
        (out.image.width() * out.image.height()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_equality_ignores_wall_time() {
        let a = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Bin,
                wall: Duration::from_millis(5),
                items: 42,
            }],
        };
        let b = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Bin,
                wall: Duration::from_millis(900),
                items: 42,
            }],
        };
        assert_eq!(a, b);
        let c = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Bin,
                wall: Duration::ZERO,
                items: 43,
            }],
        };
        assert_ne!(a, c);
    }

    #[test]
    fn absorb_merges_by_kind() {
        let mut a = FrameProfile {
            samples: vec![StageSample {
                kind: StageKind::Raster,
                wall: Duration::from_micros(10),
                items: 100,
            }],
        };
        let b = FrameProfile {
            samples: vec![
                StageSample {
                    kind: StageKind::Raster,
                    wall: Duration::from_micros(5),
                    items: 50,
                },
                StageSample {
                    kind: StageKind::Project,
                    wall: Duration::from_micros(1),
                    items: 7,
                },
            ],
        };
        a.absorb(&b);
        assert_eq!(a.items(StageKind::Raster), 150);
        assert_eq!(a.items(StageKind::Project), 7);
        assert_eq!(a.wall(StageKind::Raster), Duration::from_micros(15));
        assert_eq!(a.samples.len(), 2);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(StageKind::Project.name(), "project");
        assert_eq!(StageKind::Bin.name(), "bin");
        assert_eq!(StageKind::Raster.name(), "raster");
        assert_eq!(StageKind::Composite.name(), "composite");
    }
}
