//! Sorting stage: per-tile splat lists ordered front-to-back.

use crate::projection::ProjectedSplat;
use crate::stats::TileGridDims;

/// Per-tile splat index lists, depth-sorted front-to-back.
///
/// Indices refer into the `Vec<ProjectedSplat>` the bins were built from.
#[derive(Debug, Clone, PartialEq)]
pub struct TileBins {
    grid: TileGridDims,
    bins: Vec<Vec<u32>>,
}

impl TileBins {
    /// Duplicate each splat into every tile its bounding rectangle overlaps
    /// and sort each tile's list front-to-back by depth.
    pub fn build(splats: &[ProjectedSplat], grid: TileGridDims) -> Self {
        Self::build_filtered(splats, grid, |_, _| true)
    }

    /// [`TileBins::build`] restricted to tiles where `tile_active(tx, ty)`
    /// holds. Splat duplications into inactive tiles are skipped entirely —
    /// this is the foveation Filtering stage: a quality level only pays for
    /// the tiles inside its region (plus blend bands).
    pub fn build_filtered<F: FnMut(u32, u32) -> bool>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        mut tile_active: F,
    ) -> Self {
        let active: Vec<bool> = (0..grid.tiles_y)
            .flat_map(|ty| (0..grid.tiles_x).map(move |tx| (tx, ty)))
            .map(|(tx, ty)| tile_active(tx, ty))
            .collect();
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); grid.tile_count()];
        for (si, splat) in splats.iter().enumerate() {
            for (tx, ty) in splat.tiles.iter() {
                let idx = (ty * grid.tiles_x + tx) as usize;
                if active[idx] {
                    bins[idx].push(si as u32);
                }
            }
        }
        for bin in &mut bins {
            bin.sort_by(|&a, &b| {
                splats[a as usize]
                    .depth
                    .partial_cmp(&splats[b as usize].depth)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        Self { grid, bins }
    }

    /// Tile-grid geometry.
    pub fn grid(&self) -> TileGridDims {
        self.grid
    }

    /// Depth-sorted splat indices for tile `(tx, ty)`.
    ///
    /// # Panics
    ///
    /// Panics when the tile coordinate is out of the grid.
    pub fn tile(&self, tx: u32, ty: u32) -> &[u32] {
        assert!(tx < self.grid.tiles_x && ty < self.grid.tiles_y, "tile out of grid");
        &self.bins[(ty * self.grid.tiles_x + tx) as usize]
    }

    /// Intersection count per tile (row-major).
    pub fn intersection_counts(&self) -> Vec<u32> {
        self.bins.iter().map(|b| b.len() as u32).collect()
    }

    /// Total tile-ellipse intersections.
    pub fn total_intersections(&self) -> u64 {
        self.bins.iter().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::RenderOptions;
    use crate::projection::project_model;
    use ms_math::{Quat, Vec3};
    use ms_scene::{Camera, GaussianModel};

    fn grid() -> TileGridDims {
        TileGridDims { tiles_x: 8, tiles_y: 8, tile_size: 16 }
    }

    fn scene() -> (GaussianModel, Camera) {
        let mut m = GaussianModel::new(0);
        // Far red splat then near green splat, both centered.
        m.push_solid(Vec3::new(0.0, 0.0, -1.0), Vec3::splat(0.3), Quat::identity(), 0.8, Vec3::new(1.0, 0.0, 0.0));
        m.push_solid(Vec3::new(0.0, 0.0, 1.0), Vec3::splat(0.3), Quat::identity(), 0.8, Vec3::new(0.0, 1.0, 0.0));
        let cam = Camera::look_at(128, 128, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        (m, cam)
    }

    #[test]
    fn bins_are_depth_sorted() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let center = bins.tile(4, 4);
        assert!(center.len() >= 2);
        for w in center.windows(2) {
            assert!(splats[w[0] as usize].depth <= splats[w[1] as usize].depth);
        }
        // The near (green) splat must come first.
        assert_eq!(splats[center[0] as usize].point_index, 1);
    }

    #[test]
    fn total_intersections_matches_tile_rects() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let expected: u64 = splats.iter().map(|s| s.tile_count() as u64).sum();
        assert_eq!(bins.total_intersections(), expected);
    }

    #[test]
    fn counts_match_bins() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let counts = bins.intersection_counts();
        assert_eq!(counts.len(), 64);
        assert_eq!(
            counts.iter().map(|&c| c as u64).sum::<u64>(),
            bins.total_intersections()
        );
    }

    #[test]
    fn empty_splats_empty_bins() {
        let bins = TileBins::build(&[], grid());
        assert_eq!(bins.total_intersections(), 0);
        assert!(bins.tile(0, 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_grid_tile_panics() {
        let bins = TileBins::build(&[], grid());
        let _ = bins.tile(8, 0);
    }
}
