//! Sorting stage: per-tile splat lists ordered front-to-back, plus the
//! occupancy-driven tile-merge plan built over them.
//!
//! Bins are stored in a flat CSR (compressed sparse row) layout — one
//! `Vec<u32>` of splat indices plus one `Vec<u32>` of per-tile offsets —
//! built counting-sort style in two passes over the splats. Compared to the
//! previous `Vec<Vec<u32>>` layout this is one allocation instead of one
//! per tile, and tile lists are contiguous in memory in exactly the order
//! the rasterizer consumes them. The per-tile intersection counts that
//! drive the paper's workload analysis (and the accelerator simulator) are
//! the offset deltas — the renderer and the simulator share them by
//! construction.
//!
//! [`MergedTileSchedule`] is the Merge stage's output (the paper's §4.3):
//! a partition of the tile grid into rectangular [`SuperTile`] work units,
//! built directly over the CSR offsets so low-occupancy tiles coalesce
//! before they reach the rasterizer's scheduler. `ARCHITECTURE.md` at the
//! repository root documents the full layout and merge contract.

use crate::projection::ProjectedSplat;
use crate::stats::TileGridDims;

/// Below this splat count per worker the CSR build (counting pass 1, the
/// pass-2 scatter and the sorts) runs serially even when more workers are
/// requested — the per-task overhead would exceed the work itself.
/// Sharding never changes the output, only the wall time.
const MIN_SPLATS_PER_SHARD: usize = 512;

/// Count tile-ellipse intersections for `splats[range]` into `counts`
/// (indexed row-major, masked by `active`).
fn count_range(
    splats: &[ProjectedSplat],
    range: std::ops::Range<usize>,
    tiles_x: u32,
    active: &[bool],
    counts: &mut [u32],
) {
    for splat in &splats[range] {
        for (tx, ty) in splat.tiles.iter() {
            let idx = (ty * tiles_x + tx) as usize;
            counts[idx] += active[idx] as u32;
        }
    }
}

/// Pass-2 scatter shared by the in-core build and the chunked builder:
/// write each splat's (global) index into its tiles' CSR segments.
///
/// `parts` holds one absolute per-tile cursor array per shard — shard `w`
/// walks the `w`-th contiguous range of `splats` (the same ranges its
/// pass-1 counts came from) and writes `index_base + si` at its cursors.
/// Cursor ranges per tile are disjoint and ordered by shard index, so each
/// tile segment fills in splat order; `index_base` offsets the stored
/// indices when `splats` is a chunk of a larger splat sequence (0 for the
/// in-core build).
fn scatter_shards(
    splats: &[ProjectedSplat],
    tiles_x: u32,
    active: &[bool],
    shards: usize,
    mut parts: Vec<Vec<u32>>,
    index_base: u32,
    indices: &mut [u32],
) {
    if shards <= 1 {
        let cursor = &mut parts[0];
        for (si, splat) in splats.iter().enumerate() {
            for (tx, ty) in splat.tiles.iter() {
                let idx = (ty * tiles_x + tx) as usize;
                if active[idx] {
                    indices[cursor[idx] as usize] = index_base + si as u32;
                    cursor[idx] += 1;
                }
            }
        }
        return;
    }
    // Shards write through a shared raw pointer; the slot sets are
    // disjoint (argued above), so the writes cannot race.
    struct IndexPtr(*mut u32);
    unsafe impl Sync for IndexPtr {}
    let out = IndexPtr(indices.as_mut_ptr());
    let out = &out;
    rayon::scope(|s| {
        for (w, mut cursor) in parts.into_iter().enumerate() {
            s.spawn(move |_| {
                let range = crate::par::shard_range(splats.len(), shards, w);
                let start = range.start;
                for (off, splat) in splats[range].iter().enumerate() {
                    for (tx, ty) in splat.tiles.iter() {
                        let idx = (ty * tiles_x + tx) as usize;
                        if active[idx] {
                            // SAFETY: `cursor[idx]` stays inside this
                            // shard's slot range for tile `idx`,
                            // disjoint from every other shard's.
                            unsafe {
                                *out.0.add(cursor[idx] as usize) =
                                    index_base + (start + off) as u32;
                            }
                            cursor[idx] += 1;
                        }
                    }
                }
            });
        }
    });
}

/// Per-tile splat index lists, depth-sorted front-to-back, in a flat CSR
/// layout.
///
/// Indices refer into the `Vec<ProjectedSplat>` the bins were built from.
/// Tile `(tx, ty)`'s list is `indices[offsets[i]..offsets[i+1]]` with
/// `i = ty * tiles_x + tx`.
#[derive(Debug, Clone, PartialEq)]
pub struct TileBins {
    grid: TileGridDims,
    /// Row-major per-tile start offsets into `indices`; `tile_count() + 1`
    /// entries, with `offsets[tile_count()] == indices.len()`.
    offsets: Vec<u32>,
    /// Concatenated per-tile splat index lists, each depth-sorted.
    indices: Vec<u32>,
}

impl TileBins {
    /// Duplicate each splat into every tile its bounding rectangle overlaps
    /// and sort each tile's list front-to-back by depth. Serial build; see
    /// [`TileBins::build_with_threads`] for the pool-parallel variant.
    pub fn build(splats: &[ProjectedSplat], grid: TileGridDims) -> Self {
        Self::build_with_threads(splats, grid, 1)
    }

    /// [`TileBins::build`] with counting pass 1, the pass-2 scatter and the
    /// per-tile depth sort distributed over `threads` workers (`0` = all
    /// pool workers, like [`RenderOptions::threads`](crate::RenderOptions)).
    /// Bit-identical to the serial build for every thread count: per-worker
    /// count arrays merge before the prefix sum, the scatter gives each
    /// worker cursor bases into disjoint per-tile slot ranges ordered by
    /// shard index (so the segments still fill in model order), and sort
    /// segments are disjoint.
    pub fn build_with_threads(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        threads: usize,
    ) -> Self {
        Self::build_filtered_with_threads(splats, grid, |_, _| true, threads)
    }

    /// [`TileBins::build`] restricted to tiles where `tile_active(tx, ty)`
    /// holds. Splat duplications into inactive tiles are skipped entirely —
    /// this is the foveation Filtering stage: a quality level only pays for
    /// the tiles inside its region (plus blend bands).
    pub fn build_filtered<F: Fn(u32, u32) -> bool + Sync>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        tile_active: F,
    ) -> Self {
        Self::build_filtered_with_threads(splats, grid, tile_active, 1)
    }

    /// [`TileBins::build_filtered`] on `threads` workers (see
    /// [`TileBins::build_with_threads`] for the determinism argument).
    ///
    /// The predicate bound is `Fn + Sync`, matching the projection
    /// admission predicate (PR 4), so one predicate can drive filtered
    /// builds across workers — and across chunks — without cloning tricks.
    pub fn build_filtered_with_threads<F: Fn(u32, u32) -> bool + Sync>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        tile_active: F,
        threads: usize,
    ) -> Self {
        Self::build_filtered_with_threads_into(
            splats,
            grid,
            tile_active,
            threads,
            Vec::new(),
            Vec::new(),
        )
    }

    /// [`TileBins::build_with_threads`] reusing recycled CSR storage (see
    /// [`TileBins::build_filtered_with_threads_into`]).
    pub fn build_with_threads_into(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        threads: usize,
        offsets: Vec<u32>,
        indices: Vec<u32>,
    ) -> Self {
        Self::build_filtered_with_threads_into(splats, grid, |_, _| true, threads, offsets, indices)
    }

    /// [`TileBins::build_filtered_with_threads`] building into recycled
    /// `offsets`/`indices` storage (from [`TileBins::into_buffers`], via a
    /// [`FrameArena`](crate::FrameArena)) instead of allocating fresh
    /// vectors per frame. Contents are rebuilt from scratch — only the
    /// capacity is reused — so the result is identical to the allocating
    /// builds.
    pub fn build_filtered_with_threads_into<F: Fn(u32, u32) -> bool + Sync>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        tile_active: F,
        threads: usize,
        mut offsets: Vec<u32>,
        mut indices: Vec<u32>,
    ) -> Self {
        let tile_count = grid.tile_count();
        let active: Vec<bool> = (0..grid.tiles_y)
            .flat_map(|ty| (0..grid.tiles_x).map(move |tx| (tx, ty)))
            .map(|(tx, ty)| tile_active(tx, ty))
            .collect();

        let threads = if threads == 0 {
            rayon::current_num_threads().max(1)
        } else {
            threads
        };
        let shards = threads.min(splats.len() / MIN_SPLATS_PER_SHARD).max(1);

        // Pass 1: count intersections per tile. Sharded over contiguous
        // splat ranges, one count array per worker. The per-shard arrays
        // are kept: pass 2 turns them into per-shard cursor bases.
        let mut parts = crate::par::shard_map(splats.len(), shards, |range| {
            let mut part = vec![0u32; tile_count];
            count_range(splats, range, grid.tiles_x, &active, &mut part);
            part
        });

        // Exclusive prefix sum over the merged counts → CSR offsets. The
        // merge sums exact integers, so shard count cannot change it.
        offsets.clear();
        offsets.reserve(tile_count + 1);
        let mut running = 0u32;
        offsets.push(0);
        for t in 0..tile_count {
            for part in &parts {
                running = running
                    .checked_add(part[t])
                    .expect("tile-intersection count overflows u32 CSR offsets");
            }
            offsets.push(running);
        }

        // Pass 2: scatter splat indices to their tile segments. Each shard
        // walks the same contiguous splat range its pass-1 counts came
        // from; its per-tile cursor starts at `offsets[t]` plus the counts
        // of every earlier shard. Shard slot ranges per tile are therefore
        // disjoint and ordered by shard index, and each shard fills its
        // range in model order — so the concatenation is exactly the old
        // serial walk's model-order fill, bit-identical for every shard
        // count.
        indices.clear();
        indices.resize(running as usize, 0);
        // Turn each shard's counts into its absolute start cursors.
        let mut base = vec![0u32; tile_count];
        for part in parts.iter_mut() {
            for (t, c) in part.iter_mut().enumerate() {
                let count = *c;
                *c = offsets[t] + base[t];
                base[t] += count;
            }
        }
        scatter_shards(
            splats,
            grid.tiles_x,
            &active,
            shards,
            parts,
            0,
            &mut indices,
        );

        // Depth-sort each tile segment front-to-back. `sort_by` is stable,
        // so equal depths keep submission order, matching the previous
        // layout's behavior exactly. Segments are disjoint, so the sorts
        // parallelize over contiguous tile ranges (balanced by segment
        // mass) without changing any segment's result.
        Self::sort_segments(splats, &offsets, &mut indices, tile_count, shards);

        Self {
            grid,
            offsets,
            indices,
        }
    }

    /// Depth-sort every tile segment of `indices`, splitting the tiles into
    /// up to `shards` contiguous ranges of roughly equal intersection mass
    /// and sorting ranges on the worker pool.
    fn sort_segments(
        splats: &[ProjectedSplat],
        offsets: &[u32],
        indices: &mut [u32],
        tile_count: usize,
        shards: usize,
    ) {
        // `total_cmp` is a genuine total order — the old `partial_cmp(..)
        // .unwrap_or(Equal)` comparator was not (NaN compared Equal to
        // everything, which violates sort_by's transitivity contract), and
        // it orders identically for the non-NaN depths projection emits.
        // The sort stays stable, so equal depths keep submission order.
        let by_depth = |&a: &u32, &b: &u32| {
            splats[a as usize]
                .depth
                .total_cmp(&splats[b as usize].depth)
        };

        if shards <= 1 || indices.is_empty() {
            for i in 0..tile_count {
                let seg = &mut indices[offsets[i] as usize..offsets[i + 1] as usize];
                seg.sort_by(by_depth);
            }
            return;
        }

        // Contiguous tile ranges balanced by total segment length.
        let target = indices.len().div_ceil(shards).max(1);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(shards);
        let (mut start, mut acc) = (0usize, 0usize);
        for t in 0..tile_count {
            acc += (offsets[t + 1] - offsets[t]) as usize;
            if acc >= target {
                ranges.push((start, t + 1));
                start = t + 1;
                acc = 0;
            }
        }
        if start < tile_count {
            ranges.push((start, tile_count));
        }

        // Carve `indices` into one disjoint slice per range.
        let mut tasks: Vec<(usize, usize, &mut [u32])> = Vec::with_capacity(ranges.len());
        let mut rest = indices;
        for &(s, e) in &ranges {
            let len = (offsets[e] - offsets[s]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            tasks.push((s, e, head));
            rest = tail;
        }
        rayon::scope(|sc| {
            for (s, e, slice) in tasks {
                sc.spawn(move |_| {
                    let base = offsets[s];
                    for t in s..e {
                        let seg = &mut slice
                            [(offsets[t] - base) as usize..(offsets[t + 1] - base) as usize];
                        seg.sort_by(by_depth);
                    }
                });
            }
        });
    }

    /// Reference implementation with the old nested `Vec<Vec<u32>>` layout.
    ///
    /// Kept as the baseline for the CSR equivalence property test and the
    /// `binning` benchmark; not used on the render path.
    pub fn build_naive<F: FnMut(u32, u32) -> bool>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        mut tile_active: F,
    ) -> Vec<Vec<u32>> {
        let active: Vec<bool> = (0..grid.tiles_y)
            .flat_map(|ty| (0..grid.tiles_x).map(move |tx| (tx, ty)))
            .map(|(tx, ty)| tile_active(tx, ty))
            .collect();
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); grid.tile_count()];
        for (si, splat) in splats.iter().enumerate() {
            for (tx, ty) in splat.tiles.iter() {
                let idx = (ty * grid.tiles_x + tx) as usize;
                if active[idx] {
                    bins[idx].push(si as u32);
                }
            }
        }
        for bin in &mut bins {
            bin.sort_by(|&a, &b| {
                splats[a as usize]
                    .depth
                    .total_cmp(&splats[b as usize].depth)
            });
        }
        bins
    }

    /// Tile-grid geometry.
    #[inline]
    pub fn grid(&self) -> TileGridDims {
        self.grid
    }

    /// Depth-sorted splat indices for tile `(tx, ty)`.
    ///
    /// # Panics
    ///
    /// Panics when the tile coordinate is out of the grid.
    #[inline]
    pub fn tile(&self, tx: u32, ty: u32) -> &[u32] {
        assert!(
            tx < self.grid.tiles_x && ty < self.grid.tiles_y,
            "tile out of grid"
        );
        let i = (ty * self.grid.tiles_x + tx) as usize;
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate all tile segments in row-major order — the sequential access
    /// pattern of the rasterizer's band loop, without the per-tile index
    /// arithmetic and bounds checks of repeated [`TileBins::tile`] calls.
    #[inline]
    pub fn iter_tiles(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.offsets
            .windows(2)
            .map(move |w| &self.indices[w[0] as usize..w[1] as usize])
    }

    /// CSR per-tile offsets (row-major, `tile_count() + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Concatenated depth-sorted splat indices — every entry is one
    /// tile-ellipse intersection.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Intersection count per tile (row-major): the CSR offset deltas.
    pub fn intersection_counts(&self) -> Vec<u32> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Total tile-ellipse intersections.
    pub fn total_intersections(&self) -> u64 {
        self.indices.len() as u64
    }

    /// Tear the CSR arrays out of the bins so a recycled
    /// [`FrameArena`](crate::FrameArena) can hand their capacity to the
    /// next frame's build; contents are rebuilt from scratch there.
    pub fn into_buffers(self) -> (Vec<u32>, Vec<u32>) {
        (self.offsets, self.indices)
    }
}

/// Incremental two-pass CSR build over a *stream* of splat chunks — the
/// binning half of the chunked [`ms_scene::SceneSource`] render path.
///
/// Usage mirrors the two passes of [`TileBins::build_with_threads`], spread
/// across chunks:
///
/// 1. [`count_chunk`](ChunkedBinBuilder::count_chunk) once per chunk —
///    accumulates per-tile intersection counts (integer sums, so chunking
///    cannot change them);
/// 2. [`seal`](ChunkedBinBuilder::seal) — exclusive prefix sum over the
///    accumulated counts (identical to the in-core offsets) and
///    initializes one persistent cursor per tile;
/// 3. [`scatter_chunk`](ChunkedBinBuilder::scatter_chunk) once per chunk,
///    in the same chunk order — re-counts the chunk per shard, offsets the
///    shard cursors by the persistent cursors, scatters global splat
///    indices (`splat_index_base` + chunk-local), then advances the
///    persistent cursors past the chunk;
/// 4. [`finish`](ChunkedBinBuilder::finish) — depth-sorts every tile
///    segment.
///
/// Chunks partition the splat sequence contiguously and scatter in order,
/// so each tile segment fills in global splat order — exactly the in-core
/// fill — and the pre-sort index array is bit-identical to
/// [`TileBins::build_with_threads`] over the concatenated splats for every
/// chunk size, shard count and thread count.
///
/// The streamed frame machine (`crate::frame`) overlaps the *decode* of
/// chunk `k + 1` with the projection of chunk `k` (double-buffering), but
/// the builder itself still consumes chunks strictly in order — prefetch
/// moves wall time only and cannot reorder a CSR write.
#[derive(Debug)]
pub(crate) struct ChunkedBinBuilder {
    grid: TileGridDims,
    threads: usize,
    /// All-true tile mask (the chunked path has no Filtering stage), kept
    /// as a vec so the counting/scatter helpers are shared with the
    /// filtered in-core build.
    active: Vec<bool>,
    /// Per-tile intersection counts accumulated across chunks (pass 1),
    /// then reused as scratch for converting shard counts to cursors.
    counts: Vec<u32>,
    offsets: Vec<u32>,
    indices: Vec<u32>,
    /// Persistent per-tile write cursors for the streamed pass 2.
    cursors: Vec<u32>,
    sealed: bool,
}

impl ChunkedBinBuilder {
    /// A builder for `grid` running on `threads` workers (`0` = all pool
    /// workers), reusing recycled CSR storage like
    /// [`TileBins::build_filtered_with_threads_into`].
    pub(crate) fn new(grid: TileGridDims, threads: usize, recycle: (Vec<u32>, Vec<u32>)) -> Self {
        let threads = if threads == 0 {
            rayon::current_num_threads().max(1)
        } else {
            threads
        };
        let tile_count = grid.tile_count();
        Self {
            grid,
            threads,
            active: vec![true; tile_count],
            counts: vec![0u32; tile_count],
            offsets: recycle.0,
            indices: recycle.1,
            cursors: Vec::new(),
            sealed: false,
        }
    }

    fn shards_for(&self, splat_count: usize) -> usize {
        self.threads.min(splat_count / MIN_SPLATS_PER_SHARD).max(1)
    }

    /// Pass 1 for one chunk: accumulate its per-tile intersection counts.
    pub(crate) fn count_chunk(&mut self, splats: &[ProjectedSplat]) {
        debug_assert!(!self.sealed, "count_chunk after seal");
        let shards = self.shards_for(splats.len());
        if shards <= 1 {
            count_range(
                splats,
                0..splats.len(),
                self.grid.tiles_x,
                &self.active,
                &mut self.counts,
            );
            return;
        }
        let parts = crate::par::shard_map(splats.len(), shards, |range| {
            let mut part = vec![0u32; self.grid.tile_count()];
            count_range(splats, range, self.grid.tiles_x, &self.active, &mut part);
            part
        });
        for part in parts {
            for (acc, v) in self.counts.iter_mut().zip(part) {
                *acc = acc
                    .checked_add(v)
                    .expect("tile-intersection count overflows u32 CSR offsets");
            }
        }
    }

    /// End of pass 1: prefix-sum the accumulated counts into CSR offsets,
    /// size the index array, and set every tile's persistent cursor to its
    /// segment start. Returns the total intersection count.
    pub(crate) fn seal(&mut self) -> u64 {
        debug_assert!(!self.sealed, "seal called twice");
        let tile_count = self.grid.tile_count();
        self.offsets.clear();
        self.offsets.reserve(tile_count + 1);
        let mut running = 0u32;
        self.offsets.push(0);
        for t in 0..tile_count {
            running = running
                .checked_add(self.counts[t])
                .expect("tile-intersection count overflows u32 CSR offsets");
            self.offsets.push(running);
        }
        self.indices.clear();
        self.indices.resize(running as usize, 0);
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.offsets[..tile_count]);
        self.sealed = true;
        running as u64
    }

    /// Pass 2 for one chunk (chunks must arrive in the same order as
    /// pass 1): scatter the chunk's splats into the CSR segments as global
    /// indices `splat_index_base + local`, advancing the persistent
    /// cursors.
    pub(crate) fn scatter_chunk(&mut self, splats: &[ProjectedSplat], splat_index_base: u32) {
        debug_assert!(self.sealed, "scatter_chunk before seal");
        let tile_count = self.grid.tile_count();
        let shards = self.shards_for(splats.len());
        // Re-count the chunk per shard (cheaper than keeping every chunk's
        // pass-1 shard counts resident — residency is the whole point).
        let mut parts = if shards <= 1 {
            let mut part = vec![0u32; tile_count];
            count_range(
                splats,
                0..splats.len(),
                self.grid.tiles_x,
                &self.active,
                &mut part,
            );
            vec![part]
        } else {
            crate::par::shard_map(splats.len(), shards, |range| {
                let mut part = vec![0u32; tile_count];
                count_range(splats, range, self.grid.tiles_x, &self.active, &mut part);
                part
            })
        };
        // Shard counts → absolute cursors: persistent cursor plus the
        // chunk's earlier shards. `counts` doubles as the within-chunk
        // accumulator here (pass 1 is over once sealed).
        let chunk_total = &mut self.counts;
        chunk_total.iter_mut().for_each(|c| *c = 0);
        for part in parts.iter_mut() {
            for (t, c) in part.iter_mut().enumerate() {
                let count = *c;
                *c = self.cursors[t] + chunk_total[t];
                chunk_total[t] += count;
            }
        }
        scatter_shards(
            splats,
            self.grid.tiles_x,
            &self.active,
            shards,
            parts,
            splat_index_base,
            &mut self.indices,
        );
        for (cursor, total) in self.cursors.iter_mut().zip(chunk_total.iter()) {
            *cursor += total;
        }
    }

    /// Depth-sort every tile segment and produce the bins. `splats` is the
    /// full concatenated visible-splat sequence the stored indices refer
    /// into.
    pub(crate) fn finish(mut self, splats: &[ProjectedSplat]) -> TileBins {
        debug_assert!(self.sealed, "finish before seal");
        debug_assert!(
            self.cursors
                .iter()
                .enumerate()
                .all(|(t, &c)| c == self.offsets[t + 1]),
            "scatter did not fill every tile segment"
        );
        let tile_count = self.grid.tile_count();
        let shards = self.shards_for(splats.len());
        TileBins::sort_segments(splats, &self.offsets, &mut self.indices, tile_count, shards);
        TileBins {
            grid: self.grid,
            offsets: self.offsets,
            indices: self.indices,
        }
    }

    /// Abandon the build and recover the recycled CSR buffers (cleared).
    /// The streamed frame machine calls this when a chunk load fails
    /// mid-stream, so a failed frame still hands a clean arena back instead
    /// of dropping its capacity.
    pub(crate) fn into_recycle(self) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = self.offsets;
        let mut indices = self.indices;
        offsets.clear();
        indices.clear();
        (offsets, indices)
    }
}

/// One raster work unit: an axis-aligned rectangle of tiles,
/// `[tx0, tx1) × [ty0, ty1)` in tile coordinates.
///
/// A single tile is the degenerate `1 × 1` rectangle; a band (the PR 3/4
/// work unit) is `[0, tiles_x) × [ty, ty + 1)`. Rasterizing a super-tile
/// still composites every pixel against *its own tile's* CSR list — the
/// rectangle only groups tiles into one scheduling slot, so regrouping can
/// never change a pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperTile {
    /// First tile column (inclusive).
    pub tx0: u32,
    /// First tile row (inclusive).
    pub ty0: u32,
    /// Past-the-end tile column (exclusive).
    pub tx1: u32,
    /// Past-the-end tile row (exclusive).
    pub ty1: u32,
}

impl SuperTile {
    /// Number of tiles covered by the rectangle.
    pub fn tile_count(&self) -> usize {
        (self.tx1 - self.tx0) as usize * (self.ty1 - self.ty0) as usize
    }

    /// Whether the rectangle covers tile `(tx, ty)`.
    pub fn contains(&self, tx: u32, ty: u32) -> bool {
        (self.tx0..self.tx1).contains(&tx) && (self.ty0..self.ty1).contains(&ty)
    }

    /// Tiles of the rectangle in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (self.ty0..self.ty1).flat_map(move |ty| (self.tx0..self.tx1).map(move |tx| (tx, ty)))
    }
}

/// The Merge stage's output: an ordered partition of the tile grid into
/// [`SuperTile`] work units — the list the band-parallel rasterizer pulls
/// from instead of raw tiles or whole bands.
///
/// Invariants (checked by the partition property test):
///
/// * every tile of the grid belongs to **exactly one** unit, so every
///   splat-tile intersection lands in exactly one super-tile;
/// * units are emitted in row-major scan order of their anchor tile, so the
///   schedule is deterministic for a given `TileBins` regardless of thread
///   count (the plan is built serially — it is a single O(tiles) scan).
#[derive(Debug, Clone, PartialEq)]
pub struct MergedTileSchedule {
    grid: TileGridDims,
    units: Vec<SuperTile>,
    merged_tiles: usize,
}

impl MergedTileSchedule {
    /// The identity schedule used when merging is disabled: one unit per
    /// tile row (the PR 3/4 "band" work unit), preserving the unmerged
    /// pipeline's scheduling granularity exactly.
    pub fn bands(grid: TileGridDims) -> Self {
        let units = (0..grid.tiles_y)
            .map(|ty| SuperTile {
                tx0: 0,
                ty0: ty,
                tx1: grid.tiles_x,
                ty1: ty + 1,
            })
            .collect();
        Self {
            grid,
            units,
            merged_tiles: 0,
        }
    }

    /// Build the occupancy-driven merge plan of the paper's §4.3 over the
    /// CSR offsets.
    ///
    /// A tile is *mergeable* when its intersection count is below
    /// `threshold × mean` occupancy (empty tiles always are). The scan
    /// walks tiles row-major; at each unclaimed mergeable tile it greedily
    /// grows a rectangle — first rightward, then row by row downward —
    /// absorbing only unclaimed mergeable tiles, bounded by `max_extent`
    /// tiles per side *and* by the mean occupancy: growth stops before the
    /// unit's cumulative count would exceed the grid mean. Dense tiles
    /// become singleton units. The cumulative cap gives the balance
    /// guarantee behind the fig09 claim: every multi-tile unit carries at
    /// most `mean` intersections, so the schedule's maximum stays the
    /// densest tile while the unit count strictly drops whenever anything
    /// merges — max/mean per work unit can only improve.
    pub fn merge_low_occupancy(bins: &TileBins, threshold: f32, max_extent: u32) -> Self {
        assert!(max_extent >= 1, "merge_max_extent must be >= 1");
        let grid = bins.grid();
        let (tiles_x, tiles_y) = (grid.tiles_x, grid.tiles_y);
        let tile_count = grid.tile_count();
        let offsets = bins.offsets();
        let count = |tx: u32, ty: u32| -> u64 {
            let i = ty as usize * tiles_x as usize + tx as usize;
            (offsets[i + 1] - offsets[i]) as u64
        };
        let mean = bins.total_intersections() as f64 / tile_count.max(1) as f64;
        let low = threshold as f64 * mean;
        let mergeable = |tx: u32, ty: u32| {
            let c = count(tx, ty);
            c == 0 || (c as f64) < low
        };

        let mut taken = vec![false; tile_count];
        let mut units = Vec::new();
        let mut merged_tiles = 0usize;
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let anchor = ty as usize * tiles_x as usize + tx as usize;
                if taken[anchor] {
                    continue;
                }
                if !mergeable(tx, ty) {
                    taken[anchor] = true;
                    units.push(SuperTile {
                        tx0: tx,
                        ty0: ty,
                        tx1: tx + 1,
                        ty1: ty + 1,
                    });
                    continue;
                }
                // Grow rightward while the row stays mergeable and the
                // cumulative count stays under the mean.
                let mut sum = count(tx, ty);
                let mut w = 1u32;
                while tx + w < tiles_x && w < max_extent {
                    let nx = tx + w;
                    if taken[ty as usize * tiles_x as usize + nx as usize]
                        || !mergeable(nx, ty)
                        || (sum + count(nx, ty)) as f64 > mean
                    {
                        break;
                    }
                    sum += count(nx, ty);
                    w += 1;
                }
                // Grow downward a full row at a time: a row joins only if
                // every tile under the rectangle is unclaimed and mergeable.
                let mut h = 1u32;
                'rows: while ty + h < tiles_y && h < max_extent {
                    let ny = ty + h;
                    let mut row_sum = 0u64;
                    for x in tx..tx + w {
                        if taken[ny as usize * tiles_x as usize + x as usize] || !mergeable(x, ny) {
                            break 'rows;
                        }
                        row_sum += count(x, ny);
                    }
                    if (sum + row_sum) as f64 > mean {
                        break;
                    }
                    sum += row_sum;
                    h += 1;
                }
                for y in ty..ty + h {
                    for x in tx..tx + w {
                        taken[y as usize * tiles_x as usize + x as usize] = true;
                    }
                }
                if w * h > 1 {
                    merged_tiles += (w * h) as usize;
                }
                units.push(SuperTile {
                    tx0: tx,
                    ty0: ty,
                    tx1: tx + w,
                    ty1: ty + h,
                });
            }
        }
        Self {
            grid,
            units,
            merged_tiles,
        }
    }

    /// Tile-grid geometry the schedule partitions.
    #[inline]
    pub fn grid(&self) -> TileGridDims {
        self.grid
    }

    /// The work units, in deterministic scan order.
    #[inline]
    pub fn units(&self) -> &[SuperTile] {
        &self.units
    }

    /// Tiles absorbed into multi-tile units (0 for the band schedule, which
    /// reflects scheduling granularity rather than occupancy merging).
    #[inline]
    pub fn merged_tiles(&self) -> usize {
        self.merged_tiles
    }

    /// Row-major map from tile index to the id (schedule position) of the
    /// unit owning it — the `RenderStats::tile_unit` counter the accelerator
    /// simulator regroups its slots by.
    pub fn tile_unit_map(&self) -> Vec<u32> {
        let mut map = vec![u32::MAX; self.grid.tile_count()];
        for (u, unit) in self.units.iter().enumerate() {
            let id = u32::try_from(u).expect("work-unit id overflows u32");
            for (tx, ty) in unit.tiles() {
                map[ty as usize * self.grid.tiles_x as usize + tx as usize] = id;
            }
        }
        map
    }

    /// Per-unit intersection counts, summed from the CSR offsets of the
    /// bins the schedule was built over.
    pub fn unit_intersections(&self, bins: &TileBins) -> Vec<u32> {
        let offsets = bins.offsets();
        let tiles_x = self.grid.tiles_x as usize;
        self.units
            .iter()
            .map(|unit| {
                unit.tiles()
                    .map(|(tx, ty)| {
                        let i = ty as usize * tiles_x + tx as usize;
                        offsets[i + 1] - offsets[i]
                    })
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::RenderOptions;
    use crate::projection::project_model;
    use ms_math::{Quat, Vec3};
    use ms_scene::{Camera, GaussianModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid() -> TileGridDims {
        TileGridDims::for_image(128, 128, 16)
    }

    fn scene() -> (GaussianModel, Camera) {
        let mut m = GaussianModel::new(0);
        // Far red splat then near green splat, both centered.
        m.push_solid(
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::splat(0.3),
            Quat::identity(),
            0.8,
            Vec3::new(1.0, 0.0, 0.0),
        );
        m.push_solid(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::splat(0.3),
            Quat::identity(),
            0.8,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let cam = Camera::look_at(128, 128, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        (m, cam)
    }

    #[test]
    fn bins_are_depth_sorted() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let center = bins.tile(4, 4);
        assert!(center.len() >= 2);
        for w in center.windows(2) {
            assert!(splats[w[0] as usize].depth <= splats[w[1] as usize].depth);
        }
        // The near (green) splat must come first.
        assert_eq!(splats[center[0] as usize].point_index, 1);
    }

    #[test]
    fn total_intersections_matches_tile_rects() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let expected: u64 = splats.iter().map(|s| s.tile_count() as u64).sum();
        assert_eq!(bins.total_intersections(), expected);
    }

    #[test]
    fn counts_match_bins() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let counts = bins.intersection_counts();
        assert_eq!(counts.len(), 64);
        assert_eq!(
            counts.iter().map(|&c| c as u64).sum::<u64>(),
            bins.total_intersections()
        );
        // Offsets are monotone and bracket the index array.
        assert_eq!(bins.offsets().len(), 65);
        assert!(bins.offsets().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            *bins.offsets().last().unwrap() as usize,
            bins.indices().len()
        );
    }

    #[test]
    fn empty_splats_empty_bins() {
        let bins = TileBins::build(&[], grid());
        assert_eq!(bins.total_intersections(), 0);
        assert!(bins.tile(0, 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_grid_tile_panics() {
        let bins = TileBins::build(&[], grid());
        let _ = bins.tile(8, 0);
    }

    /// Random splat sets for the CSR-vs-naive equivalence property.
    fn random_splats(rng: &mut StdRng, n: usize, g: TileGridDims) -> Vec<ProjectedSplat> {
        use ms_math::{Conic2, TileRect, Vec2};
        (0..n)
            .filter_map(|i| {
                let cx = rng.gen_range(-10.0..g.width as f32 + 10.0);
                let cy = rng.gen_range(-10.0..g.height as f32 + 10.0);
                let radius = rng.gen_range(0.5..60.0f32);
                let tiles = TileRect::from_circle(
                    Vec2::new(cx, cy),
                    radius,
                    g.tile_size,
                    g.tiles_x,
                    g.tiles_y,
                )?;
                Some(ProjectedSplat {
                    point_index: i as u32,
                    center: Vec2::new(cx, cy),
                    conic: Conic2 {
                        a: 1.0,
                        b: 0.0,
                        c: 1.0,
                    },
                    depth: rng.gen_range(0.1..50.0f32),
                    radius,
                    color: ms_math::Vec3::splat(0.5),
                    opacity: 0.9,
                    tiles,
                })
            })
            .collect()
    }

    #[test]
    fn csr_equals_naive_on_random_splat_sets() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..50 {
            let n = rng.gen_range(0usize..400);
            let splats = random_splats(&mut rng, n, g);
            // Unfiltered and checkerboard-filtered builds must both match.
            for parity in [None, Some(0u32), Some(1u32)] {
                let active = |tx: u32, ty: u32| match parity {
                    None => true,
                    Some(p) => (tx + ty) % 2 == p,
                };
                let csr = TileBins::build_filtered(&splats, g, active);
                let naive = TileBins::build_naive(&splats, g, active);
                for ty in 0..g.tiles_y {
                    for tx in 0..g.tiles_x {
                        let i = (ty * g.tiles_x + tx) as usize;
                        assert_eq!(
                            csr.tile(tx, ty),
                            naive[i].as_slice(),
                            "round {round} parity {parity:?} tile ({tx},{ty})"
                        );
                    }
                }
                let counts = csr.intersection_counts();
                for (i, bin) in naive.iter().enumerate() {
                    assert_eq!(counts[i] as usize, bin.len());
                }
                assert_eq!(
                    csr.total_intersections(),
                    naive.iter().map(|b| b.len() as u64).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        // Enough splats to shard (above MIN_SPLATS_PER_SHARD per worker).
        let g = grid();
        let mut rng = StdRng::seed_from_u64(77);
        let splats = random_splats(&mut rng, 5000, g);
        let serial = TileBins::build(&splats, g);
        for threads in [2usize, 3, 8, 0] {
            let par = TileBins::build_with_threads(&splats, g, threads);
            assert_eq!(par, serial, "CSR bins differ at threads={threads}");
        }
    }

    #[test]
    fn threaded_filtered_build_is_bit_identical_to_serial() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(78);
        let splats = random_splats(&mut rng, 4000, g);
        let active = |tx: u32, ty: u32| (tx + ty) % 2 == 0;
        let serial = TileBins::build_filtered(&splats, g, active);
        for threads in [2usize, 3, 8, 0] {
            let par = TileBins::build_filtered_with_threads(&splats, g, active, threads);
            assert_eq!(par, serial, "filtered bins differ at threads={threads}");
        }
    }

    #[test]
    fn iter_tiles_matches_indexed_access() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let g = grid();
        let bins = TileBins::build(&splats, g);
        let mut count = 0usize;
        for (i, seg) in bins.iter_tiles().enumerate() {
            let (tx, ty) = (i as u32 % g.tiles_x, i as u32 / g.tiles_x);
            assert_eq!(seg, bins.tile(tx, ty));
            count += 1;
        }
        assert_eq!(count, g.tile_count());
    }

    /// Max/mean ratio of a work-unit count list (1.0 when empty/zero).
    fn ratio(counts: &[u32]) -> f64 {
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if counts.is_empty() || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / counts.len() as f64;
        counts.iter().copied().max().unwrap() as f64 / mean
    }

    /// Assert `schedule` partitions `g`: every tile in exactly one unit.
    fn assert_partition(schedule: &MergedTileSchedule, g: TileGridDims) {
        let mut covered = vec![0u32; g.tile_count()];
        for unit in schedule.units() {
            assert!(unit.tx0 < unit.tx1 && unit.ty0 < unit.ty1, "empty unit");
            assert!(
                unit.tx1 <= g.tiles_x && unit.ty1 <= g.tiles_y,
                "unit out of grid"
            );
            for (tx, ty) in unit.tiles() {
                covered[(ty * g.tiles_x + tx) as usize] += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "schedule must cover every tile exactly once"
        );
    }

    #[test]
    fn band_schedule_is_one_unit_per_row() {
        let g = grid();
        let s = MergedTileSchedule::bands(g);
        assert_eq!(s.units().len(), g.tiles_y as usize);
        assert_eq!(s.merged_tiles(), 0);
        assert_partition(&s, g);
        // Band i owns exactly tile row i.
        let map = s.tile_unit_map();
        for (i, &u) in map.iter().enumerate() {
            assert_eq!(u as usize, i / g.tiles_x as usize);
        }
    }

    #[test]
    fn merge_plan_partitions_random_splat_sets() {
        // Property: for random splat sets, thresholds and extents, every
        // tile — and therefore every splat-tile intersection — lands in
        // exactly one super-tile, and the per-unit counts conserve the
        // total intersection count.
        let g = grid();
        let mut rng = StdRng::seed_from_u64(4242);
        for round in 0..40 {
            let n = rng.gen_range(0usize..600);
            let splats = random_splats(&mut rng, n, g);
            let bins = TileBins::build(&splats, g);
            let threshold = rng.gen_range(0.05..1.5f32);
            let max_extent = rng.gen_range(1u32..6);
            let s = MergedTileSchedule::merge_low_occupancy(&bins, threshold, max_extent);
            assert_partition(&s, g);
            let units = s.unit_intersections(&bins);
            assert_eq!(units.len(), s.units().len());
            assert_eq!(
                units.iter().map(|&c| c as u64).sum::<u64>(),
                bins.total_intersections(),
                "round {round}: merged units must conserve intersections"
            );
            // Extent cap respected.
            for unit in s.units() {
                assert!(unit.tx1 - unit.tx0 <= max_extent);
                assert!(unit.ty1 - unit.ty0 <= max_extent);
            }
            // The unit map agrees with the unit list.
            let map = s.tile_unit_map();
            for (u, unit) in s.units().iter().enumerate() {
                for (tx, ty) in unit.tiles() {
                    assert_eq!(map[(ty * g.tiles_x + tx) as usize] as usize, u);
                }
            }
        }
    }

    #[test]
    fn merging_strictly_lowers_imbalance_on_sparse_periphery() {
        // A foveal workload in miniature: dense center tiles, empty
        // periphery. Merging must strictly lower max/mean per work unit.
        let g = grid();
        let mut rng = StdRng::seed_from_u64(9);
        let splats: Vec<ProjectedSplat> = (0..3000)
            .filter_map(|i| {
                use ms_math::{Conic2, TileRect, Vec2};
                let cx = 64.0 + rng.gen_range(-12.0..12.0f32);
                let cy = 64.0 + rng.gen_range(-12.0..12.0f32);
                let tiles = TileRect::from_circle(
                    Vec2::new(cx, cy),
                    2.0,
                    g.tile_size,
                    g.tiles_x,
                    g.tiles_y,
                )?;
                Some(ProjectedSplat {
                    point_index: i as u32,
                    center: Vec2::new(cx, cy),
                    conic: Conic2 {
                        a: 1.0,
                        b: 0.0,
                        c: 1.0,
                    },
                    depth: 1.0,
                    radius: 2.0,
                    color: ms_math::Vec3::splat(0.5),
                    opacity: 0.9,
                    tiles,
                })
            })
            .collect();
        let bins = TileBins::build(&splats, g);
        let s = MergedTileSchedule::merge_low_occupancy(&bins, 0.5, 4);
        let pre = ratio(&bins.intersection_counts());
        let post = ratio(&s.unit_intersections(&bins));
        assert!(
            s.units().len() < g.tile_count(),
            "sparse periphery must merge"
        );
        assert!(s.merged_tiles() > 0);
        assert!(
            post < pre,
            "merging must strictly lower imbalance: pre {pre} post {post}"
        );
        // The densest unit is still the densest tile — multi-tile units are
        // capped at the mean occupancy.
        assert_eq!(
            s.unit_intersections(&bins).iter().max(),
            bins.intersection_counts().iter().max()
        );
    }

    #[test]
    fn merge_plan_is_deterministic() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(5151);
        let splats = random_splats(&mut rng, 800, g);
        let bins = TileBins::build(&splats, g);
        let a = MergedTileSchedule::merge_low_occupancy(&bins, 0.5, 4);
        let b = MergedTileSchedule::merge_low_occupancy(&bins, 0.5, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_frame_merges_into_extent_capped_blocks() {
        let g = grid(); // 8×8 tiles
        let bins = TileBins::build(&[], g);
        let s = MergedTileSchedule::merge_low_occupancy(&bins, 0.5, 4);
        assert_partition(&s, g);
        // 8×8 empty tiles with a 4-tile cap → four 4×4 super-tiles.
        assert_eq!(s.units().len(), 4);
        assert!(s.units().iter().all(|u| u.tile_count() == 16));
    }

    #[test]
    fn extent_one_never_merges() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(31);
        let splats = random_splats(&mut rng, 300, g);
        let bins = TileBins::build(&splats, g);
        let s = MergedTileSchedule::merge_low_occupancy(&bins, 0.9, 1);
        assert_eq!(s.units().len(), g.tile_count());
        assert_eq!(s.merged_tiles(), 0);
        assert_partition(&s, g);
    }

    #[test]
    fn chunked_builder_is_bit_identical_to_in_core() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(99);
        let splats = random_splats(&mut rng, 4000, g);
        let reference = TileBins::build(&splats, g);
        for chunk in [1usize, 173, 512, 4096, 10_000] {
            for threads in [1usize, 2, 3, 8, 0] {
                let mut b = ChunkedBinBuilder::new(g, threads, (Vec::new(), Vec::new()));
                for c in splats.chunks(chunk) {
                    b.count_chunk(c);
                }
                let total = b.seal();
                assert_eq!(total, reference.total_intersections());
                let mut base = 0u32;
                for c in splats.chunks(chunk) {
                    b.scatter_chunk(c, base);
                    base += c.len() as u32;
                }
                let bins = b.finish(&splats);
                assert_eq!(
                    bins, reference,
                    "chunked bins differ at chunk={chunk} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn chunked_builder_handles_empty_stream() {
        let g = grid();
        let mut b = ChunkedBinBuilder::new(g, 2, (Vec::new(), Vec::new()));
        assert_eq!(b.seal(), 0);
        let bins = b.finish(&[]);
        assert_eq!(bins, TileBins::build(&[], g));
    }

    #[test]
    fn filtered_build_skips_inactive_tiles() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let g = grid();
        let bins = TileBins::build_filtered(&splats, g, |tx, _| tx < 4);
        for ty in 0..g.tiles_y {
            for tx in 4..g.tiles_x {
                assert!(
                    bins.tile(tx, ty).is_empty(),
                    "inactive tile ({tx},{ty}) not empty"
                );
            }
        }
    }
}
