//! Sorting stage: per-tile splat lists ordered front-to-back.
//!
//! Bins are stored in a flat CSR (compressed sparse row) layout — one
//! `Vec<u32>` of splat indices plus one `Vec<u32>` of per-tile offsets —
//! built counting-sort style in two passes over the splats. Compared to the
//! previous `Vec<Vec<u32>>` layout this is one allocation instead of one
//! per tile, and tile lists are contiguous in memory in exactly the order
//! the rasterizer consumes them. The per-tile intersection counts that
//! drive the paper's workload analysis (and the accelerator simulator) are
//! the offset deltas — the renderer and the simulator share them by
//! construction.

use crate::projection::ProjectedSplat;
use crate::stats::TileGridDims;

/// Below this splat count CSR pass 1 runs serially even when more workers
/// are requested — the per-task overhead would exceed the counting work.
/// Sharding never changes the output, only the wall time.
const MIN_SPLATS_PER_SHARD: usize = 512;

/// Count tile-ellipse intersections for `splats[range]` into `counts`
/// (indexed row-major, masked by `active`).
fn count_range(
    splats: &[ProjectedSplat],
    range: std::ops::Range<usize>,
    tiles_x: u32,
    active: &[bool],
    counts: &mut [u32],
) {
    for splat in &splats[range] {
        for (tx, ty) in splat.tiles.iter() {
            let idx = (ty * tiles_x + tx) as usize;
            counts[idx] += active[idx] as u32;
        }
    }
}

/// Per-tile splat index lists, depth-sorted front-to-back, in a flat CSR
/// layout.
///
/// Indices refer into the `Vec<ProjectedSplat>` the bins were built from.
/// Tile `(tx, ty)`'s list is `indices[offsets[i]..offsets[i+1]]` with
/// `i = ty * tiles_x + tx`.
#[derive(Debug, Clone, PartialEq)]
pub struct TileBins {
    grid: TileGridDims,
    /// Row-major per-tile start offsets into `indices`; `tile_count() + 1`
    /// entries, with `offsets[tile_count()] == indices.len()`.
    offsets: Vec<u32>,
    /// Concatenated per-tile splat index lists, each depth-sorted.
    indices: Vec<u32>,
}

impl TileBins {
    /// Duplicate each splat into every tile its bounding rectangle overlaps
    /// and sort each tile's list front-to-back by depth. Serial build; see
    /// [`TileBins::build_with_threads`] for the pool-parallel variant.
    pub fn build(splats: &[ProjectedSplat], grid: TileGridDims) -> Self {
        Self::build_with_threads(splats, grid, 1)
    }

    /// [`TileBins::build`] with counting pass 1 and the per-tile depth sort
    /// distributed over `threads` workers (`0` = all pool workers, like
    /// [`RenderOptions::threads`](crate::RenderOptions)). Bit-identical to
    /// the serial build for every thread count: per-worker count arrays
    /// merge before the prefix sum, the scatter pass visits splats in model
    /// order, and sort segments are disjoint.
    pub fn build_with_threads(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        threads: usize,
    ) -> Self {
        Self::build_filtered_with_threads(splats, grid, |_, _| true, threads)
    }

    /// [`TileBins::build`] restricted to tiles where `tile_active(tx, ty)`
    /// holds. Splat duplications into inactive tiles are skipped entirely —
    /// this is the foveation Filtering stage: a quality level only pays for
    /// the tiles inside its region (plus blend bands).
    pub fn build_filtered<F: FnMut(u32, u32) -> bool>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        tile_active: F,
    ) -> Self {
        Self::build_filtered_with_threads(splats, grid, tile_active, 1)
    }

    /// [`TileBins::build_filtered`] on `threads` workers (see
    /// [`TileBins::build_with_threads`] for the determinism argument).
    ///
    /// The activity predicate is evaluated once per tile up front on the
    /// calling thread, so it may be `FnMut` and need not be `Sync`.
    pub fn build_filtered_with_threads<F: FnMut(u32, u32) -> bool>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        mut tile_active: F,
        threads: usize,
    ) -> Self {
        let tile_count = grid.tile_count();
        let active: Vec<bool> = (0..grid.tiles_y)
            .flat_map(|ty| (0..grid.tiles_x).map(move |tx| (tx, ty)))
            .map(|(tx, ty)| tile_active(tx, ty))
            .collect();

        let threads = if threads == 0 {
            rayon::current_num_threads().max(1)
        } else {
            threads
        };
        let shards = threads.min(splats.len() / MIN_SPLATS_PER_SHARD).max(1);

        // Pass 1: count intersections per tile. Sharded over contiguous
        // splat ranges, one count array per worker, merged below — exact
        // integer counts, so the merge order cannot change the result.
        let mut parts = crate::par::shard_map(splats.len(), shards, |range| {
            let mut part = vec![0u32; tile_count];
            count_range(splats, range, grid.tiles_x, &active, &mut part);
            part
        });
        let mut counts = parts.swap_remove(0);
        for part in parts {
            for (acc, c) in counts.iter_mut().zip(part) {
                *acc = acc
                    .checked_add(c)
                    .expect("tile-intersection count overflows u32 CSR offsets");
            }
        }

        // Exclusive prefix sum → CSR offsets.
        let mut offsets = Vec::with_capacity(tile_count + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &c in &counts {
            running = running
                .checked_add(c)
                .expect("tile-intersection count overflows u32 CSR offsets");
            offsets.push(running);
        }

        // Pass 2: scatter splat indices to their tile segments. Splats are
        // visited in model order, so each segment is filled in submission
        // order — the same order the nested-Vec layout produced. Serial: a
        // single linear pass over the splats, cheap next to the sorts.
        let mut indices = vec![0u32; running as usize];
        let mut cursor: Vec<u32> = offsets[..tile_count].to_vec();
        for (si, splat) in splats.iter().enumerate() {
            for (tx, ty) in splat.tiles.iter() {
                let idx = (ty * grid.tiles_x + tx) as usize;
                if active[idx] {
                    indices[cursor[idx] as usize] = si as u32;
                    cursor[idx] += 1;
                }
            }
        }

        // Depth-sort each tile segment front-to-back. `sort_by` is stable,
        // so equal depths keep submission order, matching the previous
        // layout's behavior exactly. Segments are disjoint, so the sorts
        // parallelize over contiguous tile ranges (balanced by segment
        // mass) without changing any segment's result.
        Self::sort_segments(splats, &offsets, &mut indices, tile_count, shards);

        Self {
            grid,
            offsets,
            indices,
        }
    }

    /// Depth-sort every tile segment of `indices`, splitting the tiles into
    /// up to `shards` contiguous ranges of roughly equal intersection mass
    /// and sorting ranges on the worker pool.
    fn sort_segments(
        splats: &[ProjectedSplat],
        offsets: &[u32],
        indices: &mut [u32],
        tile_count: usize,
        shards: usize,
    ) {
        let by_depth = |&a: &u32, &b: &u32| {
            splats[a as usize]
                .depth
                .partial_cmp(&splats[b as usize].depth)
                .unwrap_or(std::cmp::Ordering::Equal)
        };

        if shards <= 1 || indices.is_empty() {
            for i in 0..tile_count {
                let seg = &mut indices[offsets[i] as usize..offsets[i + 1] as usize];
                seg.sort_by(by_depth);
            }
            return;
        }

        // Contiguous tile ranges balanced by total segment length.
        let target = indices.len().div_ceil(shards).max(1);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(shards);
        let (mut start, mut acc) = (0usize, 0usize);
        for t in 0..tile_count {
            acc += (offsets[t + 1] - offsets[t]) as usize;
            if acc >= target {
                ranges.push((start, t + 1));
                start = t + 1;
                acc = 0;
            }
        }
        if start < tile_count {
            ranges.push((start, tile_count));
        }

        // Carve `indices` into one disjoint slice per range.
        let mut tasks: Vec<(usize, usize, &mut [u32])> = Vec::with_capacity(ranges.len());
        let mut rest = indices;
        for &(s, e) in &ranges {
            let len = (offsets[e] - offsets[s]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            tasks.push((s, e, head));
            rest = tail;
        }
        rayon::scope(|sc| {
            for (s, e, slice) in tasks {
                sc.spawn(move |_| {
                    let base = offsets[s];
                    for t in s..e {
                        let seg = &mut slice
                            [(offsets[t] - base) as usize..(offsets[t + 1] - base) as usize];
                        seg.sort_by(by_depth);
                    }
                });
            }
        });
    }

    /// Reference implementation with the old nested `Vec<Vec<u32>>` layout.
    ///
    /// Kept as the baseline for the CSR equivalence property test and the
    /// `binning` benchmark; not used on the render path.
    pub fn build_naive<F: FnMut(u32, u32) -> bool>(
        splats: &[ProjectedSplat],
        grid: TileGridDims,
        mut tile_active: F,
    ) -> Vec<Vec<u32>> {
        let active: Vec<bool> = (0..grid.tiles_y)
            .flat_map(|ty| (0..grid.tiles_x).map(move |tx| (tx, ty)))
            .map(|(tx, ty)| tile_active(tx, ty))
            .collect();
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); grid.tile_count()];
        for (si, splat) in splats.iter().enumerate() {
            for (tx, ty) in splat.tiles.iter() {
                let idx = (ty * grid.tiles_x + tx) as usize;
                if active[idx] {
                    bins[idx].push(si as u32);
                }
            }
        }
        for bin in &mut bins {
            bin.sort_by(|&a, &b| {
                splats[a as usize]
                    .depth
                    .partial_cmp(&splats[b as usize].depth)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        bins
    }

    /// Tile-grid geometry.
    #[inline]
    pub fn grid(&self) -> TileGridDims {
        self.grid
    }

    /// Depth-sorted splat indices for tile `(tx, ty)`.
    ///
    /// # Panics
    ///
    /// Panics when the tile coordinate is out of the grid.
    #[inline]
    pub fn tile(&self, tx: u32, ty: u32) -> &[u32] {
        assert!(
            tx < self.grid.tiles_x && ty < self.grid.tiles_y,
            "tile out of grid"
        );
        let i = (ty * self.grid.tiles_x + tx) as usize;
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate all tile segments in row-major order — the sequential access
    /// pattern of the rasterizer's band loop, without the per-tile index
    /// arithmetic and bounds checks of repeated [`TileBins::tile`] calls.
    #[inline]
    pub fn iter_tiles(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.offsets
            .windows(2)
            .map(move |w| &self.indices[w[0] as usize..w[1] as usize])
    }

    /// CSR per-tile offsets (row-major, `tile_count() + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Concatenated depth-sorted splat indices — every entry is one
    /// tile-ellipse intersection.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Intersection count per tile (row-major): the CSR offset deltas.
    pub fn intersection_counts(&self) -> Vec<u32> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Total tile-ellipse intersections.
    pub fn total_intersections(&self) -> u64 {
        self.indices.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::RenderOptions;
    use crate::projection::project_model;
    use ms_math::{Quat, Vec3};
    use ms_scene::{Camera, GaussianModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid() -> TileGridDims {
        TileGridDims::for_image(128, 128, 16)
    }

    fn scene() -> (GaussianModel, Camera) {
        let mut m = GaussianModel::new(0);
        // Far red splat then near green splat, both centered.
        m.push_solid(
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::splat(0.3),
            Quat::identity(),
            0.8,
            Vec3::new(1.0, 0.0, 0.0),
        );
        m.push_solid(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::splat(0.3),
            Quat::identity(),
            0.8,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let cam = Camera::look_at(128, 128, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        (m, cam)
    }

    #[test]
    fn bins_are_depth_sorted() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let center = bins.tile(4, 4);
        assert!(center.len() >= 2);
        for w in center.windows(2) {
            assert!(splats[w[0] as usize].depth <= splats[w[1] as usize].depth);
        }
        // The near (green) splat must come first.
        assert_eq!(splats[center[0] as usize].point_index, 1);
    }

    #[test]
    fn total_intersections_matches_tile_rects() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let expected: u64 = splats.iter().map(|s| s.tile_count() as u64).sum();
        assert_eq!(bins.total_intersections(), expected);
    }

    #[test]
    fn counts_match_bins() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let bins = TileBins::build(&splats, grid());
        let counts = bins.intersection_counts();
        assert_eq!(counts.len(), 64);
        assert_eq!(
            counts.iter().map(|&c| c as u64).sum::<u64>(),
            bins.total_intersections()
        );
        // Offsets are monotone and bracket the index array.
        assert_eq!(bins.offsets().len(), 65);
        assert!(bins.offsets().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            *bins.offsets().last().unwrap() as usize,
            bins.indices().len()
        );
    }

    #[test]
    fn empty_splats_empty_bins() {
        let bins = TileBins::build(&[], grid());
        assert_eq!(bins.total_intersections(), 0);
        assert!(bins.tile(0, 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_grid_tile_panics() {
        let bins = TileBins::build(&[], grid());
        let _ = bins.tile(8, 0);
    }

    /// Random splat sets for the CSR-vs-naive equivalence property.
    fn random_splats(rng: &mut StdRng, n: usize, g: TileGridDims) -> Vec<ProjectedSplat> {
        use ms_math::{Conic2, TileRect, Vec2};
        (0..n)
            .filter_map(|i| {
                let cx = rng.gen_range(-10.0..g.width as f32 + 10.0);
                let cy = rng.gen_range(-10.0..g.height as f32 + 10.0);
                let radius = rng.gen_range(0.5..60.0f32);
                let tiles = TileRect::from_circle(
                    Vec2::new(cx, cy),
                    radius,
                    g.tile_size,
                    g.tiles_x,
                    g.tiles_y,
                )?;
                Some(ProjectedSplat {
                    point_index: i as u32,
                    center: Vec2::new(cx, cy),
                    conic: Conic2 {
                        a: 1.0,
                        b: 0.0,
                        c: 1.0,
                    },
                    depth: rng.gen_range(0.1..50.0f32),
                    radius,
                    color: ms_math::Vec3::splat(0.5),
                    opacity: 0.9,
                    tiles,
                })
            })
            .collect()
    }

    #[test]
    fn csr_equals_naive_on_random_splat_sets() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..50 {
            let n = rng.gen_range(0usize..400);
            let splats = random_splats(&mut rng, n, g);
            // Unfiltered and checkerboard-filtered builds must both match.
            for parity in [None, Some(0u32), Some(1u32)] {
                let active = |tx: u32, ty: u32| match parity {
                    None => true,
                    Some(p) => (tx + ty) % 2 == p,
                };
                let csr = TileBins::build_filtered(&splats, g, active);
                let naive = TileBins::build_naive(&splats, g, active);
                for ty in 0..g.tiles_y {
                    for tx in 0..g.tiles_x {
                        let i = (ty * g.tiles_x + tx) as usize;
                        assert_eq!(
                            csr.tile(tx, ty),
                            naive[i].as_slice(),
                            "round {round} parity {parity:?} tile ({tx},{ty})"
                        );
                    }
                }
                let counts = csr.intersection_counts();
                for (i, bin) in naive.iter().enumerate() {
                    assert_eq!(counts[i] as usize, bin.len());
                }
                assert_eq!(
                    csr.total_intersections(),
                    naive.iter().map(|b| b.len() as u64).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        // Enough splats to shard (above MIN_SPLATS_PER_SHARD per worker).
        let g = grid();
        let mut rng = StdRng::seed_from_u64(77);
        let splats = random_splats(&mut rng, 5000, g);
        let serial = TileBins::build(&splats, g);
        for threads in [2usize, 3, 8, 0] {
            let par = TileBins::build_with_threads(&splats, g, threads);
            assert_eq!(par, serial, "CSR bins differ at threads={threads}");
        }
    }

    #[test]
    fn threaded_filtered_build_is_bit_identical_to_serial() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(78);
        let splats = random_splats(&mut rng, 4000, g);
        let active = |tx: u32, ty: u32| (tx + ty) % 2 == 0;
        let serial = TileBins::build_filtered(&splats, g, active);
        for threads in [2usize, 3, 8, 0] {
            let par = TileBins::build_filtered_with_threads(&splats, g, active, threads);
            assert_eq!(par, serial, "filtered bins differ at threads={threads}");
        }
    }

    #[test]
    fn iter_tiles_matches_indexed_access() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let g = grid();
        let bins = TileBins::build(&splats, g);
        let mut count = 0usize;
        for (i, seg) in bins.iter_tiles().enumerate() {
            let (tx, ty) = (i as u32 % g.tiles_x, i as u32 / g.tiles_x);
            assert_eq!(seg, bins.tile(tx, ty));
            count += 1;
        }
        assert_eq!(count, g.tile_count());
    }

    #[test]
    fn filtered_build_skips_inactive_tiles() {
        let (m, cam) = scene();
        let splats = project_model(&m, &cam, &RenderOptions::default());
        let g = grid();
        let bins = TileBins::build_filtered(&splats, g, |tx, _| tx < 4);
        for ty in 0..g.tiles_y {
            for tx in 4..g.tiles_x {
                assert!(
                    bins.tile(tx, ty).is_empty(),
                    "inactive tile ({tx},{ty}) not empty"
                );
            }
        }
    }
}
