//! Renderer configuration.

use ms_math::Vec3;
use serde::{Deserialize, Serialize};

/// How splats are ordered before compositing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SortMode {
    /// 3DGS convention: one front-to-back sort per tile by splat center
    /// depth. Fast, but can "pop" when the per-tile order disagrees with the
    /// true per-pixel order.
    #[default]
    PerTile,
    /// StopThePop-style view-consistent ordering: contributions are gathered
    /// per pixel and re-sorted by per-pixel depth before compositing.
    /// More work per pixel (the paper's StopThePop baseline is slower than
    /// 3DGS) but eliminates popping.
    PerPixel,
}

/// Which per-pixel compositing kernel the Raster stage runs.
///
/// Both kernels are **bit-identical** — the SIMD kernel batches four pixels
/// of a tile row into lanes but executes the same `f32` op sequence per
/// pixel as the scalar kernel (see the `ms_render::pipeline` module docs
/// for the contract, and the kernel-equivalence property test for the
/// enforcement). Selection is therefore purely a throughput knob; tests and
/// CI pin one path explicitly to keep both covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RasterKernel {
    /// Resolve from the `MS_RASTER_KERNEL` environment variable
    /// (`scalar`/`simd4`, case-insensitive), falling back to [`Simd4`]
    /// when unset. This is the CI seam: the determinism suite runs once
    /// per pinned kernel without recompiling.
    ///
    /// [`Simd4`]: RasterKernel::Simd4
    #[default]
    Auto,
    /// One pixel at a time — the reference kernel.
    Scalar,
    /// Four pixels of a tile row per iteration on [`ms_math::simd`] lanes;
    /// row remainders and masked-pixel gaps fall back to the scalar kernel.
    Simd4,
}

/// How the SIMD raster path stages a tile's depth-sorted CSR list for its
/// row kernels.
///
/// Both modes are **bit-identical**: per-tile staging admits exactly the
/// splats the per-row re-walk would have admitted for each row (same cull
/// predicate, evaluated once against the splat's precomputed row interval
/// instead of once per row), in the same depth order, with the same staged
/// `f32` terms. Selection is purely a throughput knob — per-tile staging
/// turns the per-tile cull cost from O(tile_rows × csr_len) into
/// O(csr_len + Σ active-rows) — and the env override exists so CI can pin
/// either path without recompiling. The scalar kernel stages nothing and
/// ignores this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RasterStaging {
    /// Resolve from the `MS_RASTER_STAGING` environment variable
    /// (`perrow`/`pertile`, case-insensitive), falling back to [`PerTile`]
    /// when unset. This is the CI seam, mirroring
    /// [`RasterKernel::Auto`]/`MS_RASTER_KERNEL`.
    ///
    /// [`PerTile`]: RasterStaging::PerTile
    #[default]
    Auto,
    /// Re-walk the tile's full CSR list for every tile row, culling and
    /// gathering per row (the PR 6 behavior; the reference staging path).
    PerRow,
    /// Stage the tile once: one CSR walk culls splats and precomputes
    /// their row-invariant terms plus an inclusive row interval
    /// `[y0, y1]`; each row then iterates only the depth-ordered splats
    /// whose interval covers it.
    PerTile,
}

/// Options controlling a render pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderOptions {
    /// Square tile size in pixels (paper uses 16×16 for its workload
    /// heatmaps; 3DGS uses 16).
    pub tile_size: u32,
    /// Background color composited behind the splats.
    pub background: Vec3,
    /// Minimum per-splat alpha; contributions below this are skipped
    /// (1/255, the 3DGS convention).
    pub alpha_min: f32,
    /// Transmittance early-stop threshold: once accumulated transmittance
    /// falls below this the pixel is finished.
    pub t_min: f32,
    /// Upper clamp for a single splat's alpha (0.99 in 3DGS, avoids a fully
    /// opaque splat zeroing the gradient path).
    pub alpha_max: f32,
    /// Gaussian extent multiplier in standard deviations (3σ).
    pub extent_sigma: f32,
    /// Screen-space covariance dilation in px² (3DGS low-pass filter).
    pub dilation: f32,
    /// SH degree to evaluate (clamped to the model's degree).
    pub sh_degree: usize,
    /// Sorting strategy.
    pub sort_mode: SortMode,
    /// Record per-point dominance counts (`Val` of Eqn. 3) and per-point
    /// tile-usage counts (`Comp`). Costs one extra image-sized buffer.
    pub track_point_stats: bool,
    /// Worker threads for the parallel pipeline stages (Project, Bin and
    /// Raster): `1` runs every stage inline on the calling thread (the
    /// determinism reference), `0` uses all available cores, `n > 1` uses
    /// exactly `n` workers from the persistent pool. Output is bit-identical
    /// for every value — projection shards concatenate in point order, CSR
    /// count arrays merge before the prefix sum, and raster work units are
    /// assembled in index order.
    pub threads: usize,
    /// Occupancy-driven tile merging (the paper's §4.3): tiles whose
    /// intersection count falls below `merge_threshold × mean` tile
    /// occupancy are greedily coalesced with adjacent low-occupancy tiles
    /// into rectangular super-tiles before rasterization, so sparse
    /// peripheral tiles stop wasting scheduling slots. `0.0` disables
    /// merging (the raster work units stay whole tile rows, the PR 3/4
    /// behavior). Merging only regroups scheduling — pixels, winners and
    /// every per-tile counter are bit-identical to the unmerged render.
    pub merge_threshold: f32,
    /// Maximum side length of a merged super-tile, in tiles per dimension
    /// (a cap of `n` bounds a unit to `n × n` tiles). Must be `>= 1` even
    /// when merging is disabled.
    pub merge_max_extent: u32,
    /// Compositing kernel for the Raster stage. Scalar and SIMD produce
    /// bit-identical frames; [`RasterKernel::Auto`] (the default) picks the
    /// SIMD kernel unless the `MS_RASTER_KERNEL` environment variable pins
    /// one. The per-pixel-sorted mode ([`SortMode::PerPixel`]) always runs
    /// the scalar gather+sort kernel regardless of this setting.
    pub raster_kernel: RasterKernel,
    /// How the SIMD raster path stages tile lists for its row kernels.
    /// Per-row and per-tile staging produce bit-identical frames;
    /// [`RasterStaging::Auto`] (the default) picks per-tile staging unless
    /// the `MS_RASTER_STAGING` environment variable pins a mode. Ignored
    /// by the scalar kernel and by [`SortMode::PerPixel`], which stage
    /// nothing.
    ///
    /// The two raster env overrides compose: `MS_RASTER_KERNEL`
    /// (`scalar`/`simd4`) selects the compositing kernel for
    /// [`RasterKernel::Auto`] options, and `MS_RASTER_STAGING`
    /// (`perrow`/`pertile`) selects the staging path for
    /// [`RasterStaging::Auto`] options — CI runs the determinism suite
    /// over the full cross product.
    pub raster_staging: RasterStaging,
    /// Level-of-detail stride for *peripheral* content: `0` or `1` renders
    /// every splat (LOD off, the default); `k >= 2` makes the foveated
    /// renderer draw its non-foveal eccentricity levels from a coarse
    /// subset keeping every `k`-th splat — selected by **global** splat
    /// index with opacity rescaled by `k` (clamped to 1), the exact subset
    /// `ms_scene::SceneSource::load_coarse_chunk_into` serves per chunk,
    /// so the selection is deterministic and invariant to chunking.
    ///
    /// The plain (non-foveated) render entry points ignore this knob: LOD
    /// is an eccentricity-graded quality trade, not a global decimation
    /// switch. LOD frames are *not* bit-identical to full frames (that is
    /// the point); they are deterministic for a fixed stride. The chunked
    /// bit-identity contract (chunked == in-core for every chunk size)
    /// holds with LOD off.
    #[serde(default)]
    pub lod: usize,
    /// Byte budget for the renderer's shared decoded-chunk cache
    /// ([`ms_scene::ChunkCache`]), which lets the streamed Bin's scatter
    /// pass — and every later frame over the same source — reuse decodes
    /// instead of repeating them. `None` (the default) resolves through the
    /// `MS_CHUNK_CACHE` environment variable, falling back to
    /// [`ms_scene::DEFAULT_CHUNK_CACHE_BYTES`]; `Some(0)` disables caching
    /// (pass-through, the PR 9 behavior); `Some(n)` pins an explicit
    /// budget. Caching only moves wall time: cached and uncached renders
    /// are bit-identical for every budget (see `tests/determinism.rs`), so
    /// this knob never changes pixels — only the streamed path's resident
    /// footprint, which is bounded by `cache_budget + 2 × chunk_bytes`
    /// (the cache plus the frame's current-chunk and prefetch buffers).
    #[serde(default)]
    pub cache_budget_bytes: Option<usize>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            tile_size: 16,
            background: Vec3::zero(),
            alpha_min: 1.0 / 255.0,
            t_min: 1e-4,
            alpha_max: 0.99,
            extent_sigma: 3.0,
            dilation: 0.3,
            sh_degree: ms_math::sh::MAX_DEGREE,
            sort_mode: SortMode::PerTile,
            track_point_stats: false,
            threads: 1,
            merge_threshold: 0.0,
            merge_max_extent: 4,
            raster_kernel: RasterKernel::Auto,
            raster_staging: RasterStaging::Auto,
            lod: 0,
            cache_budget_bytes: None,
        }
    }
}

impl RenderOptions {
    /// Preset with point-statistics tracking enabled (used by the pruning
    /// pipeline when measuring CE).
    pub fn with_point_stats() -> Self {
        Self {
            track_point_stats: true,
            ..Self::default()
        }
    }

    /// Preset with occupancy-driven tile merging enabled at the defaults
    /// used throughout the imbalance experiments: tiles below half the mean
    /// occupancy merge, capped at 4×4-tile super-tiles.
    pub fn with_tile_merging() -> Self {
        Self {
            merge_threshold: 0.5,
            merge_max_extent: 4,
            ..Self::default()
        }
    }

    /// Whether the Merge stage coalesces tiles (`merge_threshold > 0`).
    /// When false the stage emits the identity band schedule.
    pub fn merge_enabled(&self) -> bool {
        self.merge_threshold > 0.0
    }

    /// The compositing kernel the Raster stage will actually run:
    /// `raster_kernel` itself when pinned, otherwise the `MS_RASTER_KERNEL`
    /// environment variable (`scalar` or `simd4`, case-insensitive), and
    /// [`RasterKernel::Simd4`] when neither pins one.
    ///
    /// # Panics
    ///
    /// Panics when `MS_RASTER_KERNEL` is set to an unrecognized value —
    /// the variable exists so CI can pin a kernel, and a typo silently
    /// falling back to the default would unpin it.
    pub fn resolved_kernel(&self) -> RasterKernel {
        match self.raster_kernel {
            RasterKernel::Scalar => RasterKernel::Scalar,
            RasterKernel::Simd4 => RasterKernel::Simd4,
            RasterKernel::Auto => match std::env::var("MS_RASTER_KERNEL") {
                Err(_) => RasterKernel::Simd4,
                Ok(v) => match v.to_ascii_lowercase().as_str() {
                    "scalar" => RasterKernel::Scalar,
                    "simd4" | "" => RasterKernel::Simd4,
                    other => panic!("MS_RASTER_KERNEL={other:?}: expected \"scalar\" or \"simd4\""),
                },
            },
        }
    }

    /// The staging path the SIMD raster kernel will actually run:
    /// `raster_staging` itself when pinned, otherwise the
    /// `MS_RASTER_STAGING` environment variable (`perrow` or `pertile`,
    /// case-insensitive), and [`RasterStaging::PerTile`] when neither pins
    /// one.
    ///
    /// # Panics
    ///
    /// Panics when `MS_RASTER_STAGING` is set to an unrecognized value —
    /// like `MS_RASTER_KERNEL`, the variable exists so CI can pin a path,
    /// and a typo silently falling back to the default would unpin it.
    pub fn resolved_staging(&self) -> RasterStaging {
        match self.raster_staging {
            RasterStaging::PerRow => RasterStaging::PerRow,
            RasterStaging::PerTile => RasterStaging::PerTile,
            RasterStaging::Auto => match std::env::var("MS_RASTER_STAGING") {
                Err(_) => RasterStaging::PerTile,
                Ok(v) => match v.to_ascii_lowercase().as_str() {
                    "perrow" => RasterStaging::PerRow,
                    "pertile" | "" => RasterStaging::PerTile,
                    other => {
                        panic!("MS_RASTER_STAGING={other:?}: expected \"perrow\" or \"pertile\"")
                    }
                },
            },
        }
    }

    /// The effective peripheral LOD stride: `Some(k)` when coarse-subset
    /// decimation is on (`lod >= 2`), `None` when off (`0` and `1` both
    /// keep every splat, so there is no meaningful stride to report).
    pub fn lod_stride(&self) -> Option<usize> {
        if self.lod >= 2 {
            Some(self.lod)
        } else {
            None
        }
    }

    /// The chunk-cache byte budget the renderer will actually use:
    /// `cache_budget_bytes` itself when pinned (`Some(0)` disables the
    /// cache), otherwise the `MS_CHUNK_CACHE` environment variable (a byte
    /// count; `0` disables), and [`ms_scene::DEFAULT_CHUNK_CACHE_BYTES`]
    /// when neither pins one. Mirrors the `MS_RASTER_KERNEL` /
    /// `MS_CHUNK_SPLATS` seams: CI pins the cache axis through the
    /// environment without plumbing a parameter everywhere.
    ///
    /// # Panics
    ///
    /// Panics when `MS_CHUNK_CACHE` is set but not an integer — the
    /// variable exists so CI can pin a budget, and a typo silently falling
    /// back to the default would unpin it.
    pub fn resolved_cache_budget(&self) -> usize {
        if let Some(bytes) = self.cache_budget_bytes {
            return bytes;
        }
        match std::env::var("MS_CHUNK_CACHE") {
            Err(_) => ms_scene::DEFAULT_CHUNK_CACHE_BYTES,
            Ok(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => panic!("MS_CHUNK_CACHE={v:?}: expected a byte count (0 disables)"),
            },
        }
    }

    /// The worker count the Raster stage will actually use: `threads`
    /// itself, or the number of available cores when `threads == 0`.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads().max(1)
        } else {
            self.threads
        }
    }

    /// Validate option ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.tile_size == 0 {
            return Err("tile_size must be > 0".into());
        }
        if !(0.0..1.0).contains(&self.alpha_min) {
            return Err(format!("alpha_min {} out of [0,1)", self.alpha_min));
        }
        if !(0.0..=1.0).contains(&self.alpha_max) || self.alpha_max <= self.alpha_min {
            return Err("alpha_max must be in (alpha_min, 1]".into());
        }
        if self.extent_sigma <= 0.0 {
            return Err("extent_sigma must be positive".into());
        }
        if self.dilation.is_nan() || self.dilation < 0.0 {
            return Err(format!(
                "dilation {} must be >= 0 (a negative dilation yields non-PSD \
                 covariances and NaN conics downstream)",
                self.dilation
            ));
        }
        if self.t_min.is_nan() || self.t_min <= 0.0 {
            return Err(format!(
                "t_min {} must be > 0 (a non-positive early-stop threshold \
                 never terminates compositing)",
                self.t_min
            ));
        }
        if self.merge_threshold.is_nan() || self.merge_threshold < 0.0 {
            return Err(format!(
                "merge_threshold {} must be >= 0 (a NaN or negative occupancy \
                 fraction makes every tile-mergeability comparison vacuous)",
                self.merge_threshold
            ));
        }
        if self.merge_max_extent == 0 {
            return Err("merge_max_extent must be >= 1: a zero extent admits no \
                 tiles into any work unit, leaving the raster schedule empty"
                .into());
        }
        // The raster scheduling knobs (`raster_kernel`, `raster_staging`)
        // are closed enums, and `cache_budget_bytes` has a closed domain
        // (every byte count from 0 = disabled to usize::MAX = unbounded is
        // meaningful, and none of them changes pixels) — so there is
        // nothing to range-check for any of them here. Their env overrides
        // (`MS_RASTER_KERNEL`, `MS_RASTER_STAGING`, `MS_CHUNK_CACHE`) are
        // instead checked at resolution time, which panics on a typo: the
        // environment can change between validation and the render, so a
        // check here could not keep CI's pinning honest.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_valid() {
        RenderOptions::default().validate().unwrap();
        RenderOptions::with_point_stats().validate().unwrap();
    }

    #[test]
    fn bad_options_rejected() {
        let o = RenderOptions {
            tile_size: 0,
            ..RenderOptions::default()
        };
        assert!(o.validate().is_err());
        let o = RenderOptions {
            alpha_min: 1.5,
            ..RenderOptions::default()
        };
        assert!(o.validate().is_err());
        let base = RenderOptions::default();
        let o = RenderOptions {
            alpha_max: base.alpha_min / 2.0,
            ..base
        };
        assert!(o.validate().is_err());
        let o = RenderOptions {
            extent_sigma: 0.0,
            ..RenderOptions::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn negative_dilation_rejected() {
        // Regression: a negative dilation yields non-PSD screen covariances
        // and NaN conics downstream; validate used to accept it.
        let o = RenderOptions {
            dilation: -0.1,
            ..RenderOptions::default()
        };
        assert!(o.validate().is_err());
        let o = RenderOptions {
            dilation: f32::NAN,
            ..RenderOptions::default()
        };
        assert!(o.validate().is_err());
        // Zero dilation (no low-pass filter) stays legal.
        let o = RenderOptions {
            dilation: 0.0,
            ..RenderOptions::default()
        };
        assert!(o.validate().is_ok());
    }

    #[test]
    fn non_positive_t_min_rejected() {
        // Regression: validate used to accept t_min <= 0, which disables
        // the transmittance early stop entirely.
        for bad in [0.0f32, -1e-4, f32::NAN] {
            let o = RenderOptions {
                t_min: bad,
                ..RenderOptions::default()
            };
            assert!(o.validate().is_err(), "t_min {bad} should be rejected");
        }
        let o = RenderOptions {
            t_min: 1e-6,
            ..RenderOptions::default()
        };
        assert!(o.validate().is_ok());
    }

    #[test]
    fn merge_knobs_validated() {
        // NaN / negative occupancy fractions are configuration errors, in
        // the same spirit as the dilation/t_min hardening.
        for bad in [f32::NAN, -0.1, -1.0] {
            let o = RenderOptions {
                merge_threshold: bad,
                ..RenderOptions::default()
            };
            assert!(
                o.validate().is_err(),
                "merge_threshold {bad} should be rejected"
            );
        }
        let o = RenderOptions {
            merge_max_extent: 0,
            ..RenderOptions::default()
        };
        assert!(
            o.validate().is_err(),
            "zero merge extent should be rejected"
        );
        // Disabled (0.0) and enabled presets are both legal.
        assert!(RenderOptions::default().validate().is_ok());
        RenderOptions::with_tile_merging().validate().unwrap();
        assert!(RenderOptions::with_tile_merging().merge_enabled());
        assert!(!RenderOptions::default().merge_enabled());
    }

    #[test]
    fn kernel_resolution() {
        // Pinned kernels resolve to themselves regardless of environment.
        let o = RenderOptions {
            raster_kernel: RasterKernel::Scalar,
            ..RenderOptions::default()
        };
        assert_eq!(o.resolved_kernel(), RasterKernel::Scalar);
        let o = RenderOptions {
            raster_kernel: RasterKernel::Simd4,
            ..RenderOptions::default()
        };
        assert_eq!(o.resolved_kernel(), RasterKernel::Simd4);
        // Auto follows MS_RASTER_KERNEL when set (both values are
        // bit-identical kernels, so a concurrent render observing the
        // transient environment is unaffected), Simd4 otherwise.
        let auto = RenderOptions::default();
        assert_eq!(auto.raster_kernel, RasterKernel::Auto);
        std::env::set_var("MS_RASTER_KERNEL", "scalar");
        assert_eq!(auto.resolved_kernel(), RasterKernel::Scalar);
        std::env::set_var("MS_RASTER_KERNEL", "SIMD4");
        assert_eq!(auto.resolved_kernel(), RasterKernel::Simd4);
        std::env::remove_var("MS_RASTER_KERNEL");
        assert_eq!(auto.resolved_kernel(), RasterKernel::Simd4);
    }

    #[test]
    fn staging_resolution() {
        // Pinned staging modes resolve to themselves regardless of
        // environment, and every mode passes validation (the knob is a
        // closed enum — validate has nothing to reject).
        for staging in [RasterStaging::PerRow, RasterStaging::PerTile] {
            let o = RenderOptions {
                raster_staging: staging,
                ..RenderOptions::default()
            };
            assert_eq!(o.resolved_staging(), staging);
            o.validate().unwrap();
        }
        // Auto follows MS_RASTER_STAGING when set (both modes are
        // bit-identical, so a concurrent render observing the transient
        // environment is unaffected), PerTile otherwise.
        let auto = RenderOptions::default();
        assert_eq!(auto.raster_staging, RasterStaging::Auto);
        std::env::set_var("MS_RASTER_STAGING", "perrow");
        assert_eq!(auto.resolved_staging(), RasterStaging::PerRow);
        std::env::set_var("MS_RASTER_STAGING", "PerTile");
        assert_eq!(auto.resolved_staging(), RasterStaging::PerTile);
        std::env::remove_var("MS_RASTER_STAGING");
        assert_eq!(auto.resolved_staging(), RasterStaging::PerTile);
    }

    #[test]
    fn cache_budget_resolution() {
        // Pinned budgets resolve to themselves regardless of environment,
        // including the explicit 0 = disabled.
        for pinned in [0usize, 4096, usize::MAX] {
            let o = RenderOptions {
                cache_budget_bytes: Some(pinned),
                ..RenderOptions::default()
            };
            assert_eq!(o.resolved_cache_budget(), pinned);
            o.validate().unwrap();
        }
        // Auto follows MS_CHUNK_CACHE when set (every budget renders
        // bit-identically, so a concurrent render observing the transient
        // environment is unaffected), the crate default otherwise.
        let auto = RenderOptions::default();
        assert_eq!(auto.cache_budget_bytes, None);
        std::env::set_var("MS_CHUNK_CACHE", "1048576");
        assert_eq!(auto.resolved_cache_budget(), 1 << 20);
        std::env::set_var("MS_CHUNK_CACHE", "0");
        assert_eq!(auto.resolved_cache_budget(), 0);
        std::env::remove_var("MS_CHUNK_CACHE");
        assert_eq!(
            auto.resolved_cache_budget(),
            ms_scene::DEFAULT_CHUNK_CACHE_BYTES
        );
    }

    #[test]
    fn thread_resolution() {
        let mut o = RenderOptions::default();
        assert_eq!(o.resolved_threads(), 1);
        o.threads = 3;
        assert_eq!(o.resolved_threads(), 3);
        o.threads = 0;
        assert!(o.resolved_threads() >= 1);
    }
}
