//! Projection stage: 3-D Gaussians → 2-D screen-space splats.
//!
//! Follows the EWA splatting formulation used by 3DGS: the 3-D covariance
//! `Σ = R S Sᵀ Rᵀ` is pushed through the affine approximation of the
//! perspective projection, `Σ₂ = J W Σ Wᵀ Jᵀ`, where `W` is the view
//! rotation and `J` the projection Jacobian at the point's view-space
//! position.

use crate::options::RenderOptions;
use ms_math::{Conic2, Cov2, Mat3, Mat4, TileRect, Vec2, Vec3};
use ms_scene::{Camera, GaussianModel};
use serde::{Deserialize, Serialize};

/// A Gaussian after projection to the image plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedSplat {
    /// Index of the source point in the model.
    pub point_index: u32,
    /// Screen-space center in pixels.
    pub center: Vec2,
    /// Inverse 2-D covariance.
    pub conic: Conic2,
    /// View-space depth (positive, in front of the camera).
    pub depth: f32,
    /// Bounding radius in pixels (extent_sigma standard deviations).
    pub radius: f32,
    /// View-evaluated RGB color.
    pub color: Vec3,
    /// Opacity in `[0, 1]`.
    pub opacity: f32,
    /// Tiles the splat's bounding circle overlaps.
    pub tiles: TileRect,
}

impl ProjectedSplat {
    /// Number of tile-ellipse intersections this splat contributes — the
    /// `Comp`/`U` quantity of the paper's Eqns. 3 and 5.
    pub fn tile_count(&self) -> u32 {
        self.tiles.tile_count()
    }
}

/// Compute the 2-D screen-space covariance of a Gaussian.
///
/// `view_rot` is the world→view rotation, `view_pos` the point's view-space
/// position (camera looks down −Z), `focal` the pixel focal lengths, and
/// `tan_half_fov` the frustum clamp bounds used by 3DGS to stabilize the
/// Jacobian for points near the image border.
pub fn project_covariance(
    scale: Vec3,
    rotation: ms_math::Quat,
    view_rot: &Mat3,
    view_pos: Vec3,
    focal: Vec2,
    tan_half_fov: Vec2,
) -> Cov2 {
    // 3-D covariance in world space: Σ = R S Sᵀ Rᵀ = (RS)(RS)ᵀ.
    let r = rotation.to_mat3();
    let rs = r * Mat3::from_diagonal(scale);
    let cov3 = rs * rs.transposed();

    // Clamp the view-space position like 3DGS to bound the Jacobian.
    let depth = -view_pos.z; // positive depth
    let lim_x = 1.3 * tan_half_fov.x;
    let lim_y = 1.3 * tan_half_fov.y;
    let tx = (view_pos.x / depth).clamp(-lim_x, lim_x) * depth;
    let ty = (view_pos.y / depth).clamp(-lim_y, lim_y) * depth;

    // Jacobian of the pixel mapping u = fx·x/depth + cx, v = −fy·y/depth + cy
    // (image y points down) at the view-space point, with depth = −z.
    let j = Mat3::from_rows(
        [focal.x / depth, 0.0, focal.x * tx / (depth * depth)],
        [0.0, -focal.y / depth, -focal.y * ty / (depth * depth)],
        [0.0, 0.0, 0.0],
    );
    let t = j * *view_rot;
    let cov2 = t.conjugate_symmetric(&cov3);
    Cov2::new(cov2.m[0][0], cov2.m[0][1], cov2.m[1][1])
}

/// Project every visible Gaussian in `model` through `camera`.
///
/// Points behind the near plane, outside the (slightly padded) frustum, with
/// degenerate screen footprints, or with opacity below `alpha_min` are
/// culled. Splat order matches model order (stable point indices).
pub fn project_model(
    model: &GaussianModel,
    camera: &Camera,
    options: &RenderOptions,
) -> Vec<ProjectedSplat> {
    project_model_filtered(model, camera, options, |_| true)
}

/// Per-frame quantities shared by every point's projection. Computed once
/// per frame, so the serial and sharded paths run the exact same per-point
/// arithmetic — the basis of the bit-identical determinism guarantee.
struct FrameContext {
    view: Mat4,
    view_rot: Mat3,
    focal: Vec2,
    tan_half_fov: Vec2,
    tiles_x: u32,
    tiles_y: u32,
    sh_degree: usize,
}

impl FrameContext {
    fn new(model: &GaussianModel, camera: &Camera, options: &RenderOptions) -> Self {
        let view = camera.view_matrix();
        Self {
            view_rot: view.upper_left3(),
            view,
            focal: Vec2::new(camera.focal_x(), camera.focal_y()),
            tan_half_fov: Vec2::new((camera.fovx() * 0.5).tan(), (camera.fovy * 0.5).tan()),
            tiles_x: camera.width.div_ceil(options.tile_size),
            tiles_y: camera.height.div_ceil(options.tile_size),
            sh_degree: options.sh_degree.min(model.sh_degree),
        }
    }
}

/// Project points `range` of `model`, appending surviving splats to `out`
/// in point-index order. `base` is the model's offset within a larger scene
/// (the chunked [`ms_scene::SceneSource`] path): stored point indices and
/// the admission predicate both see `base + i`. The in-core path passes 0,
/// making `base` arithmetically invisible there.
#[allow(clippy::too_many_arguments)]
fn project_range<F: Fn(usize) -> bool>(
    ctx: &FrameContext,
    model: &GaussianModel,
    camera: &Camera,
    options: &RenderOptions,
    base: u32,
    range: std::ops::Range<usize>,
    admit: &F,
    out: &mut Vec<ProjectedSplat>,
) {
    for i in range {
        if !admit(base as usize + i) {
            continue;
        }
        let opacity = model.opacities[i];
        if opacity < options.alpha_min {
            continue;
        }
        let world_pos = model.positions[i];
        let view_pos = ctx.view.transform_point(world_pos).project();
        let depth = -view_pos.z;
        if depth < camera.near || depth > camera.far {
            continue;
        }
        // Generous frustum cull: the splat's center may sit outside the
        // image while its footprint still overlaps it; the tile-rect test
        // below is the precise one, this just skips far-out points early.
        if (view_pos.x / depth).abs() > 1.5 * ctx.tan_half_fov.x + 1.0
            || (view_pos.y / depth).abs() > 1.5 * ctx.tan_half_fov.y + 1.0
        {
            continue;
        }
        let Some(center) = camera.view_to_pixel(view_pos) else {
            continue;
        };
        let cov2 = project_covariance(
            model.scales[i],
            model.rotations[i],
            &ctx.view_rot,
            view_pos,
            ctx.focal,
            ctx.tan_half_fov,
        )
        .dilated(options.dilation);
        let Some(conic) = cov2.to_conic() else {
            continue;
        };
        let radius = cov2.bounding_radius(options.extent_sigma).ceil();
        if radius < 0.5 {
            continue;
        }
        let Some(tiles) =
            TileRect::from_circle(center, radius, options.tile_size, ctx.tiles_x, ctx.tiles_y)
        else {
            continue;
        };
        let view_dir = world_pos - camera.eye;
        let color = ms_math::sh::eval_color(ctx.sh_degree, view_dir, model.sh(i));
        out.push(ProjectedSplat {
            point_index: base + i as u32,
            center,
            conic,
            depth,
            radius,
            color,
            opacity,
            tiles,
        });
    }
}

/// Below this point count the frame projects serially even when
/// `options.threads > 1` — per-task queue overhead would exceed the
/// projection work itself. Sharding never changes the output (shards
/// concatenate in point order), only the wall time.
const MIN_POINTS_PER_SHARD: usize = 512;

/// [`project_model`] with a per-point admission predicate.
///
/// Foveated rendering uses the predicate to drop points whose quality bound
/// excludes them from the active level set before any further work
/// (the paper's Filtering stage, Fig. 7-E).
///
/// When `options.threads != 1` the point range is sharded into contiguous
/// chunks projected on the worker pool; shard outputs concatenate in chunk
/// order, so splat order stays model order and the result is bit-identical
/// to the serial path for every thread count.
pub fn project_model_filtered<F: Fn(usize) -> bool + Sync>(
    model: &GaussianModel,
    camera: &Camera,
    options: &RenderOptions,
    admit: F,
) -> Vec<ProjectedSplat> {
    let mut out = Vec::new();
    project_model_filtered_into(model, camera, options, &admit, &mut out);
    out
}

/// [`project_model_filtered`] appending into a caller-provided buffer
/// (cleared first), so a recycled [`FrameArena`](crate::FrameArena) can
/// reuse its splat storage across frames instead of allocating per frame.
/// The projection arithmetic — and therefore the output — is identical to
/// the allocating variant for every thread count.
pub fn project_model_filtered_into<F: Fn(usize) -> bool + Sync>(
    model: &GaussianModel,
    camera: &Camera,
    options: &RenderOptions,
    admit: &F,
    out: &mut Vec<ProjectedSplat>,
) {
    project_model_offset_into(model, camera, options, 0, admit, out);
}

/// [`project_model_filtered_into`] for a model that is a chunk of a larger
/// scene starting at global point index `base`: stored `point_index` values
/// are `base + i` and the admission predicate sees global indices. With
/// `base == 0` this *is* `project_model_filtered_into` — same arithmetic,
/// bit-identical output — which is what makes chunked projection (chunks
/// concatenated in order) equal to in-core projection of the flat model.
pub fn project_model_offset_into<F: Fn(usize) -> bool + Sync>(
    model: &GaussianModel,
    camera: &Camera,
    options: &RenderOptions,
    base: u32,
    admit: &F,
    out: &mut Vec<ProjectedSplat>,
) {
    out.clear();
    let ctx = FrameContext::new(model, camera, options);
    let n = model.len();
    let shards = options
        .resolved_threads()
        .min(n / MIN_POINTS_PER_SHARD)
        .max(1);

    // One contiguous chunk per shard; results come back in shard order and
    // concatenate, preserving model order exactly. `shards == 1` runs
    // inline without touching the pool (and straight into `out`).
    if shards <= 1 {
        project_range(&ctx, model, camera, options, base, 0..n, admit, out);
        return;
    }
    let parts = crate::par::shard_map(n, shards, |range| {
        let mut part = Vec::with_capacity(range.len() / 2);
        project_range(&ctx, model, camera, options, base, range, admit, &mut part);
        part
    });
    out.reserve(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::Quat;

    fn single_point_model(pos: Vec3, scale: Vec3, opacity: f32) -> GaussianModel {
        let mut m = GaussianModel::new(0);
        m.push_solid(
            pos,
            scale,
            Quat::identity(),
            opacity,
            Vec3::new(0.8, 0.4, 0.2),
        );
        m
    }

    fn cam() -> Camera {
        Camera::look_at(128, 128, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero())
    }

    #[test]
    fn centered_point_projects_to_image_center() {
        let m = single_point_model(Vec3::zero(), Vec3::splat(0.1), 0.9);
        let splats = project_model(&m, &cam(), &RenderOptions::default());
        assert_eq!(splats.len(), 1);
        let s = &splats[0];
        assert!((s.center.x - 64.0).abs() < 0.5);
        assert!((s.center.y - 64.0).abs() < 0.5);
        assert!((s.depth - 4.0).abs() < 1e-4);
    }

    #[test]
    fn isotropic_gaussian_projects_isotropically() {
        let m = single_point_model(Vec3::zero(), Vec3::splat(0.2), 0.9);
        let splats = project_model(&m, &cam(), &RenderOptions::default());
        let c = splats[0].conic;
        assert!(
            (c.a - c.c).abs() / c.a < 0.05,
            "conic {c:?} should be isotropic"
        );
        assert!(c.b.abs() / c.a < 0.05);
    }

    #[test]
    fn projected_size_matches_pinhole_math() {
        let sigma_world = 0.2f32;
        let depth = 4.0f32;
        let m = single_point_model(Vec3::zero(), Vec3::splat(sigma_world), 0.9);
        let camera = cam();
        let opts = RenderOptions {
            dilation: 0.0,
            ..RenderOptions::default()
        };
        let splats = project_model(&m, &camera, &opts);
        let expected_sigma_px = camera.focal_y() * sigma_world / depth;
        let radius = splats[0].radius;
        assert!(
            (radius - 3.0 * expected_sigma_px).abs() <= 1.5,
            "radius {radius} vs expected {}",
            3.0 * expected_sigma_px
        );
    }

    #[test]
    fn behind_camera_is_culled() {
        let m = single_point_model(Vec3::new(0.0, 0.0, 10.0), Vec3::splat(0.1), 0.9);
        assert!(project_model(&m, &cam(), &RenderOptions::default()).is_empty());
    }

    #[test]
    fn transparent_point_is_culled() {
        let m = single_point_model(Vec3::zero(), Vec3::splat(0.1), 0.001);
        assert!(project_model(&m, &cam(), &RenderOptions::default()).is_empty());
    }

    #[test]
    fn far_off_axis_point_is_culled() {
        let m = single_point_model(Vec3::new(100.0, 0.0, 0.0), Vec3::splat(0.1), 0.9);
        assert!(project_model(&m, &cam(), &RenderOptions::default()).is_empty());
    }

    #[test]
    fn closer_point_is_bigger() {
        let mut m = GaussianModel::new(0);
        m.push_solid(
            Vec3::zero(),
            Vec3::splat(0.1),
            Quat::identity(),
            0.9,
            Vec3::one(),
        );
        m.push_solid(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::splat(0.1),
            Quat::identity(),
            0.9,
            Vec3::one(),
        );
        let splats = project_model(&m, &cam(), &RenderOptions::default());
        assert_eq!(splats.len(), 2);
        assert!(splats[1].radius > splats[0].radius);
        assert!(splats[1].depth < splats[0].depth);
    }

    #[test]
    fn filter_predicate_drops_points() {
        let mut m = GaussianModel::new(0);
        for i in 0..4 {
            m.push_solid(
                Vec3::new(i as f32 * 0.1, 0.0, 0.0),
                Vec3::splat(0.1),
                Quat::identity(),
                0.9,
                Vec3::one(),
            );
        }
        let splats = project_model_filtered(&m, &cam(), &RenderOptions::default(), |i| i % 2 == 0);
        assert_eq!(splats.len(), 2);
        assert_eq!(splats[0].point_index, 0);
        assert_eq!(splats[1].point_index, 2);
    }

    /// Deterministic synthetic cloud large enough to trigger sharding
    /// (well above `MIN_POINTS_PER_SHARD` per worker).
    fn big_model(n: usize) -> GaussianModel {
        let mut m = GaussianModel::new(0);
        for i in 0..n {
            let f = i as f32;
            m.push_solid(
                Vec3::new(
                    (f * 0.37).sin() * 2.0,
                    (f * 0.53).cos() * 1.5,
                    (f * 0.11).sin() * 2.5,
                ),
                Vec3::splat(0.02 + (f * 0.29).sin().abs() * 0.08),
                Quat::identity(),
                0.3 + (f * 0.17).cos().abs() * 0.6,
                Vec3::new(0.2, 0.5, 0.8),
            );
        }
        m
    }

    #[test]
    fn sharded_projection_is_bit_identical_to_serial() {
        let m = big_model(3000);
        let camera = cam();
        let serial = project_model_filtered(&m, &camera, &RenderOptions::default(), |_| true);
        assert!(!serial.is_empty());
        for threads in [2usize, 3, 8, 0] {
            let opts = RenderOptions {
                threads,
                ..RenderOptions::default()
            };
            let par = project_model_filtered(&m, &camera, &opts, |_| true);
            assert_eq!(par, serial, "splats differ at threads={threads}");
        }
    }

    #[test]
    fn sharded_projection_respects_filter() {
        let m = big_model(2048);
        let camera = cam();
        let opts = RenderOptions {
            threads: 4,
            ..RenderOptions::default()
        };
        let par = project_model_filtered(&m, &camera, &opts, |i| i % 3 == 0);
        let ser = project_model_filtered(&m, &camera, &RenderOptions::default(), |i| i % 3 == 0);
        assert_eq!(par, ser);
        assert!(par.iter().all(|s| s.point_index % 3 == 0));
        // Model order preserved across shard boundaries.
        for w in par.windows(2) {
            assert!(w[0].point_index < w[1].point_index);
        }
    }

    #[test]
    fn anisotropic_gaussian_elongates_in_right_axis() {
        // Long in world X → long in image x.
        let m = single_point_model(Vec3::zero(), Vec3::new(0.5, 0.05, 0.05), 0.9);
        let splats = project_model(&m, &cam(), &RenderOptions::default());
        let conic = splats[0].conic;
        // Long axis in x means small inverse-variance in x: conic.a < conic.c.
        assert!(conic.a < conic.c);
    }

    #[test]
    fn tile_count_reflects_splat_size() {
        let small = single_point_model(Vec3::zero(), Vec3::splat(0.05), 0.9);
        let large = single_point_model(Vec3::zero(), Vec3::splat(1.0), 0.9);
        let opts = RenderOptions::default();
        let ts = project_model(&small, &cam(), &opts)[0].tile_count();
        let tl = project_model(&large, &cam(), &opts)[0].tile_count();
        assert!(tl > ts, "large splat should hit more tiles ({tl} vs {ts})");
    }
}
