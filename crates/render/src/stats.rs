//! Render statistics: the measurement instrument behind the paper's
//! workload analysis.

use crate::pipeline::FrameProfile;
use serde::{Deserialize, Serialize};

/// Tile-grid dimensions of a render pass, including the exact image extent
/// the grid covers.
///
/// Carrying `width`/`height` lets every per-tile consumer — the composite
/// stage, the GPU cost model, the accelerator simulator — use the *clipped*
/// pixel count of edge tiles instead of padding to `tile_size²`, so the
/// renderer and the models agree on pixel work by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGridDims {
    /// Tiles per row.
    pub tiles_x: u32,
    /// Tiles per column.
    pub tiles_y: u32,
    /// Tile size in pixels.
    pub tile_size: u32,
    /// Image width in pixels (`<= tiles_x * tile_size`).
    pub width: u32,
    /// Image height in pixels (`<= tiles_y * tile_size`).
    pub height: u32,
}

impl TileGridDims {
    /// The grid covering a `width × height` image with square tiles.
    pub fn for_image(width: u32, height: u32, tile_size: u32) -> Self {
        assert!(tile_size > 0, "tile_size must be positive");
        Self {
            tiles_x: width.div_ceil(tile_size),
            tiles_y: height.div_ceil(tile_size),
            tile_size,
            width,
            height,
        }
    }

    /// Total tile count. Computed in `u64`: at extreme image dimensions
    /// `tiles_x * tiles_y` overflows `u32` before the cast.
    pub fn tile_count(&self) -> usize {
        usize::try_from(self.tiles_x as u64 * self.tiles_y as u64)
            .expect("tile count overflows usize")
    }

    /// Total image pixels (exact, not padded to the tile grid).
    pub fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Pixels actually covered by tile `(tx, ty)` — edge tiles are clipped
    /// to the image.
    ///
    /// # Panics
    ///
    /// Panics when the tile coordinate is out of the grid.
    pub fn tile_pixel_count(&self, tx: u32, ty: u32) -> u32 {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of grid");
        let w = ((tx + 1) * self.tile_size).min(self.width) - tx * self.tile_size;
        let h = ((ty + 1) * self.tile_size).min(self.height) - ty * self.tile_size;
        w * h
    }

    /// Tile coordinate of row-major tile index `i`.
    pub fn tile_coords(&self, i: usize) -> (u32, u32) {
        debug_assert!(i < self.tile_count());
        // Divide in usize: `i as u32` truncates once the grid has more
        // than `u32::MAX` tiles.
        (
            (i % self.tiles_x as usize) as u32,
            (i / self.tiles_x as usize) as u32,
        )
    }
}

/// Raster-stage work counters for the staged compositing path, recorded in
/// [`FrameProfile::raster`](crate::FrameProfile).
///
/// The SIMD raster path stages each tile's depth-sorted CSR list before
/// compositing; these counters expose how much of that work the
/// per-tile staging prepass ([`RasterStaging::PerTile`]) actually avoids
/// relative to the per-row re-walk ([`RasterStaging::PerRow`]), so the
/// win is observable in recorded benchmarks, not just timed:
///
/// * With **per-tile staging**, `splats_staged`/`splats_culled` split each
///   tile's CSR list by the admission-ellipse bbox cull, and
///   `row_iterations` counts the (row, splat) pairs the row-interval
///   scheduler actually iterated (Σ of staged splats' row-interval
///   lengths).
/// * With **per-row staging**, every row re-walks the whole tile list:
///   `splats_staged` counts the full list once per tile, `splats_culled`
///   stays 0, and `row_iterations` equals the re-walk cost
///   `tile_rows × csr_len`.
/// * `row_iteration_bound` is `tile_rows × csr_len` in both modes — the
///   cost the per-row path pays by construction — so
///   `row_iteration_bound / row_iterations` is the scheduler's measured
///   saving factor.
///
/// The scalar kernel performs no staging and leaves every counter 0. For a
/// fixed configuration the counters are bit-deterministic across thread
/// counts, merged/unmerged schedules and solo/served execution (staging is
/// per *tile*, which none of those axes change), but they legitimately
/// differ between kernels and staging modes — which is why
/// [`FrameProfile`](crate::FrameProfile) equality excludes them, like wall
/// times.
///
/// [`RasterStaging::PerTile`]: crate::RasterStaging::PerTile
/// [`RasterStaging::PerRow`]: crate::RasterStaging::PerRow
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasterWork {
    /// Splats admitted to row scheduling after the per-tile cull, summed
    /// over tiles (per-row staging admits the whole list).
    pub splats_staged: u64,
    /// Splats dropped by the per-tile admission-ellipse cull (empty row
    /// interval or no column overlap with the tile), summed over tiles.
    pub splats_culled: u64,
    /// Per-splat row-loop iterations actually executed by the staging
    /// path across all tiles.
    pub row_iterations: u64,
    /// The `tile_rows × csr_len` iteration count the per-row re-walk
    /// would have executed for the same tiles.
    pub row_iteration_bound: u64,
}

impl RasterWork {
    /// Fold `other`'s counters into `self` (used by
    /// [`FrameProfile::absorb`](crate::FrameProfile::absorb) and the
    /// per-unit → per-frame aggregation).
    pub fn accumulate(&mut self, other: &RasterWork) {
        self.splats_staged += other.splats_staged;
        self.splats_culled += other.splats_culled;
        self.row_iterations += other.row_iterations;
        self.row_iteration_bound += other.row_iteration_bound;
    }

    /// `row_iteration_bound / row_iterations`: how many times fewer
    /// per-splat row iterations the staging path executed than the
    /// per-row re-walk would have. `NaN` when nothing was staged.
    pub fn row_iteration_saving(&self) -> f64 {
        self.row_iteration_bound as f64 / self.row_iterations as f64
    }
}

/// Statistics gathered during one render pass.
///
/// * `tile_intersections` is the paper's per-tile workload quantity (the
///   Fig. 9 heatmap/boxplots and the Fig. 4 "# of Intersect." axis).
/// * `point_tiles_used` is `Compᵢ`/`Uᵢ` of Eqns. 3 and 5.
/// * `point_pixels_dominated` is `Valᵢ` of Eqn. 3 ("number of pixels
///   dominated by that point", dominance = largest `Tᵢαᵢ`).
/// * `profile` records wall time and work per pipeline stage (see
///   [`crate::pipeline`]); its equality ignores wall times, so comparing
///   two `RenderStats` compares workloads, not timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderStats {
    /// Tile-grid geometry.
    pub grid: TileGridDims,
    /// Number of splats intersecting each tile (row-major).
    pub tile_intersections: Vec<u32>,
    /// Points that survived culling.
    pub points_projected: usize,
    /// Points submitted (before culling/filtering).
    pub points_submitted: usize,
    /// Total tile-ellipse intersections (== sum of `tile_intersections`).
    pub total_intersections: u64,
    /// Total per-pixel compositing steps actually executed (after
    /// early-stop) — proportional to rasterization math.
    pub blend_steps: u64,
    /// Per-point count of tiles used this frame (`Comp`); empty unless
    /// `track_point_stats` was set.
    pub point_tiles_used: Vec<u32>,
    /// Per-point count of pixels dominated this frame (`Val`); empty unless
    /// `track_point_stats` was set.
    pub point_pixels_dominated: Vec<u32>,
    /// Row-major map from tile index to the raster work-unit (super-tile)
    /// that scheduled it, in schedule order — the §4.3 merge plan as data.
    /// Populated only when occupancy-driven tile merging was enabled
    /// (`RenderOptions::merge_threshold > 0`); empty otherwise, and empty
    /// in merged foveated stats (each quality level has its own schedule;
    /// see the per-level stats instead).
    pub tile_unit: Vec<u32>,
    /// Per-stage wall time and work counters for this frame.
    pub profile: FrameProfile,
}

impl RenderStats {
    /// Average intersections per tile.
    pub fn mean_intersections_per_tile(&self) -> f32 {
        if self.tile_intersections.is_empty() {
            return 0.0;
        }
        self.total_intersections as f32 / self.tile_intersections.len() as f32
    }

    /// Maximum intersections over tiles (the pipeline-critical tile).
    pub fn max_intersections_per_tile(&self) -> u32 {
        self.tile_intersections.iter().copied().max().unwrap_or(0)
    }

    /// Workload-imbalance ratio: max/mean intersections per tile. 1.0 is
    /// perfectly balanced; the paper reports 3+ orders of magnitude spread.
    pub fn imbalance_ratio(&self) -> f32 {
        let mean = self.mean_intersections_per_tile();
        if mean <= 0.0 {
            return 1.0;
        }
        self.max_intersections_per_tile() as f32 / mean
    }

    /// Per-tile intersection counts as `f32` (for stats helpers).
    pub fn tile_intersections_f32(&self) -> Vec<f32> {
        self.tile_intersections.iter().map(|&x| x as f32).collect()
    }

    /// Number of raster work units in the merged schedule; 0 when no merged
    /// schedule was recorded (merging disabled).
    pub fn work_unit_count(&self) -> usize {
        self.tile_unit
            .iter()
            .map(|&u| u as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Per-work-unit intersection counts: `tile_intersections` grouped by
    /// the merge schedule. Empty when no merged schedule was recorded.
    pub fn unit_intersections(&self) -> Vec<u32> {
        let mut units = vec![0u32; self.work_unit_count()];
        for (&u, &n) in self.tile_unit.iter().zip(&self.tile_intersections) {
            units[u as usize] += n;
        }
        units
    }

    /// Workload-imbalance ratio over raster *work units* (max/mean unit
    /// intersections) — the post-merge counterpart of
    /// [`imbalance_ratio`](Self::imbalance_ratio), which measures raw
    /// tiles. `None` when no merged schedule was recorded.
    pub fn unit_imbalance_ratio(&self) -> Option<f32> {
        let units = self.unit_intersections();
        if units.is_empty() {
            return None;
        }
        let mean = units.iter().map(|&u| u as u64).sum::<u64>() as f32 / units.len() as f32;
        if mean <= 0.0 {
            return Some(1.0);
        }
        Some(units.iter().copied().max().unwrap_or(0) as f32 / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tiles: Vec<u32>) -> RenderStats {
        let total = tiles.iter().map(|&t| t as u64).sum();
        RenderStats {
            grid: TileGridDims::for_image(tiles.len() as u32 * 16, 16, 16),
            total_intersections: total,
            tile_intersections: tiles,
            points_projected: 0,
            points_submitted: 0,
            blend_steps: 0,
            point_tiles_used: Vec::new(),
            point_pixels_dominated: Vec::new(),
            tile_unit: Vec::new(),
            profile: FrameProfile::default(),
        }
    }

    #[test]
    fn means_and_max() {
        let s = stats(vec![0, 10, 20, 30]);
        assert!((s.mean_intersections_per_tile() - 15.0).abs() < 1e-6);
        assert_eq!(s.max_intersections_per_tile(), 30);
        assert!((s.imbalance_ratio() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = stats(vec![]);
        assert_eq!(s.mean_intersections_per_tile(), 0.0);
        assert_eq!(s.max_intersections_per_tile(), 0);
        assert_eq!(s.imbalance_ratio(), 1.0);
    }

    #[test]
    fn unit_counters_group_by_schedule() {
        let mut s = stats(vec![5, 0, 0, 25]);
        // No schedule recorded: unit accessors are empty/None.
        assert_eq!(s.work_unit_count(), 0);
        assert!(s.unit_intersections().is_empty());
        assert_eq!(s.unit_imbalance_ratio(), None);
        // Tiles 0–2 merged into unit 0, tile 3 alone in unit 1.
        s.tile_unit = vec![0, 0, 0, 1];
        assert_eq!(s.work_unit_count(), 2);
        assert_eq!(s.unit_intersections(), vec![5, 25]);
        // Tile ratio: 25 / 7.5; unit ratio: 25 / 15.
        assert!((s.imbalance_ratio() - 25.0 / 7.5).abs() < 1e-6);
        let unit_ratio = s.unit_imbalance_ratio().unwrap();
        assert!((unit_ratio - 25.0 / 15.0).abs() < 1e-6);
        assert!(unit_ratio < s.imbalance_ratio());
    }

    #[test]
    fn grid_tile_count() {
        let g = TileGridDims::for_image(64, 48, 16);
        assert_eq!((g.tiles_x, g.tiles_y), (4, 3));
        assert_eq!(g.tile_count(), 12);
        assert_eq!(g.pixel_count(), 64 * 48);
    }

    #[test]
    fn edge_tiles_are_clipped() {
        // 100×70 with 16-px tiles: last column is 4 px wide, last row 6 px
        // tall.
        let g = TileGridDims::for_image(100, 70, 16);
        assert_eq!((g.tiles_x, g.tiles_y), (7, 5));
        assert_eq!(g.tile_pixel_count(0, 0), 256);
        assert_eq!(g.tile_pixel_count(6, 0), 4 * 16);
        assert_eq!(g.tile_pixel_count(0, 4), 16 * 6);
        assert_eq!(g.tile_pixel_count(6, 4), 4 * 6);
        // Clipped tile pixels sum to the exact image area.
        let sum: u64 = (0..g.tile_count())
            .map(|i| {
                let (tx, ty) = g.tile_coords(i);
                g.tile_pixel_count(tx, ty) as u64
            })
            .sum();
        assert_eq!(sum, g.pixel_count());
    }

    #[test]
    fn tile_count_survives_extreme_dims() {
        // Regression: `tiles_x * tiles_y` used to multiply in u32 and wrap.
        // 2^26 × 2^26 image with 16-px tiles → 2^22 × 2^22 tiles = 2^44,
        // far beyond u32::MAX.
        let g = TileGridDims::for_image(1 << 26, 1 << 26, 16);
        assert_eq!((g.tiles_x, g.tiles_y), (1 << 22, 1 << 22));
        assert_eq!(g.tile_count(), 1usize << 44);
        assert_eq!(g.pixel_count(), 1u64 << 52);
        // Coordinates of a tile index above u32::MAX round-trip.
        let i = (1usize << 40) + 12345;
        let (tx, ty) = g.tile_coords(i);
        assert_eq!(ty as usize * (1usize << 22) + tx as usize, i);
    }

    #[test]
    fn tile_coords_roundtrip() {
        let g = TileGridDims::for_image(100, 70, 16);
        for i in 0..g.tile_count() {
            let (tx, ty) = g.tile_coords(i);
            assert_eq!((ty * g.tiles_x + tx) as usize, i);
        }
    }
}
