//! Render statistics: the measurement instrument behind the paper's
//! workload analysis.

use serde::{Deserialize, Serialize};

/// Tile-grid dimensions of a render pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGridDims {
    /// Tiles per row.
    pub tiles_x: u32,
    /// Tiles per column.
    pub tiles_y: u32,
    /// Tile size in pixels.
    pub tile_size: u32,
}

impl TileGridDims {
    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        (self.tiles_x * self.tiles_y) as usize
    }
}

/// Statistics gathered during one render pass.
///
/// * `tile_intersections` is the paper's per-tile workload quantity (the
///   Fig. 9 heatmap/boxplots and the Fig. 4 "# of Intersect." axis).
/// * `point_tiles_used` is `Compᵢ`/`Uᵢ` of Eqns. 3 and 5.
/// * `point_pixels_dominated` is `Valᵢ` of Eqn. 3 ("number of pixels
///   dominated by that point", dominance = largest `Tᵢαᵢ`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderStats {
    /// Tile-grid geometry.
    pub grid: TileGridDims,
    /// Number of splats intersecting each tile (row-major).
    pub tile_intersections: Vec<u32>,
    /// Points that survived culling.
    pub points_projected: usize,
    /// Points submitted (before culling/filtering).
    pub points_submitted: usize,
    /// Total tile-ellipse intersections (== sum of `tile_intersections`).
    pub total_intersections: u64,
    /// Total per-pixel compositing steps actually executed (after
    /// early-stop) — proportional to rasterization math.
    pub blend_steps: u64,
    /// Per-point count of tiles used this frame (`Comp`); empty unless
    /// `track_point_stats` was set.
    pub point_tiles_used: Vec<u32>,
    /// Per-point count of pixels dominated this frame (`Val`); empty unless
    /// `track_point_stats` was set.
    pub point_pixels_dominated: Vec<u32>,
}

impl RenderStats {
    /// Average intersections per tile.
    pub fn mean_intersections_per_tile(&self) -> f32 {
        if self.tile_intersections.is_empty() {
            return 0.0;
        }
        self.total_intersections as f32 / self.tile_intersections.len() as f32
    }

    /// Maximum intersections over tiles (the pipeline-critical tile).
    pub fn max_intersections_per_tile(&self) -> u32 {
        self.tile_intersections.iter().copied().max().unwrap_or(0)
    }

    /// Workload-imbalance ratio: max/mean intersections per tile. 1.0 is
    /// perfectly balanced; the paper reports 3+ orders of magnitude spread.
    pub fn imbalance_ratio(&self) -> f32 {
        let mean = self.mean_intersections_per_tile();
        if mean <= 0.0 {
            return 1.0;
        }
        self.max_intersections_per_tile() as f32 / mean
    }

    /// Per-tile intersection counts as `f32` (for stats helpers).
    pub fn tile_intersections_f32(&self) -> Vec<f32> {
        self.tile_intersections.iter().map(|&x| x as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tiles: Vec<u32>) -> RenderStats {
        let total = tiles.iter().map(|&t| t as u64).sum();
        RenderStats {
            grid: TileGridDims { tiles_x: tiles.len() as u32, tiles_y: 1, tile_size: 16 },
            total_intersections: total,
            tile_intersections: tiles,
            points_projected: 0,
            points_submitted: 0,
            blend_steps: 0,
            point_tiles_used: Vec::new(),
            point_pixels_dominated: Vec::new(),
        }
    }

    #[test]
    fn means_and_max() {
        let s = stats(vec![0, 10, 20, 30]);
        assert!((s.mean_intersections_per_tile() - 15.0).abs() < 1e-6);
        assert_eq!(s.max_intersections_per_tile(), 30);
        assert!((s.imbalance_ratio() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = stats(vec![]);
        assert_eq!(s.mean_intersections_per_tile(), 0.0);
        assert_eq!(s.max_intersections_per_tile(), 0);
        assert_eq!(s.imbalance_ratio(), 1.0);
    }

    #[test]
    fn grid_tile_count() {
        let g = TileGridDims { tiles_x: 4, tiles_y: 3, tile_size: 16 };
        assert_eq!(g.tile_count(), 12);
    }
}
