//! Property test: the 4-lane SIMD rasterization kernel is bit-identical to
//! the scalar reference kernel — pixels, winner buffers and blend-step
//! counts — over random splat lists, admission thresholds, tile sizes,
//! image shapes (odd widths force scalar remainder groups), pixel masks,
//! and high-opacity stacks that retire the four lanes of a group at
//! different depths.
//!
//! The per-tile staging prepass (`RasterStaging::PerTile`) gets its own
//! properties targeting the row-interval scheduler's edge cases: pancake
//! conics whose admission boxes clip to a single tile row, admission
//! thresholds high enough to empty a splat's interval entirely, odd tile
//! sizes (so the last row of edge tiles lands mid-interval), and merged
//! super-tile rects (each tile inside a super-tile must stage its own
//! rows against its own CSR list).

use ms_math::{Conic2, Quat, TileRect, Vec2, Vec3};
use ms_render::{Image, RasterKernel, RasterStaging, RenderOptions, RenderOutput, Renderer};
use ms_scene::{Camera, GaussianModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bit-level image comparison: `-0.0` vs `0.0` or NaN payload differences
/// must fail, not pass, so `PartialEq` on `f32` is not strict enough.
fn assert_images_bit_identical(a: &Image, b: &Image) -> Result<(), String> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err("image dimensions differ".into());
    }
    for (i, (pa, pb)) in a.pixels().iter().zip(b.pixels()).enumerate() {
        for (ca, cb) in [(pa.x, pb.x), (pa.y, pb.y), (pa.z, pb.z)] {
            if ca.to_bits() != cb.to_bits() {
                return Err(format!("pixel {i} differs: {pa:?} vs {pb:?}"));
            }
        }
    }
    Ok(())
}

fn assert_outputs_bit_identical(simd: &RenderOutput, scalar: &RenderOutput) -> Result<(), String> {
    assert_images_bit_identical(&simd.image, &scalar.image)?;
    if simd.winners != scalar.winners {
        return Err("winner buffers differ".into());
    }
    if simd.stats.blend_steps != scalar.stats.blend_steps {
        return Err(format!(
            "blend steps differ: {} vs {}",
            simd.stats.blend_steps, scalar.stats.blend_steps
        ));
    }
    Ok(())
}

fn options(
    kernel: RasterKernel,
    tile_size: u32,
    alpha_min: f32,
    alpha_max: f32,
    t_min: f32,
) -> RenderOptions {
    RenderOptions {
        raster_kernel: kernel,
        tile_size,
        alpha_min,
        alpha_max,
        t_min,
        track_point_stats: true,
        threads: 1,
        ..RenderOptions::default()
    }
}

/// Random pre-projected splats over the given image grid: anisotropic
/// conics, opacities spanning faint-to-nearly-opaque (high opacities make
/// adjacent pixels retire at different splats, exercising the lane
/// divergence path), centers hanging off every image edge.
fn random_splats(
    rng: &mut StdRng,
    n: usize,
    width: u32,
    height: u32,
    tile_size: u32,
) -> Vec<ms_render::ProjectedSplat> {
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    (0..n)
        .filter_map(|i| {
            let cx = rng.gen_range(-20.0..width as f32 + 20.0);
            let cy = rng.gen_range(-20.0..height as f32 + 20.0);
            let radius = rng.gen_range(1.0..50.0f32);
            let tiles =
                TileRect::from_circle(Vec2::new(cx, cy), radius, tile_size, tiles_x, tiles_y)?;
            // Positive-definite conic with random anisotropy/orientation.
            let (sx, sy) = (rng.gen_range(0.6..12.0f32), rng.gen_range(0.6..12.0f32));
            let theta = rng.gen_range(0.0..std::f32::consts::PI);
            let (s, c) = theta.sin_cos();
            let (ia, ib) = (1.0 / (sx * sx), 1.0 / (sy * sy));
            let conic = Conic2 {
                a: c * c * ia + s * s * ib,
                b: s * c * (ia - ib),
                c: s * s * ia + c * c * ib,
            };
            Some(ms_render::ProjectedSplat {
                point_index: i as u32,
                center: Vec2::new(cx, cy),
                conic,
                depth: rng.gen_range(0.1..60.0f32),
                radius,
                color: Vec3::new(
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                ),
                opacity: rng.gen_range(0.02..0.99f32),
                tiles,
            })
        })
        .collect()
}

proptest! {
    #[test]
    fn simd_kernel_matches_scalar_on_random_splat_lists(
        seed in 0u64..1u64 << 48,
        n in 1usize..120,
        width in 17u32..90,
        height in 9u32..70,
        ts_pick in 0u32..3,
        alpha_min in 0.0f32..0.08,
        alpha_span in 0.05f32..0.9,
        t_min in 1e-5f32..0.3,
    ) {
        let tile_size = [8u32, 16, 32][ts_pick as usize];
        let alpha_max = (alpha_min + alpha_span).min(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let splats = random_splats(&mut rng, n, width, height, tile_size);
        let cam = Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        let scalar = Renderer::new(options(RasterKernel::Scalar, tile_size, alpha_min, alpha_max, t_min))
            .render_splats(n, &splats, &cam);
        let simd = Renderer::new(options(RasterKernel::Simd4, tile_size, alpha_min, alpha_max, t_min))
            .render_splats(n, &splats, &cam);
        assert_outputs_bit_identical(&simd, &scalar)?;
    }

    #[test]
    fn simd_kernel_matches_scalar_with_opaque_stacks(
        seed in 0u64..1u64 << 48,
        n in 8usize..64,
        width in 21u32..60,
        height in 13u32..48,
    ) {
        // Stacks of small, nearly-opaque splats: transmittance crosses
        // `t_min` after a handful of admissions, at a different list
        // position for each pixel of a 4-lane group, so lanes retire
        // divergently and the group's early stop must still match four
        // scalar runs.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let tile_size = 16;
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        let splats: Vec<ms_render::ProjectedSplat> = (0..n)
            .filter_map(|i| {
                let cx = rng.gen_range(0.0..width as f32);
                let cy = rng.gen_range(0.0..height as f32);
                let radius = rng.gen_range(2.0..9.0f32);
                let tiles = TileRect::from_circle(
                    Vec2::new(cx, cy), radius, tile_size, tiles_x, tiles_y,
                )?;
                let inv = 1.0 / rng.gen_range(1.0..9.0f32);
                Some(ms_render::ProjectedSplat {
                    point_index: i as u32,
                    center: Vec2::new(cx, cy),
                    conic: Conic2 { a: inv, b: 0.0, c: inv },
                    depth: rng.gen_range(0.1..20.0f32),
                    radius,
                    color: Vec3::new(
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                ),
                    opacity: rng.gen_range(0.90..0.99f32),
                    tiles,
                })
            })
            .collect();
        let cam = Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        let scalar = Renderer::new(options(RasterKernel::Scalar, tile_size, 1.0 / 255.0, 0.99, 0.05))
            .render_splats(n, &splats, &cam);
        let simd = Renderer::new(options(RasterKernel::Simd4, tile_size, 1.0 / 255.0, 0.99, 0.05))
            .render_splats(n, &splats, &cam);
        assert_outputs_bit_identical(&simd, &scalar)?;
    }

    #[test]
    fn simd_kernel_matches_scalar_under_random_masks(
        seed in 0u64..1u64 << 48,
        points in 4usize..40,
        width in 19u32..70,
        height in 11u32..54,
        mask_mod in 2u32..9,
    ) {
        // Random world-space model rendered through the full pipeline with
        // a random pixel mask: groups containing masked-out pixels must
        // fall back to the scalar kernel without disturbing their
        // neighbors.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5851f42d4c957f2d);
        let mut model = GaussianModel::new(0);
        for _ in 0..points {
            model.push_solid(
                Vec3::new(
                    rng.gen_range(-2.5..2.5f32),
                    rng.gen_range(-2.5..2.5f32),
                    rng.gen_range(-2.0..2.0f32),
                ),
                Vec3::new(
                    rng.gen_range(0.05..0.8f32),
                    rng.gen_range(0.05..0.8f32),
                    rng.gen_range(0.05..0.8f32),
                ),
                Quat::identity(),
                rng.gen_range(0.1..0.98f32),
                Vec3::new(
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                ),
            );
        }
        let cam = Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.5, 5.0), Vec3::zero());
        let mask: Vec<bool> = (0..(width * height) as usize)
            .map(|i| {
                let (x, y) = (i as u32 % width, i as u32 / width);
                (x + 2 * y) % mask_mod != 0
            })
            .collect();
        let scalar = Renderer::new(options(RasterKernel::Scalar, 16, 1.0 / 255.0, 0.99, 1e-4))
            .render_masked(&model, &cam, |_| true, &mask);
        let simd = Renderer::new(options(RasterKernel::Simd4, 16, 1.0 / 255.0, 0.99, 1e-4))
            .render_masked(&model, &cam, |_| true, &mask);
        assert_outputs_bit_identical(&simd, &scalar)?;
    }

    #[test]
    fn pertile_staging_matches_perrow_on_interval_edge_cases(
        seed in 0u64..1u64 << 48,
        n in 1usize..80,
        width in 13u32..70,
        height in 9u32..56,
        ts_pick in 0u32..3,
        alpha_min in 0.0f32..0.45,
        squash in 1.0f32..400.0,
    ) {
        // Pancake conics: σ along one axis shrinks toward a fraction of a
        // pixel, so admission boxes clip to a single tile row — the
        // row-interval scheduler's `y0 == y1` case — while `alpha_min` up
        // to 0.45 against opacities from 0.01 makes many splats provably
        // inadmissible everywhere (empty interval, culled in the prepass).
        // Odd tile sizes put edge-tile last rows mid-interval.
        let tile_size = [5u32, 7, 17][ts_pick as usize];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5_5a5a_0f0f_f0f0);
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        let splats: Vec<ms_render::ProjectedSplat> = (0..n)
            .filter_map(|i| {
                let cx = rng.gen_range(-10.0..width as f32 + 10.0);
                let cy = rng.gen_range(-10.0..height as f32 + 10.0);
                let radius = rng.gen_range(0.5..30.0f32);
                let tiles = TileRect::from_circle(
                    Vec2::new(cx, cy), radius, tile_size, tiles_x, tiles_y,
                )?;
                let sx = rng.gen_range(0.8..10.0f32);
                let sy = rng.gen_range(0.05..4.0f32) / squash.sqrt();
                let theta = rng.gen_range(0.0..std::f32::consts::PI);
                let (s, c) = theta.sin_cos();
                let (ia, ib) = (1.0 / (sx * sx), 1.0 / (sy * sy));
                let conic = Conic2 {
                    a: c * c * ia + s * s * ib,
                    b: s * c * (ia - ib),
                    c: s * s * ia + c * c * ib,
                };
                Some(ms_render::ProjectedSplat {
                    point_index: i as u32,
                    center: Vec2::new(cx, cy),
                    conic,
                    depth: rng.gen_range(0.1..60.0f32),
                    radius,
                    color: Vec3::new(
                        rng.gen_range(0.0..1.0f32),
                        rng.gen_range(0.0..1.0f32),
                        rng.gen_range(0.0..1.0f32),
                    ),
                    opacity: rng.gen_range(0.01..0.9f32),
                    tiles,
                })
            })
            .collect();
        let cam = Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero());
        let mk = |kernel, staging| {
            Renderer::new(RenderOptions {
                raster_staging: staging,
                ..options(kernel, tile_size, alpha_min, 0.99, 1e-4)
            })
        };
        let scalar = mk(RasterKernel::Scalar, RasterStaging::PerRow).render_splats(n, &splats, &cam);
        let perrow = mk(RasterKernel::Simd4, RasterStaging::PerRow).render_splats(n, &splats, &cam);
        let pertile = mk(RasterKernel::Simd4, RasterStaging::PerTile).render_splats(n, &splats, &cam);
        assert_outputs_bit_identical(&perrow, &scalar)?;
        assert_outputs_bit_identical(&pertile, &perrow)?;
    }

    #[test]
    fn pertile_staging_matches_scalar_under_merged_super_tiles(
        seed in 0u64..1u64 << 48,
        points in 6usize..40,
        width in 25u32..80,
        height in 21u32..64,
    ) {
        // A center-heavy world model rendered from a pulled-back camera:
        // occupancy merging coalesces the sparse periphery into multi-tile
        // super-tile rects. Inside a super-tile, each tile must still
        // stage its own rows against its own CSR list — per-tile staging
        // under a merged schedule must reproduce the unmerged scalar
        // frame bit for bit.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0dd0_7117_e57a_6e5d);
        let mut model = GaussianModel::new(0);
        for _ in 0..points {
            model.push_solid(
                Vec3::new(
                    rng.gen_range(-0.8..0.8f32),
                    rng.gen_range(-0.8..0.8f32),
                    rng.gen_range(-0.8..0.8f32),
                ),
                Vec3::new(
                    rng.gen_range(0.05..0.4f32),
                    rng.gen_range(0.05..0.4f32),
                    rng.gen_range(0.05..0.4f32),
                ),
                Quat::identity(),
                rng.gen_range(0.1..0.95f32),
                Vec3::new(
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                ),
            );
        }
        let cam = Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.0, 10.0), Vec3::zero());
        let scalar_unmerged = Renderer::new(RenderOptions {
            raster_kernel: RasterKernel::Scalar,
            tile_size: 7,
            track_point_stats: true,
            threads: 1,
            ..RenderOptions::default()
        })
        .render(&model, &cam);
        let pertile_merged = Renderer::new(RenderOptions {
            raster_kernel: RasterKernel::Simd4,
            raster_staging: RasterStaging::PerTile,
            tile_size: 7,
            track_point_stats: true,
            threads: 1,
            ..RenderOptions::with_tile_merging()
        })
        .render(&model, &cam);
        assert_outputs_bit_identical(&pertile_merged, &scalar_unmerged)?;
    }
}
