//! Emulated PBNR baseline families (paper §6 "Baselines").
//!
//! The paper compares against seven published models. We cannot run their
//! CUDA checkpoints, so each baseline is *emulated*: built from the same
//! synthetic dense scene with the construction rule that gives it the
//! published family behaviour —
//!
//! | Baseline | Emulation | Behavioural signature |
//! |---|---|---|
//! | 3DGS | dense scene + extra reconstruction clutter (duplicates/floaters) | slowest dense model, baseline quality |
//! | Mini-Splatting-D | the dense scene as-is (best point distribution) | best quality (the paper's quality reference) |
//! | Mip-Splatting | dense + scale-aware screen filter (larger dilation) | anti-aliased, ≈3DGS speed |
//! | StopThePop | Mini-Splatting-D points + per-pixel sorted compositing | view-consistent but slower rasterization |
//! | LightGS | prune 3DGS by opacity·scale significance (~75% removed) | small model, limited speedup (keeps big splats) |
//! | CompactGS | prune 3DGS by opacity mask (~60% removed) | similar |
//! | Mini-Splatting | prune Mini-Splatting-D by pixel-dominance importance (~80% removed) | best pruned baseline |
//!
//! The point of these emulations is captured by Fig. 4: count-oriented
//! pruning removes many points but keeps the large ellipses that generate
//! tile intersections, so its latency reduction lags its point reduction —
//! which is exactly how these constructions behave under our renderer.

#![deny(missing_docs)]

use ms_math::Vec3;
use ms_render::{RenderOptions, Renderer, SortMode};
use ms_scene::synth::Scene;
use ms_scene::{Camera, GaussianModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven baseline PBNR models of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    /// 3D Gaussian Splatting (Kerbl et al. 2023) — the earliest PBNR model.
    ThreeDgs,
    /// Mini-Splatting-D (dense; the paper's quality reference).
    MiniSplattingD,
    /// Mip-Splatting (dense, anti-aliased).
    MipSplatting,
    /// StopThePop (dense, per-pixel sorted).
    StopThePop,
    /// LightGaussian (pruned from 3DGS).
    LightGs,
    /// CompactGS (pruned from 3DGS).
    CompactGs,
    /// Mini-Splatting (pruned from Mini-Splatting-D).
    MiniSplatting,
}

impl BaselineKind {
    /// All baselines in paper order (dense first).
    pub const ALL: [BaselineKind; 7] = [
        BaselineKind::ThreeDgs,
        BaselineKind::MiniSplattingD,
        BaselineKind::MipSplatting,
        BaselineKind::StopThePop,
        BaselineKind::LightGs,
        BaselineKind::CompactGs,
        BaselineKind::MiniSplatting,
    ];

    /// The five models of the paper's Fig. 3 FPS survey.
    pub const FIG3: [BaselineKind; 5] = [
        BaselineKind::ThreeDgs,
        BaselineKind::MiniSplattingD,
        BaselineKind::CompactGs,
        BaselineKind::LightGs,
        BaselineKind::MiniSplatting,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::ThreeDgs => "3DGS",
            BaselineKind::MiniSplattingD => "Mini-Splatting-D",
            BaselineKind::MipSplatting => "Mip-Splatting",
            BaselineKind::StopThePop => "StopThePop",
            BaselineKind::LightGs => "LightGS",
            BaselineKind::CompactGs => "CompactGS",
            BaselineKind::MiniSplatting => "Mini-Splatting",
        }
    }

    /// Whether this is a dense (unpruned) model.
    pub fn is_dense(self) -> bool {
        matches!(
            self,
            BaselineKind::ThreeDgs
                | BaselineKind::MiniSplattingD
                | BaselineKind::MipSplatting
                | BaselineKind::StopThePop
        )
    }
}

impl fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A constructed baseline: model + the render options it runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineModel {
    /// Which baseline this is.
    pub kind: BaselineKind,
    /// The Gaussian model.
    pub model: GaussianModel,
    /// Render options (e.g. StopThePop uses per-pixel sorting).
    pub render_options: RenderOptions,
}

impl BaselineModel {
    /// Serialized model size in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.model.storage_bytes()
    }
}

/// Add 3DGS-style reconstruction clutter: jittered duplicates plus a few
/// large floaters (fraction `extra` of the base point count).
fn add_clutter(base: &GaussianModel, extra: f32, seed: u64) -> GaussianModel {
    let mut m = base.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_extra = (base.len() as f32 * extra) as usize;
    let bb = base.bounding_box();
    let scene_r = bb.map(|b| b.diagonal() * 0.25).unwrap_or(1.0);
    for k in 0..n_extra {
        if k % 8 == 7 {
            // Floater.
            let pos = Vec3::new(
                rng.gen_range(-0.5..0.5f32),
                rng.gen_range(0.05..0.5f32),
                rng.gen_range(-0.5..0.5f32),
            ) * scene_r;
            let scale = Vec3::splat(rng.gen_range(0.05..0.25f32) * scene_r);
            let mut sh = vec![0.0f32; m.sh_stride()];
            let dc = ms_math::sh::rgb_to_dc(Vec3::splat(rng.gen_range(0.3..0.7f32)));
            sh[..3].copy_from_slice(&dc);
            let rot = m.rotations[rng.gen_range(0..base.len())];
            m.push(pos, scale, rot, rng.gen_range(0.02..0.12f32), &sh);
        } else {
            // Jittered duplicate.
            let src = rng.gen_range(0..base.len());
            let p = base.point(src);
            let jitter = Vec3::new(
                rng.gen_range(-1.0..1.0f32),
                rng.gen_range(-1.0..1.0f32),
                rng.gen_range(-1.0..1.0f32),
            ) * p.scale.max_component();
            let sh = p.sh.to_vec();
            m.push(
                p.position + jitter,
                p.scale * rng.gen_range(0.6..1.2f32),
                p.rotation,
                (p.opacity * rng.gen_range(0.3..0.9f32)).clamp(0.01, 1.0),
                &sh,
            );
        }
    }
    m
}

/// Prune keeping the `keep_fraction` highest-scoring points.
fn prune_by_score(model: &GaussianModel, scores: &[f32], keep_fraction: f32) -> GaussianModel {
    let remove = (model.len() as f32 * (1.0 - keep_fraction)).round() as usize;
    ms_train::prune::prune_lowest(model, scores, remove).0
}

/// LightGS-style global significance: opacity × screen-relevant volume.
/// Keeps large opaque splats (they score high), which is why its latency
/// reduction lags its point reduction (Fig. 4).
fn lightgs_scores(model: &GaussianModel) -> Vec<f32> {
    (0..model.len())
        .map(|i| {
            let s = model.scales[i];
            let volume = (s.x * s.y * s.z).cbrt();
            model.opacities[i] * volume
        })
        .collect()
}

/// CompactGS-style learned mask. The published method trains a binary mask
/// against the photometric loss; points whose removal the loss tolerates —
/// transparent *or* spatially redundant ones — are masked. We approximate
/// the learned mask with opacity weighted by a mild volume term (keeps
/// small high-opacity content over large translucent media).
fn compactgs_scores(model: &GaussianModel) -> Vec<f32> {
    (0..model.len())
        .map(|i| {
            let s = model.scales[i];
            let volume = (s.x * s.y * s.z).cbrt();
            model.opacities[i] * volume.powf(0.3)
        })
        .collect()
}

/// Mini-Splatting importance: pixels dominated across sample views
/// (intersection-agnostic, like the published importance sampling).
fn minisplatting_scores(model: &GaussianModel, cameras: &[Camera]) -> Vec<f32> {
    let renderer = Renderer::new(RenderOptions::with_point_stats());
    let mut scores = vec![0.0f32; model.len()];
    for cam in cameras {
        let out = renderer.render(model, cam);
        for (s, &d) in scores.iter_mut().zip(&out.stats.point_pixels_dominated) {
            *s += d as f32;
        }
    }
    scores
}

/// Build a baseline from a scene. `stat_cameras` supply the view statistics
/// some pruners need (a subset of the scene's training cameras is fine).
///
/// # Panics
///
/// Panics when a statistics-driven baseline gets an empty `stat_cameras`.
pub fn build_baseline(kind: BaselineKind, scene: &Scene, stat_cameras: &[Camera]) -> BaselineModel {
    let dense = &scene.model;
    let seed = scene.spec.seed ^ 0xBA5E;
    match kind {
        BaselineKind::ThreeDgs => BaselineModel {
            kind,
            model: add_clutter(dense, 0.25, seed),
            render_options: RenderOptions::default(),
        },
        BaselineKind::MiniSplattingD => BaselineModel {
            kind,
            model: dense.clone(),
            render_options: RenderOptions::default(),
        },
        BaselineKind::MipSplatting => BaselineModel {
            kind,
            model: dense.clone(),
            // Scale-aware 3D smoothing ≈ stronger screen-space low-pass.
            render_options: RenderOptions {
                dilation: 0.9,
                ..RenderOptions::default()
            },
        },
        BaselineKind::StopThePop => BaselineModel {
            kind,
            model: dense.clone(),
            render_options: RenderOptions {
                sort_mode: SortMode::PerPixel,
                ..RenderOptions::default()
            },
        },
        BaselineKind::LightGs => {
            let three_dgs = add_clutter(dense, 0.25, seed);
            let scores = lightgs_scores(&three_dgs);
            BaselineModel {
                kind,
                model: prune_by_score(&three_dgs, &scores, 0.25),
                render_options: RenderOptions::default(),
            }
        }
        BaselineKind::CompactGs => {
            let three_dgs = add_clutter(dense, 0.25, seed);
            let scores = compactgs_scores(&three_dgs);
            BaselineModel {
                kind,
                model: prune_by_score(&three_dgs, &scores, 0.40),
                render_options: RenderOptions::default(),
            }
        }
        BaselineKind::MiniSplatting => {
            assert!(
                !stat_cameras.is_empty(),
                "Mini-Splatting pruning needs cameras"
            );
            let scores = minisplatting_scores(dense, stat_cameras);
            BaselineModel {
                kind,
                model: prune_by_score(dense, &scores, 0.20),
                render_options: RenderOptions::default(),
            }
        }
    }
}

/// LightGS at an explicit prune level (Fig. 4 sweeps 75%–97% pruned).
///
/// # Panics
///
/// Panics when `keep_fraction` is outside `(0, 1]`.
pub fn lightgs_with_keep_fraction(scene: &Scene, keep_fraction: f32) -> BaselineModel {
    assert!(keep_fraction > 0.0 && keep_fraction <= 1.0);
    let three_dgs = add_clutter(&scene.model, 0.25, scene.spec.seed ^ 0xBA5E);
    let scores = lightgs_scores(&three_dgs);
    BaselineModel {
        kind: BaselineKind::LightGs,
        model: prune_by_score(&three_dgs, &scores, keep_fraction),
        render_options: RenderOptions::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_scene::dataset::TraceId;

    fn scene() -> Scene {
        TraceId::by_name("truck")
            .unwrap()
            .build_scene_with_scale(0.004)
    }

    fn small_cams(scene: &Scene) -> Vec<Camera> {
        scene
            .train_cameras
            .iter()
            .step_by(12)
            .take(2)
            .map(|c| Camera {
                width: 80,
                height: 60,
                ..*c
            })
            .collect()
    }

    #[test]
    fn threedgs_is_larger_than_msd() {
        let s = scene();
        let cams = small_cams(&s);
        let tdgs = build_baseline(BaselineKind::ThreeDgs, &s, &cams);
        let msd = build_baseline(BaselineKind::MiniSplattingD, &s, &cams);
        assert!(tdgs.model.len() > msd.model.len());
        tdgs.model.validate().unwrap();
    }

    #[test]
    fn pruned_models_are_smaller() {
        let s = scene();
        let cams = small_cams(&s);
        let msd = build_baseline(BaselineKind::MiniSplattingD, &s, &cams);
        for kind in [
            BaselineKind::LightGs,
            BaselineKind::CompactGs,
            BaselineKind::MiniSplatting,
        ] {
            let b = build_baseline(kind, &s, &cams);
            assert!(
                b.model.len() < msd.model.len(),
                "{kind} should be pruned: {} vs {}",
                b.model.len(),
                msd.model.len()
            );
            b.model.validate().unwrap();
        }
    }

    #[test]
    fn stopthepop_uses_per_pixel_sort() {
        let s = scene();
        let b = build_baseline(BaselineKind::StopThePop, &s, &small_cams(&s));
        assert_eq!(b.render_options.sort_mode, SortMode::PerPixel);
    }

    #[test]
    fn count_pruning_keeps_disproportionate_intersections() {
        // The Fig. 4 phenomenon: LightGS removes 75% of points but much
        // less than 75% of tile intersections, because its significance
        // score keeps large splats.
        let s = scene();
        let cams = small_cams(&s);
        let dense = build_baseline(BaselineKind::ThreeDgs, &s, &cams);
        let pruned = build_baseline(BaselineKind::LightGs, &s, &cams);
        let renderer = Renderer::default();
        let di = renderer
            .render(&dense.model, &cams[0])
            .stats
            .total_intersections as f32;
        let pi = renderer
            .render(&pruned.model, &cams[0])
            .stats
            .total_intersections as f32;
        let point_ratio = pruned.model.len() as f32 / dense.model.len() as f32; // 0.25
        let isect_ratio = pi / di;
        assert!(
            isect_ratio > point_ratio * 1.15,
            "intersections should shrink slower than points: {isect_ratio} vs {point_ratio}"
        );
    }

    #[test]
    fn lightgs_sweep_is_monotone() {
        let s = scene();
        let mut last_points = usize::MAX;
        for keep in [0.25, 0.15, 0.08, 0.03] {
            let b = lightgs_with_keep_fraction(&s, keep);
            assert!(b.model.len() < last_points);
            last_points = b.model.len();
        }
    }

    #[test]
    fn baselines_are_deterministic() {
        let s = scene();
        let cams = small_cams(&s);
        let a = build_baseline(BaselineKind::ThreeDgs, &s, &cams);
        let b = build_baseline(BaselineKind::ThreeDgs, &s, &cams);
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn all_contains_everything() {
        assert_eq!(BaselineKind::ALL.len(), 7);
        assert_eq!(BaselineKind::FIG3.len(), 5);
        assert!(BaselineKind::ThreeDgs.is_dense());
        assert!(!BaselineKind::LightGs.is_dense());
        assert_eq!(BaselineKind::MiniSplattingD.to_string(), "Mini-Splatting-D");
    }
}
