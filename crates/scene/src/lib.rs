//! Scene substrate for the MetaSapiens PBNR stack.
//!
//! This crate provides everything "upstream" of rendering:
//!
//! * [`GaussianModel`] — the SoA Gaussian point cloud (positions, scales,
//!   rotations, opacities, spherical-harmonics color coefficients) that every
//!   PBNR algorithm in this workspace consumes, with storage accounting and a
//!   binary (de)serializer.
//! * [`Camera`] — pinhole camera with the view/projection conventions the
//!   renderer expects.
//! * [`trajectory`] — pose interpolation (Catmull–Rom + slerp) used to
//!   densify sparse dataset poses into smooth 90 FPS traces, as the paper
//!   does in §6 ("approximately 1,440 poses … a 16-second video at 90 FPS").
//! * [`synth`] — the procedural scene generator that substitutes for the
//!   Mip-NeRF 360 / Tanks&Temples / DeepBlending datasets (see DESIGN.md for
//!   the substitution argument).
//! * [`dataset`] — the 13 named traces in 3 datasets mirroring the paper's
//!   evaluation corpus, each with deterministic generation parameters.
//!
//! # Example
//!
//! ```
//! use ms_scene::dataset::{Dataset, TraceId};
//!
//! let trace = TraceId::new(Dataset::MipNerf360, "bicycle").unwrap();
//! let scene = trace.build_scene_with_scale(0.02); // tiny scale for doctest speed
//! assert!(scene.model.len() > 0);
//! assert!(!scene.train_cameras.is_empty());
//! ```

#![deny(missing_docs)]

mod camera;
pub mod dataset;
mod gaussian;
pub mod io;
pub mod synth;
pub mod trajectory;

pub use camera::Camera;
pub use gaussian::{GaussianModel, GaussianPoint, BYTES_PER_POINT_FULL};
pub use io::{
    coarse_subset, decode_model, decode_model_into, encode_model, encode_model_chunked,
    next_source_id, resolved_chunk_splats, CacheAccess, CacheStats, ChunkCache, ChunkKey,
    ChunkedFileSource, DecodeError, FailingSource, FailureMode, InCoreSource, SceneSource,
    SourceError, SynthChunkedSource, DEFAULT_CHUNK_CACHE_BYTES, DEFAULT_CHUNK_SPLATS,
};
