//! Pinhole camera with the conventions the splatting renderer expects.

use ms_math::{deg_to_rad, Mat3, Mat4, Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// A pinhole camera.
///
/// View space is right-handed with the camera looking down **−Z**; image
/// space has the origin at the top-left pixel, +x right, +y down, matching
/// the 3DGS rasterizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Vertical field of view in radians.
    pub fovy: f32,
    /// Camera position (world space).
    pub eye: Vec3,
    /// Look-at target (world space).
    pub target: Vec3,
    /// Up hint (world space).
    pub up: Vec3,
    /// Near clip plane distance.
    pub near: f32,
    /// Far clip plane distance.
    pub far: f32,
}

impl Camera {
    /// A camera looking at `target` from `eye`, with a vertical FOV given in
    /// degrees.
    ///
    /// # Panics
    ///
    /// Panics when the resolution is zero or the FOV is outside (0°, 180°).
    pub fn look_at(width: u32, height: u32, fovy_deg: f32, eye: Vec3, target: Vec3) -> Self {
        assert!(width > 0 && height > 0, "resolution must be non-zero");
        assert!(
            fovy_deg > 0.0 && fovy_deg < 180.0,
            "fovy {fovy_deg} out of range"
        );
        Self {
            width,
            height,
            fovy: deg_to_rad(fovy_deg),
            eye,
            target,
            up: Vec3::new(0.0, 1.0, 0.0),
            near: 0.05,
            far: 1_000.0,
        }
    }

    /// Aspect ratio (width / height).
    #[inline]
    pub fn aspect(&self) -> f32 {
        self.width as f32 / self.height as f32
    }

    /// Horizontal field of view in radians.
    pub fn fovx(&self) -> f32 {
        2.0 * ((self.fovy * 0.5).tan() * self.aspect()).atan()
    }

    /// Focal length in pixels along y.
    #[inline]
    pub fn focal_y(&self) -> f32 {
        self.height as f32 / (2.0 * (self.fovy * 0.5).tan())
    }

    /// Focal length in pixels along x.
    #[inline]
    pub fn focal_x(&self) -> f32 {
        // Square pixels: fx == fy; kept separate for clarity at call sites.
        self.focal_y()
    }

    /// World → view transform.
    pub fn view_matrix(&self) -> Mat4 {
        Mat4::look_at(self.eye, self.target, self.up)
    }

    /// View-space rotation part of the view matrix (world → view directions).
    pub fn view_rotation(&self) -> Mat3 {
        self.view_matrix().upper_left3()
    }

    /// Transform a world point to view space.
    pub fn world_to_view(&self, p: Vec3) -> Vec3 {
        self.view_matrix().transform_point(p).project()
    }

    /// Project a view-space point (with `z < 0` in front of the camera) to
    /// pixel coordinates. Returns `None` behind or at the camera plane.
    pub fn view_to_pixel(&self, v: Vec3) -> Option<Vec2> {
        if v.z >= -1e-6 {
            return None;
        }
        let depth = -v.z;
        let x = self.focal_x() * v.x / depth + self.width as f32 * 0.5;
        // +y down in image space, +y up in view space.
        let y = -self.focal_y() * v.y / depth + self.height as f32 * 0.5;
        Some(Vec2::new(x, y))
    }

    /// Project a world point to pixel coordinates (`None` if behind camera).
    pub fn world_to_pixel(&self, p: Vec3) -> Option<Vec2> {
        self.view_to_pixel(self.world_to_view(p))
    }

    /// The forward unit vector (from eye toward target).
    pub fn forward(&self) -> Vec3 {
        (self.target - self.eye).normalized()
    }

    /// Angular eccentricity (radians) of a pixel relative to a gaze point
    /// (both in pixel coordinates). This is the quantity foveated rendering
    /// keys off: pixels far from the gaze have high eccentricity and tolerate
    /// aggressive quality relaxation.
    pub fn pixel_eccentricity(&self, pixel: Vec2, gaze: Vec2) -> f32 {
        // Convert both pixels to unit view rays and measure the angle.
        let ray = |px: Vec2| {
            Vec3::new(
                (px.x - self.width as f32 * 0.5) / self.focal_x(),
                -(px.y - self.height as f32 * 0.5) / self.focal_y(),
                -1.0,
            )
            .normalized()
        };
        let a = ray(pixel);
        let b = ray(gaze);
        a.dot(b).clamp(-1.0, 1.0).acos()
    }

    /// Pixel-space gaze position at the image center.
    pub fn center_gaze(&self) -> Vec2 {
        Vec2::new(self.width as f32 * 0.5, self.height as f32 * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::rad_to_deg;

    fn cam() -> Camera {
        Camera::look_at(640, 480, 60.0, Vec3::new(0.0, 0.0, 5.0), Vec3::zero())
    }

    #[test]
    fn target_projects_to_image_center() {
        let c = cam();
        let px = c.world_to_pixel(Vec3::zero()).unwrap();
        assert!((px.x - 320.0).abs() < 1e-3);
        assert!((px.y - 240.0).abs() < 1e-3);
    }

    #[test]
    fn point_behind_camera_is_none() {
        let c = cam();
        assert!(c.world_to_pixel(Vec3::new(0.0, 0.0, 10.0)).is_none());
    }

    #[test]
    fn up_is_up_in_image_space() {
        let c = cam();
        let px = c.world_to_pixel(Vec3::new(0.0, 1.0, 0.0)).unwrap();
        assert!(px.y < 240.0, "world +Y should be above center, got {px}");
    }

    #[test]
    fn right_is_right() {
        let c = cam();
        let px = c.world_to_pixel(Vec3::new(1.0, 0.0, 0.0)).unwrap();
        assert!(px.x > 320.0);
    }

    #[test]
    fn focal_length_matches_fov() {
        let c = cam();
        // Half image height subtends half fovy at distance focal_y.
        let half_angle = (240.0 / c.focal_y()).atan();
        assert!((rad_to_deg(half_angle) - 30.0).abs() < 1e-3);
    }

    #[test]
    fn eccentricity_zero_at_gaze() {
        let c = cam();
        let g = c.center_gaze();
        assert!(c.pixel_eccentricity(g, g) < 1e-6);
    }

    #[test]
    fn eccentricity_grows_with_distance() {
        let c = cam();
        let g = c.center_gaze();
        let e1 = c.pixel_eccentricity(Vec2::new(400.0, 240.0), g);
        let e2 = c.pixel_eccentricity(Vec2::new(600.0, 240.0), g);
        assert!(e2 > e1 && e1 > 0.0);
    }

    #[test]
    fn corner_eccentricity_at_60deg_fov() {
        let c = cam();
        let g = c.center_gaze();
        let corner = c.pixel_eccentricity(Vec2::new(0.0, 240.0), g);
        // Horizontal half-FOV for 4:3 at fovy=60° is atan(tan(30°)*4/3) ≈ 37.6°.
        assert!(
            (rad_to_deg(corner) - 37.59).abs() < 0.5,
            "got {}",
            rad_to_deg(corner)
        );
    }

    #[test]
    fn fovx_exceeds_fovy_for_wide_images() {
        let c = cam();
        assert!(c.fovx() > c.fovy);
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let _ = Camera::look_at(0, 480, 60.0, Vec3::zero(), Vec3::one());
    }
}
