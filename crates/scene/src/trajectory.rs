//! Camera-pose trajectories.
//!
//! Dataset poses are sparse; the paper interpolates between them to create
//! smooth trajectories "producing approximately 1,440 poses for each trace,
//! corresponding to a 16-second video at 90 FPS" (§6). This module implements
//! that densification: Catmull–Rom splines for positions and targets.

use crate::Camera;
use ms_math::Vec3;
use serde::{Deserialize, Serialize};

/// A single camera pose keyframe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseKey {
    /// Camera position.
    pub eye: Vec3,
    /// Look-at target.
    pub target: Vec3,
}

/// Centripetal-flavored Catmull–Rom interpolation over `keys` at parameter
/// `t ∈ [0, 1]` spanning the whole key sequence (uniform knots).
///
/// Endpoints are clamped (the first/last segments use duplicated end keys).
///
/// # Panics
///
/// Panics when `keys` is empty.
pub fn catmull_rom(keys: &[Vec3], t: f32) -> Vec3 {
    assert!(!keys.is_empty(), "need at least one key");
    if keys.len() == 1 {
        return keys[0];
    }
    let segs = (keys.len() - 1) as f32;
    let s = (t.clamp(0.0, 1.0)) * segs;
    let i = (s.floor() as usize).min(keys.len() - 2);
    let u = s - i as f32;
    spline_segment(
        keys[i.saturating_sub(1)],
        keys[i],
        keys[i + 1],
        keys[(i + 2).min(keys.len() - 1)],
        u,
    )
}

/// One uniform Catmull–Rom segment between `p1` and `p2` at local parameter
/// `u ∈ [0, 1]`, with `p0`/`p3` the neighboring control points. Factored out
/// so [`Trajectory::sample`] can evaluate segments without materializing a
/// control-point vector; the operation order is exactly [`catmull_rom`]'s,
/// keeping the two paths bit-identical.
fn spline_segment(p0: Vec3, p1: Vec3, p2: Vec3, p3: Vec3, u: f32) -> Vec3 {
    let u2 = u * u;
    let u3 = u2 * u;
    (p1 * 2.0
        + (p2 - p0) * u
        + (p0 * 2.0 - p1 * 5.0 + p2 * 4.0 - p3) * u2
        + (p1 * 3.0 - p0 - p2 * 3.0 + p3) * u3)
        * 0.5
}

/// A smooth camera trajectory derived from sparse keyframes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    keys: Vec<PoseKey>,
    /// Whether the trajectory loops back to the first key.
    looped: bool,
}

impl Trajectory {
    /// Build from keyframes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two keyframes are supplied.
    pub fn new(keys: Vec<PoseKey>, looped: bool) -> Self {
        assert!(keys.len() >= 2, "need at least two pose keys");
        Self { keys, looped }
    }

    /// Number of control points including the implicit loop-closing key.
    fn effective_len(&self) -> usize {
        self.keys.len() + usize::from(self.looped)
    }

    /// Control point `i` of the effective (loop-closed) key sequence.
    fn effective_key(&self, i: usize) -> PoseKey {
        if i == self.keys.len() {
            self.keys[0]
        } else {
            self.keys[i]
        }
    }

    /// Pose at `t ∈ [0, 1]`.
    ///
    /// Allocation-free: the frame server samples a trajectory once per
    /// admitted frame, so this must not clone the key list per call (the
    /// original implementation materialized three temporary vectors). The
    /// index math and `spline_segment` evaluation reproduce
    /// [`catmull_rom`] over the loop-closed key sequence exactly, so the
    /// rewrite is bit-identical to the old path.
    pub fn sample(&self, t: f32) -> PoseKey {
        let len = self.effective_len();
        let segs = (len - 1) as f32;
        let s = (t.clamp(0.0, 1.0)) * segs;
        let i = (s.floor() as usize).min(len - 2);
        let u = s - i as f32;
        let k0 = self.effective_key(i.saturating_sub(1));
        let k1 = self.effective_key(i);
        let k2 = self.effective_key(i + 1);
        let k3 = self.effective_key((i + 2).min(len - 1));
        PoseKey {
            eye: spline_segment(k0.eye, k1.eye, k2.eye, k3.eye, u),
            target: spline_segment(k0.target, k1.target, k2.target, k3.target, u),
        }
    }

    /// Camera `i` of an `n`-pose densification — the single-frame form of
    /// [`Trajectory::cameras`], so a frame server can derive any frame's
    /// camera on demand without materializing the whole pose list.
    /// `cameras(prototype, n)[i] == camera_at(prototype, i, n)` exactly.
    ///
    /// # Panics
    ///
    /// Panics when `n < 2` or `i >= n`.
    pub fn camera_at(&self, prototype: &Camera, i: usize, n: usize) -> Camera {
        assert!(n >= 2, "need at least two samples");
        assert!(i < n, "frame index {i} out of range for {n} samples");
        let t = i as f32 / (n - 1) as f32;
        let pose = self.sample(t);
        Camera {
            eye: pose.eye,
            target: pose.target,
            ..*prototype
        }
    }

    /// Densify into `n` camera poses using `prototype` for the intrinsics.
    ///
    /// The paper's configuration is `n = 1_440` (16 s at 90 FPS).
    pub fn cameras(&self, prototype: &Camera, n: usize) -> Vec<Camera> {
        assert!(n >= 2, "need at least two samples");
        (0..n).map(|i| self.camera_at(prototype, i, n)).collect()
    }

    /// Number of keyframes (excluding the implicit loop-closing key).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }
}

/// An orbit trajectory around `center` at `radius` and `height`, the pattern
/// used for the synthetic datasets' training/eval pose rings.
pub fn orbit(center: Vec3, radius: f32, height: f32, key_count: usize) -> Trajectory {
    assert!(key_count >= 3, "orbit needs at least 3 keys");
    let keys = (0..key_count)
        .map(|i| {
            let theta = i as f32 / key_count as f32 * std::f32::consts::TAU;
            PoseKey {
                eye: center + Vec3::new(radius * theta.cos(), height, radius * theta.sin()),
                target: center,
            }
        })
        .collect();
    Trajectory::new(keys, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn catmull_rom_hits_keys() {
        let keys = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 2.0, 0.0),
            Vec3::new(3.0, 0.0, -1.0),
        ];
        assert!(catmull_rom(&keys, 0.0).distance(keys[0]) < 1e-5);
        assert!(catmull_rom(&keys, 0.5).distance(keys[1]) < 1e-5);
        assert!(catmull_rom(&keys, 1.0).distance(keys[2]) < 1e-5);
    }

    #[test]
    fn catmull_rom_single_key() {
        assert_eq!(catmull_rom(&[Vec3::one()], 0.7), Vec3::one());
    }

    #[test]
    fn trajectory_densification_count_and_smoothness() {
        let traj = orbit(Vec3::zero(), 5.0, 1.0, 8);
        let proto = Camera::look_at(64, 64, 60.0, Vec3::zero(), Vec3::one());
        let cams = traj.cameras(&proto, 1_440);
        assert_eq!(cams.len(), 1_440);
        // Adjacent poses should move smoothly — tiny steps for 1,440 samples.
        for w in cams.windows(2) {
            assert!(w[0].eye.distance(w[1].eye) < 0.1);
        }
    }

    #[test]
    fn looped_orbit_closes() {
        let traj = orbit(Vec3::zero(), 5.0, 1.0, 6);
        let a = traj.sample(0.0);
        let b = traj.sample(1.0);
        assert!(a.eye.distance(b.eye) < 1e-4);
    }

    #[test]
    fn orbit_keeps_radius_at_keys() {
        let traj = orbit(Vec3::new(1.0, 0.0, 0.0), 4.0, 2.0, 12);
        for i in 0..12 {
            let t = i as f32 / 12.0;
            let pose = traj.sample(t);
            let planar = Vec3::new(pose.eye.x - 1.0, 0.0, pose.eye.z);
            assert!(
                (planar.length() - 4.0).abs() < 0.3,
                "t={t}: {}",
                planar.length()
            );
        }
    }

    #[test]
    #[should_panic]
    fn trajectory_requires_two_keys() {
        let _ = Trajectory::new(
            vec![PoseKey {
                eye: Vec3::zero(),
                target: Vec3::one(),
            }],
            false,
        );
    }

    proptest! {
        #[test]
        fn sample_is_bounded_by_key_hull_margin(t in 0.0f32..1.0) {
            let traj = orbit(Vec3::zero(), 3.0, 0.5, 10);
            let pose = traj.sample(t);
            // Catmull-Rom can overshoot slightly but stays near the orbit.
            prop_assert!(pose.eye.length() < 6.0);
            prop_assert!(pose.target.length() < 1e-4);
        }
    }
}
