//! Binary (de)serialization of [`GaussianModel`] checkpoints.
//!
//! A simple framed little-endian format (magic, version, SH degree, point
//! count, then the SoA arrays). The encoded size equals
//! [`GaussianModel::storage_bytes`] plus a fixed 16-byte header, so storage
//! comparisons in the evaluation (Tbl. 1 "Storage (MB)") measure real bytes.

use crate::GaussianModel;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

const MAGIC: u32 = 0x4D53_4753; // "MSGS"
const VERSION: u16 = 1;

/// Errors produced by [`decode_model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic number.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The buffer ended before all declared data was read.
    Truncated,
    /// Decoded data failed model validation.
    Invalid(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic number"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::Invalid(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl Error for DecodeError {}

/// Encode a model to bytes.
pub fn encode_model(model: &GaussianModel) -> Bytes {
    let n = model.len();
    let mut buf = BytesMut::with_capacity(16 + model.storage_bytes());
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(model.sh_degree as u16);
    buf.put_u64_le(n as u64);
    for p in &model.positions {
        buf.put_f32_le(p.x);
        buf.put_f32_le(p.y);
        buf.put_f32_le(p.z);
    }
    for s in &model.scales {
        buf.put_f32_le(s.x);
        buf.put_f32_le(s.y);
        buf.put_f32_le(s.z);
    }
    for q in &model.rotations {
        buf.put_f32_le(q.w);
        buf.put_f32_le(q.x);
        buf.put_f32_le(q.y);
        buf.put_f32_le(q.z);
    }
    for &o in &model.opacities {
        buf.put_f32_le(o);
    }
    for &c in &model.sh_coeffs {
        buf.put_f32_le(c);
    }
    buf.freeze()
}

/// Decode a model from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the buffer is malformed, truncated, or
/// decodes to a model violating [`GaussianModel::validate`].
pub fn decode_model(mut data: &[u8]) -> Result<GaussianModel, DecodeError> {
    if data.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let sh_degree = data.get_u16_le() as usize;
    if sh_degree > ms_math::sh::MAX_DEGREE {
        return Err(DecodeError::Invalid(format!("sh degree {sh_degree}")));
    }
    let n = data.get_u64_le() as usize;
    let mut model = GaussianModel::new(sh_degree);
    let stride = model.sh_stride();
    let need = n * (12 + 12 + 16 + 4 + stride * 4);
    if data.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    model.positions.reserve(n);
    model.scales.reserve(n);
    model.rotations.reserve(n);
    model.opacities.reserve(n);
    model.sh_coeffs.reserve(n * stride);
    for _ in 0..n {
        model.positions.push(ms_math::Vec3::new(
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
        ));
    }
    for _ in 0..n {
        model.scales.push(ms_math::Vec3::new(
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
        ));
    }
    for _ in 0..n {
        model.rotations.push(ms_math::Quat::new(
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
        ));
    }
    for _ in 0..n {
        model.opacities.push(data.get_f32_le());
    }
    for _ in 0..n * stride {
        model.sh_coeffs.push(data.get_f32_le());
    }
    model.validate().map_err(DecodeError::Invalid)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SceneSpec};

    fn sample() -> GaussianModel {
        generate(&SceneSpec {
            total_points: 300,
            ..SceneSpec::default()
        })
        .unwrap()
        .model
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = encode_model(&m);
        let back = decode_model(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn encoded_size_matches_storage_accounting() {
        let m = sample();
        assert_eq!(encode_model(&m).len(), 16 + m.storage_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let m = sample();
        let mut bytes = encode_model(&m).to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(decode_model(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let m = sample();
        let bytes = encode_model(&m);
        assert_eq!(
            decode_model(&bytes[..bytes.len() - 8]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode_model(&bytes[..4]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_version_rejected() {
        let m = sample();
        let mut bytes = encode_model(&m).to_vec();
        bytes[4] = 0x7F;
        assert!(matches!(
            decode_model(&bytes),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn empty_model_roundtrips() {
        let m = GaussianModel::new(2);
        let back = decode_model(&encode_model(&m)).unwrap();
        assert_eq!(m, back);
    }
}
