//! Binary (de)serialization of [`GaussianModel`] checkpoints and the
//! chunked [`SceneSource`] abstraction for out-of-core scenes.
//!
//! Two framed little-endian formats live here:
//!
//! * the flat checkpoint (`encode_model`/`decode_model`): magic, version,
//!   SH degree, point count, then the SoA arrays. The encoded size equals
//!   [`GaussianModel::storage_bytes`] plus a fixed 16-byte header, so storage
//!   comparisons in the evaluation (Tbl. 1 "Storage (MB)") measure real
//!   bytes.
//! * the chunked container (`encode_model_chunked` /
//!   [`ChunkedFileSource`]): a header plus a length-prefixed chunk table,
//!   followed by one complete flat checkpoint per chunk. Chunks can be
//!   loaded independently, so a renderer never needs the whole model
//!   resident — see [`SceneSource`].

use crate::synth::{generate, SceneSpec};
use crate::GaussianModel;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const MAGIC: u32 = 0x4D53_4753; // "MSGS"
const VERSION: u16 = 1;

const CHUNK_MAGIC: u32 = 0x4D53_4743; // "MSGC"
const CHUNK_VERSION: u16 = 1;
const CHUNK_HEADER_BYTES: usize = 12;
const CHUNK_TABLE_ENTRY_BYTES: usize = 16;

/// Errors produced by [`decode_model`] and [`ChunkedFileSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic number.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The buffer ended before all declared data was read.
    Truncated,
    /// Decoded data failed model validation.
    Invalid(String),
    /// The backing file could not be read.
    Io(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic number"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::Invalid(msg) => write!(f, "invalid model: {msg}"),
            DecodeError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl Error for DecodeError {}

/// Encode a model to bytes.
pub fn encode_model(model: &GaussianModel) -> Bytes {
    let n = model.len();
    let mut buf = BytesMut::with_capacity(16 + model.storage_bytes());
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(model.sh_degree as u16);
    buf.put_u64_le(n as u64);
    for p in &model.positions {
        buf.put_f32_le(p.x);
        buf.put_f32_le(p.y);
        buf.put_f32_le(p.z);
    }
    for s in &model.scales {
        buf.put_f32_le(s.x);
        buf.put_f32_le(s.y);
        buf.put_f32_le(s.z);
    }
    for q in &model.rotations {
        buf.put_f32_le(q.w);
        buf.put_f32_le(q.x);
        buf.put_f32_le(q.y);
        buf.put_f32_le(q.z);
    }
    for &o in &model.opacities {
        buf.put_f32_le(o);
    }
    for &c in &model.sh_coeffs {
        buf.put_f32_le(c);
    }
    buf.freeze()
}

/// Decode a model from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the buffer is malformed, truncated, or
/// decodes to a model violating [`GaussianModel::validate`].
pub fn decode_model(data: &[u8]) -> Result<GaussianModel, DecodeError> {
    let mut model = GaussianModel::default();
    decode_model_into(data, &mut model)?;
    Ok(model)
}

/// Decode a model from bytes into an existing buffer, replacing its
/// contents but keeping its allocations (the chunked streaming path decodes
/// every chunk into one recycled model).
///
/// # Errors
///
/// Same contract as [`decode_model`].
pub fn decode_model_into(mut data: &[u8], into: &mut GaussianModel) -> Result<(), DecodeError> {
    if data.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let sh_degree = data.get_u16_le() as usize;
    if sh_degree > ms_math::sh::MAX_DEGREE {
        return Err(DecodeError::Invalid(format!("sh degree {sh_degree}")));
    }
    let n = data.get_u64_le() as usize;
    into.sh_degree = sh_degree;
    into.positions.clear();
    into.scales.clear();
    into.rotations.clear();
    into.opacities.clear();
    into.sh_coeffs.clear();
    let stride = into.sh_stride();
    let need = n * (12 + 12 + 16 + 4 + stride * 4);
    if data.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    into.positions.reserve(n);
    into.scales.reserve(n);
    into.rotations.reserve(n);
    into.opacities.reserve(n);
    into.sh_coeffs.reserve(n * stride);
    for _ in 0..n {
        into.positions.push(ms_math::Vec3::new(
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
        ));
    }
    for _ in 0..n {
        into.scales.push(ms_math::Vec3::new(
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
        ));
    }
    for _ in 0..n {
        into.rotations.push(ms_math::Quat::new(
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
            data.get_f32_le(),
        ));
    }
    for _ in 0..n {
        into.opacities.push(data.get_f32_le());
    }
    for _ in 0..n * stride {
        into.sh_coeffs.push(data.get_f32_le());
    }
    into.validate().map_err(DecodeError::Invalid)?;
    Ok(())
}

/// Encode a model as a chunked container: a 12-byte header (magic, version,
/// SH degree, chunk count), a chunk table of `(byte_len, point_count)` u64
/// pairs, then one complete [`encode_model`] blob per chunk of at most
/// `chunk_splats` points.
///
/// An empty model encodes as a valid 0-chunk container.
///
/// # Panics
///
/// Panics when `chunk_splats == 0` or the model exceeds `u32::MAX` chunks.
pub fn encode_model_chunked(model: &GaussianModel, chunk_splats: usize) -> Bytes {
    assert!(chunk_splats > 0, "chunk_splats must be > 0");
    let n = model.len();
    let chunk_count = n.div_ceil(chunk_splats);
    assert!(chunk_count <= u32::MAX as usize, "too many chunks");
    let mut blobs = Vec::with_capacity(chunk_count);
    let mut chunk = GaussianModel::new(model.sh_degree);
    for c in 0..chunk_count {
        let start = c * chunk_splats;
        let end = (start + chunk_splats).min(n);
        model.clone_range_into(start..end, &mut chunk);
        blobs.push(encode_model(&chunk));
    }
    let blob_bytes: usize = blobs.iter().map(|b| b.len()).sum();
    let mut buf = BytesMut::with_capacity(
        CHUNK_HEADER_BYTES + chunk_count * CHUNK_TABLE_ENTRY_BYTES + blob_bytes,
    );
    buf.put_u32_le(CHUNK_MAGIC);
    buf.put_u16_le(CHUNK_VERSION);
    buf.put_u16_le(model.sh_degree as u16);
    buf.put_u32_le(chunk_count as u32);
    for (c, blob) in blobs.iter().enumerate() {
        let start = c * chunk_splats;
        let end = (start + chunk_splats).min(n);
        buf.put_u64_le(blob.len() as u64);
        buf.put_u64_le((end - start) as u64);
    }
    for blob in &blobs {
        buf.put_slice(blob);
    }
    buf.freeze()
}

/// Errors produced by [`SceneSource`] chunk loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// Chunk index beyond [`SceneSource::chunk_count`].
    OutOfRange {
        /// The requested chunk index.
        index: usize,
        /// The source's chunk count.
        count: usize,
    },
    /// The chunk's stored bytes failed to decode.
    Decode(DecodeError),
    /// Procedural generation of the chunk failed.
    Synth(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::OutOfRange { index, count } => {
                write!(f, "chunk {index} out of range (count {count})")
            }
            SourceError::Decode(e) => write!(f, "chunk decode failed: {e}"),
            SourceError::Synth(msg) => write!(f, "chunk generation failed: {msg}"),
        }
    }
}

impl Error for SourceError {}

impl From<DecodeError> for SourceError {
    fn from(e: DecodeError) -> Self {
        SourceError::Decode(e)
    }
}

/// A scene delivered as a sequence of independently loadable chunks.
///
/// The resident-budget contract: a consumer owns **one** chunk buffer (plus
/// whatever per-chunk scratch it derives) and calls
/// [`load_chunk_into`](SceneSource::load_chunk_into) repeatedly, so peak
/// model residency is one chunk, not the whole scene. Chunk order is part
/// of the source's identity — concatenating chunks `0..chunk_count` in
/// order yields exactly the flat model, which is what makes chunked
/// rendering bit-identical to in-core rendering (see
/// `tests/determinism.rs`).
///
/// All methods take `&self` so one source behind an
/// `Arc<dyn SceneSource + Send + Sync>` can feed many concurrent sessions.
pub trait SceneSource {
    /// Number of chunks.
    fn chunk_count(&self) -> usize;

    /// Point count of chunk `index` (without loading it).
    fn chunk_len(&self, index: usize) -> usize;

    /// Total points across all chunks.
    fn total_points(&self) -> usize;

    /// SH degree shared by every chunk.
    fn sh_degree(&self) -> usize;

    /// Stable identity of this source for cross-frame chunk caching: two
    /// sources must return the same id **only** when every chunk load from
    /// either produces identical data. Implementors allocate one with
    /// [`next_source_id`] at construction (clones of a source may share
    /// their original's id, since they serve identical chunks).
    fn source_id(&self) -> u64;

    /// Load chunk `index` into `into`, replacing its contents but keeping
    /// its allocations.
    ///
    /// # Errors
    ///
    /// Returns a [`SourceError`] when the index is out of range or the
    /// chunk cannot be produced.
    fn load_chunk_into(&self, index: usize, into: &mut GaussianModel) -> Result<(), SourceError>;

    /// Global index of chunk `index`'s first point (the sum of preceding
    /// chunk lengths).
    fn chunk_base(&self, index: usize) -> usize {
        (0..index).map(|i| self.chunk_len(i)).sum()
    }

    /// Convenience: load chunk `index` into a fresh model.
    ///
    /// # Errors
    ///
    /// Same contract as [`load_chunk_into`](SceneSource::load_chunk_into).
    fn load_chunk(&self, index: usize) -> Result<GaussianModel, SourceError> {
        let mut model = GaussianModel::new(self.sh_degree());
        self.load_chunk_into(index, &mut model)?;
        Ok(model)
    }

    /// Load a coarse (LOD) subset of chunk `index`: every `stride`-th point
    /// by **global** index, opacity rescaled (see [`coarse_subset`]).
    /// Keying the selection on global rather than chunk-local indices makes
    /// the coarse scene independent of the chunking: concatenating coarse
    /// chunks equals the coarse subset of the flat model for every chunk
    /// size. `stride <= 1` loads the full chunk.
    ///
    /// # Errors
    ///
    /// Same contract as [`load_chunk_into`](SceneSource::load_chunk_into).
    fn load_coarse_chunk_into(
        &self,
        index: usize,
        stride: usize,
        into: &mut GaussianModel,
    ) -> Result<(), SourceError> {
        self.load_chunk_into(index, into)?;
        if stride >= 2 {
            *into = coarse_subset(into, stride, self.chunk_base(index));
        }
        Ok(())
    }
}

/// Every `stride`-th point of `model` counted from global index
/// `global_base` (the model's offset within a larger scene), with opacity
/// multiplied by `stride` (clamped to 1) so the thinned set keeps roughly
/// the original total opacity mass. `stride <= 1` returns a clone.
///
/// Selection is deterministic and chunking-invariant: for any split of a
/// scene into chunks, concatenating `coarse_subset(chunk, k, base)` over
/// the chunks equals `coarse_subset(scene, k, 0)`.
pub fn coarse_subset(model: &GaussianModel, stride: usize, global_base: usize) -> GaussianModel {
    if stride <= 1 {
        return model.clone();
    }
    let kept: Vec<usize> = (0..model.len())
        .filter(|i| (global_base + i) % stride == 0)
        .collect();
    let mut out = model.subset(&kept);
    for o in &mut out.opacities {
        *o = (*o * stride as f32).min(1.0);
    }
    out
}

/// Default chunk size (points per chunk) when neither the caller nor the
/// `MS_CHUNK_SPLATS` environment variable pins one.
pub const DEFAULT_CHUNK_SPLATS: usize = 65_536;

/// Resolve the chunk size: a non-zero `pinned` value wins, otherwise the
/// `MS_CHUNK_SPLATS` environment variable, otherwise
/// [`DEFAULT_CHUNK_SPLATS`]. Mirrors the `MS_RASTER_KERNEL` /
/// `MS_RASTER_STAGING` seams in `ms_render`: tests and CI pin the chunk
/// axis through the environment without plumbing a parameter everywhere.
///
/// # Panics
///
/// Panics when `MS_CHUNK_SPLATS` is set but not a positive integer — a
/// typo silently falling back would unpin a determinism run.
pub fn resolved_chunk_splats(pinned: usize) -> usize {
    if pinned != 0 {
        return pinned;
    }
    match std::env::var("MS_CHUNK_SPLATS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("MS_CHUNK_SPLATS={v:?}: expected a positive integer"),
        },
        Err(_) => DEFAULT_CHUNK_SPLATS,
    }
}

/// The identity [`SceneSource`]: an in-memory [`GaussianModel`] sliced into
/// fixed-size chunks. Exercises the chunked path without I/O and anchors
/// the bit-identity tests (chunked-over-`InCoreSource` must equal rendering
/// the wrapped model directly).
#[derive(Debug, Clone)]
pub struct InCoreSource {
    model: GaussianModel,
    chunk_splats: usize,
    source_id: u64,
}

impl InCoreSource {
    /// Wrap `model`, exposing it as chunks of at most `chunk_splats` points.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_splats == 0`.
    pub fn new(model: GaussianModel, chunk_splats: usize) -> Self {
        assert!(chunk_splats > 0, "chunk_splats must be > 0");
        Self {
            model,
            chunk_splats,
            source_id: next_source_id(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &GaussianModel {
        &self.model
    }
}

impl SceneSource for InCoreSource {
    fn chunk_count(&self) -> usize {
        self.model.len().div_ceil(self.chunk_splats)
    }

    fn chunk_len(&self, index: usize) -> usize {
        let start = index * self.chunk_splats;
        (self.model.len() - start.min(self.model.len())).min(self.chunk_splats)
    }

    fn total_points(&self) -> usize {
        self.model.len()
    }

    fn sh_degree(&self) -> usize {
        self.model.sh_degree
    }

    fn source_id(&self) -> u64 {
        self.source_id
    }

    fn chunk_base(&self, index: usize) -> usize {
        (index * self.chunk_splats).min(self.model.len())
    }

    fn load_chunk_into(&self, index: usize, into: &mut GaussianModel) -> Result<(), SourceError> {
        let count = self.chunk_count();
        if index >= count {
            return Err(SourceError::OutOfRange { index, count });
        }
        let start = index * self.chunk_splats;
        let end = (start + self.chunk_splats).min(self.model.len());
        self.model.clone_range_into(start..end, into);
        Ok(())
    }
}

enum Backing {
    Bytes(Vec<u8>),
    File(std::fs::File),
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backing::Bytes(b) => write!(f, "Bytes({} bytes)", b.len()),
            Backing::File(_) => write!(f, "File"),
        }
    }
}

/// A [`SceneSource`] over the chunked container format written by
/// [`encode_model_chunked`]. The header and chunk table are validated
/// eagerly at construction (truncated or malformed containers fail with a
/// [`DecodeError`], never a panic); chunk blobs are decoded lazily, one
/// `load_chunk_into` at a time — file-backed sources read each blob with
/// positioned reads, so the whole container is never resident.
#[derive(Debug)]
pub struct ChunkedFileSource {
    backing: Backing,
    sh_degree: usize,
    /// Byte offset of each chunk's blob within the container.
    chunk_offsets: Vec<u64>,
    chunk_bytes: Vec<u64>,
    chunk_points: Vec<usize>,
    total_points: usize,
    source_id: u64,
}

/// Parsed container header + chunk table.
struct ChunkMeta {
    sh_degree: usize,
    chunk_offsets: Vec<u64>,
    chunk_bytes: Vec<u64>,
    chunk_points: Vec<usize>,
    total_points: usize,
}

impl ChunkMeta {
    /// Parse the header and chunk table from `head` (which must hold at
    /// least the header + table region) and bounds-check every blob against
    /// the container's total byte length.
    fn parse(mut head: &[u8], container_len: u64) -> Result<Self, DecodeError> {
        if head.remaining() < CHUNK_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        if head.get_u32_le() != CHUNK_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = head.get_u16_le();
        if version != CHUNK_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let sh_degree = head.get_u16_le() as usize;
        if sh_degree > ms_math::sh::MAX_DEGREE {
            return Err(DecodeError::Invalid(format!("sh degree {sh_degree}")));
        }
        let chunk_count = head.get_u32_le() as usize;
        if head.remaining() < chunk_count * CHUNK_TABLE_ENTRY_BYTES {
            return Err(DecodeError::Truncated);
        }
        let mut chunk_offsets = Vec::with_capacity(chunk_count);
        let mut chunk_bytes = Vec::with_capacity(chunk_count);
        let mut chunk_points = Vec::with_capacity(chunk_count);
        let mut offset = (CHUNK_HEADER_BYTES + chunk_count * CHUNK_TABLE_ENTRY_BYTES) as u64;
        let mut total_points = 0usize;
        for i in 0..chunk_count {
            let byte_len = head.get_u64_le();
            let points = head.get_u64_le();
            let end = offset.checked_add(byte_len).ok_or(DecodeError::Truncated)?;
            if end > container_len {
                return Err(DecodeError::Truncated);
            }
            let points = usize::try_from(points)
                .map_err(|_| DecodeError::Invalid(format!("chunk {i} point count")))?;
            total_points = total_points
                .checked_add(points)
                .ok_or_else(|| DecodeError::Invalid("total point count overflow".into()))?;
            chunk_offsets.push(offset);
            chunk_bytes.push(byte_len);
            chunk_points.push(points);
            offset = end;
        }
        Ok(Self {
            sh_degree,
            chunk_offsets,
            chunk_bytes,
            chunk_points,
            total_points,
        })
    }
}

impl ChunkedFileSource {
    fn from_meta(backing: Backing, meta: ChunkMeta) -> Self {
        Self {
            backing,
            sh_degree: meta.sh_degree,
            chunk_offsets: meta.chunk_offsets,
            chunk_bytes: meta.chunk_bytes,
            chunk_points: meta.chunk_points,
            total_points: meta.total_points,
            source_id: next_source_id(),
        }
    }

    /// Open an in-memory container.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the header or chunk table is
    /// malformed or any blob extends past the buffer.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, DecodeError> {
        let meta = ChunkMeta::parse(&data, data.len() as u64)?;
        Ok(Self::from_meta(Backing::Bytes(data), meta))
    }

    /// Open a container file. Only the header and chunk table are read up
    /// front; blobs are read on demand with positioned reads.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] (`Io` for filesystem failures) when the
    /// file cannot be read or its header/table is malformed.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, DecodeError> {
        use std::os::unix::fs::FileExt;
        let file = std::fs::File::open(path).map_err(|e| DecodeError::Io(e.to_string()))?;
        let container_len = file
            .metadata()
            .map_err(|e| DecodeError::Io(e.to_string()))?
            .len();
        if container_len < CHUNK_HEADER_BYTES as u64 {
            return Err(DecodeError::Truncated);
        }
        let mut header = [0u8; CHUNK_HEADER_BYTES];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| DecodeError::Io(e.to_string()))?;
        let chunk_count = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        let head_len = CHUNK_HEADER_BYTES + chunk_count as usize * CHUNK_TABLE_ENTRY_BYTES;
        if container_len < head_len as u64 {
            return Err(DecodeError::Truncated);
        }
        let mut head = vec![0u8; head_len];
        file.read_exact_at(&mut head, 0)
            .map_err(|e| DecodeError::Io(e.to_string()))?;
        let meta = ChunkMeta::parse(&head, container_len)?;
        Ok(Self::from_meta(Backing::File(file), meta))
    }
}

impl SceneSource for ChunkedFileSource {
    fn chunk_count(&self) -> usize {
        self.chunk_points.len()
    }

    fn chunk_len(&self, index: usize) -> usize {
        self.chunk_points[index]
    }

    fn total_points(&self) -> usize {
        self.total_points
    }

    fn sh_degree(&self) -> usize {
        self.sh_degree
    }

    fn source_id(&self) -> u64 {
        self.source_id
    }

    fn load_chunk_into(&self, index: usize, into: &mut GaussianModel) -> Result<(), SourceError> {
        let count = self.chunk_count();
        if index >= count {
            return Err(SourceError::OutOfRange { index, count });
        }
        let offset = self.chunk_offsets[index];
        let len = self.chunk_bytes[index] as usize;
        match &self.backing {
            Backing::Bytes(data) => {
                let start = offset as usize;
                decode_model_into(&data[start..start + len], into)?;
            }
            Backing::File(file) => {
                use std::os::unix::fs::FileExt;
                let mut blob = vec![0u8; len];
                file.read_exact_at(&mut blob, offset)
                    .map_err(|e| DecodeError::Io(e.to_string()))?;
                decode_model_into(&blob, into)?;
            }
        }
        if into.len() != self.chunk_points[index] || into.sh_degree != self.sh_degree {
            return Err(SourceError::Decode(DecodeError::Invalid(format!(
                "chunk {index} disagrees with the chunk table \
                 ({} points, degree {})",
                into.len(),
                into.sh_degree
            ))));
        }
        Ok(())
    }
}

/// A [`SceneSource`] that procedurally generates each chunk on demand from
/// a base [`SceneSpec`] — arbitrarily large benchmark scenes with O(chunk)
/// memory. Chunk `i` is generated from a derived spec (seed mixed with the
/// chunk index), so chunks are independent and each load is deterministic;
/// note that unlike the other sources the *scene itself* depends on the
/// chunk size.
#[derive(Debug, Clone)]
pub struct SynthChunkedSource {
    spec: SceneSpec,
    chunk_splats: usize,
    source_id: u64,
}

impl SynthChunkedSource {
    /// Create a source generating `spec.total_points` points in chunks of
    /// at most `chunk_splats`.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid or `chunk_splats == 0`.
    pub fn new(spec: SceneSpec, chunk_splats: usize) -> Result<Self, String> {
        if chunk_splats == 0 {
            return Err("chunk_splats must be > 0".into());
        }
        spec.validate()?;
        Ok(Self {
            spec,
            chunk_splats,
            source_id: next_source_id(),
        })
    }

    /// The derived spec generating chunk `index`.
    fn chunk_spec(&self, index: usize) -> SceneSpec {
        SceneSpec {
            seed: self
                .spec
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
            total_points: self.chunk_len(index),
            ..self.spec.clone()
        }
    }
}

impl SceneSource for SynthChunkedSource {
    fn chunk_count(&self) -> usize {
        self.spec.total_points.div_ceil(self.chunk_splats)
    }

    fn chunk_len(&self, index: usize) -> usize {
        let start = index * self.chunk_splats;
        (self.spec.total_points - start.min(self.spec.total_points)).min(self.chunk_splats)
    }

    fn total_points(&self) -> usize {
        self.spec.total_points
    }

    fn sh_degree(&self) -> usize {
        self.spec.sh_degree
    }

    fn source_id(&self) -> u64 {
        self.source_id
    }

    fn chunk_base(&self, index: usize) -> usize {
        (index * self.chunk_splats).min(self.spec.total_points)
    }

    fn load_chunk_into(&self, index: usize, into: &mut GaussianModel) -> Result<(), SourceError> {
        let count = self.chunk_count();
        if index >= count {
            return Err(SourceError::OutOfRange { index, count });
        }
        let scene = generate(&self.chunk_spec(index)).map_err(SourceError::Synth)?;
        debug_assert_eq!(scene.model.len(), self.chunk_len(index));
        *into = scene.model;
        Ok(())
    }
}

static NEXT_SOURCE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique [`SceneSource::source_id`]. Every concrete
/// source takes one at construction; ids are never reused, so a cache entry
/// can only ever be served back to the source that produced it.
pub fn next_source_id() -> u64 {
    NEXT_SOURCE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Identity of one decoded chunk in a [`ChunkCache`]:
/// `(source, chunk index, LOD stride)`. LOD 0 is the full-resolution chunk;
/// a non-zero LOD is the stride of a
/// [`load_coarse_chunk_into`](SceneSource::load_coarse_chunk_into) subset,
/// cached separately because it holds different points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// [`SceneSource::source_id`] of the producing source.
    pub source_id: u64,
    /// Chunk index within that source.
    pub chunk_idx: usize,
    /// LOD stride (0 = full resolution).
    pub lod: usize,
}

/// Counter block describing a [`ChunkCache`]'s traffic. Rides in
/// `FrameProfile` (per-frame deltas) and `ServerReport` (whole-cache
/// totals). Like the other profile byte counters, it is *excluded* from
/// profile equality: hit patterns depend on cache budget and session
/// interleaving, while pixels and work counters do not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache (decode skipped).
    pub hits: u64,
    /// Lookups that fell through to the source.
    pub misses: u64,
    /// Entries evicted to make room under the byte budget.
    pub evictions: u64,
    /// High-water mark of resident decoded bytes.
    pub resident_bytes_peak: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Merge another stats block into this one: traffic counters add,
    /// the resident high-water takes the max.
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.resident_bytes_peak = self.resident_bytes_peak.max(other.resident_bytes_peak);
    }
}

/// Outcome of one [`ChunkCache::load_into`] call, for per-frame stats
/// attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the chunk was served from the cache.
    pub hit: bool,
    /// Entries this load evicted when inserting its miss.
    pub evictions: u64,
}

/// Default [`ChunkCache`] byte budget when neither the caller nor the
/// `MS_CHUNK_CACHE` environment variable pins one (32 MiB — a few hundred
/// default-size chunks of SH-degree-0 scenes, small against the render
/// buffers of even one session).
pub const DEFAULT_CHUNK_CACHE_BYTES: usize = 32 << 20;

const CACHE_SHARDS: usize = 8;

/// One decoded chunk held by a cache shard.
struct CacheEntry {
    key: ChunkKey,
    model: GaussianModel,
    bytes: u64,
}

/// One lock's worth of cache: entries ordered least- (front) to most-
/// (back) recently used. Linear scans are fine — a shard holds at most a
/// few hundred chunk-sized entries, and every hit already pays a chunk
/// memcpy that dwarfs the scan.
#[derive(Default)]
struct CacheShard {
    entries: Vec<CacheEntry>,
}

/// A byte-budgeted, sharded LRU cache of **decoded** chunks, keyed by
/// [`ChunkKey`]. Shared `Arc`-wide: every renderer holds one, and a frame
/// server hands the same cache to all of its sessions, so sessions
/// rendering the same scene hit each other's decodes — the second (scatter)
/// pass of a streamed frame, and every frame after the first, skip the
/// decode entirely.
///
/// Caching never changes pixels: a hit replays the exact bytes the decode
/// produced (decoding is deterministic in the chunk contents), so cached
/// and uncached renders are bit-identical for every budget — the cache only
/// moves wall time. See `tests/determinism.rs`.
///
/// The byte budget is enforced globally across shards: an insert reserves
/// its bytes against the shared resident counter first and evicts from its
/// own shard (strict per-shard LRU order) until the reservation fits,
/// declining to store when its shard has nothing left to evict. Resident
/// bytes therefore never exceed the budget, even under concurrent inserts.
/// A zero budget degrades to pass-through: nothing is stored, every lookup
/// is a miss, and resident bytes stay zero.
pub struct ChunkCache {
    shards: Vec<Mutex<CacheShard>>,
    budget: u64,
    resident: AtomicU64,
    resident_peak: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkCache")
            .field("budget_bytes", &self.budget)
            .field("resident_bytes", &self.resident_bytes())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ChunkCache {
    /// Create a cache holding at most `budget_bytes` of decoded chunks
    /// (measured by [`GaussianModel::storage_bytes`]). `0` disables storage
    /// entirely (pass-through); `usize::MAX` is effectively unbounded.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            budget: budget_bytes as u64,
            resident: AtomicU64::new(0),
            resident_peak: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Currently resident decoded bytes (always `<=` the budget).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Snapshot of the cache's lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes_peak: self.resident_peak.load(Ordering::Relaxed),
        }
    }

    /// Deterministic shard index for a key (multiply-mix of the key
    /// fields — stable across runs and platforms, unlike `RandomState`).
    fn shard_of(key: &ChunkKey) -> usize {
        const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut h = key.source_id.wrapping_mul(MIX) ^ (key.chunk_idx as u64);
        h = h.wrapping_mul(MIX) ^ (key.lod as u64);
        h = h.wrapping_mul(MIX);
        (h >> 56) as usize % CACHE_SHARDS
    }

    /// Copy the cached chunk for `key` into `into` (keeping `into`'s
    /// allocations) and mark it most recently used. Returns `false` — and
    /// leaves `into` untouched — on a miss. Counts one hit or miss.
    pub fn get_into(&self, key: &ChunkKey, into: &mut GaussianModel) -> bool {
        if self.budget > 0 {
            let mut shard = self.shards[Self::shard_of(key)].lock().unwrap();
            if let Some(pos) = shard.entries.iter().position(|e| e.key == *key) {
                let entry = shard.entries.remove(pos);
                entry.model.clone_range_into(0..entry.model.len(), into);
                shard.entries.push(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Store a decoded chunk under `key`, evicting least-recently-used
    /// entries from the key's shard as needed to honor the byte budget.
    /// Returns the number of entries evicted. Oversized chunks (and every
    /// chunk, when the budget is 0) are silently not stored; re-inserting a
    /// resident key only refreshes its recency.
    pub fn insert(&self, key: ChunkKey, model: &GaussianModel) -> u64 {
        let bytes = model.storage_bytes() as u64;
        if self.budget == 0 || bytes > self.budget {
            return 0;
        }
        let mut shard = self.shards[Self::shard_of(&key)].lock().unwrap();
        if let Some(pos) = shard.entries.iter().position(|e| e.key == key) {
            let entry = shard.entries.remove(pos);
            shard.entries.push(entry);
            return 0;
        }
        // Reserve globally before storing, so concurrent inserts into other
        // shards can never combine past the budget.
        let mut resident = self.resident.fetch_add(bytes, Ordering::AcqRel) + bytes;
        let mut evicted = 0u64;
        while resident > self.budget {
            if shard.entries.is_empty() {
                // The overshoot is resident in *other* shards; nothing local
                // to evict, so back the reservation out and decline.
                self.resident.fetch_sub(bytes, Ordering::AcqRel);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                return evicted;
            }
            let victim = shard.entries.remove(0);
            resident = self.resident.fetch_sub(victim.bytes, Ordering::AcqRel) - victim.bytes;
            evicted += 1;
        }
        shard.entries.push(CacheEntry {
            key,
            model: model.clone(),
            bytes,
        });
        self.resident_peak.fetch_max(resident, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Resident keys of one shard in LRU order (front = next eviction
    /// victim) — test observability for the LRU proptests.
    #[cfg(test)]
    fn shard_keys(&self, shard: usize) -> Vec<ChunkKey> {
        self.shards[shard]
            .lock()
            .unwrap()
            .entries
            .iter()
            .map(|e| e.key)
            .collect()
    }

    /// Cache-aware chunk load: serve `(source, index, stride)` from the
    /// cache when resident, otherwise load it from the source — verifying
    /// full-resolution chunks deliver exactly
    /// [`chunk_len`](SceneSource::chunk_len) points (a short read is a
    /// [`DecodeError::Invalid`], never silent data loss) — and insert the
    /// decoded chunk. `stride <= 1` is the full-resolution chunk; larger
    /// strides cache the coarse subset under its own LOD key.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`SourceError`]; failed loads insert
    /// nothing.
    pub fn load_into<S: SceneSource + ?Sized>(
        &self,
        source: &S,
        index: usize,
        stride: usize,
        into: &mut GaussianModel,
    ) -> Result<CacheAccess, SourceError> {
        let lod = if stride <= 1 { 0 } else { stride };
        let key = ChunkKey {
            source_id: source.source_id(),
            chunk_idx: index,
            lod,
        };
        if self.get_into(&key, into) {
            return Ok(CacheAccess {
                hit: true,
                evictions: 0,
            });
        }
        if lod == 0 {
            source.load_chunk_into(index, into)?;
            let expected = source.chunk_len(index);
            if into.len() != expected {
                return Err(SourceError::Decode(DecodeError::Invalid(format!(
                    "chunk {index} short read: {} of {expected} points",
                    into.len()
                ))));
            }
        } else {
            source.load_coarse_chunk_into(index, stride, into)?;
        }
        let evictions = self.insert(key, into);
        Ok(CacheAccess {
            hit: false,
            evictions,
        })
    }
}

/// How a [`FailingSource`] sabotages its scripted chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// The load returns `Err(SourceError::Decode(DecodeError::Truncated))`.
    Error,
    /// The load "succeeds" but delivers one point fewer than
    /// [`chunk_len`](SceneSource::chunk_len) claims — a short read, caught
    /// by [`ChunkCache::load_into`]'s length check.
    ShortRead,
}

/// Fault-injection test double: a [`SceneSource`] wrapper that sabotages
/// loads of one scripted chunk index, either every time ([`new`](Self::new))
/// or only for the first *n* loads ([`transient`](Self::transient) — a
/// fault that heals, so exactly one consumer of a shared source hits it).
/// Everything else delegates to the wrapped source. Used by the streaming
/// error-path tests (`tests/fault_injection.rs`) to prove a failed chunk
/// surfaces as a clean [`SourceError`] instead of a panic, poisoned arena,
/// or torn frame server.
#[derive(Debug)]
pub struct FailingSource<S> {
    inner: S,
    fail_at: usize,
    mode: FailureMode,
    /// Remaining sabotaged loads; `None` fails forever.
    fuse: Option<AtomicU64>,
    source_id: u64,
}

impl<S: SceneSource> FailingSource<S> {
    /// Fail every load of chunk `fail_at`.
    pub fn new(inner: S, fail_at: usize, mode: FailureMode) -> Self {
        Self {
            inner,
            fail_at,
            mode,
            fuse: None,
            source_id: next_source_id(),
        }
    }

    /// Fail only the first `count` loads of chunk `fail_at`, then behave
    /// normally.
    pub fn transient(inner: S, fail_at: usize, mode: FailureMode, count: u64) -> Self {
        Self {
            fuse: Some(AtomicU64::new(count)),
            ..Self::new(inner, fail_at, mode)
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Whether this load should be sabotaged (burns one fuse charge).
    fn should_fail(&self, index: usize) -> bool {
        if index != self.fail_at {
            return false;
        }
        match &self.fuse {
            None => true,
            Some(left) => left
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_ok(),
        }
    }
}

impl<S: SceneSource> SceneSource for FailingSource<S> {
    fn chunk_count(&self) -> usize {
        self.inner.chunk_count()
    }

    fn chunk_len(&self, index: usize) -> usize {
        self.inner.chunk_len(index)
    }

    fn total_points(&self) -> usize {
        self.inner.total_points()
    }

    fn sh_degree(&self) -> usize {
        self.inner.sh_degree()
    }

    fn source_id(&self) -> u64 {
        self.source_id
    }

    fn chunk_base(&self, index: usize) -> usize {
        self.inner.chunk_base(index)
    }

    fn load_chunk_into(&self, index: usize, into: &mut GaussianModel) -> Result<(), SourceError> {
        if self.should_fail(index) {
            match self.mode {
                FailureMode::Error => {
                    return Err(SourceError::Decode(DecodeError::Truncated));
                }
                FailureMode::ShortRead => {
                    self.inner.load_chunk_into(index, into)?;
                    if !into.is_empty() {
                        let n = into.len() - 1;
                        let stride = into.sh_stride();
                        into.positions.truncate(n);
                        into.scales.truncate(n);
                        into.rotations.truncate(n);
                        into.opacities.truncate(n);
                        into.sh_coeffs.truncate(n * stride);
                    }
                    return Ok(());
                }
            }
        }
        self.inner.load_chunk_into(index, into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SceneSpec};
    use proptest::prelude::*;

    fn sample() -> GaussianModel {
        generate(&SceneSpec {
            total_points: 300,
            ..SceneSpec::default()
        })
        .unwrap()
        .model
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = encode_model(&m);
        let back = decode_model(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn encoded_size_matches_storage_accounting() {
        let m = sample();
        assert_eq!(encode_model(&m).len(), 16 + m.storage_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let m = sample();
        let mut bytes = encode_model(&m).to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(decode_model(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let m = sample();
        let bytes = encode_model(&m);
        assert_eq!(
            decode_model(&bytes[..bytes.len() - 8]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode_model(&bytes[..4]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_version_rejected() {
        let m = sample();
        let mut bytes = encode_model(&m).to_vec();
        bytes[4] = 0x7F;
        assert!(matches!(
            decode_model(&bytes),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn empty_model_roundtrips() {
        let m = GaussianModel::new(2);
        let back = decode_model(&encode_model(&m)).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn decode_into_reuses_buffer() {
        let a = sample();
        let b = GaussianModel::new(1);
        let mut buf = GaussianModel::new(3);
        decode_model_into(&encode_model(&a), &mut buf).unwrap();
        assert_eq!(buf, a);
        decode_model_into(&encode_model(&b), &mut buf).unwrap();
        assert_eq!(buf, b);
    }

    /// Concatenate every chunk of `source` in order.
    fn concat(source: &dyn SceneSource) -> GaussianModel {
        let mut out = GaussianModel::new(source.sh_degree());
        let mut chunk = GaussianModel::default();
        for i in 0..source.chunk_count() {
            source.load_chunk_into(i, &mut chunk).unwrap();
            assert_eq!(chunk.len(), source.chunk_len(i));
            out.extend_from(&chunk);
        }
        out
    }

    #[test]
    fn in_core_source_concatenates_to_model() {
        let m = sample();
        for chunk in [1, 7, 100, 300, 1000] {
            let src = InCoreSource::new(m.clone(), chunk);
            assert_eq!(src.total_points(), m.len());
            assert_eq!(concat(&src), m);
            let bases: Vec<usize> = (0..src.chunk_count()).map(|i| src.chunk_base(i)).collect();
            let mut base = 0;
            for (i, &b) in bases.iter().enumerate() {
                assert_eq!(b, base);
                base += src.chunk_len(i);
            }
        }
    }

    #[test]
    fn chunked_file_source_roundtrips() {
        let m = sample();
        for chunk in [1, 7, 128, 300, 512] {
            let bytes = encode_model_chunked(&m, chunk);
            let src = ChunkedFileSource::from_bytes(bytes.to_vec()).unwrap();
            assert_eq!(src.chunk_count(), m.len().div_ceil(chunk));
            assert_eq!(src.sh_degree(), m.sh_degree);
            assert_eq!(concat(&src), m);
        }
    }

    #[test]
    fn chunked_file_source_file_backed() {
        let m = sample();
        let bytes = encode_model_chunked(&m, 64);
        let path = std::env::temp_dir().join(format!("ms_chunked_{}.msgc", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let src = ChunkedFileSource::open(&path).unwrap();
        assert_eq!(concat(&src), m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_container_rejects_garbage() {
        let m = sample();
        let bytes = encode_model_chunked(&m, 64).to_vec();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            ChunkedFileSource::from_bytes(bad).err(),
            Some(DecodeError::BadMagic)
        );
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 0x7F;
        assert!(matches!(
            ChunkedFileSource::from_bytes(bad).err(),
            Some(DecodeError::BadVersion(_))
        ));
        // Short header.
        assert_eq!(
            ChunkedFileSource::from_bytes(bytes[..8].to_vec()).err(),
            Some(DecodeError::Truncated)
        );
    }

    #[test]
    fn empty_model_chunked_container() {
        let m = GaussianModel::new(2);
        let bytes = encode_model_chunked(&m, 64);
        let src = ChunkedFileSource::from_bytes(bytes.to_vec()).unwrap();
        assert_eq!(src.chunk_count(), 0);
        assert_eq!(src.total_points(), 0);
        assert_eq!(concat(&src), m);
    }

    #[test]
    fn out_of_range_chunk_errors() {
        let src = InCoreSource::new(sample(), 100);
        let mut buf = GaussianModel::default();
        assert!(matches!(
            src.load_chunk_into(99, &mut buf),
            Err(SourceError::OutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn synth_source_is_deterministic_and_sized() {
        let spec = SceneSpec {
            total_points: 700,
            ..SceneSpec::default()
        };
        let src = SynthChunkedSource::new(spec.clone(), 256).unwrap();
        assert_eq!(src.chunk_count(), 3);
        assert_eq!(src.chunk_len(2), 700 - 512);
        let a = concat(&src);
        let b = concat(&src);
        assert_eq!(a, b);
        assert_eq!(a.len(), 700);
        a.validate().unwrap();
        // Chunks differ from each other (distinct derived seeds).
        let c0 = src.load_chunk(0).unwrap();
        let c1 = src.load_chunk(1).unwrap();
        assert_ne!(c0.positions, c1.positions);
    }

    #[test]
    fn coarse_subset_is_chunking_invariant() {
        let m = sample();
        for stride in [2, 3, 7] {
            let global = coarse_subset(&m, stride, 0);
            assert_eq!(global.len(), m.len().div_ceil(stride));
            global.validate().unwrap();
            for chunk in [1, 50, 128, 300] {
                let src = InCoreSource::new(m.clone(), chunk);
                let mut out = GaussianModel::new(m.sh_degree);
                let mut buf = GaussianModel::default();
                for i in 0..src.chunk_count() {
                    src.load_coarse_chunk_into(i, stride, &mut buf).unwrap();
                    out.extend_from(&buf);
                }
                assert_eq!(out, global, "stride {stride} chunk {chunk}");
            }
        }
    }

    #[test]
    fn coarse_subset_rescales_opacity() {
        let mut m = GaussianModel::new(0);
        for i in 0..6 {
            m.push_solid(
                ms_math::Vec3::new(i as f32, 0.0, 0.0),
                ms_math::Vec3::splat(0.1),
                ms_math::Quat::identity(),
                0.3,
                ms_math::Vec3::one(),
            );
        }
        let c = coarse_subset(&m, 3, 0);
        assert_eq!(c.len(), 2);
        assert!((c.opacities[0] - 0.9).abs() < 1e-6);
        // Clamped at 1.
        let c = coarse_subset(&m, 5, 0);
        assert_eq!(c.opacities[0], 1.0);
    }

    #[test]
    fn resolved_chunk_splats_pinned_wins() {
        assert_eq!(resolved_chunk_splats(1234), 1234);
    }

    #[test]
    fn source_ids_are_unique_per_source() {
        let m = sample();
        let a = InCoreSource::new(m.clone(), 64);
        let b = InCoreSource::new(m.clone(), 64);
        assert_ne!(a.source_id(), b.source_id());
        // A clone serves identical chunks, so it may share the id.
        assert_eq!(a.clone().source_id(), a.source_id());
        let f = ChunkedFileSource::from_bytes(encode_model_chunked(&m, 64).to_vec()).unwrap();
        assert_ne!(f.source_id(), a.source_id());
        assert_ne!(f.source_id(), b.source_id());
    }

    #[test]
    fn cache_load_into_hits_replay_exact_bytes() {
        let m = sample();
        let src = InCoreSource::new(m.clone(), 64);
        let cache = ChunkCache::new(usize::MAX);
        let mut first = GaussianModel::default();
        let mut again = GaussianModel::default();
        for i in 0..src.chunk_count() {
            let access = cache.load_into(&src, i, 0, &mut first).unwrap();
            assert!(!access.hit, "chunk {i} cold load must miss");
            let access = cache.load_into(&src, i, 0, &mut again).unwrap();
            assert!(access.hit, "chunk {i} warm load must hit");
            assert_eq!(first, again, "chunk {i} hit differs from decode");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, src.chunk_count() as u64);
        assert_eq!(stats.misses, src.chunk_count() as u64);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.resident_bytes(), m.storage_bytes() as u64);
        assert_eq!(stats.resident_bytes_peak, cache.resident_bytes());
    }

    #[test]
    fn cache_distinguishes_sources_and_lods() {
        let m = sample();
        let a = InCoreSource::new(m.clone(), 64);
        let b = InCoreSource::new(coarse_subset(&m, 2, 0), 64);
        let cache = ChunkCache::new(usize::MAX);
        let mut buf = GaussianModel::default();
        assert!(!cache.load_into(&a, 0, 0, &mut buf).unwrap().hit);
        // Same chunk index, different source: must not alias.
        assert!(!cache.load_into(&b, 0, 0, &mut buf).unwrap().hit);
        assert_eq!(buf, b.load_chunk(0).unwrap());
        // Same source and index, coarse stride: its own entry.
        assert!(!cache.load_into(&a, 0, 3, &mut buf).unwrap().hit);
        let mut reference = GaussianModel::default();
        a.load_coarse_chunk_into(0, 3, &mut reference).unwrap();
        assert_eq!(buf, reference);
        assert!(cache.load_into(&a, 0, 3, &mut buf).unwrap().hit);
        assert_eq!(buf, reference);
    }

    #[test]
    fn oversized_chunk_is_not_stored() {
        let m = sample();
        let src = InCoreSource::new(m.clone(), m.len());
        let cache = ChunkCache::new(8); // smaller than any real chunk
        let mut buf = GaussianModel::default();
        assert!(!cache.load_into(&src, 0, 0, &mut buf).unwrap().hit);
        assert_eq!(cache.resident_bytes(), 0);
        assert!(!cache.load_into(&src, 0, 0, &mut buf).unwrap().hit);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().resident_bytes_peak, 0);
    }

    #[test]
    fn failing_source_error_mode_fails_scripted_chunk_only() {
        let m = sample();
        let src = FailingSource::new(InCoreSource::new(m.clone(), 64), 2, FailureMode::Error);
        let mut buf = GaussianModel::default();
        for i in 0..src.chunk_count() {
            let result = src.load_chunk_into(i, &mut buf);
            if i == 2 {
                assert_eq!(
                    result,
                    Err(SourceError::Decode(DecodeError::Truncated)),
                    "chunk 2 must fail every time"
                );
            } else {
                result.unwrap();
                assert_eq!(buf.len(), src.chunk_len(i));
            }
        }
        // Still failing on retry (no fuse).
        assert!(src.load_chunk_into(2, &mut buf).is_err());
    }

    #[test]
    fn failing_source_short_read_is_caught_by_cache_load() {
        let m = sample();
        let src = FailingSource::new(InCoreSource::new(m.clone(), 64), 1, FailureMode::ShortRead);
        let mut buf = GaussianModel::default();
        // The raw load "succeeds" with one point missing...
        src.load_chunk_into(1, &mut buf).unwrap();
        assert_eq!(buf.len(), src.chunk_len(1) - 1);
        buf.validate().unwrap();
        // ...and the cache-aware load turns it into a decode error.
        let cache = ChunkCache::new(usize::MAX);
        let err = cache.load_into(&src, 1, 0, &mut buf).unwrap_err();
        assert!(matches!(err, SourceError::Decode(DecodeError::Invalid(_))));
        // Nothing bogus was inserted: the next load misses again.
        assert!(cache.load_into(&src, 1, 0, &mut buf).is_err());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn transient_failing_source_heals_after_fuse_burns() {
        let m = sample();
        let src =
            FailingSource::transient(InCoreSource::new(m.clone(), 64), 0, FailureMode::Error, 2);
        let mut buf = GaussianModel::default();
        assert!(src.load_chunk_into(0, &mut buf).is_err());
        assert!(src.load_chunk_into(0, &mut buf).is_err());
        src.load_chunk_into(0, &mut buf).unwrap();
        assert_eq!(buf.len(), src.chunk_len(0));
    }

    /// Reference model of the documented cache policy: global byte budget,
    /// reservation-first, strict per-shard LRU eviction, decline when the
    /// inserting shard is empty.
    struct RefCache {
        shards: Vec<Vec<(ChunkKey, u64)>>,
        budget: u64,
        resident: u64,
        hits: u64,
        misses: u64,
        evictions: u64,
        resident_peak: u64,
    }

    impl RefCache {
        fn new(budget: u64) -> Self {
            Self {
                shards: (0..8).map(|_| Vec::new()).collect(),
                budget,
                resident: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                resident_peak: 0,
            }
        }

        fn get(&mut self, key: ChunkKey) -> bool {
            let shard = &mut self.shards[ChunkCache::shard_of(&key)];
            if self.budget > 0 {
                if let Some(pos) = shard.iter().position(|(k, _)| *k == key) {
                    let entry = shard.remove(pos);
                    shard.push(entry);
                    self.hits += 1;
                    return true;
                }
            }
            self.misses += 1;
            false
        }

        fn insert(&mut self, key: ChunkKey, bytes: u64) -> u64 {
            if self.budget == 0 || bytes > self.budget {
                return 0;
            }
            let shard = &mut self.shards[ChunkCache::shard_of(&key)];
            if let Some(pos) = shard.iter().position(|(k, _)| *k == key) {
                let entry = shard.remove(pos);
                shard.push(entry);
                return 0;
            }
            let mut resident = self.resident + bytes;
            let mut evicted = 0;
            while resident > self.budget {
                if shard.is_empty() {
                    self.evictions += evicted;
                    return evicted;
                }
                let (_, victim) = shard.remove(0);
                resident -= victim;
                self.resident -= victim;
                evicted += 1;
            }
            shard.push((key, bytes));
            self.resident = resident;
            self.resident_peak = self.resident_peak.max(resident);
            self.evictions += evicted;
            evicted
        }
    }

    /// A tiny model of `points` solid splats (SH degree 0), for exercising
    /// the cache with varied entry sizes.
    fn chunk_model(points: usize) -> GaussianModel {
        let mut m = GaussianModel::new(0);
        for i in 0..points {
            m.push_solid(
                ms_math::Vec3::new(i as f32, 0.0, 0.0),
                ms_math::Vec3::splat(0.1),
                ms_math::Quat::identity(),
                0.5,
                ms_math::Vec3::one(),
            );
        }
        m
    }

    proptest! {
        #[test]
        fn multi_chunk_roundtrip(points in 0usize..400, chunk in 1usize..500) {
            let m = if points == 0 {
                GaussianModel::new(2)
            } else {
                generate(&SceneSpec {
                    total_points: points,
                    ..SceneSpec::default()
                })
                .unwrap()
                .model
            };
            let bytes = encode_model_chunked(&m, chunk);
            let src = match ChunkedFileSource::from_bytes(bytes.to_vec()) {
                Ok(s) => s,
                Err(e) => return Err(format!("decode failed: {e}")),
            };
            prop_assert_eq!(src.total_points(), m.len());
            let mut out = GaussianModel::new(src.sh_degree());
            let mut buf = GaussianModel::default();
            for i in 0..src.chunk_count() {
                if let Err(e) = src.load_chunk_into(i, &mut buf) {
                    return Err(format!("chunk {i} failed: {e}"));
                }
                prop_assert!(buf.len() <= chunk);
                out.extend_from(&buf);
            }
            prop_assert_eq!(out, m);
        }

        #[test]
        fn truncation_is_an_error_not_a_panic(points in 1usize..200, chunk in 1usize..100, cut in 0usize..2000) {
            let m = generate(&SceneSpec {
                total_points: points,
                ..SceneSpec::default()
            })
            .unwrap()
            .model;
            let bytes = encode_model_chunked(&m, chunk).to_vec();
            prop_assume!(cut < bytes.len());
            // Truncating anywhere either fails eagerly at open...
            let src = match ChunkedFileSource::from_bytes(bytes[..cut].to_vec()) {
                Err(_) => return Ok(()),
                Ok(s) => s,
            };
            // ...or at the first blob read past the cut — never a panic.
            let mut buf = GaussianModel::default();
            for i in 0..src.chunk_count() {
                if src.load_chunk_into(i, &mut buf).is_err() {
                    return Ok(());
                }
            }
            return Err("truncated container decoded every chunk".into());
        }

        /// Random get/insert traffic: resident bytes never exceed the
        /// budget, eviction follows strict per-shard LRU order, and every
        /// counter matches a straightforward reference simulation.
        #[test]
        fn cache_budget_and_lru_invariants(
            budget in 0u64..4000,
            ops in proptest::collection::vec(
                (proptest::bool::ANY, 0u64..3, 0usize..8, 0usize..2, 0usize..12),
                1..60,
            ),
        ) {
            let cache = ChunkCache::new(budget as usize);
            let mut reference = RefCache::new(budget);
            let mut buf = GaussianModel::default();
            for (is_insert, source_id, chunk_idx, lod, points) in ops {
                let key = ChunkKey { source_id, chunk_idx, lod };
                if is_insert {
                    let model = chunk_model(points);
                    let evicted = cache.insert(key, &model);
                    let expected = reference.insert(key, model.storage_bytes() as u64);
                    prop_assert_eq!(evicted, expected);
                } else {
                    let hit = cache.get_into(&key, &mut buf);
                    prop_assert_eq!(hit, reference.get(key));
                }
                prop_assert!(cache.resident_bytes() <= budget);
                prop_assert_eq!(cache.resident_bytes(), reference.resident);
                for shard in 0..8 {
                    let keys: Vec<ChunkKey> =
                        reference.shards[shard].iter().map(|(k, _)| *k).collect();
                    prop_assert_eq!(cache.shard_keys(shard), keys);
                }
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.hits, reference.hits);
            prop_assert_eq!(stats.misses, reference.misses);
            prop_assert_eq!(stats.evictions, reference.evictions);
            prop_assert_eq!(stats.resident_bytes_peak, reference.resident_peak);
        }

        /// A capacity-zero cache degrades to pass-through: every access is
        /// a miss, nothing is ever resident, and loads still deliver exact
        /// chunk data.
        #[test]
        fn zero_budget_cache_is_pass_through(points in 1usize..200, chunk in 1usize..64) {
            let m = generate(&SceneSpec {
                total_points: points,
                ..SceneSpec::default()
            })
            .unwrap()
            .model;
            let src = InCoreSource::new(m.clone(), chunk);
            let cache = ChunkCache::new(0);
            let mut out = GaussianModel::new(src.sh_degree());
            let mut buf = GaussianModel::default();
            for pass in 0..2 {
                out.positions.clear();
                out.scales.clear();
                out.rotations.clear();
                out.opacities.clear();
                out.sh_coeffs.clear();
                for i in 0..src.chunk_count() {
                    let access = cache.load_into(&src, i, 0, &mut buf).unwrap();
                    prop_assert!(!access.hit, "pass {} chunk {} must miss", pass, i);
                    prop_assert_eq!(access.evictions, 0);
                    out.extend_from(&buf);
                }
                prop_assert_eq!(&out, &m);
                prop_assert_eq!(cache.resident_bytes(), 0);
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.hits, 0);
            prop_assert_eq!(stats.misses, 2 * src.chunk_count() as u64);
            prop_assert_eq!(stats.resident_bytes_peak, 0);
        }
    }
}
