//! The Gaussian point-cloud model (SoA layout).

use ms_math::{sh, Aabb3, Quat, Vec3};
use serde::{Deserialize, Serialize};

/// Serialized bytes per point at full SH degree 3:
/// position (12) + scale (12) + rotation (16) + opacity (4) + 48 SH floats
/// (192) = 236 bytes. Matches the ~233 B/point implied by the paper's 1.4 GB
/// bicycle checkpoint at ~6 M points.
pub const BYTES_PER_POINT_FULL: usize = 12 + 12 + 16 + 4 + 3 * sh::MAX_COEFFS * 4;

/// A read-only view of a single Gaussian point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPoint<'a> {
    /// World-space center.
    pub position: Vec3,
    /// Per-axis ellipsoid scales (standard deviations, world units).
    pub scale: Vec3,
    /// Orientation.
    pub rotation: Quat,
    /// Opacity in `[0, 1]`.
    pub opacity: f32,
    /// SH color coefficients, `3 * coeff_count(degree)` floats.
    pub sh: &'a [f32],
}

/// A trained PBNR model: a set of Gaussian points in SoA layout.
///
/// All PBNR variants in this workspace — dense 3DGS-style models, pruned
/// models, and the per-level foveation models — are instances of this type;
/// foveation metadata (quality bounds, multi-versioned parameters) lives in
/// `ms-fov` and references points by index.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GaussianModel {
    /// World-space centers, one per point.
    pub positions: Vec<Vec3>,
    /// Per-axis scales (σ, world units), one per point.
    pub scales: Vec<Vec3>,
    /// Orientations, one per point.
    pub rotations: Vec<Quat>,
    /// Opacities in `[0, 1]`, one per point.
    pub opacities: Vec<f32>,
    /// Flattened SH coefficients: `3 * coeff_count(sh_degree)` per point,
    /// channel-interleaved (`[c0_r, c0_g, c0_b, c1_r, ...]`).
    pub sh_coeffs: Vec<f32>,
    /// SH degree in `0..=3`.
    pub sh_degree: usize,
}

impl GaussianModel {
    /// An empty model at the given SH degree.
    ///
    /// # Panics
    ///
    /// Panics if `sh_degree > ms_math::sh::MAX_DEGREE`.
    pub fn new(sh_degree: usize) -> Self {
        assert!(sh_degree <= sh::MAX_DEGREE);
        Self {
            positions: Vec::new(),
            scales: Vec::new(),
            rotations: Vec::new(),
            opacities: Vec::new(),
            sh_coeffs: Vec::new(),
            sh_degree,
        }
    }

    /// Number of SH floats stored per point.
    #[inline]
    pub fn sh_stride(&self) -> usize {
        3 * sh::coeff_count(self.sh_degree)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the model holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Append a point. `sh` must have exactly [`GaussianModel::sh_stride`]
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics on an SH length mismatch.
    pub fn push(&mut self, position: Vec3, scale: Vec3, rotation: Quat, opacity: f32, sh: &[f32]) {
        assert_eq!(sh.len(), self.sh_stride(), "SH coefficient count mismatch");
        self.positions.push(position);
        self.scales.push(scale);
        self.rotations.push(rotation);
        self.opacities.push(opacity);
        self.sh_coeffs.extend_from_slice(sh);
    }

    /// Convenience: append a view-independent point with base color `rgb`
    /// (higher-order SH zeroed).
    pub fn push_solid(
        &mut self,
        position: Vec3,
        scale: Vec3,
        rotation: Quat,
        opacity: f32,
        rgb: Vec3,
    ) {
        let mut coeffs = vec![0.0f32; self.sh_stride()];
        let dc = sh::rgb_to_dc(rgb);
        coeffs[..3].copy_from_slice(&dc);
        self.push(position, scale, rotation, opacity, &coeffs);
    }

    /// View of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn point(&self, i: usize) -> GaussianPoint<'_> {
        let stride = self.sh_stride();
        GaussianPoint {
            position: self.positions[i],
            scale: self.scales[i],
            rotation: self.rotations[i],
            opacity: self.opacities[i],
            sh: &self.sh_coeffs[i * stride..(i + 1) * stride],
        }
    }

    /// Mutable access to the SH coefficients of point `i`.
    pub fn sh_mut(&mut self, i: usize) -> &mut [f32] {
        let stride = self.sh_stride();
        &mut self.sh_coeffs[i * stride..(i + 1) * stride]
    }

    /// SH coefficients of point `i`.
    pub fn sh(&self, i: usize) -> &[f32] {
        let stride = self.sh_stride();
        &self.sh_coeffs[i * stride..(i + 1) * stride]
    }

    /// The world-space 3σ bounding box of all points, or `None` when empty.
    pub fn bounding_box(&self) -> Option<Aabb3> {
        if self.is_empty() {
            return None;
        }
        let mut bb = Aabb3::new(self.positions[0], self.positions[0]);
        for i in 0..self.len() {
            let r = self.scales[i].max_component() * 3.0;
            let p = self.positions[i];
            bb.min = bb.min.min(p - Vec3::splat(r));
            bb.max = bb.max.max(p + Vec3::splat(r));
        }
        Some(bb)
    }

    /// Build a new model containing only the points at `indices`
    /// (order-preserving, duplicates allowed). This is the primitive the
    /// pruning pipeline and FR subsetting build on.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let stride = self.sh_stride();
        let mut out = Self::new(self.sh_degree);
        out.positions.reserve(indices.len());
        out.scales.reserve(indices.len());
        out.rotations.reserve(indices.len());
        out.opacities.reserve(indices.len());
        out.sh_coeffs.reserve(indices.len() * stride);
        for &i in indices {
            out.positions.push(self.positions[i]);
            out.scales.push(self.scales[i]);
            out.rotations.push(self.rotations[i]);
            out.opacities.push(self.opacities[i]);
            out.sh_coeffs
                .extend_from_slice(&self.sh_coeffs[i * stride..(i + 1) * stride]);
        }
        out
    }

    /// Keep only the points whose index satisfies `keep`; returns the mapping
    /// from new index → old index.
    pub fn retain_by_index<F: FnMut(usize) -> bool>(&mut self, mut keep: F) -> Vec<usize> {
        let kept: Vec<usize> = (0..self.len()).filter(|&i| keep(i)).collect();
        *self = self.subset(&kept);
        kept
    }

    /// Copy the points in `range` into `into`, replacing its contents.
    ///
    /// `into` is reinitialized to this model's SH degree but keeps its
    /// allocations, so a caller looping over ranges (the chunked
    /// [`crate::SceneSource`] path) reuses one buffer instead of allocating
    /// per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn clone_range_into(&self, range: std::ops::Range<usize>, into: &mut GaussianModel) {
        assert!(range.end <= self.len(), "range out of bounds");
        let stride = self.sh_stride();
        into.sh_degree = self.sh_degree;
        into.positions.clear();
        into.scales.clear();
        into.rotations.clear();
        into.opacities.clear();
        into.sh_coeffs.clear();
        into.positions
            .extend_from_slice(&self.positions[range.clone()]);
        into.scales.extend_from_slice(&self.scales[range.clone()]);
        into.rotations
            .extend_from_slice(&self.rotations[range.clone()]);
        into.opacities
            .extend_from_slice(&self.opacities[range.clone()]);
        into.sh_coeffs
            .extend_from_slice(&self.sh_coeffs[range.start * stride..range.end * stride]);
    }

    /// Append every point of `other` to this model.
    ///
    /// # Panics
    ///
    /// Panics when the SH degrees differ.
    pub fn extend_from(&mut self, other: &GaussianModel) {
        assert_eq!(self.sh_degree, other.sh_degree, "SH degree mismatch");
        self.positions.extend_from_slice(&other.positions);
        self.scales.extend_from_slice(&other.scales);
        self.rotations.extend_from_slice(&other.rotations);
        self.opacities.extend_from_slice(&other.opacities);
        self.sh_coeffs.extend_from_slice(&other.sh_coeffs);
    }

    /// Serialized size in bytes (what a stored checkpoint of this model
    /// occupies); see [`BYTES_PER_POINT_FULL`].
    pub fn storage_bytes(&self) -> usize {
        let per_point = 12 + 12 + 16 + 4 + self.sh_stride() * 4;
        self.len() * per_point
    }

    /// Largest ellipse span of point `i` in any direction — the paper's
    /// point scale `Sᵢ` in the Weighted-Scale metric (Eqn. 4): the maximum
    /// axis σ times the 3σ splat extent convention.
    pub fn point_extent(&self, i: usize) -> f32 {
        self.scales[i].max_component() * 3.0
    }

    /// Sanity-check internal invariants (vector lengths agree, opacities in
    /// range, scales positive and finite). Used by tests and after
    /// deserialization.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if self.scales.len() != n
            || self.rotations.len() != n
            || self.opacities.len() != n
            || self.sh_coeffs.len() != n * self.sh_stride()
        {
            return Err(format!(
                "inconsistent SoA lengths: pos={n} scale={} rot={} opa={} sh={} (stride {})",
                self.scales.len(),
                self.rotations.len(),
                self.opacities.len(),
                self.sh_coeffs.len(),
                self.sh_stride()
            ));
        }
        for (i, &o) in self.opacities.iter().enumerate() {
            if !(0.0..=1.0).contains(&o) || !o.is_finite() {
                return Err(format!("opacity {o} out of [0,1] at point {i}"));
            }
        }
        for (i, s) in self.scales.iter().enumerate() {
            if !(s.x > 0.0 && s.y > 0.0 && s.z > 0.0 && s.is_finite()) {
                return Err(format!("non-positive scale {s} at point {i}"));
            }
        }
        for (i, p) in self.positions.iter().enumerate() {
            if !p.is_finite() {
                return Err(format!("non-finite position at point {i}"));
            }
        }
        Ok(())
    }
}

impl Extend<(Vec3, Vec3, Quat, f32, Vec<f32>)> for GaussianModel {
    fn extend<T: IntoIterator<Item = (Vec3, Vec3, Quat, f32, Vec<f32>)>>(&mut self, iter: T) {
        for (p, s, r, o, sh) in iter {
            self.push(p, s, r, o, &sh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> GaussianModel {
        let mut m = GaussianModel::new(1);
        m.push_solid(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::splat(0.1),
            Quat::identity(),
            0.9,
            Vec3::new(1.0, 0.0, 0.0),
        );
        m.push_solid(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.1, 0.2, 0.3),
            Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.5),
            0.5,
            Vec3::new(0.0, 1.0, 0.0),
        );
        m
    }

    #[test]
    fn push_and_point_roundtrip() {
        let m = sample_model();
        assert_eq!(m.len(), 2);
        let p = m.point(1);
        assert_eq!(p.position, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.opacity, 0.5);
        assert_eq!(p.sh.len(), m.sh_stride());
        m.validate().unwrap();
    }

    #[test]
    fn subset_preserves_order_and_data() {
        let m = sample_model();
        let s = m.subset(&[1, 0, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.point(0).position, m.point(1).position);
        assert_eq!(s.point(1).position, m.point(0).position);
        assert_eq!(s.point(2).sh, m.point(1).sh);
        s.validate().unwrap();
    }

    #[test]
    fn retain_by_index_returns_mapping() {
        let mut m = sample_model();
        let map = m.retain_by_index(|i| i == 1);
        assert_eq!(map, vec![1]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.point(0).opacity, 0.5);
    }

    #[test]
    fn storage_bytes_full_degree() {
        let mut m = GaussianModel::new(3);
        m.push_solid(
            Vec3::zero(),
            Vec3::splat(0.1),
            Quat::identity(),
            1.0,
            Vec3::one(),
        );
        assert_eq!(m.storage_bytes(), BYTES_PER_POINT_FULL);
    }

    #[test]
    fn bounding_box_includes_extent() {
        let m = sample_model();
        let bb = m.bounding_box().unwrap();
        assert!(bb.min.x <= -0.3);
        assert!(bb.max.z >= 3.9 - 1e-5);
        assert!(GaussianModel::new(0).bounding_box().is_none());
    }

    #[test]
    fn validate_catches_bad_opacity() {
        let mut m = sample_model();
        m.opacities[0] = 1.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_scale() {
        let mut m = sample_model();
        m.scales[1] = Vec3::new(0.0, 0.1, 0.1);
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn push_rejects_wrong_sh_len() {
        let mut m = GaussianModel::new(2);
        m.push(Vec3::zero(), Vec3::one(), Quat::identity(), 0.5, &[0.0; 3]);
    }

    #[test]
    fn point_extent_uses_max_axis() {
        let m = sample_model();
        assert!((m.point_extent(1) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn clone_range_into_reuses_buffer() {
        let m = sample_model();
        let mut buf = GaussianModel::new(3);
        m.clone_range_into(1..2, &mut buf);
        assert_eq!(buf.sh_degree, m.sh_degree);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.point(0).position, m.point(1).position);
        assert_eq!(buf.point(0).sh, m.point(1).sh);
        buf.validate().unwrap();
        // Second fill with a different range reuses the same buffer.
        m.clone_range_into(0..2, &mut buf);
        assert_eq!(buf, m);
    }

    #[test]
    fn extend_from_concatenates() {
        let m = sample_model();
        let mut a = GaussianModel::new(m.sh_degree);
        let mut chunk = GaussianModel::new(m.sh_degree);
        m.clone_range_into(0..1, &mut chunk);
        a.extend_from(&chunk);
        m.clone_range_into(1..2, &mut chunk);
        a.extend_from(&chunk);
        assert_eq!(a, m);
    }
}
