//! Procedural Gaussian-scene generator.
//!
//! Substitutes for the photogrammetry datasets the paper evaluates on (see
//! DESIGN.md). A generated scene reproduces the *geometric statistics* that
//! drive every MetaSapiens mechanism:
//!
//! * a **ground disk** of small-to-medium surface splats,
//! * several **object clusters** of dense, small, high-opacity splats
//!   (the content users look at — high-CE points),
//! * a distant **background shell** of large splats,
//! * **floaters**: large, semi-transparent Gaussians scattered through free
//!   space. Real 3DGS reconstructions accumulate these; they intersect many
//!   tiles while dominating few pixels, i.e. they are exactly the low
//!   Computational-Efficiency points the paper's pruning targets, and
//! * **redundant duplicates** near surfaces (points occluded by their
//!   neighbors), the mass that point-count pruning removes cheaply.
//!
//! Generation is fully deterministic given the [`SceneSpec`] seed.

use crate::{Camera, GaussianModel};
use ms_math::{Quat, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters controlling procedural scene generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSpec {
    /// Deterministic seed.
    pub seed: u64,
    /// Total point budget of the dense model.
    pub total_points: usize,
    /// Scene radius (world units) of the content region.
    pub radius: f32,
    /// Number of foreground object clusters.
    pub cluster_count: usize,
    /// Fraction of points in object clusters (0..1).
    pub cluster_fraction: f32,
    /// Fraction of points on the ground disk.
    pub ground_fraction: f32,
    /// Fraction of points in the background shell.
    pub background_fraction: f32,
    /// Fraction of points that are free-space floaters (large, dim).
    pub floater_fraction: f32,
    /// Remaining fraction becomes redundant near-surface duplicates.
    /// (Derived: `1 - cluster - ground - background - floater`.)
    /// Mean log-scale of splats (log of world-unit σ).
    pub base_log_scale: f32,
    /// Std-dev of the log-normal scale distribution (heavy tail knob).
    pub log_scale_sigma: f32,
    /// SH degree of the generated model.
    pub sh_degree: usize,
}

impl Default for SceneSpec {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            total_points: 60_000,
            radius: 10.0,
            cluster_count: 6,
            cluster_fraction: 0.15,
            ground_fraction: 0.10,
            background_fraction: 0.07,
            floater_fraction: 0.08,
            base_log_scale: -3.2,
            log_scale_sigma: 0.75,
            sh_degree: 3,
        }
    }
}

impl SceneSpec {
    /// Fraction of redundant near-surface duplicate points.
    pub fn duplicate_fraction(&self) -> f32 {
        (1.0 - self.cluster_fraction
            - self.ground_fraction
            - self.background_fraction
            - self.floater_fraction)
            .max(0.0)
    }

    /// Validate fractions sum to at most 1 and counts are sane.
    pub fn validate(&self) -> Result<(), String> {
        let s = self.cluster_fraction
            + self.ground_fraction
            + self.background_fraction
            + self.floater_fraction;
        if !(0.0..=1.0 + 1e-4).contains(&s) {
            return Err(format!("fractions sum to {s}, must be <= 1"));
        }
        if self.total_points == 0 {
            return Err("total_points must be > 0".into());
        }
        if self.radius <= 0.0 {
            return Err("radius must be > 0".into());
        }
        if self.sh_degree > ms_math::sh::MAX_DEGREE {
            return Err(format!("sh_degree {} too large", self.sh_degree));
        }
        Ok(())
    }
}

/// A generated scene: the dense model plus its camera sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// The dense ("ground truth") Gaussian model.
    pub model: GaussianModel,
    /// Training cameras (used for CE statistics and retraining).
    pub train_cameras: Vec<Camera>,
    /// Held-out evaluation cameras.
    pub eval_cameras: Vec<Camera>,
    /// The spec used to generate the scene.
    pub spec: SceneSpec,
}

fn sample_normal(rng: &mut StdRng) -> f32 {
    // Box–Muller; `rand_distr` is outside the allowed dependency set.
    let u1: f32 = rng.gen_range(1e-7..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

fn sample_unit_vector(rng: &mut StdRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0f32),
            rng.gen_range(-1.0..1.0f32),
            rng.gen_range(-1.0..1.0f32),
        );
        let l = v.length();
        if l > 1e-3 && l <= 1.0 {
            return v / l;
        }
    }
}

fn random_rotation(rng: &mut StdRng) -> Quat {
    Quat::from_axis_angle(
        sample_unit_vector(rng),
        rng.gen_range(0.0..std::f32::consts::TAU),
    )
}

fn log_normal_scale(rng: &mut StdRng, mu: f32, sigma: f32) -> f32 {
    (mu + sigma * sample_normal(rng)).exp()
}

/// Per-point anisotropic scale: one dominant axis pair (surface-like splats
/// are disks, not spheres).
fn surface_scale(rng: &mut StdRng, base: f32) -> Vec3 {
    let flat = rng.gen_range(0.15..0.5f32);
    Vec3::new(
        base * rng.gen_range(0.7..1.4f32),
        base * flat,
        base * rng.gen_range(0.7..1.4f32),
    )
}

fn push_sh_point(
    model: &mut GaussianModel,
    rng: &mut StdRng,
    position: Vec3,
    scale: Vec3,
    opacity: f32,
    rgb: Vec3,
    view_dependence: f32,
) {
    let mut coeffs = vec![0.0f32; model.sh_stride()];
    let dc = ms_math::sh::rgb_to_dc(rgb);
    coeffs[..3].copy_from_slice(&dc);
    // Mild view-dependent sparkle on higher bands.
    for c in coeffs.iter_mut().skip(3) {
        *c = sample_normal(rng) * 0.05 * view_dependence;
    }
    let rotation = random_rotation(rng);
    model.push(position, scale, rotation, opacity, &coeffs);
}

/// Deterministically generate a scene from a spec.
///
/// # Errors
///
/// Returns an error when the spec is invalid (see [`SceneSpec::validate`]).
pub fn generate(spec: &SceneSpec) -> Result<Scene, String> {
    spec.validate()?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut model = GaussianModel::new(spec.sh_degree);
    let n = spec.total_points;
    let n_cluster = (n as f32 * spec.cluster_fraction) as usize;
    let n_ground = (n as f32 * spec.ground_fraction) as usize;
    let n_background = (n as f32 * spec.background_fraction) as usize;
    let n_floater = (n as f32 * spec.floater_fraction) as usize;
    let n_duplicate = n.saturating_sub(n_cluster + n_ground + n_background + n_floater);

    let r = spec.radius;
    let scale_of = |rng: &mut StdRng, mul: f32| {
        log_normal_scale(rng, spec.base_log_scale, spec.log_scale_sigma) * r * mul
    };

    // --- Object clusters: dense small bright splats near the center.
    let mut cluster_centers = Vec::new();
    let mut cluster_palettes = Vec::new();
    for _ in 0..spec.cluster_count.max(1) {
        let dist = rng.gen_range(0.05..0.45f32) * r;
        let theta = rng.gen_range(0.0..std::f32::consts::TAU);
        cluster_centers.push(Vec3::new(
            dist * theta.cos(),
            rng.gen_range(0.0..0.25f32) * r,
            dist * theta.sin(),
        ));
        cluster_palettes.push(Vec3::new(
            rng.gen_range(0.2..0.95f32),
            rng.gen_range(0.2..0.95f32),
            rng.gen_range(0.2..0.95f32),
        ));
    }
    for i in 0..n_cluster {
        let k = i % cluster_centers.len();
        let center = cluster_centers[k];
        let cluster_r = r * rng.gen_range(0.04..0.12f32);
        let offset =
            sample_unit_vector(&mut rng) * (cluster_r * rng.gen_range(0.0..1.0f32).powf(0.33));
        let base = scale_of(&mut rng, 0.6);
        let color = cluster_palettes[k] + Vec3::splat(sample_normal(&mut rng) * 0.08);
        let scale = surface_scale(&mut rng, base);
        let opacity = rng.gen_range(0.6..0.99f32);
        push_sh_point(
            &mut model,
            &mut rng,
            center + offset,
            scale,
            opacity,
            color.max(Vec3::zero()).min(Vec3::one()),
            1.0,
        );
    }

    // --- Ground disk.
    for _ in 0..n_ground {
        let rad = r * rng.gen_range(0.0f32..1.0).sqrt();
        let theta = rng.gen_range(0.0..std::f32::consts::TAU);
        let pos = Vec3::new(
            rad * theta.cos(),
            sample_normal(&mut rng) * 0.01 * r,
            rad * theta.sin(),
        );
        let base = scale_of(&mut rng, 1.0);
        let shade = rng.gen_range(0.25..0.55f32);
        let opacity = rng.gen_range(0.5..0.95f32);
        push_sh_point(
            &mut model,
            &mut rng,
            pos,
            Vec3::new(base, base * 0.2, base),
            opacity,
            Vec3::new(shade * 0.9, shade, shade * 0.7),
            0.4,
        );
    }

    // --- Background shell: large distant splats.
    for _ in 0..n_background {
        let dir = sample_unit_vector(&mut rng);
        let dir = Vec3::new(dir.x, dir.y.abs() * 0.6, dir.z);
        let dist = r * rng.gen_range(2.0..4.0f32);
        let base = scale_of(&mut rng, 6.0);
        let sky = rng.gen_range(0.4..0.9f32);
        let opacity = rng.gen_range(0.4..0.9f32);
        push_sh_point(
            &mut model,
            &mut rng,
            dir.normalized() * dist,
            Vec3::splat(base),
            opacity,
            Vec3::new(sky * 0.7, sky * 0.8, sky),
            0.2,
        );
    }

    // --- Floaters: large, dim, mid-air — the low-CE points.
    for _ in 0..n_floater {
        let pos = Vec3::new(
            rng.gen_range(-1.0..1.0f32) * r,
            rng.gen_range(0.1..0.9f32) * r,
            rng.gen_range(-1.0..1.0f32) * r,
        );
        let base = scale_of(&mut rng, 8.0);
        let tint = rng.gen_range(0.3..0.7f32);
        let opacity = rng.gen_range(0.02..0.15f32);
        push_sh_point(
            &mut model,
            &mut rng,
            pos,
            Vec3::splat(base),
            opacity,
            Vec3::splat(tint),
            0.1,
        );
    }

    // --- Redundant duplicates: near-coincident copies of existing points.
    // Real trained 3DGS models are extremely redundant — published pruners
    // remove 75%+ of points with little visual change — and this mass is
    // what makes the paper's 84-90% pruning rates quality-neutral. The
    // duplicates sit almost exactly on their originals (tight jitter, same
    // color), so removing either of the pair barely changes the image.
    let existing = model.len();
    for _ in 0..n_duplicate {
        if existing == 0 {
            // Nothing to duplicate — tiny scenes can allot every point to
            // this class. Emit plain cluster points so the total count
            // still holds (this branch used to index an empty model).
            let pos = sample_unit_vector(&mut rng) * (0.3 * r);
            let base = scale_of(&mut rng, 1.0);
            let tint = rng.gen_range(0.4..0.8f32);
            let opacity = rng.gen_range(0.3..0.9f32);
            push_sh_point(
                &mut model,
                &mut rng,
                pos,
                Vec3::splat(base),
                opacity,
                Vec3::splat(tint),
                0.3,
            );
            continue;
        }
        let src = rng.gen_range(0..existing);
        let p = model.point(src);
        let jitter = sample_unit_vector(&mut rng) * p.scale.max_component() * 0.15;
        let pos = p.position + jitter;
        let scale = p.scale * rng.gen_range(0.7..1.0f32);
        let opacity = (p.opacity * rng.gen_range(0.5..1.0f32)).clamp(0.01, 1.0);
        let sh = p.sh.to_vec();
        let rot = p.rotation;
        model.push(pos, scale, rot, opacity, &sh);
    }

    // Clamp scales so validate() holds even in extreme tails.
    for s in &mut model.scales {
        *s = s.max(Vec3::splat(1e-5 * r)).min(Vec3::splat(3.0 * r));
    }
    model.validate()?;

    // --- Cameras: two orbit rings (train inner, eval offset) looking at the
    // content region, mimicking the inward-facing capture of the datasets.
    let proto = Camera::look_at(
        640,
        480,
        60.0,
        Vec3::new(r * 0.9, r * 0.35, 0.0),
        Vec3::new(0.0, r * 0.05, 0.0),
    );
    let train_traj = crate::trajectory::orbit(Vec3::new(0.0, r * 0.05, 0.0), r * 0.9, r * 0.35, 12);
    let eval_traj = crate::trajectory::orbit(Vec3::new(0.0, r * 0.08, 0.0), r * 0.75, r * 0.45, 7);
    let train_cameras = train_traj.cameras(&proto, 24);
    let eval_cameras = eval_traj.cameras(&proto, 8);

    Ok(Scene {
        model,
        train_cameras,
        eval_cameras,
        spec: spec.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::stats;

    fn small_spec() -> SceneSpec {
        SceneSpec {
            total_points: 2_000,
            ..SceneSpec::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec()).unwrap();
        let b = generate(&small_spec()).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.train_cameras.len(), b.train_cameras.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_spec()).unwrap();
        let mut spec = small_spec();
        spec.seed = 42;
        let b = generate(&spec).unwrap();
        assert_ne!(a.model.positions, b.model.positions);
    }

    #[test]
    fn point_budget_respected() {
        let s = generate(&small_spec()).unwrap();
        let n = s.model.len();
        assert!((1_990..=2_000).contains(&n), "n = {n}");
    }

    #[test]
    fn model_is_valid() {
        let s = generate(&small_spec()).unwrap();
        s.model.validate().unwrap();
    }

    #[test]
    fn scale_distribution_is_heavy_tailed() {
        let s = generate(&small_spec()).unwrap();
        let extents: Vec<f32> = (0..s.model.len())
            .map(|i| s.model.point_extent(i))
            .collect();
        let p50 = stats::percentile(&extents, 50.0);
        let p99 = stats::percentile(&extents, 99.0);
        // Floaters/background make the tail much fatter than the median.
        assert!(p99 / p50 > 5.0, "tail ratio {}", p99 / p50);
    }

    #[test]
    fn floaters_have_low_opacity() {
        let spec = small_spec();
        let s = generate(&spec).unwrap();
        // Floater points sit in a contiguous block; reconstruct its range.
        let n = spec.total_points;
        let n_cluster = (n as f32 * spec.cluster_fraction) as usize;
        let n_ground = (n as f32 * spec.ground_fraction) as usize;
        let n_background = (n as f32 * spec.background_fraction) as usize;
        let n_floater = (n as f32 * spec.floater_fraction) as usize;
        let start = n_cluster + n_ground + n_background;
        for i in start..start + n_floater {
            assert!(s.model.opacities[i] <= 0.15 + 1e-6);
        }
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut spec = small_spec();
        spec.cluster_fraction = 0.9;
        spec.ground_fraction = 0.5;
        assert!(generate(&spec).is_err());
        let mut spec2 = small_spec();
        spec2.total_points = 0;
        assert!(generate(&spec2).is_err());
    }

    #[test]
    fn cameras_look_at_content() {
        let s = generate(&small_spec()).unwrap();
        for cam in &s.train_cameras {
            // Scene center should project near the image center region.
            let px = cam.world_to_pixel(cam.target).unwrap();
            assert!((px.x - 320.0).abs() < 1.0 && (px.y - 240.0).abs() < 1.0);
        }
    }
}
