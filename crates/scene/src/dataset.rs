//! The evaluation corpus: 13 named traces in 3 datasets.
//!
//! Mirrors the paper's corpus ("Mip-Nerf360, Tanks & Temple, and
//! DeepBlending, which amounts to 13 traces in total", §6). Each trace maps
//! to a deterministic [`SceneSpec`] whose point
//! budget and composition echo the real scene's character (e.g. `bicycle` is
//! the largest/most cluttered; indoor traces are smaller and denser).

use crate::synth::{self, Scene, SceneSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Mip-NeRF 360 (9 traces; large unbounded outdoor/indoor scenes).
    MipNerf360,
    /// Tanks & Temples (2 traces).
    TanksAndTemples,
    /// Deep Blending (2 traces).
    DeepBlending,
}

impl Dataset {
    /// All datasets in paper order.
    pub const ALL: [Dataset; 3] = [
        Dataset::MipNerf360,
        Dataset::TanksAndTemples,
        Dataset::DeepBlending,
    ];

    /// Trace names belonging to this dataset.
    pub fn trace_names(self) -> &'static [&'static str] {
        match self {
            Dataset::MipNerf360 => &[
                "bicycle", "garden", "stump", "room", "counter", "kitchen", "bonsai", "flowers",
                "treehill",
            ],
            Dataset::TanksAndTemples => &["truck", "train"],
            Dataset::DeepBlending => &["drjohnson", "playroom"],
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Dataset::MipNerf360 => "Mip-NeRF 360",
            Dataset::TanksAndTemples => "Tanks & Temples",
            Dataset::DeepBlending => "Deep Blending",
        };
        f.write_str(name)
    }
}

/// Identifier of a single trace (dataset + scene name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceId {
    /// Owning dataset.
    pub dataset: Dataset,
    /// Scene name (paper nomenclature, lowercase).
    pub name: &'static str,
}

impl TraceId {
    /// Look up a trace by dataset and name.
    pub fn new(dataset: Dataset, name: &str) -> Option<Self> {
        dataset
            .trace_names()
            .iter()
            .find(|&&n| n == name)
            .map(|&n| TraceId { dataset, name: n })
    }

    /// Find a trace by name across all datasets.
    pub fn by_name(name: &str) -> Option<Self> {
        Dataset::ALL.iter().find_map(|&d| TraceId::new(d, name))
    }

    /// All 13 traces in paper order.
    pub fn all() -> Vec<TraceId> {
        Dataset::ALL
            .iter()
            .flat_map(|&d| {
                d.trace_names().iter().map(move |&n| TraceId {
                    dataset: d,
                    name: n,
                })
            })
            .collect()
    }

    /// The four traces used in the user study (Fig. 11).
    pub fn user_study() -> [TraceId; 4] {
        [
            TraceId::by_name("room").unwrap(),
            TraceId::by_name("drjohnson").unwrap(),
            TraceId::by_name("truck").unwrap(),
            TraceId::by_name("bicycle").unwrap(),
        ]
    }

    /// Relative size/complexity of this trace (1.0 = corpus average).
    ///
    /// `bicycle` is the paper's largest trace (its dense checkpoint is
    /// 1.4 GB and it shows the biggest speedups, §7.2); indoor traces are
    /// smaller.
    pub fn complexity(self) -> f32 {
        match self.name {
            "bicycle" => 2.2,
            "garden" => 1.9,
            "stump" => 1.6,
            "flowers" => 1.5,
            "treehill" => 1.5,
            "truck" => 1.2,
            "train" => 1.1,
            "kitchen" => 0.8,
            "counter" => 0.7,
            "room" => 0.65,
            "bonsai" => 0.6,
            "drjohnson" => 1.0,
            "playroom" => 0.8,
            _ => 1.0,
        }
    }

    /// Whether the trace is an unbounded outdoor scene (fatter scale tails,
    /// more floaters).
    pub fn outdoor(self) -> bool {
        matches!(
            self.name,
            "bicycle" | "garden" | "stump" | "flowers" | "treehill" | "truck" | "train"
        )
    }

    /// Deterministic seed for this trace.
    pub fn seed(self) -> u64 {
        // FNV-1a over the name, namespaced by dataset.
        let mut h: u64 =
            0xcbf29ce484222325 ^ (self.dataset as u64).wrapping_mul(0x9E3779B97F4A7C15);
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Scene-generation spec at a given `scale` (fraction of the full-size
    /// point budget; 1.0 ≈ 400 k points for an average trace — large enough
    /// to exhibit the paper's distributions while tractable on CPU).
    pub fn spec_with_scale(self, scale: f32) -> SceneSpec {
        let base_points = 400_000.0;
        let (floater, log_sigma) = if self.outdoor() {
            (0.10, 0.85)
        } else {
            (0.05, 0.6)
        };
        SceneSpec {
            seed: self.seed(),
            total_points: ((base_points * self.complexity() * scale) as usize).max(200),
            radius: if self.outdoor() { 14.0 } else { 7.0 },
            cluster_count: if self.outdoor() { 8 } else { 5 },
            cluster_fraction: 0.15,
            ground_fraction: if self.outdoor() { 0.10 } else { 0.13 },
            background_fraction: if self.outdoor() { 0.07 } else { 0.06 },
            floater_fraction: floater,
            base_log_scale: -3.2,
            log_scale_sigma: log_sigma,
            sh_degree: 3,
        }
    }

    /// Generate this trace's scene at the given scale.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in spec were invalid, which the test suite
    /// guards against.
    pub fn build_scene_with_scale(self, scale: f32) -> Scene {
        synth::generate(&self.spec_with_scale(scale)).expect("built-in trace specs are valid")
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.dataset, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_13_traces() {
        assert_eq!(TraceId::all().len(), 13);
    }

    #[test]
    fn lookup_by_name() {
        let t = TraceId::by_name("bicycle").unwrap();
        assert_eq!(t.dataset, Dataset::MipNerf360);
        assert!(TraceId::by_name("nonexistent").is_none());
        assert!(TraceId::new(Dataset::DeepBlending, "bicycle").is_none());
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            TraceId::all().iter().map(|t| t.seed()).collect();
        assert_eq!(seeds.len(), 13);
    }

    #[test]
    fn bicycle_is_largest() {
        let max = TraceId::all()
            .into_iter()
            .max_by(|a, b| a.complexity().partial_cmp(&b.complexity()).unwrap())
            .unwrap();
        assert_eq!(max.name, "bicycle");
    }

    #[test]
    fn user_study_traces_match_paper() {
        let names: Vec<&str> = TraceId::user_study().iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["room", "drjohnson", "truck", "bicycle"]);
    }

    #[test]
    fn all_specs_are_valid_and_generate() {
        for t in TraceId::all() {
            let spec = t.spec_with_scale(0.003);
            spec.validate().unwrap_or_else(|e| panic!("{t}: {e}"));
            let scene = t.build_scene_with_scale(0.003);
            assert!(scene.model.len() >= 200, "{t}");
        }
    }

    #[test]
    fn display_formats() {
        let t = TraceId::by_name("truck").unwrap();
        assert_eq!(t.to_string(), "Tanks & Temples/truck");
    }
}
