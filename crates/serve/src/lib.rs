//! Multi-session frame server with pipelined frames in flight.
//!
//! A PBNR deployment (the paper's §6 serving scenario) renders *streams* of
//! frames for multiple viewers of one scene, not isolated frames: each
//! session walks its own camera trajectory at its own quality settings,
//! while every session shares the same immutable Gaussian model. This crate
//! provides that serving layer on top of the staged renderer:
//!
//! * **One shared scene.** [`FrameServer`] owns a [`SceneHandle`] — an
//!   `Arc<GaussianModel>` or an `Arc<dyn SceneSource>` streamed chunk by
//!   chunk; sessions never copy scene data. Chunked sessions advance one
//!   chunk of Project/Bin per step (at most two chunk buffers resident per
//!   session with the decode prefetch), and their frames are bit-identical
//!   to in-core ones.
//! * **One shared chunk cache.** Every session's renderer shares the
//!   server's [`ChunkCache`], so sessions streaming the same scene hit
//!   each other's decodes — with N sessions walking the same chunked
//!   source, each chunk decodes roughly once for the whole server instead
//!   of once per pass per session. Cache traffic is aggregated in
//!   [`ServerReport::cache`]. Cache hits return the exact decoded bytes, so
//!   sharing never affects determinism.
//! * **Fault isolation.** A chunk-load failure ([`SourceError`]) kills only
//!   the session that hit it: the failed frame's buffers are recovered, the
//!   session stops admitting and reports the error via
//!   [`session_error`](FrameServer::session_error), and every other
//!   session keeps producing bit-identical frames
//!   (`tests/fault_injection.rs` pins one failing session among 16).
//! * **Per-session streams.** [`SessionConfig`] pairs a
//!   [`Trajectory`] + prototype [`Camera`] (the pose source) with
//!   [`RenderOptions`] (quality knobs) — options are validated **once at
//!   session admission** and only debug-asserted on the per-frame hot path.
//! * **Pipelined frames.** Each session keeps a small bounded window of
//!   [`FrameInFlight`] frames; every server
//!   [`step`](FrameServer::step) advances one pipeline stage of *every*
//!   in-flight frame concurrently on the shared worker pool, so the
//!   Project/Bin of one frame overlaps the Raster/Composite of another —
//!   across sessions and within one session's window.
//! * **Backpressure.** Finished frames land in a bounded per-session output
//!   ring; when `ring + in-flight` reaches `ring_capacity`, the session
//!   stops admitting frames until the consumer drains
//!   ([`take_frames`](FrameServer::take_frames)). A slow consumer stalls
//!   only its own session.
//! * **Determinism.** A frame is a self-contained state machine running the
//!   exact stage sequence of `Renderer::render`; concurrency changes only
//!   *when* stages run, never their inputs. Every session's frames are
//!   bit-identical to a solo `Renderer` walking the same trajectory,
//!   regardless of how many other sessions are in flight
//!   (`tests/server_determinism.rs` enforces this at 16 sessions).
//!
//! Sessions can be added and removed mid-run; [`SessionStats`] (frame
//! latency percentiles, sustained FPS) are available per session and
//! aggregated into a [`ServerReport`].

#![deny(missing_docs)]

use ms_render::{FrameArena, FrameInFlight, RenderOptions, RenderOutput, Renderer, SceneRef};
use ms_scene::trajectory::Trajectory;
use ms_scene::{CacheStats, Camera, ChunkCache, GaussianModel, SceneSource, SourceError};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The scene a server shares across its sessions: either a fully resident
/// model or a chunked out-of-core [`SceneSource`], both behind an `Arc` so
/// sessions never copy scene data. Chunked sessions stream Project/Bin one
/// chunk per scheduling step and are bit-identical to in-core ones over
/// the concatenated chunks (`tests/server_determinism.rs` pins this).
#[derive(Clone)]
pub enum SceneHandle {
    /// The whole model resident in memory.
    InCore(Arc<GaussianModel>),
    /// A chunked source with a bounded per-session resident budget.
    Chunked(Arc<dyn SceneSource + Send + Sync>),
}

impl SceneHandle {
    /// Borrow the scene for a frame step.
    pub fn as_scene_ref(&self) -> SceneRef<'_> {
        match self {
            SceneHandle::InCore(model) => SceneRef::InCore(model),
            SceneHandle::Chunked(source) => SceneRef::Chunked(&**source),
        }
    }

    /// Total points in the scene.
    pub fn total_points(&self) -> usize {
        self.as_scene_ref().total_points()
    }
}

impl std::fmt::Debug for SceneHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_scene_ref().fmt(f)
    }
}

/// Stable handle for one serving session. Ids are never reused within a
/// server, so a stale handle cannot alias a newer session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id value (for logs and reports).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Everything a session needs at admission time.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Camera-pose source; the session renders `frame_count` poses sampled
    /// uniformly along it (`Trajectory::camera_at`).
    pub trajectory: Trajectory,
    /// Camera intrinsics (resolution, fov) applied to every sampled pose.
    pub prototype: Camera,
    /// Total frames the session renders. At least 2 (the trajectory
    /// sampler needs two endpoints).
    pub frame_count: usize,
    /// Render options. Validated once at [`FrameServer::add_session`].
    pub options: RenderOptions,
    /// Maximum frames simultaneously in flight for this session (the
    /// pipelining window). At least 1; 1 disables intra-session
    /// pipelining.
    pub in_flight: usize,
    /// Bound on `completed-but-undrained + in-flight` frames — the
    /// backpressure limit. At least 1 (and at least `in_flight` to ever
    /// use the whole window).
    pub ring_capacity: usize,
}

/// One finished frame, as delivered to the session's consumer.
#[derive(Debug)]
pub struct FrameResult {
    /// Index along the session's trajectory (`0..frame_count`).
    pub frame_index: usize,
    /// The rendered frame, bit-identical to a solo `Renderer::render` of
    /// the same pose.
    pub output: RenderOutput,
    /// Wall time from admission to completion (includes time spent queued
    /// behind other sessions' stages).
    pub latency: Duration,
}

/// A frame being advanced through the pipeline.
struct InFlightFrame {
    index: usize,
    started: Instant,
    frame: FrameInFlight,
}

/// Internal per-session state.
struct Session {
    id: SessionId,
    renderer: Renderer,
    trajectory: Trajectory,
    prototype: Camera,
    frame_count: usize,
    window: usize,
    ring_capacity: usize,
    /// Next trajectory index to admit.
    next_frame: usize,
    /// Frames currently in the pipeline, in admission (= index) order.
    in_flight: VecDeque<InFlightFrame>,
    /// Completed frames awaiting the consumer, in completion order.
    ring: VecDeque<FrameResult>,
    /// Recycled scratch buffers (one arena per window slot at steady
    /// state).
    arenas: Vec<FrameArena>,
    /// Completion latencies of every finished frame, for the percentiles.
    latencies: Vec<Duration>,
    first_started: Option<Instant>,
    last_completed: Option<Instant>,
    /// The chunk-load error that killed this session, if any. A failed
    /// session stops admitting frames but stays queryable
    /// ([`FrameServer::session_error`]); other sessions are unaffected.
    failed: Option<SourceError>,
}

impl Session {
    /// Frames this session still owes (admitted or not yet admitted). A
    /// failed session owes nothing — it is finished, albeit unsuccessfully.
    fn is_finished(&self) -> bool {
        (self.next_frame >= self.frame_count || self.failed.is_some()) && self.in_flight.is_empty()
    }

    /// Admit frames up to the window and backpressure limits.
    fn admit(&mut self, scene: SceneRef<'_>) {
        while self.failed.is_none()
            && self.next_frame < self.frame_count
            && self.in_flight.len() < self.window
            && self.in_flight.len() + self.ring.len() < self.ring_capacity
        {
            let index = self.next_frame;
            self.next_frame += 1;
            let camera = self
                .trajectory
                .camera_at(&self.prototype, index, self.frame_count);
            let arena = self.arenas.pop().unwrap_or_default();
            let started = Instant::now();
            self.first_started.get_or_insert(started);
            let frame = self.renderer.begin_frame_source(scene, &camera, arena);
            self.in_flight.push_back(InFlightFrame {
                index,
                started,
                frame,
            });
        }
    }

    /// Move finished frames from the pipeline window into the output ring.
    /// Completion is in-order (the window is FIFO), so a done frame behind
    /// an unfinished one waits — frame indices in the ring are
    /// monotonically increasing. A *failed* front frame instead kills the
    /// session: its error is recorded, its buffers recovered, and any
    /// frames queued behind it abandoned (their outputs would follow a
    /// hole in the stream). Frames already delivered stay delivered.
    fn complete(&mut self) -> usize {
        let mut completed = 0;
        while let Some(front) = self.in_flight.front() {
            if front.frame.is_done() {
                let inf = self.in_flight.pop_front().expect("front checked above");
                let (output, arena) = inf.frame.finish(&self.renderer);
                self.arenas.push(arena);
                let latency = inf.started.elapsed();
                self.latencies.push(latency);
                self.last_completed = Some(Instant::now());
                self.ring.push_back(FrameResult {
                    frame_index: inf.index,
                    output,
                    latency,
                });
                completed += 1;
            } else if front.frame.is_failed() {
                let inf = self.in_flight.pop_front().expect("front checked above");
                let (error, arena) = inf.frame.into_failure();
                self.arenas.push(arena);
                self.failed = Some(error);
                self.in_flight.clear();
            } else {
                break;
            }
        }
        completed
    }

    fn stats(&self) -> SessionStats {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let sustained_fps = match (self.first_started, self.last_completed) {
            (Some(start), Some(end)) if end > start && !sorted.is_empty() => {
                sorted.len() as f64 / (end - start).as_secs_f64()
            }
            _ => 0.0,
        };
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            sorted.iter().sum::<Duration>() / sorted.len() as u32
        };
        SessionStats {
            id: self.id,
            frames_completed: self.latencies.len(),
            latency_p50: percentile(&sorted, 50.0),
            latency_p99: percentile(&sorted, 99.0),
            latency_mean: mean,
            sustained_fps,
        }
    }
}

/// Nearest-rank percentile over sorted samples; `Duration::ZERO` when
/// empty.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Latency/throughput summary of one session.
#[derive(Debug, Clone, Copy)]
pub struct SessionStats {
    /// Which session.
    pub id: SessionId,
    /// Frames finished so far.
    pub frames_completed: usize,
    /// Median admission-to-completion frame latency.
    pub latency_p50: Duration,
    /// 99th-percentile frame latency (nearest rank).
    pub latency_p99: Duration,
    /// Mean frame latency.
    pub latency_mean: Duration,
    /// Frames completed per second of session wall time (first admission
    /// to last completion); `0.0` before the first completion.
    pub sustained_fps: f64,
}

/// Server-wide aggregation of every live session's stats.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-session stats, in session-creation order.
    pub sessions: Vec<SessionStats>,
    /// Total frames completed across live sessions.
    pub total_frames: usize,
    /// Wall time from the earliest admission to the latest completion
    /// across sessions.
    pub wall: Duration,
    /// Total frames over `wall` — the server's aggregate throughput.
    pub aggregate_fps: f64,
    /// Lifetime traffic of the server's shared [`ChunkCache`]: hits,
    /// misses, evictions and the resident-bytes high-water mark, summed
    /// over every session and frame so far. All zeros for in-core scenes,
    /// which never touch the cache.
    pub cache: CacheStats,
}

/// Frame server: one shared scene, many pipelined sessions.
///
/// Drive it with [`step`](Self::step) (one stage of every in-flight frame
/// per call) and drain with [`take_frames`](Self::take_frames), or use
/// [`run_to_completion`](Self::run_to_completion) for batch workloads.
pub struct FrameServer {
    scene: SceneHandle,
    sessions: Vec<Session>,
    next_id: u64,
    /// Chunk cache shared by every session's renderer, so sessions
    /// streaming the same scene hit each other's decodes.
    cache: Arc<ChunkCache>,
}

impl FrameServer {
    /// Create a server for one shared in-core scene.
    pub fn new(model: Arc<GaussianModel>) -> Self {
        Self::new_scene(SceneHandle::InCore(model))
    }

    /// Create a server streaming a shared chunked source: sessions run the
    /// chunked Project/Bin passes (one chunk per scheduling step, at most
    /// two chunk buffers resident per session) and interleave exactly like
    /// in-core ones, sharing one chunk cache across all sessions.
    pub fn new_chunked(source: Arc<dyn SceneSource + Send + Sync>) -> Self {
        Self::new_scene(SceneHandle::Chunked(source))
    }

    /// Create a server for any [`SceneHandle`]. The shared chunk cache's
    /// budget resolves like a default renderer's
    /// ([`RenderOptions::cache_budget_bytes`] unset: the `MS_CHUNK_CACHE`
    /// env var, else the built-in default); use
    /// [`new_scene_with_cache`](Self::new_scene_with_cache) to pick one
    /// explicitly.
    pub fn new_scene(scene: SceneHandle) -> Self {
        let budget = RenderOptions::default().resolved_cache_budget();
        Self::new_scene_with_cache(scene, Arc::new(ChunkCache::new(budget)))
    }

    /// Create a server whose sessions share `cache` — also lets several
    /// servers share one cache, or tests pick an exact budget.
    pub fn new_scene_with_cache(scene: SceneHandle, cache: Arc<ChunkCache>) -> Self {
        Self {
            scene,
            sessions: Vec::new(),
            next_id: 0,
            cache,
        }
    }

    /// The shared scene.
    pub fn scene(&self) -> &SceneHandle {
        &self.scene
    }

    /// The chunk cache every session's renderer shares.
    pub fn chunk_cache(&self) -> &Arc<ChunkCache> {
        &self.cache
    }

    /// The shared in-core model, `None` when the server streams a chunked
    /// source.
    pub fn model(&self) -> Option<&Arc<GaussianModel>> {
        match &self.scene {
            SceneHandle::InCore(model) => Some(model),
            SceneHandle::Chunked(_) => None,
        }
    }

    /// Admit a session. Validates `config.options` (and the session
    /// bounds) **here, once** — per-frame rendering only debug-asserts
    /// the invariant afterwards. Sessions may be added while others are
    /// mid-flight; the new session joins scheduling at the next
    /// [`step`](Self::step).
    pub fn add_session(&mut self, config: SessionConfig) -> Result<SessionId, String> {
        config.options.validate()?;
        if config.frame_count < 2 {
            return Err(format!(
                "frame_count must be >= 2 (trajectory sampling needs two endpoints), got {}",
                config.frame_count
            ));
        }
        if config.in_flight == 0 {
            return Err("in_flight window must be >= 1".into());
        }
        if config.ring_capacity == 0 {
            return Err("ring_capacity must be >= 1".into());
        }
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.sessions.push(Session {
            id,
            renderer: Renderer::with_chunk_cache(config.options, Arc::clone(&self.cache)),
            trajectory: config.trajectory,
            prototype: config.prototype,
            frame_count: config.frame_count,
            window: config.in_flight,
            ring_capacity: config.ring_capacity,
            next_frame: 0,
            in_flight: VecDeque::new(),
            ring: VecDeque::new(),
            arenas: Vec::new(),
            latencies: Vec::new(),
            first_started: None,
            last_completed: None,
            failed: None,
        });
        Ok(id)
    }

    /// The chunk-load error that killed a session, `None` while it is
    /// healthy (or for an unknown id). A failed session completes no
    /// further frames; frames it delivered before the fault remain valid.
    pub fn session_error(&self, id: SessionId) -> Option<&SourceError> {
        self.sessions
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| s.failed.as_ref())
    }

    /// Remove a session mid-run, dropping its in-flight frames and
    /// undrained ring; returns its stats so far (`None` for an unknown
    /// id). Other sessions are unaffected.
    pub fn remove_session(&mut self, id: SessionId) -> Option<SessionStats> {
        let pos = self.sessions.iter().position(|s| s.id == id)?;
        let session = self.sessions.remove(pos);
        Some(session.stats())
    }

    /// Ids of live sessions, in creation order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.iter().map(|s| s.id).collect()
    }

    /// Advance the server: admit frames into every session's window, run
    /// **one pipeline stage of every in-flight frame** concurrently on the
    /// worker pool, then move finished frames into their session rings.
    /// Returns the number of frames completed this step.
    ///
    /// Each stage task is one `rayon` scope spawn, so the pool's
    /// round-robin queue interleaves sessions fairly; stages that are
    /// internally parallel (Project/Bin/Raster) spawn their own sub-tasks
    /// from within.
    pub fn step(&mut self) -> usize {
        let scene = self.scene.as_scene_ref();
        for session in &mut self.sessions {
            session.admit(scene);
        }
        let sessions = &mut self.sessions;
        rayon::scope(|sc| {
            for session in sessions.iter_mut() {
                let Session {
                    renderer,
                    in_flight,
                    ..
                } = session;
                let renderer: &Renderer = &*renderer;
                for inf in in_flight.iter_mut() {
                    let frame = &mut inf.frame;
                    sc.spawn(move |_| {
                        frame.run_stage(renderer, scene);
                    });
                }
            }
        });
        self.sessions.iter_mut().map(Session::complete).sum()
    }

    /// Drain the session's completed frames (in frame-index order),
    /// releasing its backpressure budget. Empty for an unknown id.
    pub fn take_frames(&mut self, id: SessionId) -> Vec<FrameResult> {
        self.sessions
            .iter_mut()
            .find(|s| s.id == id)
            .map(|s| s.ring.drain(..).collect())
            .unwrap_or_default()
    }

    /// Whether every session has rendered all its frames (undrained rings
    /// do not count as work).
    pub fn is_idle(&self) -> bool {
        self.sessions.iter().all(Session::is_finished)
    }

    /// Step until every session completes, draining rings as they fill so
    /// backpressure never stalls the run. Returns each session's full
    /// frame sequence, in session-creation order.
    pub fn run_to_completion(&mut self) -> Vec<(SessionId, Vec<FrameResult>)> {
        let mut results: Vec<(SessionId, Vec<FrameResult>)> = self
            .session_ids()
            .into_iter()
            .map(|id| (id, Vec::new()))
            .collect();
        while !self.is_idle() {
            self.step();
            for (id, frames) in &mut results {
                let mut taken = self.take_frames(*id);
                frames.append(&mut taken);
            }
        }
        for (id, frames) in &mut results {
            let mut taken = self.take_frames(*id);
            frames.append(&mut taken);
        }
        results
    }

    /// Stats of one live session (`None` for an unknown id).
    pub fn session_stats(&self, id: SessionId) -> Option<SessionStats> {
        self.sessions
            .iter()
            .find(|s| s.id == id)
            .map(Session::stats)
    }

    /// Aggregate stats across live sessions.
    pub fn report(&self) -> ServerReport {
        let sessions: Vec<SessionStats> = self.sessions.iter().map(Session::stats).collect();
        let total_frames = sessions.iter().map(|s| s.frames_completed).sum();
        let start = self.sessions.iter().filter_map(|s| s.first_started).min();
        let end = self.sessions.iter().filter_map(|s| s.last_completed).max();
        let wall = match (start, end) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => Duration::ZERO,
        };
        let aggregate_fps = if wall > Duration::ZERO {
            total_frames as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        ServerReport {
            sessions,
            total_frames,
            wall,
            aggregate_fps,
            cache: self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::Quat;
    use ms_math::Vec3;
    use ms_scene::trajectory::orbit;
    use ms_scene::GaussianModel;

    fn test_model() -> Arc<GaussianModel> {
        let mut m = GaussianModel::new(0);
        for i in 0..30 {
            let f = i as f32;
            m.push_solid(
                Vec3::new((f * 0.31).sin(), (f * 0.17).cos() * 0.8, (f * 0.09).sin()),
                Vec3::splat(0.15),
                Quat::identity(),
                0.7,
                Vec3::new(f / 30.0, 0.4, 1.0 - f / 30.0),
            );
        }
        Arc::new(m)
    }

    fn config(radius: f32) -> SessionConfig {
        SessionConfig {
            trajectory: orbit(Vec3::zero(), radius, 1.0, 6),
            prototype: Camera::look_at(48, 32, 60.0, Vec3::new(0.0, 1.0, 4.0), Vec3::zero()),
            frame_count: 4,
            options: RenderOptions::default(),
            in_flight: 2,
            ring_capacity: 4,
        }
    }

    #[test]
    fn single_session_completes_all_frames() {
        let mut server = FrameServer::new(test_model());
        let id = server.add_session(config(4.0)).unwrap();
        let results = server.run_to_completion();
        assert_eq!(results.len(), 1);
        let (rid, frames) = &results[0];
        assert_eq!(*rid, id);
        assert_eq!(frames.len(), 4);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.frame_index, i);
        }
        let stats = server.session_stats(id).unwrap();
        assert_eq!(stats.frames_completed, 4);
        assert!(stats.sustained_fps > 0.0);
    }

    #[test]
    fn invalid_options_rejected_at_admission() {
        let mut server = FrameServer::new(test_model());
        let mut cfg = config(4.0);
        cfg.options.tile_size = 0;
        assert!(server.add_session(cfg).is_err());
        let mut cfg = config(4.0);
        cfg.frame_count = 1;
        assert!(server.add_session(cfg).is_err());
        let mut cfg = config(4.0);
        cfg.in_flight = 0;
        assert!(server.add_session(cfg).is_err());
        let mut cfg = config(4.0);
        cfg.ring_capacity = 0;
        assert!(server.add_session(cfg).is_err());
    }

    #[test]
    fn backpressure_stalls_without_draining() {
        let mut server = FrameServer::new(test_model());
        let mut cfg = config(4.0);
        cfg.frame_count = 8;
        cfg.in_flight = 2;
        cfg.ring_capacity = 3;
        let id = server.add_session(cfg).unwrap();
        // Without draining, at most `ring_capacity` frames can ever
        // complete.
        for _ in 0..64 {
            server.step();
        }
        assert!(!server.is_idle());
        let s = &server.sessions[0];
        assert_eq!(s.ring.len(), 3);
        assert!(s.in_flight.is_empty());
        // Draining releases the stall and the run finishes.
        let first = server.take_frames(id);
        assert_eq!(first.len(), 3);
        let rest = server.run_to_completion();
        assert_eq!(first.len() + rest[0].1.len(), 8);
    }

    #[test]
    fn sessions_add_and_remove_mid_run() {
        let mut server = FrameServer::new(test_model());
        let a = server.add_session(config(3.0)).unwrap();
        server.step();
        let b = server.add_session(config(5.0)).unwrap();
        server.step();
        let removed = server.remove_session(a).expect("a is live");
        assert_eq!(removed.id, a);
        assert!(server.remove_session(a).is_none(), "ids are not reused");
        let results = server.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, b);
        assert_eq!(results[0].1.len(), 4);
        let report = server.report();
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(report.total_frames, 4);
    }

    #[test]
    fn chunked_server_matches_in_core_server() {
        let model = test_model();
        let mut in_core = FrameServer::new(model.clone());
        in_core.add_session(config(4.0)).unwrap();
        let reference = in_core.run_to_completion();

        // A chunk size of 7 splits the 30-point model mid-stream (5 chunks,
        // last one ragged).
        let source: Arc<dyn SceneSource + Send + Sync> =
            Arc::new(ms_scene::InCoreSource::new((*model).clone(), 7));
        let mut chunked = FrameServer::new_chunked(source);
        assert!(chunked.model().is_none());
        assert_eq!(chunked.scene().total_points(), model.len());
        chunked.add_session(config(4.0)).unwrap();
        let streamed = chunked.run_to_completion();

        assert_eq!(reference.len(), 1);
        assert_eq!(streamed.len(), 1);
        let (_, ref_frames) = &reference[0];
        let (_, chk_frames) = &streamed[0];
        assert_eq!(ref_frames.len(), chk_frames.len());
        for (r, c) in ref_frames.iter().zip(chk_frames) {
            assert_eq!(r.frame_index, c.frame_index);
            assert_eq!(r.output, c.output, "frame {}", r.frame_index);
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&ms[..1], 99.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }
}
