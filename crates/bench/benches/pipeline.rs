//! Criterion benchmarks of the higher-level pipeline steps: CE computation,
//! one prune round, one fine-tune iteration, foveated vs dense frame
//! rendering (the wall-clock counterpart of the paper's FPS comparisons),
//! and thread scaling of the parallel pipeline stages with a per-stage
//! wall-time report from `FrameProfile`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use metasapiens::fov::{build_foveated, FoveatedRenderer, FrBuildConfig};
use metasapiens::render::{RenderOptions, Renderer, StageKind};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;
use metasapiens::train::ce::{compute_ce, CeOptions};
use metasapiens::train::finetune::{FineTuneConfig, FineTuner};
use metasapiens::train::prune::prune_fraction;
use std::time::Duration;

struct Setup {
    scene: metasapiens::scene::synth::Scene,
    cameras: Vec<Camera>,
    references: Vec<metasapiens::render::Image>,
}

fn setup() -> Setup {
    let scene = TraceId::by_name("room")
        .unwrap()
        .build_scene_with_scale(0.006);
    let cameras: Vec<Camera> = scene
        .train_cameras
        .iter()
        .step_by(12)
        .take(2)
        .map(|c| Camera {
            width: 128,
            height: 96,
            fovy: ms_math::deg_to_rad(74.0),
            ..*c
        })
        .collect();
    let renderer = Renderer::default();
    let references = cameras
        .iter()
        .map(|c| renderer.render(&scene.model, c).image)
        .collect();
    Setup {
        scene,
        cameras,
        references,
    }
}

fn bench_ce(c: &mut Criterion) {
    let s = setup();
    let opts = CeOptions::default();
    c.bench_function("compute_ce_two_poses", |b| {
        b.iter(|| compute_ce(&s.scene.model, &s.cameras, &opts));
    });
}

fn bench_prune_round(c: &mut Criterion) {
    let s = setup();
    let ce = compute_ce(&s.scene.model, &s.cameras, &CeOptions::default());
    c.bench_function("prune_10_percent", |b| {
        b.iter(|| prune_fraction(&s.scene.model, &ce, 0.10));
    });
}

fn bench_finetune_iteration(c: &mut Criterion) {
    let s = setup();
    let config = FineTuneConfig {
        iterations: 1,
        ..FineTuneConfig::default()
    };
    c.bench_function("finetune_one_iteration", |b| {
        b.iter_batched(
            || s.scene.model.clone(),
            |mut m| {
                let mut tuner = FineTuner::new(config.clone(), m.len());
                tuner.run(&mut m, &s.cameras, &s.references)
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_dense_vs_foveated_frame(c: &mut Criterion) {
    let s = setup();
    let fr_model = build_foveated(
        &s.scene.model,
        &s.cameras,
        &s.references,
        &FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        },
    );
    let renderer = Renderer::default();
    let fr = FoveatedRenderer::new(RenderOptions::default());
    let cam = &s.cameras[0];
    let mut group = c.benchmark_group("frame_wall_clock");
    group.bench_function("dense", |b| b.iter(|| renderer.render(&s.scene.model, cam)));
    group.bench_function("foveated", |b| b.iter(|| fr.render(&fr_model, cam, None)));
    group.finish();
}

/// Whole-frame render at each worker count, plus a per-stage wall-time
/// report so Project/Bin/Raster scaling is visible individually — the
/// measure-then-rebalance loop the workload analysis calls for.
fn bench_render_thread_scaling(c: &mut Criterion) {
    let s = setup();
    let cam = &s.cameras[0];
    let thread_counts = [1usize, 2, 4, 8];

    let mut group = c.benchmark_group("render_threads");
    for &threads in &thread_counts {
        let renderer = Renderer::new(RenderOptions {
            threads,
            ..RenderOptions::default()
        });
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| renderer.render(&s.scene.model, cam));
        });
    }
    group.finish();

    // Per-stage wall times (best of N frames, from the frame's own
    // FrameProfile): Project and Bin must shrink as threads grow.
    const FRAMES: usize = 5;
    let stages = [
        StageKind::Project,
        StageKind::Bin,
        StageKind::Merge,
        StageKind::Raster,
        StageKind::Composite,
    ];
    for &threads in &thread_counts {
        let renderer = Renderer::new(RenderOptions {
            threads,
            ..RenderOptions::default()
        });
        let best = (0..FRAMES)
            .map(|_| renderer.render(&s.scene.model, cam).stats.profile)
            .min_by_key(|p| p.total_wall())
            .expect("at least one frame");
        let per_stage: Vec<String> = stages
            .iter()
            .map(|&k| format!("{} {:>7.1}µs", k.name(), best.wall(k).as_secs_f64() * 1e6))
            .collect();
        println!(
            "stage_walls threads={threads}  {}  total {:>7.1}µs",
            per_stage.join("  "),
            best.total_wall().as_secs_f64() * 1e6
        );
    }
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = pipeline;
    config = configured();
    targets = bench_ce, bench_prune_round, bench_finetune_iteration,
              bench_dense_vs_foveated_frame, bench_render_thread_scaling
}
criterion_main!(pipeline);
