//! CSR vs naive tile binning: build cost and iteration cost of the flat
//! CSR layout (`TileBins`) against the previous `Vec<Vec<u32>>` layout
//! (`TileBins::build_naive`) on a real projected frame.
//!
//! Acceptance gate for the layout change: CSR build + iteration must be no
//! slower than the nested-Vec baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metasapiens::render::{project_model, RenderOptions, TileBins, TileGridDims};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;
use std::time::Duration;

struct Setup {
    splats: Vec<metasapiens::render::ProjectedSplat>,
    grid: TileGridDims,
}

fn setup() -> Setup {
    let scene = TraceId::by_name("garden")
        .unwrap()
        .build_scene_with_scale(0.01);
    let cam = Camera {
        width: 192,
        height: 144,
        ..scene.train_cameras[0]
    };
    let opts = RenderOptions::default();
    let splats = project_model(&scene.model, &cam, &opts);
    let grid = TileGridDims::for_image(cam.width, cam.height, opts.tile_size);
    Setup { splats, grid }
}

fn bench_build(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("binning_build");
    group.bench_function("csr", |b| {
        b.iter(|| TileBins::build(black_box(&s.splats), s.grid));
    });
    // Sharded pass-1 counting + parallel per-tile sorts on the worker pool;
    // output is bit-identical to the serial build.
    for threads in [2usize, 4] {
        group.bench_function(&format!("csr_threads_{threads}"), |b| {
            b.iter(|| TileBins::build_with_threads(black_box(&s.splats), s.grid, threads));
        });
    }
    group.bench_function("naive_vec_of_vecs", |b| {
        b.iter(|| TileBins::build_naive(black_box(&s.splats), s.grid, |_, _| true));
    });
    group.finish();
}

fn bench_iterate(c: &mut Criterion) {
    let s = setup();
    let csr = TileBins::build(&s.splats, s.grid);
    let naive = TileBins::build_naive(&s.splats, s.grid, |_, _| true);
    let mut group = c.benchmark_group("binning_iterate");
    // Touch every (tile, splat) pair the way the rasterizer does: per tile,
    // walk the depth-sorted list and fold the splat depths. Each layout uses
    // its idiomatic sequential traversal (`iter_tiles` for CSR, `&naive` for
    // the nested Vecs).
    group.bench_function("csr", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for seg in csr.iter_tiles() {
                for &si in seg {
                    acc += s.splats[si as usize].depth;
                }
            }
            acc
        });
    });
    group.bench_function("naive_vec_of_vecs", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for bin in &naive {
                for &si in bin {
                    acc += s.splats[si as usize].depth;
                }
            }
            acc
        });
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = binning;
    config = configured();
    targets = bench_build, bench_iterate
}
criterion_main!(binning);
