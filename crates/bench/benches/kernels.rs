//! Criterion micro-benchmarks of the pipeline kernels: projection, tile
//! binning + sorting, rasterization, HVSQ, and the accelerator simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use metasapiens::accel::{simulate, AccelConfig, AccelWorkload};
use metasapiens::hvs::{DisplayGeometry, EccentricityMap, Hvsq, HvsqOptions};
use metasapiens::render::{project_model, RenderOptions, Renderer, TileBins, TileGridDims};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::Camera;
use std::time::Duration;

fn setup() -> (metasapiens::scene::synth::Scene, Camera) {
    let scene = TraceId::by_name("garden")
        .unwrap()
        .build_scene_with_scale(0.01);
    let cam = Camera {
        width: 192,
        height: 144,
        ..scene.train_cameras[0]
    };
    (scene, cam)
}

fn bench_projection(c: &mut Criterion) {
    let (scene, cam) = setup();
    let opts = RenderOptions::default();
    c.bench_function("projection", |b| {
        b.iter(|| project_model(&scene.model, &cam, &opts));
    });
}

fn bench_binning_and_sort(c: &mut Criterion) {
    let (scene, cam) = setup();
    let opts = RenderOptions::default();
    let splats = project_model(&scene.model, &cam, &opts);
    let grid = TileGridDims::for_image(cam.width, cam.height, 16);
    c.bench_function("binning_sort", |b| {
        b.iter(|| TileBins::build(&splats, grid));
    });
}

fn bench_rasterization(c: &mut Criterion) {
    let (scene, cam) = setup();
    let renderer = Renderer::default();
    c.bench_function("render_full_frame", |b| {
        b.iter(|| renderer.render(&scene.model, &cam));
    });
}

fn bench_rasterization_parallel(c: &mut Criterion) {
    let (scene, cam) = setup();
    let renderer = Renderer::new(RenderOptions {
        threads: 0,
        ..RenderOptions::default()
    });
    c.bench_function("render_full_frame_parallel", |b| {
        b.iter(|| renderer.render(&scene.model, &cam));
    });
}

fn bench_hvsq(c: &mut Criterion) {
    let (scene, cam) = setup();
    let renderer = Renderer::default();
    let reference = renderer.render(&scene.model, &cam).image;
    let mut altered = reference.clone();
    for p in altered.pixels_mut() {
        *p *= 0.97;
    }
    let display = DisplayGeometry::new(cam.width, cam.height, 88.0);
    let hvsq = Hvsq::with_options(
        EccentricityMap::centered(display),
        HvsqOptions {
            stride: 2,
            ..HvsqOptions::default()
        },
    );
    c.bench_function("hvsq_full_image", |b| {
        b.iter(|| hvsq.evaluate(&reference, &altered, None));
    });
}

fn bench_accel_sim(c: &mut Criterion) {
    let (scene, cam) = setup();
    let renderer = Renderer::default();
    let out = renderer.render(&scene.model, &cam);
    let workload =
        AccelWorkload::from_stats(&out.stats, None, 0, scene.model.storage_bytes() as u64);
    let config = AccelConfig::metasapiens_tm_ip();
    c.bench_function("accel_simulate_frame", |b| {
        b.iter_batched(
            || workload.clone(),
            |w| simulate(&w, &config),
            BatchSize::SmallInput,
        );
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = kernels;
    config = configured();
    targets = bench_projection, bench_binning_and_sort, bench_rasterization,
              bench_rasterization_parallel, bench_hvsq, bench_accel_sim
}
criterion_main!(kernels);
