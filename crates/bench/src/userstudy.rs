//! Simulated 2IFC user study (Fig. 11).
//!
//! The paper runs a Two-Interval Forced Choice study with 12 participants:
//! each trace is shown rendered by two methods, eight repetitions each, and
//! the participant picks the preferred one. A human study cannot be
//! replicated offline; we substitute the standard psychophysical observer
//! model: preference follows a Bradley–Terry choice rule driven by the
//! **HVSQ difference** between the two renders (the same quantity the
//! paper's training controls), with a lapse rate for attention slips.
//! This is clearly a simulation — it shows the *pipeline* of the
//! experiment (votes → binomial test), not new evidence about humans.

use ms_math::stats::{binomial_test_at_least, binomial_test_two_sided};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Observer-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObserverModel {
    /// Choice temperature: smaller → more deterministic preference for the
    /// lower-HVSQ render.
    pub temperature: f32,
    /// Lapse rate: probability of a random (inattentive) answer.
    pub lapse: f32,
    /// Detection threshold: HVSQ below this is imperceptible — a metameric
    /// render is indistinguishable from the reference, so two sub-threshold
    /// methods elicit a coin-flip. This is what makes the paper's result
    /// ("statistically no-worse than Mini-Splatting-D") reachable: the
    /// HVS-guided training pushes every region below threshold.
    pub threshold: f32,
}

impl Default for ObserverModel {
    fn default() -> Self {
        Self {
            temperature: 2.0e-5,
            lapse: 0.1,
            threshold: 5.0e-5,
        }
    }
}

impl ObserverModel {
    /// Probability that the observer prefers method A over method B, given
    /// their HVSQ scores (lower = closer to the reference). Scores below
    /// the detection threshold are clamped to it (imperceptible).
    pub fn p_prefer_a(&self, hvsq_a: f32, hvsq_b: f32) -> f64 {
        let a = hvsq_a.max(self.threshold);
        let b = hvsq_b.max(self.threshold);
        let delta = (b - a) as f64 / self.temperature.max(1e-12) as f64;
        let p = 1.0 / (1.0 + (-delta).exp());
        let l = self.lapse as f64;
        l * 0.5 + (1.0 - l) * p
    }
}

/// Result of a simulated study for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceVotes {
    /// Trace name.
    pub trace: String,
    /// Mean votes (out of `repetitions`) for method A per participant.
    pub mean_votes_a: f32,
    /// Standard deviation over participants.
    pub std_votes_a: f32,
    /// Total A-preferences across all participants/repetitions.
    pub total_a: u64,
    /// Total comparisons.
    pub total: u64,
}

/// Simulate a 2IFC block: `participants` observers × `repetitions` per
/// trace, choosing between renders with the given HVSQ scores.
pub fn simulate_trace(
    trace: &str,
    hvsq_a: f32,
    hvsq_b: f32,
    participants: usize,
    repetitions: usize,
    observer: &ObserverModel,
    seed: u64,
) -> TraceVotes {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x21FC);
    let p = observer.p_prefer_a(hvsq_a, hvsq_b);
    let mut per_participant = Vec::with_capacity(participants);
    let mut total_a = 0u64;
    for _ in 0..participants {
        let mut a = 0u32;
        for _ in 0..repetitions {
            if rng.gen_bool(p) {
                a += 1;
            }
        }
        total_a += a as u64;
        per_participant.push(a as f32);
    }
    TraceVotes {
        trace: trace.to_string(),
        mean_votes_a: ms_math::stats::mean(&per_participant),
        std_votes_a: ms_math::stats::std_dev(&per_participant),
        total_a,
        total: (participants * repetitions) as u64,
    }
}

/// Two-sided and one-sided ("A preferred") p-values over pooled votes.
pub fn significance(votes: &[TraceVotes]) -> (f64, f64) {
    let a: u64 = votes.iter().map(|v| v.total_a).sum();
    let n: u64 = votes.iter().map(|v| v.total).sum();
    (binomial_test_two_sided(a, n), binomial_test_at_least(a, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_follows_hvsq() {
        let o = ObserverModel::default();
        // A much better (lower HVSQ) → strongly preferred.
        assert!(o.p_prefer_a(1.0e-5, 3.0e-4) > 0.9);
        // Symmetric.
        let p_ab = o.p_prefer_a(2.0e-5, 4.0e-5);
        let p_ba = o.p_prefer_a(4.0e-5, 2.0e-5);
        assert!((p_ab + p_ba - 1.0).abs() < 1e-9);
        // Equal quality → coin flip.
        assert!((o.p_prefer_a(2.0e-5, 2.0e-5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lapse_bounds_certainty() {
        let o = ObserverModel {
            temperature: 1e-9,
            lapse: 0.2,
            ..ObserverModel::default()
        };
        let p = o.p_prefer_a(0.0, 1.0);
        assert!(p <= 0.9 + 1e-9, "lapse caps certainty: {p}");
    }

    #[test]
    fn sub_threshold_differences_are_invisible() {
        let o = ObserverModel::default();
        // Both methods below the detection threshold → coin flip, even
        // though A is numerically better.
        let p = o.p_prefer_a(1.0e-5, 4.0e-5);
        assert!((p - 0.5).abs() < 1e-9, "sub-threshold must tie: {p}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let o = ObserverModel::default();
        let a = simulate_trace("room", 1e-5, 2e-5, 12, 8, &o, 7);
        let b = simulate_trace("room", 1e-5, 2e-5, 12, 8, &o, 7);
        assert_eq!(a, b);
        assert_eq!(a.total, 96);
    }

    #[test]
    fn clear_winner_reaches_significance() {
        let o = ObserverModel::default();
        let votes: Vec<TraceVotes> = (0..4)
            .map(|i| simulate_trace("t", 1.0e-5, 5.0e-4, 12, 8, &o, i))
            .collect();
        let (two_sided, _) = significance(&votes);
        assert!(two_sided < 0.01, "p = {two_sided}");
    }

    #[test]
    fn tie_is_not_significant() {
        let o = ObserverModel::default();
        let votes: Vec<TraceVotes> = (0..4)
            .map(|i| simulate_trace("t", 2.0e-5, 2.0e-5, 12, 8, &o, 100 + i))
            .collect();
        let (two_sided, _) = significance(&votes);
        assert!(
            two_sided > 0.05,
            "ties should not be significant: p = {two_sided}"
        );
    }
}
