//! Shared experiment harness for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index). They share the
//! corpus loader, workload scaling, table printing and the simulated
//! user-study observer defined here.
//!
//! Experiments run on reduced-scale scenes so the whole suite completes on
//! a laptop; the `MS_SCALE`, `MS_W`, `MS_H`, `MS_CAMS` and `MS_TRACES`
//! environment variables trade fidelity for time.

#![deny(missing_docs)]

pub mod userstudy;

use metasapiens::eval::ScaleFactors;
use metasapiens::render::{Image, RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::synth::Scene;
use metasapiens::scene::Camera;

/// Configuration shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Scene scale (fraction of the full point budget).
    pub scene_scale: f32,
    /// Render width.
    pub width: u32,
    /// Render height.
    pub height: u32,
    /// Vertical FOV in degrees (wide, VR-like, so all four quality regions
    /// are on screen).
    pub fovy_deg: f32,
    /// Cameras sampled per trace.
    pub cameras_per_trace: usize,
    /// Number of traces to evaluate (prefix of the 13-trace corpus).
    pub trace_cap: usize,
}

impl ExperimentConfig {
    /// Defaults tuned so each binary finishes in roughly a minute; all
    /// knobs can be overridden via environment variables.
    pub fn from_env() -> Self {
        let get = |k: &str, d: f32| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse::<f32>().ok())
                .unwrap_or(d)
        };
        Self {
            scene_scale: get("MS_SCALE", 0.008),
            width: get("MS_W", 192.0) as u32,
            height: get("MS_H", 144.0) as u32,
            fovy_deg: get("MS_FOVY", 74.0),
            cameras_per_trace: get("MS_CAMS", 2.0) as usize,
            trace_cap: get("MS_TRACES", 13.0) as usize,
        }
    }

    /// The traces this configuration evaluates.
    pub fn traces(&self) -> Vec<TraceId> {
        TraceId::all()
            .into_iter()
            .take(self.trace_cap.max(1))
            .collect()
    }

    /// Workload scaling back to the paper's full-size configuration.
    pub fn scale_factors(&self) -> ScaleFactors {
        ScaleFactors::for_experiment(self.scene_scale as f64, self.width, self.height)
    }

    /// Shrink a scene camera to the experiment resolution/FOV.
    pub fn shrink_camera(&self, cam: &Camera) -> Camera {
        Camera {
            width: self.width,
            height: self.height,
            fovy: ms_math::deg_to_rad(self.fovy_deg),
            ..*cam
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A loaded trace: scene + experiment cameras + dense reference renders.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// The trace identity.
    pub trace: TraceId,
    /// The generated scene.
    pub scene: Scene,
    /// Experiment cameras.
    pub cameras: Vec<Camera>,
    /// Dense-model reference renders for the cameras.
    pub references: Vec<Image>,
}

/// Load a trace under an experiment configuration.
pub fn load_trace(trace: TraceId, config: &ExperimentConfig) -> LoadedTrace {
    let scene = trace.build_scene_with_scale(config.scene_scale);
    let step = (scene.train_cameras.len() / config.cameras_per_trace.max(1)).max(1);
    let cameras: Vec<Camera> = scene
        .train_cameras
        .iter()
        .step_by(step)
        .take(config.cameras_per_trace.max(1))
        .map(|c| config.shrink_camera(c))
        .collect();
    let renderer = Renderer::new(RenderOptions::default());
    let references = cameras
        .iter()
        .map(|c| renderer.render(&scene.model, c).image)
        .collect();
    LoadedTrace {
        trace,
        scene,
        cameras,
        references,
    }
}

/// Print a fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format a boxplot summary like the paper's figures report them.
pub fn boxplot_row(label: &str, xs: &[f32]) -> Vec<String> {
    match ms_math::stats::BoxplotSummary::from_samples(xs) {
        None => vec![label.to_string(); 1],
        Some(s) => vec![
            label.to_string(),
            format!("{:.1}", s.whisker_lo),
            format!("{:.1}", s.q1),
            format!("{:.1}", s.median),
            format!("{:.1}", s.q3),
            format!("{:.1}", s.whisker_hi),
            format!("{:.1}", s.mean),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scene_scale: 0.002,
            width: 64,
            height: 48,
            fovy_deg: 74.0,
            cameras_per_trace: 2,
            trace_cap: 2,
        }
    }

    #[test]
    fn load_trace_produces_matching_cameras_and_references() {
        let cfg = tiny();
        let t = load_trace(cfg.traces()[0], &cfg);
        assert_eq!(t.cameras.len(), 2);
        assert_eq!(t.references.len(), 2);
        assert_eq!(t.references[0].width(), 64);
    }

    #[test]
    fn trace_cap_limits_corpus() {
        let cfg = tiny();
        assert_eq!(cfg.traces().len(), 2);
    }

    #[test]
    fn boxplot_row_formats() {
        let row = boxplot_row("x", &[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(row.len(), 7);
        assert_eq!(row[0], "x");
    }
}
