//! Fig. 12: ablation of the performance techniques — Dense →
//! +ScaleDecay → +CE pruning → +FR — reporting FPS (left axis) and PSNR
//! (right axis), averaged over the corpus.

use metasapiens::eval::{evaluate_foveated, evaluate_model};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use metasapiens::train::finetune::{fine_tune, FineTuneConfig};
use metasapiens::train::scale_decay::ScaleDecayOptions;
use ms_bench::{load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    println!("== Fig. 12: ablation (MetaSapiens-H, averaged over traces) ==\n");

    let mut fps = [0.0f64; 4];
    let mut psnr = [0.0f64; 4];
    let traces = config.traces();
    // The full ablation is expensive; cap the corpus by default.
    let cap = std::env::var("MS_ABLATION_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let used: Vec<_> = traces.into_iter().take(cap).collect();

    for trace in &used {
        let loaded = load_trace(*trace, &config);
        let cams = &loaded.cameras;
        let refs = &loaded.references;
        let opts = RenderOptions::default();

        // (1) Dense (Mini-Splatting-D emulation = the dense scene model).
        let dense = evaluate_model(&loaded.scene.model, &opts, cams, refs, scale);

        // (2) + Scale decay only: fine-tune the dense model with the WS
        // regularizer (shrinks heavy splats; no pruning).
        let mut sd_model = loaded.scene.model.clone();
        fine_tune(
            &mut sd_model,
            cams,
            refs,
            FineTuneConfig {
                iterations: 6,
                scale_decay: Some(ScaleDecayOptions {
                    usage_threshold: 4.0,
                    gamma: 0.05,
                }),
                ..FineTuneConfig::default()
            },
        );
        let sd = evaluate_model(&sd_model, &opts, cams, refs, scale);

        // (3) + CE pruning (the full Fig. 6 loop to the H fraction).
        let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
        let ce = evaluate_model(&system.l1, &opts, cams, refs, scale);

        // (4) + FR.
        let fr = evaluate_foveated(&system.fov, &opts, cams, refs, scale);

        for (i, m) in [dense, sd, ce, fr].iter().enumerate() {
            fps[i] += m.fps / used.len() as f64;
            psnr[i] += m.psnr_db as f64 / used.len() as f64;
        }
    }

    let labels = ["Dense", "+SD", "+CE", "+FR"];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            vec![
                l.to_string(),
                format!("{:.1}", fps[i]),
                format!("{:.1}", psnr[i]),
                format!("{:.1}x", fps[i] / fps[0]),
            ]
        })
        .collect();
    print_table(&["config", "FPS", "PSNR dB", "speedup"], &rows);
    println!("\npaper shape: PSNRs similar across configs; speedups 1.6x (SD),");
    println!("5.8x (SD+CE), 7.4x (SD+CE+FR) over the dense model.");
}
