//! Fig. 11: the 2IFC subjective study, **simulated** with a psychophysical
//! observer model (see `ms_bench::userstudy` for the substitution
//! argument). Method A = MetaSapiens-H (foveated render), method B =
//! Mini-Splatting-D (dense render); both scored by HVSQ against the ground
//! truth, votes sampled per participant, binomial test as in the paper.

use metasapiens::fov::FoveatedRenderer;
use metasapiens::hvs::{DisplayGeometry, EccentricityMap, Hvsq, HvsqOptions};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::{RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;
use ms_bench::userstudy::{significance, simulate_trace, ObserverModel, TraceVotes};
use ms_bench::{load_trace, print_table, ExperimentConfig};
use ms_render::Image;

/// Blur the image outside the 18° foveal region — the classic quality
/// relaxation that conventional foveated rendering applies and that users
/// do not notice (the paper's Fig. 2 manipulation). Its HVSQ against the
/// reference anchors the observer's detection threshold in our metric's
/// units: peripheral distortion of this magnitude is, by construction of
/// the FR literature, imperceptible.
fn peripheral_blur(img: &Image, ecc: &EccentricityMap, radius: i32) -> Image {
    let mut out = img.clone();
    for y in 0..img.height() {
        for x in 0..img.width() {
            if ecc.at(x, y) < 18.0 {
                continue;
            }
            let mut acc = ms_math::Vec3::zero();
            let mut n = 0.0f32;
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    let xx = (x as i32 + dx).clamp(0, img.width() as i32 - 1) as u32;
                    let yy = (y as i32 + dy).clamp(0, img.height() as i32 - 1) as u32;
                    acc += img.pixel(xx, yy);
                    n += 1.0;
                }
            }
            out.set_pixel(x, y, acc / n);
        }
    }
    out
}

fn main() {
    let config = ExperimentConfig::from_env();
    println!("== Fig. 11 (SIMULATED user study): ours vs Mini-Splatting-D ==");
    println!("12 simulated observers x 8 repetitions per trace, 2IFC\n");

    let observer = ObserverModel::default();
    let fr = FoveatedRenderer::new(RenderOptions::default());
    let renderer = Renderer::default();
    let mut votes: Vec<TraceVotes> = Vec::new();
    let mut rows = Vec::new();

    for (i, trace) in TraceId::user_study().into_iter().enumerate() {
        let loaded = load_trace(trace, &config);
        let mut build = BuildConfig::fast_for_tests(Variant::H);
        // Fig. 11 evaluates the full system: enable the per-level
        // multi-version fine-tuning of §4.3.
        build.fr.finetune = Some(metasapiens::train::finetune::FineTuneConfig {
            iterations: 20,
            scale_decay: None,
            ..Default::default()
        });
        let system = build_system(&loaded.scene, &build);
        let cam = &loaded.cameras[0];
        let reference = &loaded.references[0];

        let ours = fr.render(&system.fov, cam, None).image;
        // Mini-Splatting-D emulation: the dense model itself, re-rendered.
        let msd = renderer.render(&loaded.scene.model, cam).image;

        let display = DisplayGeometry::new(cam.width, cam.height, ms_math::rad_to_deg(cam.fovx()));
        let ecc_map = EccentricityMap::centered(display);
        let hvsq = Hvsq::with_options(
            ecc_map.clone(),
            HvsqOptions {
                stride: 2,
                ..HvsqOptions::default()
            },
        );
        let q_ours = hvsq.evaluate(reference, &ours, None);
        let q_msd = hvsq.evaluate(reference, &msd, None);
        // Detection-threshold anchor. The paper's training "controls for
        // L_quality so that the HVSQ at all quality levels is the same as
        // that of L1" — i.e. the L1 model's own HVSQ against the reference
        // is the quality bar the user study then found subjectively
        // indistinguishable. We therefore anchor the observer's threshold
        // at the L1 render's HVSQ (floored by a peripheral-blur JND).
        let q_l1 = hvsq.evaluate(reference, &renderer.render(&system.l1, cam).image, None);
        let blur_jnd = hvsq.evaluate(reference, &peripheral_blur(reference, &ecc_map, 6), None);
        let anchor = q_l1.max(blur_jnd);
        let mut obs = observer;
        obs.threshold = anchor;
        obs.temperature = anchor.max(1e-12);

        let v = simulate_trace(trace.name, q_ours, q_msd, 12, 8, &obs, 1234 + i as u64);
        rows.push(vec![
            trace.name.to_string(),
            format!("{:.2e}", q_ours),
            format!("{:.2e}", q_msd),
            format!("{:.2e}", anchor),
            format!("{:.1} ± {:.1}", v.mean_votes_a, v.std_votes_a),
            format!("{:.1} ± {:.1}", 8.0 - v.mean_votes_a, v.std_votes_a),
        ]);
        votes.push(v);
    }

    print_table(
        &[
            "trace",
            "HVSQ ours",
            "HVSQ MSD",
            "anchor(L1)",
            "votes ours",
            "votes MSD",
        ],
        &rows,
    );

    let (p_two, p_msd_pref) = significance(&votes);
    let total_ours: u64 = votes.iter().map(|v| v.total_a).sum();
    let total: u64 = votes.iter().map(|v| v.total).sum();
    println!("\npooled: ours preferred {total_ours}/{total} times");
    println!("two-sided binomial test p = {p_two:.4}");
    // Paper's null hypothesis: "users prefer Mini-Splatting-D more than 50%
    // of the time" → one-sided test on the MSD count.
    let p_paper_null = ms_math::stats::binomial_test_at_least(total - total_ours, total);
    println!("P(MSD >= observed | no preference) = {p_paper_null:.4}");
    println!("\npaper result: users have no preference or prefer ours (p < 0.01 against");
    println!("the 'MSD preferred' null). A tie (≈4-vs-4 votes) reproduces that: the");
    println!("HVS-guided FR is below the observer's detection threshold.");
    let _ = p_msd_pref;
}
