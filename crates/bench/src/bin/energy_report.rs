//! §7.3 energy results: accelerator energy vs the mobile GPU — the paper
//! reports 54.4x (Base) and 56.8x (TM+IP) energy reductions.

use metasapiens::accel::{simulate, AccelConfig, AccelWorkload, EnergyModel};
use metasapiens::eval::foveated_workload;
use metasapiens::fov::FoveatedRenderer;
use metasapiens::gpu::GpuCostModel;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use ms_bench::{load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    println!("== §7.3: energy per frame, accelerator vs mobile GPU ==\n");
    let fr = FoveatedRenderer::new(RenderOptions::default());
    let gpu = GpuCostModel::xavier();
    let energy_model = EnergyModel::default();
    let configs = [
        AccelConfig::metasapiens_base(),
        AccelConfig::metasapiens_tm(),
        AccelConfig::metasapiens_tm_ip(),
    ];
    let cap = std::env::var("MS_ENERGY_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);

    let mut ratios = vec![Vec::new(); configs.len()];
    let mut rows = Vec::new();
    for trace in config.traces().into_iter().take(cap) {
        let loaded = load_trace(trace, &config);
        let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
        let frame = fr.render(&system.fov, &loaded.cameras[0], None);
        // Full-scale workload on both sides.
        let gpu_w = foveated_workload(&frame, scale);
        let gpu_energy = gpu.frame_energy(&gpu_w);

        // Scale the accelerator workload the same way.
        let workload = AccelWorkload::from_stats(
            &frame.stats,
            Some(&frame.tile_level),
            frame.blended_pixels as u64,
            system.fov.storage_bytes() as u64,
        )
        .scaled(scale.point_factor, scale.pixel_factor);

        let mut row = vec![
            trace.name.to_string(),
            format!("{:.0} mJ", gpu_energy * 1e3),
        ];
        for (i, c) in configs.iter().enumerate() {
            let sim = simulate(&workload, c);
            let e = energy_model.frame_energy(&workload, &sim, c).total_j();
            let ratio = gpu_energy / e;
            ratios[i].push(ratio as f32);
            row.push(format!("{:.1} mJ ({:.0}x)", e * 1e3, ratio));
        }
        rows.push(row);
    }
    print_table(&["trace", "GPU", "Base", "Base+TM", "Base+TM+IP"], &rows);
    println!();
    for (i, c) in configs.iter().enumerate() {
        println!(
            "{:<20} geomean energy reduction {:>6.1}x",
            c.name,
            ms_math::stats::geomean(&ratios[i])
        );
    }
    println!("\npaper: Base 54.4x, TM+IP 56.8x (IP's line buffers cut SRAM energy).");
}
