//! Fig. 9: workload imbalance of the foveated model — (a) ASCII heatmap of
//! per-tile intersections for `bicycle`, (b) per-trace boxplots over the
//! Mip-NeRF-360 traces, (c) pre- vs post-merge imbalance of the §4.3
//! occupancy-driven tile merge (max/mean intersections per raster work
//! unit, raw tiles vs merged super-tiles).

use metasapiens::fov::FoveatedRenderer;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use metasapiens::scene::dataset::{Dataset, TraceId};
use ms_bench::{boxplot_row, load_trace, print_table, ExperimentConfig};

fn ascii_heatmap(counts: &[u32], tiles_x: u32, tiles_y: u32) {
    let max = counts.iter().copied().max().unwrap_or(1).max(1) as f32;
    const RAMP: &[u8] = b" .:-=+*#%@";
    for ty in 0..tiles_y {
        let mut line = String::new();
        for tx in 0..tiles_x {
            let v = counts[(ty * tiles_x + tx) as usize] as f32 / max;
            let idx = ((v.sqrt() * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            line.push(RAMP[idx] as char);
        }
        println!("  {line}");
    }
}

/// Max/mean over a work-unit intersection list (1.0 for empty/zero lists).
fn unit_ratio(units: &[u32]) -> f64 {
    let total: u64 = units.iter().map(|&u| u as u64).sum();
    if units.is_empty() || total == 0 {
        return 1.0;
    }
    let mean = total as f64 / units.len() as f64;
    units.iter().copied().max().unwrap_or(0) as f64 / mean
}

fn main() {
    let config = ExperimentConfig::from_env();
    println!("== Fig. 9: per-tile intersection imbalance of the FR model ==\n");
    // One render per trace serves all three parts: merging changes only the
    // raster work-unit list — pixels, per-tile counts and the imbalance
    // ratio are bit-identical to the unmerged pipeline (the determinism
    // suite enforces this), so (a)/(b) read the same numbers an unmerged
    // render would produce.
    let merged_renderer = FoveatedRenderer::new(RenderOptions::with_tile_merging());

    // Fig. 9b traces (Mip-NeRF 360 subset the paper plots).
    let fig9b: Vec<TraceId> = ["flowers", "treehill", "stump", "garden", "bicycle"]
        .iter()
        .filter_map(|n| TraceId::new(Dataset::MipNerf360, n))
        .collect();

    let mut rows = Vec::new();
    let mut merge_rows = Vec::new();
    for trace in fig9b {
        let loaded = load_trace(trace, &config);
        let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
        let out = merged_renderer.render(&system.fov, &loaded.cameras[0], None);
        let samples = out.stats.tile_intersections_f32();
        if trace.name == "bicycle" {
            println!(
                "(a) heatmap for bicycle ({}x{} tiles, max = {}):",
                out.stats.grid.tiles_x,
                out.stats.grid.tiles_y,
                out.stats.max_intersections_per_tile()
            );
            ascii_heatmap(
                &out.stats.tile_intersections,
                out.stats.grid.tiles_x,
                out.stats.grid.tiles_y,
            );
            println!();
        }
        let mut row = boxplot_row(trace.name, &samples);
        row.push(format!("{:.0}x", out.stats.imbalance_ratio()));
        rows.push(row);

        // (c) pre vs post merge, on the same per-level work-unit basis: a
        // raw work unit is one (level, tile) pair, a merged one is one
        // (level, super-tile) pair — each quality level rasterizes under
        // its own schedule over its own bins.
        let pre: Vec<u32> = out
            .per_level_stats
            .iter()
            .flat_map(|s| s.tile_intersections.iter().copied())
            .collect();
        let post: Vec<u32> = out
            .per_level_stats
            .iter()
            .flat_map(|s| s.unit_intersections())
            .collect();
        let (r_pre, r_post) = (unit_ratio(&pre), unit_ratio(&post));
        merge_rows.push(vec![
            trace.name.to_string(),
            format!("{}", pre.len()),
            format!("{}", post.len()),
            format!("{:.1}x", r_pre),
            format!("{:.1}x", r_post),
            if r_post < r_pre { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("(b) per-tile intersection distribution:");
    print_table(
        &[
            "trace", "lo", "Q1", "median", "Q3", "hi", "mean", "max/mean",
        ],
        &rows,
    );
    println!("\n(c) §4.3 occupancy-driven tile merging (threshold 0.5×mean, 4×4 cap):");
    print_table(
        &[
            "trace",
            "units pre",
            "units post",
            "max/mean pre",
            "max/mean post",
            "improved",
        ],
        &merge_rows,
    );
    println!("\npaper shape: work concentrates at the gaze; spread of 2-3 orders of");
    println!("magnitude between peripheral and central tiles across all traces.");
    println!("merging coalesces sparse peripheral tiles into super-tiles, so the");
    println!("max/mean per *work unit* drops strictly while pixels stay bit-identical.");
}
