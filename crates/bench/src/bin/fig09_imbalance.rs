//! Fig. 9: workload imbalance of the foveated model — (a) ASCII heatmap of
//! per-tile intersections for `bicycle`, (b) per-trace boxplots over the
//! Mip-NeRF-360 traces.

use metasapiens::fov::FoveatedRenderer;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use metasapiens::scene::dataset::{Dataset, TraceId};
use ms_bench::{boxplot_row, load_trace, print_table, ExperimentConfig};

fn ascii_heatmap(counts: &[u32], tiles_x: u32, tiles_y: u32) {
    let max = counts.iter().copied().max().unwrap_or(1).max(1) as f32;
    const RAMP: &[u8] = b" .:-=+*#%@";
    for ty in 0..tiles_y {
        let mut line = String::new();
        for tx in 0..tiles_x {
            let v = counts[(ty * tiles_x + tx) as usize] as f32 / max;
            let idx = ((v.sqrt() * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            line.push(RAMP[idx] as char);
        }
        println!("  {line}");
    }
}

fn main() {
    let config = ExperimentConfig::from_env();
    println!("== Fig. 9: per-tile intersection imbalance of the FR model ==\n");
    let fr_renderer = FoveatedRenderer::new(RenderOptions::default());

    // Fig. 9b traces (Mip-NeRF 360 subset the paper plots).
    let fig9b: Vec<TraceId> = ["flowers", "treehill", "stump", "garden", "bicycle"]
        .iter()
        .filter_map(|n| TraceId::new(Dataset::MipNerf360, n))
        .collect();

    let mut rows = Vec::new();
    for trace in fig9b {
        let loaded = load_trace(trace, &config);
        let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
        let out = fr_renderer.render(&system.fov, &loaded.cameras[0], None);
        let samples = out.stats.tile_intersections_f32();
        if trace.name == "bicycle" {
            println!(
                "(a) heatmap for bicycle ({}x{} tiles, max = {}):",
                out.stats.grid.tiles_x,
                out.stats.grid.tiles_y,
                out.stats.max_intersections_per_tile()
            );
            ascii_heatmap(
                &out.stats.tile_intersections,
                out.stats.grid.tiles_x,
                out.stats.grid.tiles_y,
            );
            println!();
        }
        let mut row = boxplot_row(trace.name, &samples);
        row.push(format!("{:.0}x", out.stats.imbalance_ratio()));
        rows.push(row);
    }
    println!("(b) per-tile intersection distribution:");
    print_table(
        &[
            "trace", "lo", "Q1", "median", "Q3", "hi", "mean", "max/mean",
        ],
        &rows,
    );
    println!("\npaper shape: work concentrates at the gaze; spread of 2-3 orders of");
    println!("magnitude between peripheral and central tiles across all traces.");
}
