//! §6 variants: MetaSapiens-H/M/L model-size fractions (paper: 16%, 12%,
//! 10% of the dense model) and their speed/quality ladder.

use metasapiens::eval::{evaluate_foveated, evaluate_model};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use ms_bench::{load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    println!("== §6: MetaSapiens variants (averaged over corpus) ==\n");
    let cap = std::env::var("MS_VARIANTS_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let traces: Vec<_> = config.traces().into_iter().take(cap).collect();

    let mut rows = Vec::new();
    let mut dense_fps_acc = 0.0f64;
    let mut acc: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); Variant::ALL.len()];
    for trace in &traces {
        let loaded = load_trace(*trace, &config);
        let dense = evaluate_model(
            &loaded.scene.model,
            &RenderOptions::default(),
            &loaded.cameras,
            &loaded.references,
            scale,
        );
        dense_fps_acc += dense.fps / traces.len() as f64;
        for (i, v) in Variant::ALL.iter().enumerate() {
            let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(*v));
            let m = evaluate_foveated(
                &system.fov,
                &RenderOptions::default(),
                &loaded.cameras,
                &loaded.references,
                scale,
            );
            acc[i].0 += system.storage_fraction() as f64 / traces.len() as f64;
            acc[i].1 += m.fps / traces.len() as f64;
            acc[i].2 += m.psnr_db as f64 / traces.len() as f64;
        }
    }
    for (i, v) in Variant::ALL.iter().enumerate() {
        rows.push(vec![
            v.name().to_string(),
            format!("{:.1}%", acc[i].0 * 100.0),
            format!("{:.1}", acc[i].1),
            format!("{:.1}x", acc[i].1 / dense_fps_acc),
            format!("{:.2}", acc[i].2),
        ]);
    }
    print_table(
        &[
            "variant",
            "size vs dense",
            "FPS",
            "speedup vs dense",
            "PSNR dB",
        ],
        &rows,
    );
    println!("\npaper: total model sizes 16%/12%/10% of dense; L1 PSNR targets");
    println!("99%/98%/97% of the dense model's PSNR.");
}
