//! Frame-server bench record: sustained throughput and frame-latency
//! percentiles of the multi-session [`ms_serve::FrameServer`] against a
//! serial one-frame-at-a-time baseline, swept over session counts on a
//! dense and a foveated (tile-merging, pulled-back camera) workload.
//! Prints a table and writes `BENCH_pr7.json` at the repo root (override
//! the path with `MS_BENCH_OUT`).
//!
//! The speedup column divides server aggregate FPS by the serial
//! baseline's; the record also captures `host_cores`, since pipelining
//! can only beat the serial baseline when the pool has more than one
//! worker to overlap stages on.

use metasapiens::math::Vec3;
use metasapiens::render::{RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::trajectory::{orbit, Trajectory};
use metasapiens::scene::{Camera, GaussianModel};
use ms_serve::{FrameServer, SessionConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ms_bench::print_table;

fn getf(key: &str, default: f32) -> f32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<f32>().ok())
        .unwrap_or(default)
}

/// One measured (scene, session-count) configuration.
struct Row {
    scene: &'static str,
    sessions: usize,
    frames_total: usize,
    baseline_fps: f64,
    server_fps: f64,
    speedup: f64,
    p50_ms: f64,
    p99_ms: f64,
}

struct Workload {
    name: &'static str,
    options: RenderOptions,
    prototype: Camera,
}

/// Trajectory for session slot `i` (distinct orbits so sessions render
/// different frames, like a real multi-viewer deployment).
fn traj(slot: usize) -> Trajectory {
    orbit(
        Vec3::zero(),
        9.0 + (slot % 6) as f32 * 1.2,
        0.4 + (slot % 5) as f32 * 0.5,
        5 + slot % 4,
    )
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1].as_secs_f64() * 1e3
}

/// Serial baseline: one plain `Renderer` per session, frames rendered
/// strictly one after another (no pipelining, no sharing beyond the
/// model). Returns aggregate FPS over the whole run.
fn serial_baseline(model: &GaussianModel, w: &Workload, sessions: usize, frames: usize) -> f64 {
    let start = Instant::now();
    let mut total = 0usize;
    for s in 0..sessions {
        let renderer = Renderer::new(w.options.clone());
        for cam in traj(s).cameras(&w.prototype, frames) {
            let out = renderer.render(model, &cam);
            std::hint::black_box(&out.image);
            total += 1;
        }
    }
    total as f64 / start.elapsed().as_secs_f64()
}

fn run_server(
    model: &Arc<GaussianModel>,
    w: &Workload,
    sessions: usize,
    frames: usize,
) -> (f64, Vec<Duration>) {
    let mut server = FrameServer::new(Arc::clone(model));
    for s in 0..sessions {
        server
            .add_session(SessionConfig {
                trajectory: traj(s),
                prototype: w.prototype,
                frame_count: frames,
                options: w.options.clone(),
                in_flight: 2,
                ring_capacity: frames,
            })
            .expect("valid session config");
    }
    let results = server.run_to_completion();
    let mut latencies: Vec<Duration> = results
        .iter()
        .flat_map(|(_, frames)| frames.iter().map(|f| f.latency))
        .collect();
    latencies.sort_unstable();
    (server.report().aggregate_fps, latencies)
}

fn json_row(r: &Row) -> String {
    format!(
        "    {{\"scene\": \"{}\", \"sessions\": {}, \"frames_total\": {}, \"baseline_fps\": {:.2}, \"server_fps\": {:.2}, \"speedup\": {:.3}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}",
        r.scene, r.sessions, r.frames_total, r.baseline_fps, r.server_fps, r.speedup, r.p50_ms, r.p99_ms
    )
}

fn main() {
    let scale = getf("MS_SCALE", 0.008);
    let width = getf("MS_W", 160.0) as u32;
    let height = getf("MS_H", 120.0) as u32;
    let frames = getf("MS_FRAMES", 6.0) as usize;
    let session_counts: Vec<usize> = std::env::var("MS_SESSIONS")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("MS_SESSIONS: comma-separated list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 4, 16, 64]);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let scene = TraceId::by_name("room")
        .unwrap()
        .build_scene_with_scale(scale);
    let model = Arc::new(scene.model.clone());
    let dense_proto = Camera {
        width,
        height,
        fovy: ms_math::deg_to_rad(74.0),
        ..scene.train_cameras[0]
    };
    // Foveated-style workload: pulled-back view leaves a sparse periphery,
    // which is what occupancy-driven tile merging coalesces.
    let fov_proto = Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.0, 16.0), Vec3::zero());
    let workloads = [
        Workload {
            name: "dense",
            options: RenderOptions {
                threads: 0,
                ..RenderOptions::default()
            },
            prototype: dense_proto,
        },
        Workload {
            name: "foveated",
            options: RenderOptions {
                threads: 0,
                ..RenderOptions::with_tile_merging()
            },
            prototype: fov_proto,
        },
    ];

    println!("== frame server bench: pipelined sessions vs serial baseline ==");
    println!(
        "scene room @ scale {scale}, {width}x{height}, {frames} frames/session, {host_cores} host cores\n"
    );

    let mut rows: Vec<Row> = Vec::new();
    for w in &workloads {
        for &sessions in &session_counts {
            let baseline_fps = serial_baseline(&model, w, sessions, frames);
            let (server_fps, latencies) = run_server(&model, w, sessions, frames);
            rows.push(Row {
                scene: w.name,
                sessions,
                frames_total: sessions * frames,
                baseline_fps,
                server_fps,
                speedup: server_fps / baseline_fps,
                p50_ms: percentile_ms(&latencies, 50.0),
                p99_ms: percentile_ms(&latencies, 99.0),
            });
        }
    }

    let headers = [
        "scene",
        "sessions",
        "frames",
        "baseline fps",
        "server fps",
        "speedup",
        "p50 ms",
        "p99 ms",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scene.to_string(),
                r.sessions.to_string(),
                r.frames_total.to_string(),
                format!("{:.2}", r.baseline_fps),
                format!("{:.2}", r.server_fps),
                format!("{:.2}x", r.speedup),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p99_ms),
            ]
        })
        .collect();
    print_table(&headers, &table);

    let out_path = std::env::var("MS_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr7.json".to_string());
    let json_rows: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"bench\": \"frame_server\",\n  \"pr\": 7,\n  \"host_cores\": {host_cores},\n  \"config\": {{\"trace\": \"room\", \"scene_scale\": {scale}, \"width\": {width}, \"height\": {height}, \"frames_per_session\": {frames}, \"in_flight\": 2}},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench record");
    println!("wrote {out_path}");
}
