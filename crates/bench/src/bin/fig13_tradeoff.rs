//! Fig. 13: the speed/quality trade-off — FPS vs PSNR / SSIM / LPIPS for
//! the seven baselines and the three MetaSapiens variants, averaged over
//! the corpus.

use metasapiens::baselines::{build_baseline, BaselineKind};
use metasapiens::eval::{evaluate_foveated, evaluate_model};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use ms_bench::{load_trace, print_table, ExperimentConfig};

#[derive(Default, Clone, Copy)]
struct Acc {
    fps: f64,
    psnr: f64,
    ssim: f64,
    lpips: f64,
    n: f64,
}

impl Acc {
    fn add(&mut self, m: &metasapiens::eval::ModelMetrics) {
        self.fps += m.fps;
        self.psnr += m.psnr_db as f64;
        self.ssim += m.ssim as f64;
        self.lpips += m.lpips as f64;
        self.n += 1.0;
    }

    fn row(&self, label: &str) -> Vec<String> {
        let n = self.n.max(1.0);
        vec![
            label.to_string(),
            format!("{:.1}", self.fps / n),
            format!("{:.2}", self.psnr / n),
            format!("{:.3}", self.ssim / n),
            format!("{:.4}", self.lpips / n),
        ]
    }
}

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    println!("== Fig. 13: FPS vs PSNR/SSIM/LPIPS (averaged over corpus) ==\n");
    let cap = std::env::var("MS_TRADEOFF_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let traces: Vec<_> = config.traces().into_iter().take(cap).collect();

    let mut baseline_acc = vec![Acc::default(); BaselineKind::ALL.len()];
    let mut variant_acc = vec![Acc::default(); Variant::ALL.len()];

    for trace in &traces {
        let loaded = load_trace(*trace, &config);
        let cams = &loaded.cameras;
        let refs = &loaded.references;
        for (i, kind) in BaselineKind::ALL.iter().enumerate() {
            let b = build_baseline(*kind, &loaded.scene, cams);
            let m = evaluate_model(&b.model, &b.render_options, cams, refs, scale);
            baseline_acc[i].add(&m);
        }
        for (i, v) in Variant::ALL.iter().enumerate() {
            let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(*v));
            let m = evaluate_foveated(&system.fov, &RenderOptions::default(), cams, refs, scale);
            variant_acc[i].add(&m);
        }
    }

    let mut rows = Vec::new();
    for (i, kind) in BaselineKind::ALL.iter().enumerate() {
        rows.push(baseline_acc[i].row(kind.name()));
    }
    for (i, v) in Variant::ALL.iter().enumerate() {
        rows.push(variant_acc[i].row(v.name()));
    }
    print_table(&["model", "FPS", "PSNR dB", "SSIM", "LPIPS"], &rows);

    // Headline checks from §7.2.
    let fastest_baseline = baseline_acc
        .iter()
        .map(|a| a.fps / a.n.max(1.0))
        .fold(0.0f64, f64::max);
    let ours_h = variant_acc[0].fps / variant_acc[0].n.max(1.0);
    let ours_l = variant_acc[2].fps / variant_acc[2].n.max(1.0);
    let tdgs = baseline_acc[0].fps / baseline_acc[0].n.max(1.0);
    println!(
        "\nMetaSapiens-H vs fastest baseline: {:.1}x (paper: 1.9x)",
        ours_h / fastest_baseline
    );
    println!(
        "MetaSapiens-L vs 3DGS:            {:.1}x (paper: 7.9x)",
        ours_l / tdgs
    );
}
