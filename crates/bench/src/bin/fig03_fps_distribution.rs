//! Fig. 3: FPS distribution of five recent PBNR models across the corpus,
//! on the modeled mobile Volta GPU (boxplot rows).

use metasapiens::baselines::{build_baseline, BaselineKind};
use metasapiens::gpu::{FrameWorkload, GpuCostModel};
use metasapiens::render::{Renderer, SortMode};
use ms_bench::{boxplot_row, load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    let gpu = GpuCostModel::xavier();
    println!("== Fig. 3: FPS distribution on the mobile GPU model ==");
    println!(
        "corpus: {} traces at scene scale {}, {}x{}\n",
        config.traces().len(),
        config.scene_scale,
        config.width,
        config.height
    );

    let mut rows = Vec::new();
    for kind in BaselineKind::FIG3 {
        let mut fps_samples = Vec::new();
        for trace in config.traces() {
            let loaded = load_trace(trace, &config);
            let baseline = build_baseline(kind, &loaded.scene, &loaded.cameras);
            let renderer = Renderer::new(baseline.render_options.clone());
            let per_pixel = baseline.render_options.sort_mode == SortMode::PerPixel;
            let mut latency = 0.0;
            for cam in &loaded.cameras {
                let out = renderer.render(&baseline.model, cam);
                let w = FrameWorkload::from_stats(&out.stats, per_pixel)
                    .scaled(scale.point_factor, scale.pixel_factor);
                latency += gpu.frame_latency(&w);
            }
            fps_samples.push((loaded.cameras.len() as f64 / latency) as f32);
        }
        rows.push(boxplot_row(kind.name(), &fps_samples));
    }
    print_table(&["model", "lo", "Q1", "median", "Q3", "hi", "mean"], &rows);
    println!("\npaper shape: dense models (3DGS, Mini-Splatting-D) slowest and well");
    println!("below real time; pruned models faster but still under the 75-90 FPS VR bar.");
}
