//! Tbl. 1: comparison of FR methods — SMFR, MMFR, MetaSapiens-H — on FPS,
//! storage, and per-level HVSQ, averaged over the corpus.

use metasapiens::eval::foveated_workload;
use metasapiens::fov::baselines::{build_mmfr, build_smfr, render_mmfr};
use metasapiens::fov::{FoveatedRenderer, FrBuildConfig};
use metasapiens::gpu::GpuCostModel;
use metasapiens::hvs::{DisplayGeometry, EccentricityMap, Hvsq, HvsqOptions, QualityRegions};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use metasapiens::train::ce::CeOptions;
use ms_bench::{load_trace, print_table, ExperimentConfig};

#[derive(Default, Clone)]
struct Acc {
    fps: f64,
    storage_mb: f64,
    hvsq: [f64; 4],
    n: f64,
}

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    println!("== Tbl. 1: FR methods (averaged over corpus) ==\n");
    let cap = std::env::var("MS_TBL1_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let traces: Vec<_> = config.traces().into_iter().take(cap).collect();

    let fr = FoveatedRenderer::new(RenderOptions::default());
    let gpu = GpuCostModel::xavier();
    let fractions = FrBuildConfig::default().level_fractions;
    let regions = QualityRegions::paper_default();
    let mut acc = vec![Acc::default(); 3]; // SMFR, MMFR, ours

    for (ti, trace) in traces.iter().enumerate() {
        let loaded = load_trace(*trace, &config);
        let cams = &loaded.cameras;
        let refs = &loaded.references;
        let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
        let l1 = &system.l1;

        let smfr = build_smfr(l1, regions.clone(), &fractions, 7 + ti as u64);
        let mmfr = build_mmfr(
            l1,
            cams,
            refs,
            regions.clone(),
            &fractions,
            None,
            &CeOptions::default(),
        );

        let cam = &cams[0];
        let reference = &refs[0];
        let display = DisplayGeometry::new(cam.width, cam.height, ms_math::rad_to_deg(cam.fovx()));
        let hvsq = Hvsq::with_options(
            EccentricityMap::centered(display),
            HvsqOptions {
                stride: 2,
                ..HvsqOptions::default()
            },
        );
        let boundaries = regions.boundaries_deg();

        let outputs = [
            fr.render(&smfr, cam, None),
            render_mmfr(&fr, &mmfr, cam, None),
            fr.render(&system.fov, cam, None),
        ];
        // SMFR pays no multi-versioning; ours pays the 4-param versions;
        // MMFR stores every level model.
        let storages = [
            l1.storage_bytes(),
            mmfr.storage_bytes(),
            system.fov.storage_bytes(),
        ];
        for (i, out) in outputs.iter().enumerate() {
            acc[i].fps += gpu.fps(&foveated_workload(out, scale));
            acc[i].storage_mb += storages[i] as f64 / 1e6;
            let per_level = hvsq.evaluate_regions(reference, &out.image, boundaries);
            for (l, q) in per_level.iter().enumerate() {
                acc[i].hvsq[l] += *q as f64;
            }
            acc[i].n += 1.0;
        }
    }

    let labels = ["SMFR", "MMFR", "MetaSapiens-H"];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let a = &acc[i];
            let n = a.n.max(1.0);
            let mut row = vec![
                l.to_string(),
                format!(
                    "{:.1} ({:.2}x)",
                    a.fps / n,
                    (a.fps / n) / (acc[0].fps / acc[0].n.max(1.0))
                ),
                format!(
                    "{:.1} ({:.2}x)",
                    a.storage_mb / n,
                    (a.storage_mb / n) / (acc[0].storage_mb / acc[0].n.max(1.0))
                ),
            ];
            for lq in a.hvsq {
                row.push(format!("{:.2e}", lq / n));
            }
            row
        })
        .collect();
    print_table(
        &[
            "method",
            "FPS (rel)",
            "storage MB (rel)",
            "HVSQ L1",
            "HVSQ L2",
            "HVSQ L3",
            "HVSQ L4",
        ],
        &rows,
    );
    println!("\npaper shape: SMFR fastest but its L4 HVSQ is >10x worse; MMFR best");
    println!("peripheral HVSQ but 0.42x the FPS and 1.92x the storage; ours is within");
    println!("6% storage of SMFR with near-MMFR HVSQ at every level.");
}
