//! Fig. 15: speedup vs die area — MetaSapiens (TM+IP) against GSCore,
//! both scaled proportionally to their own resource ratios, on the
//! `flowers` trace (the paper's pick).

use metasapiens::accel::{simulate, AccelConfig, AccelWorkload};
use metasapiens::eval::foveated_workload;
use metasapiens::fov::FoveatedRenderer;
use metasapiens::gpu::GpuCostModel;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use metasapiens::scene::dataset::TraceId;
use ms_bench::{load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let trace = TraceId::by_name("flowers").expect("flowers exists");
    println!("== Fig. 15: speedup vs area on {trace} (MetaSapiens-H workload) ==\n");

    let loaded = load_trace(trace, &config);
    let scale = config.scale_factors();
    let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
    let fr = FoveatedRenderer::new(RenderOptions::default());
    let frame = fr.render(&system.fov, &loaded.cameras[0], None);
    let gpu_latency = GpuCostModel::xavier().frame_latency(&foveated_workload(&frame, scale));
    let workload = AccelWorkload::from_stats(
        &frame.stats,
        Some(&frame.tile_level),
        frame.blended_pixels as u64,
        system.fov.storage_bytes() as u64,
    )
    .scaled(scale.point_factor, scale.pixel_factor);

    let mut rows = Vec::new();
    for factor in [0.5f32, 1.0, 2.0, 3.0, 4.0] {
        let ours = AccelConfig::metasapiens_tm_ip().scaled(factor);
        let gscore = AccelConfig::gscore().scaled(factor);
        let sim_ours = simulate(&workload, &ours);
        let sim_gscore = simulate(&workload, &gscore);
        rows.push(vec![
            format!("{factor:.1}"),
            format!("{:.2}", ours.area_mm2()),
            format!("{:.1}x", gpu_latency / sim_ours.latency_s),
            format!("{:.2}", gscore.area_mm2()),
            format!("{:.1}x", gpu_latency / sim_gscore.latency_s),
            format!("{:.2}x", sim_gscore.latency_s / sim_ours.latency_s),
        ]);
    }
    print_table(
        &[
            "scale",
            "ours mm²",
            "ours speedup",
            "GSCore mm²",
            "GSCore speedup",
            "ours/GSCore",
        ],
        &rows,
    );
    println!("\npaper shape: ours consistently above GSCore at comparable area; the gap");
    println!("widens as area grows (≈1.6x at ~6 mm²) because TM+IP keeps the larger");
    println!("VRC array fed where GSCore stalls on imbalanced tiles.");
}
