//! Fig. 4: LightGS pruned to different levels on `bicycle` — latency per
//! frame vs point count vs tile-ellipse intersections. The point of the
//! figure: latency tracks intersections, not point count.

use metasapiens::baselines::lightgs_with_keep_fraction;
use metasapiens::gpu::{FrameWorkload, GpuCostModel};
use metasapiens::render::Renderer;
use metasapiens::scene::dataset::TraceId;
use ms_bench::{load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    let gpu = GpuCostModel::xavier();
    let trace = TraceId::by_name("bicycle").expect("bicycle exists");
    println!("== Fig. 4: prune level vs latency on {trace} ==\n");
    let loaded = load_trace(trace, &config);
    let renderer = Renderer::default();
    let tiles = {
        let out = renderer.render(&loaded.scene.model, &loaded.cameras[0]);
        out.stats.grid.tile_count() as f64
    };

    // Paper sweeps 75%–97% pruned.
    let mut rows = Vec::new();
    for keep in [1.0f32, 0.25, 0.15, 0.10, 0.06, 0.03] {
        let b = lightgs_with_keep_fraction(&loaded.scene, keep);
        let mut latency = 0.0f64;
        let mut isect = 0.0f64;
        for cam in &loaded.cameras {
            let out = renderer.render(&b.model, cam);
            isect += out.stats.total_intersections as f64;
            latency += gpu.frame_latency(
                &FrameWorkload::from_stats(&out.stats, false)
                    .scaled(scale.point_factor, scale.pixel_factor),
            );
        }
        let n = loaded.cameras.len() as f64;
        rows.push(vec![
            format!("{:.0}%", (1.0 - keep) * 100.0),
            format!("{}", b.model.len()),
            format!("{:.1}", isect / n / tiles),
            format!("{:.1}", latency / n * 1e3),
        ]);
    }
    print_table(&["pruned", "points", "isect/tile", "latency (ms)"], &rows);
    println!("\npaper shape: the latency column falls with the intersections column,");
    println!("much slower than the point-count column falls.");
}
