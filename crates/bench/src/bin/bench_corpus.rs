//! Corpus bench record: one binary sweeping **named scenarios** (scene
//! family × trajectory) × kernel configuration (scalar, simd4 staged per
//! row, simd4 staged per tile) × thread counts, plus the multi-session
//! frame-server sweep and the chunked-streaming sweep (in-core vs the
//! encoded container at two chunk sizes, with the chunk cache disabled
//! and at the default budget) — the single perf record of the repo, written to
//! `BENCH_pr10.json` at the repo root (override with `MS_BENCH_OUT`).
//!
//! This replaces the PR 6 `bench_raster` and PR 7 `bench_server`
//! binaries: both sweeps are cells of the same corpus now, so one run
//! produces directly comparable numbers and a single committed record.
//!
//! Sampling discipline (unchanged from PR 6): every raster cell renders
//! one frame per repetition in round-robin order, keeping the best
//! (lowest total wall) profile, so machine-load drift hits all
//! configurations equally instead of biasing whichever ran last. The
//! best profile also carries the `RasterWork` staging counters, which
//! are deterministic per configuration — so the record shows the win in
//! both wall time *and* counted work.
//!
//! Acceptance numbers for the per-tile staging work (dense/orbit,
//! 1 thread): `simd4/pertile` must beat `simd4/perrow` Raster wall by
//! ≥ 1.15×, and its scheduled row iterations must undercut the
//! `rows × csr_len` bound by ≥ 2×.
//!
//! The `dense/*` scenarios render the room layout at a realistic splat
//! population (`MS_POINTS` small splats at `MS_LOG_SCALE`), where tile
//! lists are long and row intervals short — the scheduling regime the
//! per-tile prepass targets. `foveated/headon` keeps the moderate
//! `MS_SCALE` point budget the foveated build step is sized for.
//!
//! Env knobs: `MS_POINTS`, `MS_LOG_SCALE` (dense family),
//! `MS_SCALE` (foveated family), `MS_W`, `MS_H`, `MS_FRAMES` (raster
//! best-of), `MS_THREADS`, `MS_SCENARIOS` (comma list filtering the
//! named scenarios), `MS_SESSIONS`, `MS_SERVER_FRAMES` (frames per
//! session), `MS_CHUNK_SIZES` (comma list of chunk sizes for the
//! streaming sweep), `MS_BENCH_OUT`.

use metasapiens::fov::{build_foveated, FoveatedRenderer, FrBuildConfig};
use metasapiens::math::Vec3;
use metasapiens::render::{
    FrameProfile, RasterKernel, RasterStaging, RasterWork, RenderOptions, Renderer, StageKind,
};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::synth::{self, Scene};
use metasapiens::scene::trajectory::{orbit, Trajectory};
use metasapiens::scene::{
    encode_model_chunked, Camera, ChunkedFileSource, GaussianModel, SceneSource,
};
use ms_bench::print_table;
use ms_serve::{FrameServer, SessionConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const STAGES: [StageKind; 5] = [
    StageKind::Project,
    StageKind::Bin,
    StageKind::Merge,
    StageKind::Raster,
    StageKind::Composite,
];

/// Kernel configurations the corpus sweeps: the scalar reference and the
/// SIMD kernel under both staging paths.
const KERNEL_CONFIGS: [(&str, RasterKernel, RasterStaging); 3] = [
    ("scalar", RasterKernel::Scalar, RasterStaging::PerRow),
    ("simd4/perrow", RasterKernel::Simd4, RasterStaging::PerRow),
    ("simd4/pertile", RasterKernel::Simd4, RasterStaging::PerTile),
];

fn getf(key: &str, default: f32) -> f32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<f32>().ok())
        .unwrap_or(default)
}

fn get_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .map(|v| {
            v.split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("{key}: comma-separated list"))
                })
                .collect()
        })
        .unwrap_or_else(|_| default.to_vec())
}

/// One named scenario: a scene family viewed along a trajectory, closed
/// over into a render thunk per (kernel config, thread count).
struct Scenario {
    /// `family/trajectory`, e.g. `dense/headon`.
    name: &'static str,
    /// Builds the render thunk for one configuration.
    make: Box<dyn Fn(RenderOptions) -> Box<dyn Fn() -> FrameProfile>>,
}

/// One benchmarked configuration and the best profile seen so far.
struct Cell {
    scenario: &'static str,
    config: &'static str,
    threads: usize,
    render: Box<dyn Fn() -> FrameProfile>,
    best: Option<FrameProfile>,
}

impl Cell {
    fn sample(&mut self) {
        let p = (self.render)();
        let better = self
            .best
            .as_ref()
            .map_or(true, |b| p.total_wall() < b.total_wall());
        if better {
            self.best = Some(p);
        }
    }
}

/// A finished raster cell, flattened for the table and the JSON record.
struct Row {
    scenario: &'static str,
    config: &'static str,
    threads: usize,
    walls_us: [f64; 5],
    total_us: f64,
    work: RasterWork,
}

fn row(cell: &Cell) -> Row {
    let best = cell.best.as_ref().expect("at least one sample");
    let walls_us: [f64; 5] = std::array::from_fn(|i| best.wall(STAGES[i]).as_secs_f64() * 1e6);
    Row {
        scenario: cell.scenario,
        config: cell.config,
        threads: cell.threads,
        walls_us,
        total_us: best.total_wall().as_secs_f64() * 1e6,
        work: best.raster,
    }
}

fn json_raster_row(r: &Row) -> String {
    let stages: Vec<String> = STAGES
        .iter()
        .zip(r.walls_us.iter())
        .map(|(k, us)| format!("\"{}\": {:.1}", k.name(), us))
        .collect();
    format!(
        "    {{\"scenario\": \"{}\", \"config\": \"{}\", \"threads\": {}, \"stage_walls_us\": {{{}}}, \"total_us\": {:.1}, \"work\": {{\"splats_staged\": {}, \"splats_culled\": {}, \"row_iterations\": {}, \"row_iteration_bound\": {}}}}}",
        r.scenario,
        r.config,
        r.threads,
        stages.join(", "),
        r.total_us,
        r.work.splats_staged,
        r.work.splats_culled,
        r.work.row_iterations,
        r.work.row_iteration_bound,
    )
}

/// One measured (scene, session-count) server configuration.
struct ServerRow {
    scenario: &'static str,
    sessions: usize,
    frames_total: usize,
    baseline_fps: f64,
    server_fps: f64,
    speedup: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn json_server_row(r: &ServerRow) -> String {
    format!(
        "    {{\"scenario\": \"{}\", \"sessions\": {}, \"frames_total\": {}, \"baseline_fps\": {:.2}, \"server_fps\": {:.2}, \"speedup\": {:.3}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}",
        r.scenario,
        r.sessions,
        r.frames_total,
        r.baseline_fps,
        r.server_fps,
        r.speedup,
        r.p50_ms,
        r.p99_ms
    )
}

/// Trajectory for server session slot `i` (distinct orbits so sessions
/// render different frames, like a real multi-viewer deployment).
fn traj(slot: usize) -> Trajectory {
    orbit(
        Vec3::zero(),
        9.0 + (slot % 6) as f32 * 1.2,
        0.4 + (slot % 5) as f32 * 0.5,
        5 + slot % 4,
    )
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1].as_secs_f64() * 1e3
}

/// Serial baseline: one plain `Renderer` per session, frames rendered
/// strictly one after another. Returns aggregate FPS over the whole run.
fn serial_baseline(
    model: &GaussianModel,
    options: &RenderOptions,
    proto: &Camera,
    sessions: usize,
    frames: usize,
) -> f64 {
    let start = Instant::now();
    let mut total = 0usize;
    for s in 0..sessions {
        let renderer = Renderer::new(options.clone());
        for cam in traj(s).cameras(proto, frames) {
            let out = renderer.render(model, &cam);
            std::hint::black_box(&out.image);
            total += 1;
        }
    }
    total as f64 / start.elapsed().as_secs_f64()
}

fn run_server(
    model: &Arc<GaussianModel>,
    options: &RenderOptions,
    proto: &Camera,
    sessions: usize,
    frames: usize,
) -> (f64, Vec<Duration>) {
    let mut server = FrameServer::new(Arc::clone(model));
    for s in 0..sessions {
        server
            .add_session(SessionConfig {
                trajectory: traj(s),
                prototype: *proto,
                frame_count: frames,
                options: options.clone(),
                in_flight: 2,
                ring_capacity: frames,
            })
            .expect("valid session config");
    }
    let results = server.run_to_completion();
    let mut latencies: Vec<Duration> = results
        .iter()
        .flat_map(|(_, frames)| frames.iter().map(|f| f.latency))
        .collect();
    latencies.sort_unstable();
    (server.report().aggregate_fps, latencies)
}

fn main() {
    let scale = getf("MS_SCALE", 0.008);
    let points = getf("MS_POINTS", 100_000.0) as usize;
    let log_scale = getf("MS_LOG_SCALE", -4.0);
    let width = getf("MS_W", 128.0) as u32;
    let height = getf("MS_H", 96.0) as u32;
    let frames = getf("MS_FRAMES", 9.0) as usize;
    let thread_counts = get_list("MS_THREADS", &[1, 2, 8]);
    let session_counts = get_list("MS_SESSIONS", &[1, 4, 16]);
    // Trajectory sampling needs at least two poses per session.
    let server_frames = (getf("MS_SERVER_FRAMES", 6.0) as usize).max(2);
    let scenario_filter: Option<Vec<String>> = std::env::var("MS_SCENARIOS")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The dense family: the room trace's layout at a realistic splat
    // population — tens of thousands of small splats (real checkpoints run
    // millions), so tile CSR lists are long and each splat covers a few rows
    // of a 16-row tile. This is the regime the per-tile staging prepass
    // targets; the earlier `bench_raster` "dense" scene was a few thousand
    // tile-sized splats, which exercises the kernel but not the scheduler.
    let scene: Scene = {
        let mut spec = TraceId::by_name("room").unwrap().spec_with_scale(1.0);
        spec.total_points = points;
        spec.base_log_scale = log_scale;
        synth::generate(&spec).expect("dense spec is valid")
    };
    // The foveated family keeps the moderate point budget: `build_foveated`
    // cost scales with the dense model size, and the scenario measures the
    // foveated render path, not build throughput.
    let fr_scene: Scene = TraceId::by_name("room")
        .unwrap()
        .build_scene_with_scale(scale);
    let headon = Camera {
        width,
        height,
        fovy: ms_math::deg_to_rad(74.0),
        ..scene.train_cameras[0]
    };
    let fr_headon = Camera {
        width,
        height,
        fovy: ms_math::deg_to_rad(74.0),
        ..fr_scene.train_cameras[0]
    };
    // Pulled-back orbit pose: sparse periphery, the occupancy-merging and
    // admission-cull sweet spot.
    let orbit_cam = traj(0).camera_at(
        &Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.0, 12.0), Vec3::zero()),
        1,
        8,
    );
    let model = scene.model.clone();
    let fr_model = {
        let reference = Renderer::default()
            .render(&fr_scene.model, &fr_headon)
            .image;
        build_foveated(
            &fr_scene.model,
            std::slice::from_ref(&fr_headon),
            &[reference],
            &FrBuildConfig {
                finetune: None,
                ..FrBuildConfig::default()
            },
        )
    };

    let scenarios: Vec<Scenario> = vec![
        Scenario {
            name: "dense/headon",
            make: {
                let (m, c) = (model.clone(), headon);
                Box::new(move |o| {
                    let (m, c, r) = (m.clone(), c, Renderer::new(o));
                    Box::new(move || r.render(&m, &c).stats.profile)
                })
            },
        },
        Scenario {
            name: "dense/orbit",
            make: {
                let (m, c) = (model.clone(), orbit_cam);
                Box::new(move |o| {
                    let (m, c, r) = (m.clone(), c, Renderer::new(o));
                    Box::new(move || r.render(&m, &c).stats.profile)
                })
            },
        },
        Scenario {
            name: "foveated/headon",
            make: {
                let (m, c) = (fr_model.clone(), fr_headon);
                Box::new(move |o| {
                    let (m, c, r) = (m.clone(), c, FoveatedRenderer::new(o));
                    Box::new(move || r.render(&m, &c, None).stats.profile)
                })
            },
        },
    ];

    println!("== bench corpus: scenarios x kernel configs x threads, + server sessions ==");
    println!(
        "dense room: {points} pts @ log-scale {log_scale}; foveated room @ scale {scale}; \
         {width}x{height}, best of {frames} frames, {host_cores} host cores\n"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for sc in &scenarios {
        if let Some(filter) = &scenario_filter {
            if !filter.iter().any(|f| f == sc.name) {
                continue;
            }
        }
        for &(config, kernel, staging) in &KERNEL_CONFIGS {
            for &threads in &thread_counts {
                let options = RenderOptions {
                    threads,
                    raster_kernel: kernel,
                    raster_staging: staging,
                    ..RenderOptions::default()
                };
                cells.push(Cell {
                    scenario: sc.name,
                    config,
                    threads,
                    render: (sc.make)(options),
                    best: None,
                });
            }
        }
    }
    for _ in 0..frames {
        for cell in cells.iter_mut() {
            cell.sample();
        }
    }
    let rows: Vec<Row> = cells.iter().map(row).collect();

    let headers = [
        "scenario",
        "config",
        "threads",
        "project",
        "bin",
        "merge",
        "raster",
        "composite",
        "total",
        "row iters",
        "bound",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut out = vec![
                r.scenario.to_string(),
                r.config.to_string(),
                r.threads.to_string(),
            ];
            out.extend(r.walls_us.iter().map(|us| format!("{us:.1}")));
            out.push(format!("{:.1}", r.total_us));
            out.push(r.work.row_iterations.to_string());
            out.push(r.work.row_iteration_bound.to_string());
            out
        })
        .collect();
    print_table(&headers, &table);

    // Acceptance ratios (dense/orbit, 1 thread): per-tile staging vs the
    // PR 6 per-row path, in wall time and in counted row iterations. The
    // orbit pose is the overdraw trace — every pixel's compositing loop
    // early-terminates deep inside a long CSR list, so staging cost (which
    // the per-row path pays for the whole list, every row) dominates the
    // Raster wall and the prepass + lazy schedule consumption pays off.
    let find = |scenario: &str, config: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario && r.config == config && r.threads == 1)
    };
    let raster_us =
        |scenario: &str, config: &str| find(scenario, config).map_or(f64::NAN, |r| r.walls_us[3]);
    let staging_speedup =
        raster_us("dense/orbit", "simd4/perrow") / raster_us("dense/orbit", "simd4/pertile");
    let work_saving =
        find("dense/orbit", "simd4/pertile").map_or(f64::NAN, |r| r.work.row_iteration_saving());
    // The foveated scenario keeps PR 6's moderate trace shape, where the
    // 4-lane kernel's win over scalar is the headline (on the overdraw
    // trace a lazy scalar walk is competitive — see ARCHITECTURE.md).
    let simd_speedup =
        raster_us("foveated/headon", "scalar") / raster_us("foveated/headon", "simd4/pertile");
    println!(
        "\ndense/orbit 1-thread raster: perrow/pertile {staging_speedup:.2}x, \
         row-iteration saving {work_saving:.2}x; \
         foveated/headon scalar/pertile {simd_speedup:.2}x"
    );

    // Server sweep: default options resolve to the simd4/pertile hot path.
    let model_arc = Arc::new(model);
    let server_workloads = [
        (
            "dense/orbit",
            RenderOptions {
                threads: 0,
                ..RenderOptions::default()
            },
            headon,
        ),
        (
            "merged/orbit",
            RenderOptions {
                threads: 0,
                ..RenderOptions::with_tile_merging()
            },
            Camera::look_at(width, height, 60.0, Vec3::new(0.0, 0.0, 16.0), Vec3::zero()),
        ),
    ];
    let mut server_rows: Vec<ServerRow> = Vec::new();
    for (name, options, proto) in &server_workloads {
        for &sessions in &session_counts {
            let baseline_fps = serial_baseline(&model_arc, options, proto, sessions, server_frames);
            let (server_fps, latencies) =
                run_server(&model_arc, options, proto, sessions, server_frames);
            server_rows.push(ServerRow {
                scenario: name,
                sessions,
                frames_total: sessions * server_frames,
                baseline_fps,
                server_fps,
                speedup: server_fps / baseline_fps,
                p50_ms: percentile_ms(&latencies, 50.0),
                p99_ms: percentile_ms(&latencies, 99.0),
            });
        }
    }
    let server_headers = [
        "scenario",
        "sessions",
        "frames",
        "baseline fps",
        "server fps",
        "speedup",
        "p50 ms",
        "p99 ms",
    ];
    let server_table: Vec<Vec<String>> = server_rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.sessions.to_string(),
                r.frames_total.to_string(),
                format!("{:.2}", r.baseline_fps),
                format!("{:.2}", r.server_fps),
                format!("{:.2}x", r.speedup),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p99_ms),
            ]
        })
        .collect();
    println!();
    print_table(&server_headers, &server_table);

    // Chunked streaming sweep: the dense head-on frame rendered in core vs
    // streamed from the *encoded* multi-chunk container
    // (`ChunkedFileSource::from_bytes`) at two chunk sizes, per thread
    // count — and per cache budget: `nocache` (budget 0, every chunk
    // re-decodes twice per frame) vs `cache` (the default budget, the
    // scatter pass and every later frame hit the renderer's chunk cache).
    // The encoded container is the honest streaming scenario: each load
    // parses and validates chunk bytes — the cost the cache eliminates —
    // where an `InCoreSource` load is a memcpy the cache could only match.
    // Each cell keeps one `Renderer` across repetitions, so `cache` cells
    // measure the steady state a long-lived renderer reaches. Same
    // sampling discipline as the raster sweep (round-robin, best total
    // wall). The resident-peak counters ride along from the best profile —
    // they are deterministic per configuration, so they show what the
    // bounded budget buys while total_us shows what the streaming passes
    // cost.
    let chunk_sizes = get_list("MS_CHUNK_SIZES", &[4096, 33_333]);
    let chunk_sources: Vec<(usize, Arc<ChunkedFileSource>)> = chunk_sizes
        .iter()
        .map(|&cs| {
            let bytes = encode_model_chunked(&model_arc, cs).to_vec();
            let source = ChunkedFileSource::from_bytes(bytes).expect("container round-trips");
            (cs, Arc::new(source))
        })
        .collect();
    // Budget `Some(0)` disables the cache outright; `None` resolves to the
    // default budget (32 MiB unless `MS_CHUNK_CACHE` overrides it).
    let cache_budgets: [(&str, Option<usize>); 2] = [("nocache", Some(0)), ("cache", None)];
    struct ChunkedCell {
        mode: String,
        cache_mode: &'static str,
        chunk_splats: usize,
        threads: usize,
        render: Box<dyn Fn() -> FrameProfile>,
        best: Option<FrameProfile>,
    }
    let mut chunked_cells: Vec<ChunkedCell> = Vec::new();
    for &threads in &thread_counts {
        let options = RenderOptions {
            threads,
            ..RenderOptions::default()
        };
        let (m, c, r) = (
            Arc::clone(&model_arc),
            headon,
            Renderer::new(options.clone()),
        );
        chunked_cells.push(ChunkedCell {
            mode: "incore".to_string(),
            cache_mode: "n/a",
            chunk_splats: 0,
            threads,
            render: Box::new(move || r.render(&m, &c).stats.profile),
            best: None,
        });
        for (cs, source) in &chunk_sources {
            for &(cache_mode, budget) in &cache_budgets {
                let options = RenderOptions {
                    threads,
                    cache_budget_bytes: budget,
                    ..RenderOptions::default()
                };
                let (s, c, r) = (Arc::clone(source), headon, Renderer::new(options));
                assert!(s.chunk_count() >= 1);
                chunked_cells.push(ChunkedCell {
                    mode: format!("chunk{cs}/{cache_mode}"),
                    cache_mode,
                    chunk_splats: *cs,
                    threads,
                    render: Box::new(move || r.render_source(&*s, &c).stats.profile),
                    best: None,
                });
            }
        }
    }
    for _ in 0..frames {
        for cell in chunked_cells.iter_mut() {
            let p = (cell.render)();
            let better = cell
                .best
                .as_ref()
                .map_or(true, |b| p.total_wall() < b.total_wall());
            if better {
                cell.best = Some(p);
            }
        }
    }
    let incore_us = |threads: usize| {
        chunked_cells
            .iter()
            .find(|c| c.mode == "incore" && c.threads == threads)
            .and_then(|c| c.best.as_ref())
            .map_or(f64::NAN, |b| b.total_wall().as_secs_f64() * 1e6)
    };
    let chunked_headers = [
        "mode",
        "threads",
        "total us",
        "fps",
        "vs incore",
        "hit rate",
        "chunk peak B",
        "projected peak B",
    ];
    let chunked_table: Vec<Vec<String>> = chunked_cells
        .iter()
        .map(|c| {
            let best = c.best.as_ref().expect("at least one sample");
            let total_us = best.total_wall().as_secs_f64() * 1e6;
            vec![
                c.mode.clone(),
                c.threads.to_string(),
                format!("{total_us:.1}"),
                format!("{:.2}", 1e6 / total_us),
                format!("{:.2}x", incore_us(c.threads) / total_us),
                format!("{:.2}", best.cache.hit_rate()),
                best.chunk_bytes_peak.to_string(),
                best.projected_bytes_peak.to_string(),
            ]
        })
        .collect();
    println!();
    print_table(&chunked_headers, &chunked_table);

    let out_path = std::env::var("MS_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr10.json".to_string());
    let raster_json: Vec<String> = rows.iter().map(json_raster_row).collect();
    let server_json: Vec<String> = server_rows.iter().map(json_server_row).collect();
    let chunked_json: Vec<String> = chunked_cells
        .iter()
        .map(|c| {
            let best = c.best.as_ref().expect("at least one sample");
            let total_us = best.total_wall().as_secs_f64() * 1e6;
            format!(
                "    {{\"scenario\": \"dense/headon\", \"mode\": \"{}\", \"cache\": \"{}\", \"chunk_splats\": {}, \"threads\": {}, \"total_us\": {:.1}, \"fps\": {:.2}, \"incore_over_chunked\": {:.3}, \"cache_hit_rate\": {:.3}, \"chunk_bytes_peak\": {}, \"projected_bytes_peak\": {}}}",
                c.mode,
                c.cache_mode,
                c.chunk_splats,
                c.threads,
                total_us,
                1e6 / total_us,
                incore_us(c.threads) / total_us,
                best.cache.hit_rate(),
                best.chunk_bytes_peak,
                best.projected_bytes_peak,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"corpus\",\n  \"pr\": 10,\n  \"host_cores\": {host_cores},\n  \"config\": {{\"trace\": \"room\", \"dense_points\": {points}, \"dense_log_scale\": {log_scale}, \"foveated_scene_scale\": {scale}, \"width\": {width}, \"height\": {height}, \"frames\": {frames}, \"frames_per_session\": {server_frames}, \"in_flight\": 2}},\n  \"raster\": [\n{}\n  ],\n  \"acceptance_1t\": {{\"dense_orbit_perrow_over_pertile\": {staging_speedup:.3}, \"dense_orbit_row_iteration_saving\": {work_saving:.3}, \"foveated_headon_scalar_over_pertile\": {simd_speedup:.3}}},\n  \"server\": [\n{}\n  ],\n  \"chunked\": [\n{}\n  ]\n}}\n",
        raster_json.join(",\n"),
        server_json.join(",\n"),
        chunked_json.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench record");
    println!("\nwrote {out_path}");
}
