//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **CE aggregation**: max over poses (paper's choice) vs mean.
//! 2. **TMU threshold β** sweep (accelerator balance knob).
//! 3. **Selective multi-versioning**: tuned per-level Opacity/SH-DC vs
//!    strict subsetting (SMFR-style parameter sharing).

use metasapiens::accel::{simulate, AccelConfig, AccelWorkload};
use metasapiens::fov::{build_foveated, FoveatedRenderer, FrBuildConfig};
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::{RenderOptions, Renderer};
use metasapiens::scene::dataset::TraceId;
use metasapiens::train::ce::{compute_ce, CeAggregation, CeOptions};
use metasapiens::train::finetune::FineTuneConfig;
use metasapiens::train::prune::prune_fraction;
use ms_bench::{load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let trace = TraceId::by_name("garden").expect("garden exists");
    println!("== Ablations on {trace} ==\n");
    let loaded = load_trace(trace, &config);
    let cams = &loaded.cameras;
    let refs = &loaded.references;
    let renderer = Renderer::default();

    // ---------------------------------------------------------------
    // 1. CE aggregation: prune 60% by max-CE vs mean-CE, compare MSE.
    println!("(1) CE aggregation — prune 60% of points, quality of the survivors:");
    let mut rows = Vec::new();
    for (label, agg) in [
        ("max over poses (paper)", CeAggregation::Max),
        ("mean over poses", CeAggregation::Mean),
    ] {
        let ce = compute_ce(
            &loaded.scene.model,
            cams,
            &CeOptions {
                aggregation: agg,
                ..CeOptions::default()
            },
        );
        let (pruned, _) = prune_fraction(&loaded.scene.model, &ce, 0.6);
        let mse: f32 = cams
            .iter()
            .zip(refs)
            .map(|(c, r)| renderer.render(&pruned, c).image.mse(r))
            .sum::<f32>()
            / cams.len() as f32;
        rows.push(vec![label.to_string(), format!("{mse:.2e}")]);
    }
    print_table(&["aggregation", "MSE vs dense"], &rows);

    // ---------------------------------------------------------------
    // 2. β sweep on the accelerator.
    println!("\n(2) TMU threshold β sweep (MetaSapiens-H FR frame):");
    let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
    let fr_out =
        FoveatedRenderer::new(RenderOptions::default()).render(&system.fov, &cams[0], None);
    let scale = config.scale_factors();
    let workload = AccelWorkload::from_stats(
        &fr_out.stats,
        Some(&fr_out.tile_level),
        fr_out.blended_pixels as u64,
        system.fov.storage_bytes() as u64,
    )
    .scaled(scale.point_factor, scale.pixel_factor);
    let mut rows = Vec::new();
    for beta in [1u32, 64, 256, 512, 2048, 8192] {
        let mut c = AccelConfig::metasapiens_tm_ip();
        c.tile_merge_beta = beta;
        let sim = simulate(&workload, &c);
        rows.push(vec![
            format!("{beta}"),
            format!("{}", sim.cycles),
            format!("{}", sim.units_processed),
            format!("{:.1}%", 100.0 * sim.raster_utilization),
        ]);
    }
    print_table(&["beta", "cycles", "pipeline slots", "raster util"], &rows);

    // ---------------------------------------------------------------
    // 3. Multi-versioning on/off at matched point budgets.
    println!("\n(3) Selective multi-versioning (same subsets, tuned vs shared params):");
    let base_cfg = FrBuildConfig {
        finetune: None,
        ..FrBuildConfig::default()
    };
    let tuned_cfg = FrBuildConfig {
        finetune: Some(FineTuneConfig {
            iterations: 15,
            scale_decay: None,
            ..FineTuneConfig::default()
        }),
        ..FrBuildConfig::default()
    };
    let shared = build_foveated(&system.l1, cams, refs, &base_cfg);
    let tuned = build_foveated(&system.l1, cams, refs, &tuned_cfg);
    let mut rows = Vec::new();
    for (label, model) in [
        ("strict subsetting", &shared),
        ("multi-versioned (paper)", &tuned),
    ] {
        let mse_l4: f32 = cams
            .iter()
            .zip(refs)
            .map(|(c, r)| renderer.render(model.level_model(3), c).image.mse(r))
            .sum::<f32>()
            / cams.len() as f32;
        rows.push(vec![
            label.to_string(),
            format!("{:.2e}", mse_l4),
            format!("{:.1}%", 100.0 * model.storage_overhead()),
        ]);
    }
    print_table(&["variant", "L4 MSE vs dense", "storage overhead"], &rows);
    println!("\npaper: max-CE beats mean-CE (dataset-bias robustness); moderate β");
    println!("amortizes tiny tiles without serializing the pipe; multi-versioning");
    println!("recovers peripheral quality for ~6% extra storage.");
}
