//! Raster-kernel bench record: per-stage wall times for the scalar and
//! 4-lane SIMD compositing kernels across thread counts, on a dense and a
//! foveated workload. Prints a table and writes `BENCH_pr6.json` at the
//! repo root (override the path with `MS_BENCH_OUT`).
//!
//! The dense single-threaded Raster wall is the acceptance number for the
//! SIMD kernel work: `Simd4` must beat `Scalar` by ≥ 1.3× there.

use metasapiens::fov::{build_foveated, FoveatedModel, FoveatedRenderer, FrBuildConfig};
use metasapiens::render::{RasterKernel, RenderOptions, Renderer, StageKind};
use metasapiens::scene::dataset::TraceId;
use metasapiens::scene::synth::Scene;
use metasapiens::scene::Camera;
use ms_bench::print_table;

const STAGES: [StageKind; 5] = [
    StageKind::Project,
    StageKind::Bin,
    StageKind::Merge,
    StageKind::Raster,
    StageKind::Composite,
];

/// One measured configuration: best-of-N per-stage walls in microseconds.
struct Row {
    scene: &'static str,
    kernel: RasterKernel,
    threads: usize,
    walls_us: [f64; 5],
    total_us: f64,
}

fn kernel_name(k: RasterKernel) -> &'static str {
    match k {
        RasterKernel::Scalar => "scalar",
        RasterKernel::Simd4 => "simd4",
        RasterKernel::Auto => "auto",
    }
}

fn getf(key: &str, default: f32) -> f32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<f32>().ok())
        .unwrap_or(default)
}

/// One benchmarked configuration and the best profile seen for it so far.
/// All configurations are sampled round-robin (one frame each per
/// repetition) so slow drift in machine load hits every cell equally
/// instead of biasing whichever kernel happened to run last.
struct Cell {
    scene: &'static str,
    kernel: RasterKernel,
    threads: usize,
    render: Box<dyn Fn() -> metasapiens::render::FrameProfile>,
    best: Option<metasapiens::render::FrameProfile>,
}

impl Cell {
    fn sample(&mut self) {
        let p = (self.render)();
        let better = self
            .best
            .as_ref()
            .map_or(true, |b| p.total_wall() < b.total_wall());
        if better {
            self.best = Some(p);
        }
    }

    fn row(&self) -> Row {
        let best = self.best.as_ref().expect("at least one sample");
        let walls_us: [f64; 5] = std::array::from_fn(|i| best.wall(STAGES[i]).as_secs_f64() * 1e6);
        Row {
            scene: self.scene,
            kernel: self.kernel,
            threads: self.threads,
            walls_us,
            total_us: best.total_wall().as_secs_f64() * 1e6,
        }
    }
}

fn json_row(r: &Row) -> String {
    let stages: Vec<String> = STAGES
        .iter()
        .zip(r.walls_us.iter())
        .map(|(k, us)| format!("\"{}\": {:.1}", k.name().to_ascii_lowercase(), us))
        .collect();
    format!(
        "    {{\"scene\": \"{}\", \"kernel\": \"{}\", \"threads\": {}, \"stage_walls_us\": {{{}}}, \"total_us\": {:.1}}}",
        r.scene,
        kernel_name(r.kernel),
        r.threads,
        stages.join(", "),
        r.total_us
    )
}

fn dense_scene(scale: f32, width: u32, height: u32) -> (Scene, Camera) {
    let scene = TraceId::by_name("room")
        .unwrap()
        .build_scene_with_scale(scale);
    let cam = Camera {
        width,
        height,
        fovy: ms_math::deg_to_rad(74.0),
        ..scene.train_cameras[0]
    };
    (scene, cam)
}

fn foveated_model(scene: &Scene, cam: &Camera) -> FoveatedModel {
    let reference = Renderer::default().render(&scene.model, cam).image;
    build_foveated(
        &scene.model,
        std::slice::from_ref(cam),
        &[reference],
        &FrBuildConfig {
            finetune: None,
            ..FrBuildConfig::default()
        },
    )
}

fn main() {
    let scale = getf("MS_SCALE", 0.008);
    let width = getf("MS_W", 256.0) as u32;
    let height = getf("MS_H", 192.0) as u32;
    let frames = getf("MS_FRAMES", 9.0) as usize;
    let thread_counts: Vec<usize> = std::env::var("MS_THREADS")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("MS_THREADS: comma-separated list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 2, 3, 8]);
    let kernels = [RasterKernel::Scalar, RasterKernel::Simd4];

    println!("== raster kernel bench: scalar vs simd4 ==");
    println!("scene room @ scale {scale}, {width}x{height}, best of {frames} frames\n");

    let (scene, cam) = dense_scene(scale, width, height);
    let fr_model = foveated_model(&scene, &cam);

    let mut cells: Vec<Cell> = Vec::new();
    for &kernel in &kernels {
        for &threads in &thread_counts {
            let options = RenderOptions {
                threads,
                raster_kernel: kernel,
                ..RenderOptions::default()
            };
            let renderer = Renderer::new(options.clone());
            let (sc, cc) = (scene.model.clone(), cam);
            cells.push(Cell {
                scene: "dense",
                kernel,
                threads,
                render: Box::new(move || renderer.render(&sc, &cc).stats.profile),
                best: None,
            });
            let fov = FoveatedRenderer::new(options.clone());
            let (fm, fc) = (fr_model.clone(), cam);
            cells.push(Cell {
                scene: "foveated",
                kernel,
                threads,
                render: Box::new(move || fov.render(&fm, &fc, None).stats.profile),
                best: None,
            });
        }
    }
    for _ in 0..frames {
        for cell in cells.iter_mut() {
            cell.sample();
        }
    }
    let rows: Vec<Row> = cells.iter().map(Cell::row).collect();

    let headers = [
        "scene",
        "kernel",
        "threads",
        "project",
        "bin",
        "merge",
        "raster",
        "composite",
        "total",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.scene.to_string(),
                kernel_name(r.kernel).to_string(),
                r.threads.to_string(),
            ];
            row.extend(r.walls_us.iter().map(|us| format!("{us:.1}")));
            row.push(format!("{:.1}", r.total_us));
            row
        })
        .collect();
    print_table(&headers, &table);

    // Acceptance ratio: single-threaded Raster wall, scalar / simd4.
    let raster_us = |scene: &str, kernel: RasterKernel| {
        rows.iter()
            .find(|r| r.scene == scene && r.kernel == kernel && r.threads == 1)
            .map(|r| r.walls_us[3])
            .unwrap_or(f64::NAN)
    };
    let dense_speedup =
        raster_us("dense", RasterKernel::Scalar) / raster_us("dense", RasterKernel::Simd4);
    let fov_speedup =
        raster_us("foveated", RasterKernel::Scalar) / raster_us("foveated", RasterKernel::Simd4);
    println!("\nraster speedup (1 thread, scalar/simd4): dense {dense_speedup:.2}x, foveated {fov_speedup:.2}x");

    let out_path = std::env::var("MS_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr6.json".to_string());
    let json_rows: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"bench\": \"raster_kernel\",\n  \"pr\": 6,\n  \"config\": {{\"trace\": \"room\", \"scene_scale\": {scale}, \"width\": {width}, \"height\": {height}, \"frames\": {frames}}},\n  \"results\": [\n{}\n  ],\n  \"raster_speedup_1t_scalar_over_simd4\": {{\"dense\": {dense_speedup:.3}, \"foveated\": {fov_speedup:.3}}}\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench record");
    println!("wrote {out_path}");
}
