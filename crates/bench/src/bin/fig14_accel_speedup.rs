//! Fig. 14: accelerator speedups over the mobile GPU — Base, Base+TM,
//! Base+TM+IP — one marker per trace, geomean summary.

use metasapiens::accel::{simulate, AccelConfig, AccelWorkload};
use metasapiens::eval::foveated_workload;
use metasapiens::fov::FoveatedRenderer;
use metasapiens::gpu::GpuCostModel;
use metasapiens::pipeline::{build_system, BuildConfig, Variant};
use metasapiens::render::RenderOptions;
use ms_bench::{load_trace, print_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    let scale = config.scale_factors();
    println!("== Fig. 14: accelerator speedup over the mobile GPU (MetaSapiens-H) ==\n");
    let fr = FoveatedRenderer::new(RenderOptions::default());
    let gpu = GpuCostModel::xavier();
    let configs = [
        AccelConfig::metasapiens_base(),
        AccelConfig::metasapiens_tm(),
        AccelConfig::metasapiens_tm_ip(),
    ];

    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f32>> = vec![Vec::new(); configs.len()];
    for trace in config.traces() {
        let loaded = load_trace(trace, &config);
        let system = build_system(&loaded.scene, &BuildConfig::fast_for_tests(Variant::H));
        let frame = fr.render(&system.fov, &loaded.cameras[0], None);
        // Same full-scale workload on both sides for a like-for-like ratio.
        let gpu_latency = gpu.frame_latency(&foveated_workload(&frame, scale));
        let workload = AccelWorkload::from_stats(
            &frame.stats,
            Some(&frame.tile_level),
            frame.blended_pixels as u64,
            system.fov.storage_bytes() as u64,
        )
        .scaled(scale.point_factor, scale.pixel_factor);
        let mut row = vec![trace.name.to_string()];
        for (i, c) in configs.iter().enumerate() {
            let sim = simulate(&workload, c);
            let s = (gpu_latency / sim.latency_s) as f32;
            speedups[i].push(s);
            row.push(format!("{s:.1}x"));
        }
        rows.push(row);
    }
    print_table(&["trace", "Base", "Base+TM", "Base+TM+IP"], &rows);

    println!();
    for (i, c) in configs.iter().enumerate() {
        println!(
            "{:<20} geomean {:>6.1}x   max {:>6.1}x",
            c.name,
            ms_math::stats::geomean(&speedups[i]),
            speedups[i]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max),
        );
    }
    println!("\npaper: Base 18.5x geomean (up to 24.8x); TM+IP 20.9x (up to 27.7x).");
}
