//! The accelerator energy model (§7.3).
//!
//! Event-based energy accounting at 16 nm: each pipeline event (point
//! projection, intersection sort/duplication, compositing step) carries a
//! fixed energy, plus SRAM and DRAM traffic costs. Incremental pipelining
//! swaps the large inter-stage double buffers for small line buffers, which
//! lowers the per-access SRAM energy — the source of the paper's 54.4× →
//! 56.8× improvement over the GPU.

use crate::config::AccelConfig;
use crate::pipeline::SimReport;
use crate::workload::AccelWorkload;
use serde::{Deserialize, Serialize};

/// Per-event energies in picojoules (16 nm-class estimates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Per point projected (covariance math + SH eval).
    pub e_point_pj: f64,
    /// Per tile-ellipse intersection (key gen + sorting network pass).
    pub e_intersection_pj: f64,
    /// Per compositing step in a VRC.
    pub e_blend_step_pj: f64,
    /// Per byte of small-SRAM (line buffer) traffic.
    pub e_sram_small_pj_b: f64,
    /// Per byte of large-SRAM (double buffer) traffic.
    pub e_sram_large_pj_b: f64,
    /// Per byte of DRAM traffic (LPDDR3-1600).
    pub e_dram_pj_b: f64,
    /// Leakage + clock power in watts (charged over the frame latency).
    pub static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            e_point_pj: 900.0,
            e_intersection_pj: 520.0,
            e_blend_step_pj: 190.0,
            e_sram_small_pj_b: 0.18,
            e_sram_large_pj_b: 0.55,
            e_dram_pj_b: 20.0,
            static_w: 0.25,
        }
    }
}

/// Energy breakdown of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Compute energy (projection + sorting + compositing), joules.
    pub compute_j: f64,
    /// On-chip SRAM traffic energy, joules.
    pub sram_j: f64,
    /// DRAM traffic energy, joules.
    pub dram_j: f64,
    /// Static (leakage/clock) energy over the frame, joules.
    pub static_j: f64,
}

impl EnergyReport {
    /// Total frame energy in joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.sram_j + self.dram_j + self.static_j
    }
}

impl EnergyModel {
    /// Energy of one frame given its workload, the simulated timing and
    /// the hardware configuration.
    pub fn frame_energy(
        &self,
        workload: &AccelWorkload,
        sim: &SimReport,
        config: &AccelConfig,
    ) -> EnergyReport {
        let isect = workload.total_intersections() as f64;
        let compute_j = (self.e_point_pj * workload.points_projected as f64
            + self.e_intersection_pj * isect
            + self.e_blend_step_pj * workload.blend_steps as f64)
            * 1e-12;

        // Inter-stage traffic: each intersection record (~16 B: id, depth,
        // conic ref) crosses the sort→raster buffer twice (write + read).
        let buffer_bytes = isect * 16.0 * 2.0;
        let sram_rate = if config.incremental_pipelining {
            self.e_sram_small_pj_b
        } else {
            self.e_sram_large_pj_b
        };
        // Sorter-input double buffer is present in both designs.
        let sram_j = (buffer_bytes * sram_rate + buffer_bytes * self.e_sram_large_pj_b) * 1e-12;

        let dram_j = self.e_dram_pj_b * workload.model_bytes as f64 * 1e-12;
        let static_j = self.static_w * sim.latency_s;
        EnergyReport {
            compute_j,
            sram_j,
            dram_j,
            static_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate;
    use crate::workload::TileWork;

    fn workload() -> AccelWorkload {
        AccelWorkload {
            tiles: (0..256)
                .map(|i| TileWork {
                    intersections: if i % 20 == 0 { 1_500 } else { 40 },
                    pixels: 256,
                    level: 0,
                })
                .collect(),
            tile_unit: Vec::new(),
            points_projected: 200_000,
            blend_steps: 5_000_000,
            blended_pixels: 20_000,
            model_bytes: 50_000_000,
        }
    }

    #[test]
    fn energy_is_positive_and_dram_heavy() {
        let w = workload();
        let c = AccelConfig::metasapiens_tm_ip();
        let sim = simulate(&w, &c);
        let e = EnergyModel::default().frame_energy(&w, &sim, &c);
        assert!(e.total_j() > 0.0);
        // Streaming the model dominates at these sizes, as in most
        // accelerator energy breakdowns.
        assert!(e.dram_j > e.sram_j);
    }

    #[test]
    fn ip_lowers_sram_energy() {
        let w = workload();
        let with_ip = AccelConfig::metasapiens_tm_ip();
        let mut no_ip = AccelConfig::metasapiens_tm_ip();
        no_ip.incremental_pipelining = false;
        let m = EnergyModel::default();
        let e_ip = m.frame_energy(&w, &simulate(&w, &with_ip), &with_ip);
        let e_db = m.frame_energy(&w, &simulate(&w, &no_ip), &no_ip);
        assert!(e_ip.sram_j < e_db.sram_j);
        assert!(e_ip.total_j() < e_db.total_j());
    }

    #[test]
    fn accelerator_energy_is_far_below_gpu_envelope() {
        // §7.3: 54.4×/56.8× energy reduction vs the GPU. The GPU side is
        // modeled in ms-gpu; here we check the accelerator lands in the
        // tens-of-millijoules class for a mid-size frame while a mobile GPU
        // at ~20 W and tens of ms per frame spends hundreds of millijoules.
        let w = workload();
        let c = AccelConfig::metasapiens_tm_ip();
        let e = EnergyModel::default().frame_energy(&w, &simulate(&w, &c), &c);
        assert!(e.total_j() < 0.05, "frame energy {} J", e.total_j());
    }

    #[test]
    fn static_energy_scales_with_latency() {
        let w = workload();
        let c = AccelConfig::metasapiens_base();
        let sim = simulate(&w, &c);
        let e = EnergyModel::default().frame_energy(&w, &sim, &c);
        assert!((e.static_j - 0.25 * sim.latency_s).abs() < 1e-12);
    }
}
