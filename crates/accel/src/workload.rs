//! Frame workloads consumed by the accelerator simulator.

use ms_render::RenderStats;
use serde::{Deserialize, Serialize};

/// Work of one pixel tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileWork {
    /// Tile-ellipse intersections binned to this tile.
    pub intersections: u32,
    /// Pixels in the tile.
    pub pixels: u32,
    /// Foveation quality level the tile renders at (0 when non-foveated).
    pub level: u8,
}

/// The per-frame workload descriptor: tiles in raster (row-major) order —
/// the order the pipeline consumes them, which is what tile merging sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelWorkload {
    /// Tiles in raster order.
    pub tiles: Vec<TileWork>,
    /// Renderer-computed §4.3 merge schedule: per-tile work-unit id,
    /// parallel to `tiles`. Empty when the software pipeline rendered
    /// without occupancy merging — the simulator then falls back to its
    /// own β-threshold TMU model. When present, a TM-enabled configuration
    /// groups its pipeline slots by these ids, so the simulated work units
    /// are the *same* super-tiles the renderer scheduled, by construction.
    pub tile_unit: Vec<u32>,
    /// Points surviving culling (projection work).
    pub points_projected: usize,
    /// Total compositing steps of the frame (distributed over tiles in
    /// proportion to their intersections when a per-tile split is needed).
    pub blend_steps: u64,
    /// Pixels blended across quality levels (FR blend unit work).
    pub blended_pixels: u64,
    /// Model bytes streamed from DRAM for this frame.
    pub model_bytes: u64,
}

impl AccelWorkload {
    /// Build from render statistics — the *only* workload source.
    ///
    /// Every field is copied from what the renderer's staged pipeline
    /// measured, never re-derived: per-tile intersections are the CSR
    /// offset deltas carried in `stats.tile_intersections`, per-tile pixel
    /// counts come from the tile grid clipped to the image
    /// (`TileGridDims::tile_pixel_count`, so edge tiles are not padded to
    /// `tile_size²`), projection work is the Project stage's counter and
    /// compositing work the Raster stage's. The simulator and the software
    /// renderer therefore agree on the frame workload by construction.
    ///
    /// `tile_level` optionally assigns a foveation level per tile
    /// (from `ms-fov`'s `FovRenderOutput::tile_level`); `model_bytes` is
    /// the streamed model size (`GaussianModel::storage_bytes`). When the
    /// stats carry a merge schedule (`RenderStats::tile_unit`, recorded
    /// when `merge_threshold > 0`), it is copied through so the simulated
    /// work units match the renderer's super-tiles.
    ///
    /// # Panics
    ///
    /// Panics when `tile_level` is provided with a mismatched length.
    pub fn from_stats(
        stats: &RenderStats,
        tile_level: Option<&[u8]>,
        blended_pixels: u64,
        model_bytes: u64,
    ) -> Self {
        if let Some(levels) = tile_level {
            assert_eq!(
                levels.len(),
                stats.tile_intersections.len(),
                "tile level map mismatch"
            );
        }
        let g = stats.grid;
        let tiles = stats
            .tile_intersections
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let (tx, ty) = g.tile_coords(i);
                TileWork {
                    intersections: n,
                    pixels: g.tile_pixel_count(tx, ty),
                    level: tile_level.map(|l| l[i]).unwrap_or(0),
                }
            })
            .collect();
        assert!(
            stats.tile_unit.is_empty() || stats.tile_unit.len() == stats.tile_intersections.len(),
            "merge schedule length mismatch"
        );
        Self {
            tiles,
            tile_unit: stats.tile_unit.clone(),
            points_projected: stats.points_projected,
            blend_steps: stats.blend_steps,
            blended_pixels,
            model_bytes,
        }
    }

    /// Scale the workload to a full-size configuration
    /// (granularity-preserving, mirroring `ms_gpu::FrameWorkload::scaled`):
    /// the tile stream is replicated `pixel_factor`× (a higher-resolution
    /// frame has proportionally more tiles with the same per-tile
    /// overdraw), point- and model-proportional terms scale by
    /// `point_factor`.
    pub fn scaled(&self, point_factor: f64, pixel_factor: f64) -> Self {
        let xf = pixel_factor.max(0.0);
        let full = xf.floor() as usize;
        let frac = xf - full as f64;
        let mut tiles = Vec::with_capacity(((self.tiles.len() as f64) * xf) as usize + 1);
        let mut tile_unit = Vec::with_capacity(if self.tile_unit.is_empty() {
            0
        } else {
            tiles.capacity()
        });
        // Each replica's unit ids shift by the unit count so replicas stay
        // distinct work units (a larger frame has more super-tiles, not
        // bigger ones).
        let unit_stride = self.tile_unit.iter().map(|&u| u + 1).max().unwrap_or(0);
        let mut replicate = |n: usize, copy: usize| {
            tiles.extend_from_slice(&self.tiles[..n]);
            tile_unit.extend(
                self.tile_unit[..if self.tile_unit.is_empty() { 0 } else { n }]
                    .iter()
                    .map(|&u| u + copy as u32 * unit_stride),
            );
        };
        for copy in 0..full {
            replicate(self.tiles.len(), copy);
        }
        let partial = (((self.tiles.len() as f64) * frac) as usize).min(self.tiles.len());
        replicate(partial, full);
        Self {
            tiles,
            tile_unit,
            points_projected: (self.points_projected as f64 * point_factor) as usize,
            blend_steps: (self.blend_steps as f64 * xf) as u64,
            blended_pixels: (self.blended_pixels as f64 * xf) as u64,
            model_bytes: (self.model_bytes as f64 * point_factor) as u64,
        }
    }

    /// Total tile-ellipse intersections.
    pub fn total_intersections(&self) -> u64 {
        self.tiles.iter().map(|t| t.intersections as u64).sum()
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_render::{FrameProfile, TileGridDims};

    fn stats() -> RenderStats {
        RenderStats {
            grid: TileGridDims::for_image(32, 32, 16),
            tile_intersections: vec![10, 0, 500, 3],
            points_projected: 100,
            points_submitted: 120,
            total_intersections: 513,
            blend_steps: 4_000,
            point_tiles_used: Vec::new(),
            point_pixels_dominated: Vec::new(),
            tile_unit: Vec::new(),
            profile: FrameProfile::default(),
        }
    }

    #[test]
    fn from_stats_copies_tiles() {
        let w = AccelWorkload::from_stats(&stats(), None, 12, 999);
        assert_eq!(w.tile_count(), 4);
        assert_eq!(w.total_intersections(), 513);
        assert_eq!(w.tiles[2].intersections, 500);
        assert_eq!(w.tiles[0].pixels, 256);
        assert_eq!(w.blended_pixels, 12);
        assert_eq!(w.model_bytes, 999);
    }

    #[test]
    fn edge_tiles_use_clipped_pixel_counts() {
        let mut s = stats();
        s.grid = TileGridDims::for_image(24, 20, 16); // 2×2 grid, clipped edges
        let w = AccelWorkload::from_stats(&s, None, 0, 0);
        assert_eq!(w.tiles[0].pixels, 16 * 16);
        assert_eq!(w.tiles[1].pixels, 8 * 16);
        assert_eq!(w.tiles[2].pixels, 16 * 4);
        assert_eq!(w.tiles[3].pixels, 8 * 4);
        let total: u64 = w.tiles.iter().map(|t| t.pixels as u64).sum();
        assert_eq!(
            total,
            24 * 20,
            "clipped tile pixels must tile the image exactly"
        );
    }

    #[test]
    fn from_stats_copies_merge_schedule() {
        let mut s = stats();
        s.tile_unit = vec![0, 0, 1, 2];
        let w = AccelWorkload::from_stats(&s, None, 0, 0);
        assert_eq!(w.tile_unit, vec![0, 0, 1, 2]);
        // No schedule recorded → no schedule carried.
        let w = AccelWorkload::from_stats(&stats(), None, 0, 0);
        assert!(w.tile_unit.is_empty());
    }

    #[test]
    fn scaled_offsets_replicated_schedule_ids() {
        let mut s = stats();
        s.tile_unit = vec![0, 0, 1, 2];
        let w = AccelWorkload::from_stats(&s, None, 0, 0);
        let scaled = w.scaled(1.0, 2.5);
        assert_eq!(scaled.tiles.len(), 10);
        assert_eq!(scaled.tile_unit.len(), 10);
        // Second replica's ids shift by the unit count (3); the partial
        // third replica keeps the pattern.
        assert_eq!(scaled.tile_unit, vec![0, 0, 1, 2, 3, 3, 4, 5, 6, 6]);
    }

    #[test]
    fn scaled_replicates_tiles() {
        let w = AccelWorkload::from_stats(&stats(), None, 12, 1_000);
        let s = w.scaled(10.0, 2.5);
        assert_eq!(s.tiles.len(), 10); // 4 × 2.5
        assert_eq!(s.points_projected, 1_000);
        assert_eq!(s.model_bytes, 10_000);
        assert_eq!(s.blended_pixels, 30);
        let id = w.scaled(1.0, 1.0);
        assert_eq!(id, w);
    }

    #[test]
    fn levels_attach_when_provided() {
        let levels = vec![0u8, 1, 2, 3];
        let w = AccelWorkload::from_stats(&stats(), Some(&levels), 0, 0);
        assert_eq!(w.tiles[3].level, 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_levels_panic() {
        let levels = vec![0u8; 3];
        let _ = AccelWorkload::from_stats(&stats(), Some(&levels), 0, 0);
    }
}
