//! Cycle-approximate simulator of the MetaSapiens accelerator (paper §5).
//!
//! The accelerator extends the GSCore-style three-stage tile pipeline
//! (Projection → Sorting → Rasterization) with:
//!
//! * **FR support**: a foveation filter in the projection stage and a blend
//!   unit in rasterization (yellow blocks of Fig. 8),
//! * **Tile Merging (TM)**: the Tile Merge Unit coalesces consecutive
//!   low-work tiles until a cumulative-intersection threshold β is reached,
//!   balancing the per-tile workload,
//! * **Incremental Pipelining (IP)**: line buffers replace double buffers
//!   between stages so the consumer starts on sub-tiles before the producer
//!   finishes the whole tile (Fig. 10).
//!
//! The simulator consumes the exact per-tile workloads measured by
//! `ms-render`/`ms-fov` and reports makespan, utilization, energy and area.
//! Timing is cycle-approximate: per-stage cycle counts are derived from the
//! unit throughputs in the paper's configuration (8 Culling-and-Conversion
//! units, one Hierarchical Sorting Unit, a 16×16 Volume Rendering Core
//! array at 1 GHz in 16 nm).

#![deny(missing_docs)]

mod config;
mod energy;
mod pipeline;
mod workload;

pub use config::AccelConfig;
pub use energy::{EnergyModel, EnergyReport};
pub use pipeline::{simulate, SimReport};
pub use workload::{AccelWorkload, TileWork};
