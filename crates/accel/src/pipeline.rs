//! The tile pipeline simulator (Fig. 10 dynamics).
//!
//! Tiles flow through Sorting → Rasterization (Projection runs ahead on the
//! CCU array and is overlapped; it only matters when the frame is
//! projection-bound). Without Incremental Pipelining, a double buffer sits
//! between the stages: rasterization of a tile starts only after the whole
//! tile is sorted. Tile Merging coalesces consecutive low-work tiles before
//! they enter the pipeline; Incremental Pipelining lets rasterization start
//! once the first sub-tile is available.

use crate::config::AccelConfig;
use crate::workload::AccelWorkload;
use serde::{Deserialize, Serialize};

/// Simulation result for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total cycles from first sort to last pixel.
    pub cycles: u64,
    /// Frame latency in seconds at the configured clock.
    pub latency_s: f64,
    /// Cycles the sorter was busy.
    pub sort_busy: u64,
    /// Cycles the rasterizer was busy.
    pub raster_busy: u64,
    /// Rasterizer utilization (busy / makespan).
    pub raster_utilization: f64,
    /// Cycles the rasterizer stalled waiting on the sorter.
    pub raster_stall: u64,
    /// Pipeline slots (merged tiles) processed.
    pub units_processed: usize,
    /// Raw tiles before merging.
    pub tiles_in: usize,
    /// Projection cycles (overlapped; exposed for analysis).
    pub projection_cycles: u64,
    /// Cycles needed to stream the model from DRAM (overlapped; the frame
    /// cannot finish faster than memory delivers the points).
    pub dram_cycles: u64,
}

/// Sorting cycles for `n` intersections: the hierarchical sorting unit is a
/// streaming merge network that ingests `throughput` pre-sorted elements
/// per cycle per unit — linear in `n` (GSCore's design point; the sorter is
/// not the compute bottleneck, the front-end fixed cost is).
fn sort_cycles(n: u64, config: &AccelConfig) -> u64 {
    if n == 0 {
        return 0;
    }
    let per_unit = config.sorter_throughput.max(1) as u64 * config.sorter_count.max(1) as u64;
    n.div_ceil(per_unit)
}

/// Rasterization cycles for a tile: each intersection is evaluated against
/// every pixel of the tile; the VRC array covers `vrc_count` pixels per
/// cycle.
fn raster_cycles(intersections: u64, pixels: u64, config: &AccelConfig) -> u64 {
    let waves = pixels.div_ceil(config.vrc_count.max(1) as u64);
    intersections * waves
}

/// One pipeline slot: a tile or a merged run of tiles.
#[derive(Debug, Clone, Copy)]
struct Slot {
    intersections: u64,
    raster: u64,
}

/// Apply the TMU: group tiles into pipeline slots.
///
/// When the workload carries the renderer's §4.3 merge schedule
/// (`AccelWorkload::tile_unit`) and the configuration has a TMU, slots are
/// the renderer's super-tiles *by construction* — each tile's sort and
/// raster cycles accumulate into the work unit that scheduled it, so the
/// simulator and the software pipeline agree on work units the same way
/// they already agree on intersection counts. Without a schedule, the TMU
/// falls back to the β-threshold model: greedily merge consecutive tiles
/// until the cumulative intersection count reaches β (paper §5.2).
fn merge_tiles(workload: &AccelWorkload, config: &AccelConfig) -> Vec<Slot> {
    if config.tile_merging && !workload.tile_unit.is_empty() {
        assert_eq!(
            workload.tile_unit.len(),
            workload.tiles.len(),
            "merge schedule length mismatch"
        );
        let units = workload.tile_unit.iter().map(|&u| u as usize + 1).max();
        let mut slots = vec![
            Slot {
                intersections: 0,
                raster: 0,
            };
            units.unwrap_or(0)
        ];
        for (t, &u) in workload.tiles.iter().zip(&workload.tile_unit) {
            if t.intersections == 0 {
                continue; // empty tiles are skipped by the frontend
            }
            slots[u as usize].intersections += t.intersections as u64;
            slots[u as usize].raster +=
                raster_cycles(t.intersections as u64, t.pixels as u64, config);
        }
        slots.retain(|s| s.intersections > 0);
        return slots;
    }

    let mut slots = Vec::new();
    let mut acc_isect = 0u64;
    let mut acc_raster = 0u64;
    for t in &workload.tiles {
        if t.intersections == 0 {
            continue; // empty tiles are skipped by the frontend
        }
        let r = raster_cycles(t.intersections as u64, t.pixels as u64, config);
        if config.tile_merging {
            acc_isect += t.intersections as u64;
            acc_raster += r;
            if acc_isect >= config.tile_merge_beta as u64 {
                slots.push(Slot {
                    intersections: acc_isect,
                    raster: acc_raster,
                });
                acc_isect = 0;
                acc_raster = 0;
            }
        } else {
            slots.push(Slot {
                intersections: t.intersections as u64,
                raster: r,
            });
        }
    }
    if acc_isect > 0 {
        slots.push(Slot {
            intersections: acc_isect,
            raster: acc_raster,
        });
    }
    slots
}

/// Simulate one frame.
pub fn simulate(workload: &AccelWorkload, config: &AccelConfig) -> SimReport {
    let slots = merge_tiles(workload, config);
    let overhead = config.tile_overhead_cycles as u64;
    let projection_cycles =
        (workload.points_projected as u64).div_ceil(config.ccu_count.max(1) as u64);

    let mut sort_end = 0u64;
    let mut raster_end = 0u64;
    let mut sort_busy = 0u64;
    let mut raster_busy = 0u64;
    let mut raster_stall = 0u64;

    let frontend = config.frontend_overhead_cycles as u64;
    for slot in &slots {
        let s = sort_cycles(slot.intersections, config) + frontend;
        let r = slot.raster + overhead;
        let sort_start = sort_end;
        sort_end = sort_start + s;
        sort_busy += s;

        let ready = if config.incremental_pipelining {
            // First sub-tile available after a fraction of the sort.
            sort_start + s.div_ceil(config.subtiles.max(1) as u64)
        } else {
            sort_end
        };
        let raster_start = ready.max(raster_end);
        raster_stall += raster_start.saturating_sub(raster_end);
        let mut end = raster_start + r;
        if config.incremental_pipelining {
            // The rasterizer cannot finish before the sorter has delivered
            // the last sub-tile plus one sub-tile of rasterization.
            end = end.max(sort_end + r.div_ceil(config.subtiles.max(1) as u64));
        }
        raster_busy += r;
        raster_end = end;
    }

    // FR blending pass: one cycle per blended pixel through the blend unit
    // (overlapped with the tail of rasterization; charged at the end).
    let blend_tail = workload
        .blended_pixels
        .div_ceil(config.vrc_count.max(1) as u64);
    // DRAM floor: the packed model must stream in; bytes/cycle at the
    // configured clock.
    let bytes_per_cycle = (config.dram_gbps / config.clock_ghz).max(1e-9);
    let dram_cycles =
        ((workload.model_bytes as f64 / config.dram_compression.max(1.0)) / bytes_per_cycle) as u64;
    let makespan = raster_end.max(projection_cycles).max(dram_cycles) + blend_tail;

    // First-slot stall is pipeline fill, not imbalance; keep as stall anyway
    // (matches the "Idle" slots of Fig. 10's baseline diagram).
    SimReport {
        cycles: makespan,
        latency_s: makespan as f64 / (config.clock_ghz * 1e9),
        sort_busy,
        raster_busy,
        raster_utilization: if makespan == 0 {
            1.0
        } else {
            raster_busy as f64 / makespan as f64
        },
        raster_stall,
        units_processed: slots.len(),
        tiles_in: workload.tiles.len(),
        projection_cycles,
        dram_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::TileWork;
    use rand::{Rng, SeedableRng};

    fn workload_from(intersections: Vec<u32>) -> AccelWorkload {
        AccelWorkload {
            tiles: intersections
                .into_iter()
                .map(|n| TileWork {
                    intersections: n,
                    pixels: 256,
                    level: 0,
                })
                .collect(),
            tile_unit: Vec::new(),
            points_projected: 1_000,
            blend_steps: 0,
            blended_pixels: 0,
            model_bytes: 0,
        }
    }

    /// An imbalanced workload in the paper's style: a few huge center tiles
    /// and many nearly-empty peripheral ones.
    fn imbalanced() -> AccelWorkload {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut tiles = Vec::new();
        for i in 0..400 {
            let n = if i % 40 < 4 {
                rng.gen_range(800..2_500)
            } else {
                rng.gen_range(0..30)
            };
            tiles.push(n);
        }
        workload_from(tiles)
    }

    #[test]
    fn empty_frame_is_cheap() {
        let w = workload_from(vec![0; 64]);
        let r = simulate(&w, &AccelConfig::metasapiens_base());
        assert_eq!(r.units_processed, 0);
        assert!(r.cycles <= r.projection_cycles + 1);
    }

    #[test]
    fn tile_merging_improves_makespan_on_imbalanced_frames() {
        let w = imbalanced();
        let base = simulate(&w, &AccelConfig::metasapiens_base());
        let tm = simulate(&w, &AccelConfig::metasapiens_tm());
        assert!(
            tm.cycles < base.cycles,
            "TM should help: {} vs {}",
            tm.cycles,
            base.cycles
        );
        assert!(tm.units_processed < base.units_processed);
    }

    #[test]
    fn incremental_pipelining_stacks_on_tm() {
        let w = imbalanced();
        let tm = simulate(&w, &AccelConfig::metasapiens_tm());
        let tm_ip = simulate(&w, &AccelConfig::metasapiens_tm_ip());
        assert!(
            tm_ip.cycles < tm.cycles,
            "TM+IP should beat TM alone: {} vs {}",
            tm_ip.cycles,
            tm.cycles
        );
    }

    #[test]
    fn full_design_raises_utilization() {
        let w = imbalanced();
        let base = simulate(&w, &AccelConfig::metasapiens_base());
        let full = simulate(&w, &AccelConfig::metasapiens_tm_ip());
        assert!(
            full.raster_utilization > base.raster_utilization,
            "{} vs {}",
            full.raster_utilization,
            base.raster_utilization
        );
    }

    #[test]
    fn balanced_workload_gains_little_from_tm() {
        let w = workload_from(vec![300; 256]);
        let base = simulate(&w, &AccelConfig::metasapiens_base());
        let tm = simulate(&w, &AccelConfig::metasapiens_tm());
        let gain = base.cycles as f64 / tm.cycles as f64;
        assert!(
            gain < 1.15,
            "balanced frames shouldn't benefit much: gain {gain}"
        );
    }

    #[test]
    fn more_vrcs_speed_up_raster_bound_frames() {
        let w = workload_from(vec![2_000; 64]);
        let small = simulate(&w, &AccelConfig::gscore());
        let big = simulate(&w, &AccelConfig::metasapiens_base());
        assert!(big.cycles < small.cycles);
    }

    #[test]
    fn projection_bound_frames_hit_projection_floor() {
        let mut w = workload_from(vec![1; 4]);
        w.points_projected = 10_000_000;
        let r = simulate(&w, &AccelConfig::metasapiens_base());
        assert!(r.cycles >= r.projection_cycles);
    }

    #[test]
    fn blend_tail_adds_cycles() {
        let mut w = imbalanced();
        let before = simulate(&w, &AccelConfig::metasapiens_tm_ip()).cycles;
        w.blended_pixels = 1_000_000;
        let after = simulate(&w, &AccelConfig::metasapiens_tm_ip()).cycles;
        assert!(after > before);
    }

    #[test]
    fn sort_cycles_scale_linearly() {
        let c = AccelConfig::metasapiens_base();
        let a = sort_cycles(1_000, &c);
        let b = sort_cycles(2_000, &c);
        assert!((b as i64 - 2 * a as i64).abs() <= 1, "a={a} b={b}");
    }

    #[test]
    fn renderer_schedule_drives_slots_by_construction() {
        // Four tiles, renderer merged tiles 0–2 (sparse) into unit 0 and
        // left tile 3 (dense) alone in unit 1 → exactly two slots, with the
        // per-tile sort/raster work conserved.
        let mut w = workload_from(vec![10, 5, 0, 900]);
        w.tile_unit = vec![0, 0, 0, 1];
        let tm = simulate(&w, &AccelConfig::metasapiens_tm());
        assert_eq!(tm.units_processed, 2);
        // Without a TMU the schedule is ignored: tiles stay singleton slots
        // (the hardware has no merge unit to execute the plan).
        let base = simulate(&w, &AccelConfig::metasapiens_base());
        assert_eq!(base.units_processed, 3); // empty tile skipped
    }

    #[test]
    fn schedule_units_with_only_empty_tiles_are_dropped() {
        let mut w = workload_from(vec![0, 0, 7, 7]);
        w.tile_unit = vec![0, 0, 1, 1];
        let tm = simulate(&w, &AccelConfig::metasapiens_tm());
        assert_eq!(tm.units_processed, 1, "all-empty unit must not cost a slot");
    }

    #[test]
    #[should_panic(expected = "merge schedule length mismatch")]
    fn malformed_schedule_panics() {
        let mut w = workload_from(vec![1, 2, 3]);
        w.tile_unit = vec![0, 0];
        let _ = simulate(&w, &AccelConfig::metasapiens_tm());
    }

    #[test]
    fn beta_sweep_is_sane() {
        // Small β ≈ no merging; very large β merges everything into one
        // serial slot. The sweet spot sits between.
        let w = imbalanced();
        let cycles_at = |beta: u32| {
            let mut c = AccelConfig::metasapiens_tm();
            c.tile_merge_beta = beta;
            simulate(&w, &c).cycles
        };
        let tiny = cycles_at(1);
        let mid = cycles_at(2_048);
        assert!(mid < tiny, "β=2048 ({mid}) should beat β=1 ({tiny})");
    }
}
