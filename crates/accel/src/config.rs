//! Hardware configurations and the area model.

use serde::{Deserialize, Serialize};

/// An accelerator configuration.
///
/// The default MetaSapiens configuration (paper §6): 8 Culling & Conversion
/// Units, a single Hierarchical Sorting Unit, a 16×16 Volume Rendering Core
/// array, 1 KB line buffers, a 64 KB double buffer before the sorter,
/// 2.73 mm² in TSMC 16 nm. GSCore's balance differs: 2 sorting units and a
/// quarter of the VRCs (1.45 mm² scaled to 16 nm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Human-readable configuration name.
    pub name: String,
    /// Culling & Conversion (projection) units; one point per cycle each.
    pub ccu_count: u32,
    /// Hierarchical sorting units.
    pub sorter_count: u32,
    /// Volume Rendering Core array entries (e.g. 256 for a 16×16 array).
    pub vrc_count: u32,
    /// Elements the sorter network accepts per cycle (per unit).
    pub sorter_throughput: u32,
    /// Tile Merging enabled.
    pub tile_merging: bool,
    /// TMU cumulative-intersection threshold β.
    pub tile_merge_beta: u32,
    /// Incremental pipelining (line buffers) enabled.
    pub incremental_pipelining: bool,
    /// Sub-tiles per tile under IP (16 rows of a 16×16 tile).
    pub subtiles: u32,
    /// Per-tile pipeline overhead in cycles for the rasterizer (buffer
    /// swap, tile setup).
    pub tile_overhead_cycles: u32,
    /// Per-tile front-end overhead in cycles (tile-ID reassignment, sorter
    /// setup, output-buffer handoff). This fixed cost is what starves the
    /// VRC array on tiny peripheral tiles — the imbalance TM amortizes.
    pub frontend_overhead_cycles: u32,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Inter-stage buffer capacity in bytes (double buffer; line buffers
    /// replace it under IP).
    pub double_buffer_bytes: u32,
    /// Line-buffer capacity in bytes (used when IP is on).
    pub line_buffer_bytes: u32,
    /// DRAM bandwidth in GB/s (four channels of LPDDR3-1600, paper §6).
    pub dram_gbps: f64,
    /// Effective compression of the streamed point format relative to the
    /// float32 checkpoint (quantized positions/scales, pruned SH bands held
    /// on-chip) — GSCore-style accelerators stream a packed format.
    pub dram_compression: f64,
}

impl AccelConfig {
    /// MetaSapiens base accelerator (FR support, no TM/IP) — "Base" in
    /// Fig. 14.
    pub fn metasapiens_base() -> Self {
        Self {
            name: "MetaSapiens-Base".into(),
            ccu_count: 8,
            sorter_count: 1,
            vrc_count: 256,
            sorter_throughput: 8,
            tile_merging: false,
            tile_merge_beta: 512,
            incremental_pipelining: false,
            subtiles: 16,
            tile_overhead_cycles: 24,
            frontend_overhead_cycles: 64,
            clock_ghz: 1.0,
            double_buffer_bytes: 64 * 1024,
            line_buffer_bytes: 1024,
            dram_gbps: 25.6,
            dram_compression: 6.0,
        }
    }

    /// Base + Tile Merging ("Base+TM").
    pub fn metasapiens_tm() -> Self {
        Self {
            name: "MetaSapiens-TM".into(),
            tile_merging: true,
            ..Self::metasapiens_base()
        }
    }

    /// Base + TM + Incremental Pipelining ("Base+TM+IP", the full design).
    pub fn metasapiens_tm_ip() -> Self {
        Self {
            name: "MetaSapiens-TM-IP".into(),
            tile_merging: true,
            incremental_pipelining: true,
            ..Self::metasapiens_base()
        }
    }

    /// GSCore's resource balance: 2× the sorting units, 4× fewer VRCs, no
    /// TM/IP (§7.5: "our baseline hardware has 4× more Volume Rendering
    /// Cores compared to that of GSCore with 2× fewer sorting unit\[s\]").
    pub fn gscore() -> Self {
        Self {
            name: "GSCore".into(),
            ccu_count: 8,
            sorter_count: 2,
            vrc_count: 64,
            sorter_throughput: 8,
            tile_merging: false,
            tile_merge_beta: 512,
            incremental_pipelining: false,
            subtiles: 16,
            tile_overhead_cycles: 24,
            frontend_overhead_cycles: 64,
            clock_ghz: 1.0,
            double_buffer_bytes: 64 * 1024,
            line_buffer_bytes: 1024,
            dram_gbps: 25.6,
            dram_compression: 6.0,
        }
    }

    /// Scale compute resources by `factor` (Fig. 15's proportional scaling
    /// "based on their own resource ratio"). Buffers scale with the VRCs.
    pub fn scaled(&self, factor: f32) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale_u32 = |v: u32| ((v as f32 * factor).round() as u32).max(1);
        Self {
            name: format!("{}×{:.2}", self.name, factor),
            ccu_count: scale_u32(self.ccu_count),
            sorter_count: scale_u32(self.sorter_count),
            vrc_count: scale_u32(self.vrc_count),
            double_buffer_bytes: scale_u32(self.double_buffer_bytes),
            line_buffer_bytes: scale_u32(self.line_buffer_bytes),
            ..self.clone()
        }
    }

    /// Die area in mm² (TSMC 16 nm).
    ///
    /// Calibrated to the paper's figures: the full MetaSapiens design is
    /// 2.73 mm² with the VRC array taking 63% and SRAM 7%; GSCore scales to
    /// 1.45 mm².
    pub fn area_mm2(&self) -> f32 {
        const A_VRC: f32 = 7.0e-3; // per volume-rendering core
        const A_SORTER: f32 = 0.15; // per hierarchical sorting unit
        const A_CCU: f32 = 0.037; // per culling & conversion unit
        const A_SRAM_PER_KB: f32 = 1.2e-3;
        const A_MISC: f32 = 0.35; // control, NoC, DRAM PHY share
        let buffer_kb = if self.incremental_pipelining {
            // Line buffers replace the inter-stage double buffers; the
            // sorter-input double buffer remains.
            (self.double_buffer_bytes + 4 * self.line_buffer_bytes) as f32 / 1024.0
        } else {
            (3 * self.double_buffer_bytes) as f32 / 1024.0
        };
        self.vrc_count as f32 * A_VRC
            + self.sorter_count as f32 * A_SORTER
            + self.ccu_count as f32 * A_CCU
            + buffer_kb * A_SRAM_PER_KB
            + A_MISC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_areas_are_reproduced() {
        let ours = AccelConfig::metasapiens_tm_ip().area_mm2();
        assert!(
            (ours - 2.73).abs() < 0.35,
            "MetaSapiens area {ours} vs paper 2.73 mm²"
        );
        let gscore = AccelConfig::gscore().area_mm2();
        assert!(
            (gscore - 1.45).abs() < 0.35,
            "GSCore area {gscore} vs paper 1.45 mm²"
        );
        assert!(ours > gscore);
    }

    #[test]
    fn vrc_array_dominates_area() {
        let c = AccelConfig::metasapiens_tm_ip();
        let vrc_share = c.vrc_count as f32 * 7.0e-3 / c.area_mm2();
        assert!(
            (0.5..0.75).contains(&vrc_share),
            "VRC share {vrc_share} (paper: 63%)"
        );
    }

    #[test]
    fn ip_reduces_sram_area() {
        let with_ip = AccelConfig::metasapiens_tm_ip().area_mm2();
        let mut no_ip = AccelConfig::metasapiens_tm_ip();
        no_ip.incremental_pipelining = false;
        assert!(with_ip < no_ip.area_mm2());
    }

    #[test]
    fn scaling_multiplies_units() {
        let c = AccelConfig::gscore().scaled(2.0);
        assert_eq!(c.vrc_count, 128);
        assert_eq!(c.sorter_count, 4);
        assert!(c.area_mm2() > AccelConfig::gscore().area_mm2());
    }

    #[test]
    #[should_panic]
    fn zero_scale_panics() {
        let _ = AccelConfig::gscore().scaled(0.0);
    }

    #[test]
    fn config_presets_differ_as_documented() {
        let base = AccelConfig::metasapiens_base();
        assert!(!base.tile_merging && !base.incremental_pipelining);
        let tm = AccelConfig::metasapiens_tm();
        assert!(tm.tile_merging && !tm.incremental_pipelining);
        let full = AccelConfig::metasapiens_tm_ip();
        assert!(full.tile_merging && full.incremental_pipelining);
        let gscore = AccelConfig::gscore();
        assert_eq!(gscore.sorter_count, 2);
        assert_eq!(gscore.vrc_count, base.vrc_count / 4);
    }
}
