//! The end-to-end MetaSapiens model-construction pipeline (§6).
//!
//! Dense model → (CE pruning + scale decay, Fig. 6) → **L1** →
//! (subset pruning + selective multi-version fine-tuning, §4.3) →
//! **foveated hierarchy**. The three published variants differ in how hard
//! the L1 model is pruned: their total model sizes are 16%, 12% and 10% of
//! the dense model.

use ms_fov::{build_foveated, FoveatedModel, FrBuildConfig};
use ms_render::{Image, RenderOptions, Renderer};
use ms_scene::synth::Scene;
use ms_scene::{Camera, GaussianModel};
use ms_train::ce::{compute_ce, CeOptions};
use ms_train::finetune::{FineTuneConfig, FineTuner};
use ms_train::prune::prune_fraction;
use ms_train::scale_decay::ScaleDecayOptions;
use serde::{Deserialize, Serialize};

/// The three published MetaSapiens variants (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Highest quality: L1 at 99% of the dense PSNR; total size 16%.
    H,
    /// Medium: 98% PSNR; total size 12%.
    M,
    /// Lowest/fastest: 97% PSNR; total size 10%.
    L,
}

impl Variant {
    /// All variants, highest quality first.
    pub const ALL: [Variant; 3] = [Variant::H, Variant::M, Variant::L];

    /// Target L1 point fraction of the dense model. The paper reports the
    /// *total model size* fractions 16%/12%/10%; points track size.
    pub fn l1_fraction(self) -> f32 {
        match self {
            Variant::H => 0.16,
            Variant::M => 0.12,
            Variant::L => 0.10,
        }
    }

    /// The PSNR retention target of the L1 model (fraction of dense PSNR).
    pub fn psnr_retention(self) -> f32 {
        match self {
            Variant::H => 0.99,
            Variant::M => 0.98,
            Variant::L => 0.97,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::H => "MetaSapiens-H",
            Variant::M => "MetaSapiens-M",
            Variant::L => "MetaSapiens-L",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the end-to-end build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildConfig {
    /// Which variant to build.
    pub variant: Variant,
    /// Render options used throughout (CE statistics, fine-tuning,
    /// references).
    pub render: RenderOptions,
    /// Resolution the training views are rendered at (downsampled from the
    /// scene cameras for tractability).
    pub train_resolution: (u32, u32),
    /// How many training cameras to use (subsampled from the scene's).
    pub train_camera_cap: usize,
    /// Fraction pruned per outer iteration of the Fig. 6 loop (R = 10%).
    pub prune_rate: f32,
    /// Fine-tuning applied after each prune round (with scale decay —
    /// Eqn. 6's `L = L_quality + γ·WS`).
    pub l1_finetune: FineTuneConfig,
    /// CE options.
    pub ce: CeOptions,
    /// Foveated-hierarchy construction.
    pub fr: FrBuildConfig,
}

impl BuildConfig {
    /// A production-shaped default for a variant.
    pub fn new(variant: Variant) -> Self {
        Self {
            variant,
            render: RenderOptions::default(),
            train_resolution: (160, 120),
            train_camera_cap: 4,
            prune_rate: 0.10,
            l1_finetune: FineTuneConfig {
                iterations: 8,
                scale_decay: Some(ScaleDecayOptions::default()),
                ..FineTuneConfig::default()
            },
            ce: CeOptions::default(),
            fr: FrBuildConfig::default(),
        }
    }

    /// A trimmed configuration for unit/integration tests: fewer cameras,
    /// smaller renders, no per-level fine-tuning.
    pub fn fast_for_tests(variant: Variant) -> Self {
        Self {
            train_resolution: (64, 48),
            train_camera_cap: 2,
            l1_finetune: FineTuneConfig {
                iterations: 2,
                scale_decay: Some(ScaleDecayOptions::default()),
                ..FineTuneConfig::default()
            },
            fr: FrBuildConfig {
                finetune: None,
                ..FrBuildConfig::default()
            },
            ..Self::new(variant)
        }
    }
}

/// A fully built MetaSapiens system for one trace.
#[derive(Debug, Clone)]
pub struct MetaSapiensSystem {
    /// The variant built.
    pub variant: Variant,
    /// The L1 model (pruned + scale-decayed from the dense model).
    pub l1: GaussianModel,
    /// The foveated hierarchy built on L1.
    pub fov: FoveatedModel,
    /// Storage of the dense input model in bytes.
    pub dense_storage: usize,
    /// Training cameras used (downsampled).
    pub train_cameras: Vec<Camera>,
    /// Reference (dense-model) renders for the training cameras.
    pub references: Vec<Image>,
}

impl MetaSapiensSystem {
    /// Total storage of the foveated system in bytes (base + versions).
    pub fn storage_bytes(&self) -> usize {
        self.fov.storage_bytes()
    }

    /// Storage as a fraction of the dense model (paper: 16%/12%/10%).
    pub fn storage_fraction(&self) -> f32 {
        self.storage_bytes() as f32 / self.dense_storage.max(1) as f32
    }
}

/// Build a MetaSapiens system from a dense scene.
///
/// Implements the Fig. 6 loop in its fraction-targeted form: prune
/// `prune_rate` of the lowest-CE points, re-train with scale decay, repeat
/// until the variant's L1 fraction is reached; then construct the foveated
/// hierarchy per §4.3.
///
/// # Panics
///
/// Panics when the scene provides no training cameras.
pub fn build_system(scene: &Scene, config: &BuildConfig) -> MetaSapiensSystem {
    assert!(
        !scene.train_cameras.is_empty(),
        "scene has no training cameras"
    );
    let (w, h) = config.train_resolution;
    let step = (scene.train_cameras.len() / config.train_camera_cap.max(1)).max(1);
    let train_cameras: Vec<Camera> = scene
        .train_cameras
        .iter()
        .step_by(step)
        .take(config.train_camera_cap.max(1))
        .map(|c| Camera {
            width: w,
            height: h,
            ..*c
        })
        .collect();

    let renderer = Renderer::new(config.render.clone());
    let references: Vec<Image> = train_cameras
        .iter()
        .map(|c| renderer.render(&scene.model, c).image)
        .collect();

    // --- L1: iterative CE pruning + scale-decay re-training (Fig. 6).
    let target = (scene.model.len() as f32 * config.variant.l1_fraction()).round() as usize;
    let mut l1 = scene.model.clone();
    while l1.len() > target.max(8) {
        let ce = compute_ce(&l1, &train_cameras, &config.ce);
        let excess = l1.len() - target.max(8);
        let rate = config
            .prune_rate
            .min(excess as f32 / l1.len() as f32)
            .max(1.0 / l1.len() as f32);
        let (pruned, _) = prune_fraction(&l1, &ce, rate);
        l1 = pruned;
        let mut tuner = FineTuner::new(config.l1_finetune.clone(), l1.len());
        tuner.run(&mut l1, &train_cameras, &references);
    }

    // --- Foveated hierarchy on top of L1 (§4.3).
    let fov = build_foveated(&l1, &train_cameras, &references, &config.fr);

    MetaSapiensSystem {
        variant: config.variant,
        l1,
        fov,
        dense_storage: scene.model.storage_bytes(),
        train_cameras,
        references,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_scene::dataset::TraceId;

    fn scene() -> Scene {
        TraceId::by_name("bonsai")
            .unwrap()
            .build_scene_with_scale(0.004)
    }

    #[test]
    fn variants_order_by_aggressiveness() {
        assert!(Variant::H.l1_fraction() > Variant::M.l1_fraction());
        assert!(Variant::M.l1_fraction() > Variant::L.l1_fraction());
        assert!(Variant::H.psnr_retention() > Variant::L.psnr_retention());
        assert_eq!(Variant::H.to_string(), "MetaSapiens-H");
    }

    #[test]
    fn build_reaches_variant_fraction() {
        let s = scene();
        let system = build_system(&s, &BuildConfig::fast_for_tests(Variant::H));
        let frac = system.l1.len() as f32 / s.model.len() as f32;
        assert!(
            (frac - 0.16).abs() < 0.02,
            "L1 fraction {frac} should approach 0.16"
        );
        // Storage fraction lands near the paper's 16% (±multi-versioning).
        let sf = system.storage_fraction();
        assert!(sf > 0.10 && sf < 0.25, "storage fraction {sf}");
    }

    #[test]
    fn lower_variants_are_smaller() {
        let s = scene();
        let h = build_system(&s, &BuildConfig::fast_for_tests(Variant::H));
        let l = build_system(&s, &BuildConfig::fast_for_tests(Variant::L));
        assert!(l.l1.len() < h.l1.len());
        assert!(l.storage_bytes() < h.storage_bytes());
    }

    #[test]
    fn built_system_renders_faster_than_dense() {
        let s = scene();
        let system = build_system(&s, &BuildConfig::fast_for_tests(Variant::H));
        let renderer = Renderer::default();
        let cam = &system.train_cameras[0];
        let dense = renderer.render(&s.model, cam).stats.total_intersections;
        let l1 = renderer.render(&system.l1, cam).stats.total_intersections;
        assert!(
            (l1 as f32) < dense as f32 * 0.6,
            "L1 should slash intersections: {l1} vs {dense}"
        );
    }
}
