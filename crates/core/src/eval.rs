//! Shared evaluation helpers used by the examples and the benchmark
//! harness: quality metrics against reference renders, workload capture,
//! and full-scale FPS estimation.

use ms_fov::{FovRenderOutput, FoveatedModel, FoveatedRenderer};
use ms_gpu::{FrameWorkload, GpuCostModel};
use ms_hvs::{lpips_proxy, psnr, ssim};
use ms_render::{Image, RenderOptions, Renderer, SortMode};
use ms_scene::{Camera, GaussianModel};
use serde::{Deserialize, Serialize};

/// Crop an image to the gaze region (the central square inscribed in the
/// 18° foveal disk, clamped to the image). The paper reports PSNR/SSIM/
/// LPIPS "for the region under the user's gaze" (§7.2); measuring the
/// periphery with full-field metrics would double-count quality FR
/// deliberately relaxes.
pub fn gaze_region_crop(image: &Image, camera: &Camera) -> Image {
    let half = (ms_math::deg_to_rad(18.0).tan() * camera.focal_x())
        .min(camera.width as f32 * 0.5)
        .min(camera.height as f32 * 0.5)
        .max(8.0) as u32;
    let cx = camera.width / 2;
    let cy = camera.height / 2;
    let x0 = cx.saturating_sub(half);
    let y0 = cy.saturating_sub(half);
    let x1 = (cx + half).min(image.width());
    let y1 = (cy + half).min(image.height());
    let mut out = Image::new((x1 - x0).max(1), (y1 - y0).max(1));
    for y in y0..y1 {
        for x in x0..x1 {
            out.set_pixel(x - x0, y - y0, image.pixel(x, y));
        }
    }
    out
}

/// Quality + performance metrics of a model over a set of views.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelMetrics {
    /// Mean PSNR in dB (capped at 60 for identical renders).
    pub psnr_db: f32,
    /// Mean SSIM.
    pub ssim: f32,
    /// Mean LPIPS-proxy (lower is better).
    pub lpips: f32,
    /// Estimated full-scale FPS on the mobile GPU model.
    pub fps: f64,
    /// Mean tile-ellipse intersections per frame (measured).
    pub intersections: f64,
}

/// Workload-scaling factors that map reduced experiment scenes/resolutions
/// to the paper's full-scale configuration (see
/// [`ms_gpu::FrameWorkload::scaled`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleFactors {
    /// Multiplier on point-proportional work (1 / scene scale).
    pub point_factor: f64,
    /// Multiplier on pixel-proportional work (full pixels / rendered).
    pub pixel_factor: f64,
}

impl ScaleFactors {
    /// Identity scaling (report the measured workload as-is).
    pub fn identity() -> Self {
        Self {
            point_factor: 1.0,
            pixel_factor: 1.0,
        }
    }

    /// Factors for a scene built at `scene_scale` and rendered at
    /// `(w, h)`, relative to a 1080p-class full-scale configuration.
    pub fn for_experiment(scene_scale: f64, w: u32, h: u32) -> Self {
        Self {
            point_factor: (1.0 / scene_scale.max(1e-9)).max(1.0),
            pixel_factor: (1920.0 * 1080.0) / (w as f64 * h as f64),
        }
    }
}

/// Evaluate a plain (non-foveated) model against reference images.
///
/// # Panics
///
/// Panics when `cameras` and `references` differ in length or are empty.
pub fn evaluate_model(
    model: &GaussianModel,
    options: &RenderOptions,
    cameras: &[Camera],
    references: &[Image],
    scale: ScaleFactors,
) -> ModelMetrics {
    assert_eq!(cameras.len(), references.len());
    assert!(!cameras.is_empty());
    let renderer = Renderer::new(options.clone());
    let gpu = GpuCostModel::xavier();
    let per_pixel_sort = options.sort_mode == SortMode::PerPixel;

    let mut psnr_acc = 0.0f64;
    let mut ssim_acc = 0.0f64;
    let mut lpips_acc = 0.0f64;
    let mut latency_acc = 0.0f64;
    let mut isect_acc = 0.0f64;
    for (cam, reference) in cameras.iter().zip(references) {
        let out = renderer.render(model, cam);
        let crop = gaze_region_crop(&out.image, cam);
        let crop_ref = gaze_region_crop(reference, cam);
        psnr_acc += psnr(&crop, &crop_ref).min(60.0) as f64;
        ssim_acc += ssim(&crop, &crop_ref) as f64;
        lpips_acc += lpips_proxy(&crop, &crop_ref) as f64;
        let w = FrameWorkload::from_stats(&out.stats, per_pixel_sort)
            .scaled(scale.point_factor, scale.pixel_factor);
        latency_acc += gpu.frame_latency(&w);
        isect_acc += out.stats.total_intersections as f64;
    }
    let n = cameras.len() as f64;
    ModelMetrics {
        psnr_db: (psnr_acc / n) as f32,
        ssim: (ssim_acc / n) as f32,
        lpips: (lpips_acc / n) as f32,
        fps: n / latency_acc,
        intersections: isect_acc / n,
    }
}

/// Evaluate a foveated model (center gaze) against reference images.
///
/// # Panics
///
/// Panics when `cameras` and `references` differ in length or are empty.
pub fn evaluate_foveated(
    model: &FoveatedModel,
    options: &RenderOptions,
    cameras: &[Camera],
    references: &[Image],
    scale: ScaleFactors,
) -> ModelMetrics {
    assert_eq!(cameras.len(), references.len());
    assert!(!cameras.is_empty());
    let renderer = FoveatedRenderer::new(options.clone());
    let gpu = GpuCostModel::xavier();

    let mut psnr_acc = 0.0f64;
    let mut ssim_acc = 0.0f64;
    let mut lpips_acc = 0.0f64;
    let mut latency_acc = 0.0f64;
    let mut isect_acc = 0.0f64;
    for (cam, reference) in cameras.iter().zip(references) {
        let out = renderer.render(model, cam, None);
        let crop = gaze_region_crop(&out.image, cam);
        let crop_ref = gaze_region_crop(reference, cam);
        psnr_acc += psnr(&crop, &crop_ref).min(60.0) as f64;
        ssim_acc += ssim(&crop, &crop_ref) as f64;
        lpips_acc += lpips_proxy(&crop, &crop_ref) as f64;
        latency_acc += gpu.frame_latency(&foveated_workload(&out, scale));
        isect_acc += out.stats.total_intersections as f64;
    }
    let n = cameras.len() as f64;
    ModelMetrics {
        psnr_db: (psnr_acc / n) as f32,
        ssim: (ssim_acc / n) as f32,
        lpips: (lpips_acc / n) as f32,
        fps: n / latency_acc,
        intersections: isect_acc / n,
    }
}

/// Convert a foveated render into a scaled GPU workload (including the
/// blending overhead).
pub fn foveated_workload(out: &FovRenderOutput, scale: ScaleFactors) -> FrameWorkload {
    FrameWorkload::from_stats(&out.stats, false)
        .with_blended_pixels(out.blended_pixels as u64)
        .scaled(scale.point_factor, scale.pixel_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_system, BuildConfig, Variant};
    use ms_scene::dataset::TraceId;

    #[test]
    fn metrics_of_model_against_itself_are_ideal() {
        let scene = TraceId::by_name("room")
            .unwrap()
            .build_scene_with_scale(0.003);
        let cams: Vec<Camera> = scene
            .train_cameras
            .iter()
            .take(2)
            .map(|c| Camera {
                width: 64,
                height: 48,
                ..*c
            })
            .collect();
        let renderer = Renderer::default();
        let refs: Vec<Image> = cams
            .iter()
            .map(|c| renderer.render(&scene.model, c).image)
            .collect();
        let m = evaluate_model(
            &scene.model,
            &RenderOptions::default(),
            &cams,
            &refs,
            ScaleFactors::identity(),
        );
        assert!(m.psnr_db >= 60.0 - 1e-3);
        assert!(m.ssim > 0.999);
        assert!(m.lpips < 1e-6);
        assert!(m.fps > 0.0);
    }

    #[test]
    fn pruned_system_trades_quality_for_fps() {
        let scene = TraceId::by_name("room")
            .unwrap()
            .build_scene_with_scale(0.003);
        let system = build_system(&scene, &BuildConfig::fast_for_tests(Variant::L));
        let cams = system.train_cameras.clone();
        let refs = system.references.clone();
        let dense = evaluate_model(
            &scene.model,
            &RenderOptions::default(),
            &cams,
            &refs,
            ScaleFactors::identity(),
        );
        let pruned = evaluate_model(
            &system.l1,
            &RenderOptions::default(),
            &cams,
            &refs,
            ScaleFactors::identity(),
        );
        assert!(
            pruned.fps > dense.fps,
            "pruned {} vs dense {}",
            pruned.fps,
            dense.fps
        );
        assert!(pruned.psnr_db <= dense.psnr_db);
        assert!(
            pruned.psnr_db > 15.0,
            "pruned quality collapsed: {}",
            pruned.psnr_db
        );
    }

    #[test]
    fn scale_factors_raise_latency() {
        let scene = TraceId::by_name("room")
            .unwrap()
            .build_scene_with_scale(0.003);
        let cams: Vec<Camera> = scene
            .train_cameras
            .iter()
            .take(1)
            .map(|c| Camera {
                width: 64,
                height: 48,
                ..*c
            })
            .collect();
        let renderer = Renderer::default();
        let refs: Vec<Image> = cams
            .iter()
            .map(|c| renderer.render(&scene.model, c).image)
            .collect();
        let small = evaluate_model(
            &scene.model,
            &RenderOptions::default(),
            &cams,
            &refs,
            ScaleFactors::identity(),
        );
        let scaled = evaluate_model(
            &scene.model,
            &RenderOptions::default(),
            &cams,
            &refs,
            ScaleFactors::for_experiment(0.003, 64, 48),
        );
        assert!(scaled.fps < small.fps);
    }
}
