//! # MetaSapiens
//!
//! A from-scratch Rust reproduction of **"MetaSapiens: Real-Time Neural
//! Rendering with Efficiency-Aware Pruning and Accelerated Foveated
//! Rendering"** (Lin, Feng, Zhu — ASPLOS 2025).
//!
//! This crate is the front door of the workspace: it composes the
//! substrates into the paper's end-to-end system and re-exports them:
//!
//! | Crate | Provides |
//! |---|---|
//! | [`math`] (`ms-math`) | vectors, quaternions, SH, conics, stats |
//! | [`scene`] (`ms-scene`) | Gaussian models, cameras, the 13-trace corpus |
//! | [`render`] (`ms-render`) | tile-based splatting renderer + workload stats |
//! | [`hvs`] (`ms-hvs`) | PSNR/SSIM/LPIPS-proxy + eccentricity-aware HVSQ |
//! | [`train`] (`ms-train`) | CE pruning, scale decay, analytic fine-tuning |
//! | [`fov`] (`ms-fov`) | subset hierarchy, multi-versioning, FR rendering |
//! | [`baselines`] (`ms-baselines`) | the seven baseline PBNR families |
//! | [`gpu`] (`ms-gpu`) | mobile-GPU (Xavier) FPS model |
//! | [`accel`] (`ms-accel`) | accelerator simulator (TM + IP) |
//! | [`serve`] (`ms-serve`) | multi-session frame server, pipelined frames |
//!
//! The [`pipeline`] module builds the paper's three variants
//! (MetaSapiens-H/M/L, §6) from a dense scene: efficiency-aware pruning +
//! scale decay produce the L1 model, then HVS-guided level construction
//! produces the foveated hierarchy.
//!
//! # Example
//!
//! ```
//! use metasapiens::pipeline::{build_system, BuildConfig, Variant};
//! use metasapiens::scene::dataset::TraceId;
//!
//! let scene = TraceId::by_name("bonsai").unwrap().build_scene_with_scale(0.004);
//! let config = BuildConfig::fast_for_tests(Variant::H);
//! let system = build_system(&scene, &config);
//! assert!(system.l1.len() < scene.model.len());
//! assert_eq!(system.fov.level_count(), 4);
//! ```

#![deny(missing_docs)]

pub use ms_accel as accel;
pub use ms_baselines as baselines;
pub use ms_fov as fov;
pub use ms_gpu as gpu;
pub use ms_hvs as hvs;
pub use ms_math as math;
pub use ms_render as render;
pub use ms_scene as scene;
pub use ms_serve as serve;
pub use ms_train as train;

pub mod eval;
pub mod pipeline;
