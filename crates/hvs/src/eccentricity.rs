//! Eccentricity maps and foveation quality regions.
//!
//! Eccentricity — the angular distance of a pixel from the gaze direction —
//! is the independent variable of foveated rendering. The paper divides the
//! visual field into four quality regions starting at 0°, 18°, 27° and 33°
//! eccentricity, "corresponding to about 13%, 17%, 21%, 49% of image pixels"
//! (§6); the default [`DisplayGeometry`] here reproduces those fractions.

use ms_math::{deg_to_rad, rad_to_deg, smoothstep, Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Geometry of the display the rendered image is viewed on.
///
/// Pixels are uniform on the (tangent) image plane; eccentricity is the
/// angle between a pixel's view ray and the gaze ray.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisplayGeometry {
    /// Horizontal pixel count.
    pub width: u32,
    /// Vertical pixel count.
    pub height: u32,
    /// Horizontal field of view in degrees. The default experiments use
    /// 88°, which reproduces the paper's per-region pixel fractions.
    pub fovx_deg: f32,
}

impl DisplayGeometry {
    /// Construct a display.
    ///
    /// # Panics
    ///
    /// Panics when the resolution is zero or the FOV is outside (0°, 180°).
    pub fn new(width: u32, height: u32, fovx_deg: f32) -> Self {
        assert!(
            width > 0 && height > 0,
            "display resolution must be non-zero"
        );
        assert!((0.0..180.0).contains(&fovx_deg) && fovx_deg > 0.0);
        Self {
            width,
            height,
            fovx_deg,
        }
    }

    /// Focal length in pixels.
    pub fn focal_px(&self) -> f32 {
        self.width as f32 * 0.5 / deg_to_rad(self.fovx_deg * 0.5).tan()
    }

    /// Approximate pixels per degree at the display center.
    pub fn pixels_per_degree(&self) -> f32 {
        self.focal_px() * deg_to_rad(1.0)
    }

    /// Unit view ray of a pixel.
    fn ray(&self, px: Vec2) -> Vec3 {
        let f = self.focal_px();
        Vec3::new(
            (px.x - self.width as f32 * 0.5) / f,
            (px.y - self.height as f32 * 0.5) / f,
            1.0,
        )
        .normalized()
    }

    /// Eccentricity (degrees) of a pixel given a gaze point in pixels.
    pub fn eccentricity_deg(&self, pixel: Vec2, gaze: Vec2) -> f32 {
        let a = self.ray(pixel);
        let b = self.ray(gaze);
        rad_to_deg(a.dot(b).clamp(-1.0, 1.0).acos())
    }

    /// Display center (default gaze).
    pub fn center(&self) -> Vec2 {
        Vec2::new(self.width as f32 * 0.5, self.height as f32 * 0.5)
    }
}

/// Per-pixel eccentricity map for a fixed gaze.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EccentricityMap {
    display: DisplayGeometry,
    gaze: Vec2,
    /// Row-major eccentricities in degrees.
    ecc_deg: Vec<f32>,
}

impl EccentricityMap {
    /// Build the map for `display` with the gaze at `gaze` (pixels).
    pub fn new(display: DisplayGeometry, gaze: Vec2) -> Self {
        let mut ecc_deg = Vec::with_capacity((display.width * display.height) as usize);
        for y in 0..display.height {
            for x in 0..display.width {
                let px = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
                ecc_deg.push(display.eccentricity_deg(px, gaze));
            }
        }
        Self {
            display,
            gaze,
            ecc_deg,
        }
    }

    /// Build with the gaze at the display center.
    pub fn centered(display: DisplayGeometry) -> Self {
        Self::new(display, display.center())
    }

    /// The display geometry.
    pub fn display(&self) -> DisplayGeometry {
        self.display
    }

    /// Gaze position in pixels.
    pub fn gaze(&self) -> Vec2 {
        self.gaze
    }

    /// Eccentricity in degrees at pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    #[inline]
    pub fn at(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.display.width && y < self.display.height);
        self.ecc_deg[(y * self.display.width + x) as usize]
    }

    /// Raw row-major eccentricity values.
    pub fn values(&self) -> &[f32] {
        &self.ecc_deg
    }
}

/// The eccentricity boundaries of the foveation quality levels.
///
/// `boundaries_deg[i]` is where level `i+1` starts (level indices are
/// 0-based here: level 0 = the paper's L1). The paper's configuration is
/// `[0, 18, 27, 33]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityRegions {
    boundaries_deg: Vec<f32>,
    /// Width (degrees) of the blend band straddling each boundary.
    pub blend_width_deg: f32,
}

impl QualityRegions {
    /// The paper's four-level configuration: 0°, 18°, 27°, 33°.
    pub fn paper_default() -> Self {
        Self::new(vec![0.0, 18.0, 27.0, 33.0], 2.0)
    }

    /// Custom boundaries (must start at 0 and increase strictly).
    ///
    /// # Panics
    ///
    /// Panics when boundaries are empty, do not start at 0, or are not
    /// strictly increasing.
    pub fn new(boundaries_deg: Vec<f32>, blend_width_deg: f32) -> Self {
        assert!(!boundaries_deg.is_empty(), "need at least one region");
        assert_eq!(boundaries_deg[0], 0.0, "first region must start at 0°");
        assert!(
            boundaries_deg.windows(2).all(|w| w[0] < w[1]),
            "boundaries must increase"
        );
        assert!(blend_width_deg >= 0.0);
        Self {
            boundaries_deg,
            blend_width_deg,
        }
    }

    /// Number of quality levels.
    pub fn level_count(&self) -> usize {
        self.boundaries_deg.len()
    }

    /// Region boundaries in degrees.
    pub fn boundaries_deg(&self) -> &[f32] {
        &self.boundaries_deg
    }

    /// Quality level (0 = highest) for an eccentricity.
    pub fn level_of(&self, ecc_deg: f32) -> usize {
        let mut level = 0;
        for (i, &b) in self.boundaries_deg.iter().enumerate() {
            if ecc_deg >= b {
                level = i;
            }
        }
        level
    }

    /// Per-pixel level map.
    pub fn level_map(&self, ecc: &EccentricityMap) -> Vec<u8> {
        ecc.values()
            .iter()
            .map(|&e| self.level_of(e) as u8)
            .collect()
    }

    /// Fraction of pixels in each level.
    pub fn level_fractions(&self, ecc: &EccentricityMap) -> Vec<f32> {
        let mut counts = vec![0usize; self.level_count()];
        for &e in ecc.values() {
            counts[self.level_of(e)] += 1;
        }
        let n = ecc.values().len() as f32;
        counts.iter().map(|&c| c as f32 / n).collect()
    }

    /// Blend weight toward the *next* level at a given eccentricity:
    /// 0 well inside a region, rising to 1 across the `blend_width_deg` band
    /// leading into the next boundary. Pixels in a blend band are rendered
    /// by both adjacent levels and interpolated — the paper's Blending stage
    /// ("about 25% of the pixels are to be blended", §4.1).
    pub fn blend_toward_next(&self, ecc_deg: f32) -> (usize, f32) {
        let level = self.level_of(ecc_deg);
        if level + 1 >= self.level_count() {
            return (level, 0.0);
        }
        let next_boundary = self.boundaries_deg[level + 1];
        let w = smoothstep(next_boundary - self.blend_width_deg, next_boundary, ecc_deg);
        (level, w)
    }

    /// Fraction of pixels inside any blend band (rendered twice).
    pub fn blended_fraction(&self, ecc: &EccentricityMap) -> f32 {
        let n = ecc.values().len() as f32;
        let blended = ecc
            .values()
            .iter()
            .filter(|&&e| {
                let (_, w) = self.blend_toward_next(e);
                w > 0.0 && w < 1.0
            })
            .count();
        blended as f32 / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn display() -> DisplayGeometry {
        DisplayGeometry::new(320, 240, 88.0)
    }

    #[test]
    fn eccentricity_zero_at_gaze() {
        let d = display();
        assert!(d.eccentricity_deg(d.center(), d.center()) < 1e-4);
    }

    #[test]
    fn eccentricity_at_horizontal_edge_is_half_fov() {
        let d = display();
        let e = d.eccentricity_deg(Vec2::new(0.0, 120.0), d.center());
        assert!((e - 44.0).abs() < 0.5, "edge ecc {e}");
    }

    #[test]
    fn region_fractions_match_paper() {
        // Paper §6: four regions ≈ 13%, 17%, 21%, 49% of pixels.
        let ecc = EccentricityMap::centered(display());
        let regions = QualityRegions::paper_default();
        let f = regions.level_fractions(&ecc);
        assert_eq!(f.len(), 4);
        assert!((f[0] - 0.13).abs() < 0.03, "R1 fraction {}", f[0]);
        assert!((f[1] - 0.17).abs() < 0.04, "R2 fraction {}", f[1]);
        assert!((f[2] - 0.21).abs() < 0.05, "R3 fraction {}", f[2]);
        assert!((f[3] - 0.49).abs() < 0.06, "R4 fraction {}", f[3]);
        assert!((f.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn level_of_boundaries() {
        let r = QualityRegions::paper_default();
        assert_eq!(r.level_of(0.0), 0);
        assert_eq!(r.level_of(17.9), 0);
        assert_eq!(r.level_of(18.0), 1);
        assert_eq!(r.level_of(26.9), 1);
        assert_eq!(r.level_of(27.0), 2);
        assert_eq!(r.level_of(33.0), 3);
        assert_eq!(r.level_of(80.0), 3);
    }

    #[test]
    fn blend_weight_rises_into_boundary() {
        let r = QualityRegions::paper_default();
        let (l, w0) = r.blend_toward_next(10.0);
        assert_eq!(l, 0);
        assert_eq!(w0, 0.0);
        let (_, w1) = r.blend_toward_next(17.0);
        assert!(w1 > 0.0 && w1 < 1.0);
        let (_, w2) = r.blend_toward_next(17.9);
        assert!(w2 > w1);
        // Last region never blends outward.
        let (l3, w3) = r.blend_toward_next(50.0);
        assert_eq!(l3, 3);
        assert_eq!(w3, 0.0);
    }

    #[test]
    fn blended_fraction_is_moderate() {
        // The paper reports ~25% of pixels blended; our default blend band
        // gives a nonzero fraction well below half.
        let ecc = EccentricityMap::centered(display());
        let mut r = QualityRegions::paper_default();
        r.blend_width_deg = 6.0;
        let f = r.blended_fraction(&ecc);
        assert!(f > 0.05 && f < 0.5, "blended fraction {f}");
    }

    #[test]
    fn off_center_gaze_shifts_levels() {
        let d = display();
        let ecc = EccentricityMap::new(d, Vec2::new(60.0, 120.0));
        let r = QualityRegions::paper_default();
        let map = r.level_map(&ecc);
        // Pixel near gaze is level 0; far corner is level 3.
        assert_eq!(map[(120 * 320 + 60) as usize], 0);
        assert_eq!(map[(239 * 320 + 319) as usize], 3);
    }

    #[test]
    #[should_panic]
    fn regions_must_start_at_zero() {
        let _ = QualityRegions::new(vec![5.0, 20.0], 2.0);
    }

    #[test]
    #[should_panic]
    fn regions_must_increase() {
        let _ = QualityRegions::new(vec![0.0, 20.0, 15.0], 2.0);
    }

    #[test]
    fn pixels_per_degree_is_positive() {
        assert!(display().pixels_per_degree() > 1.0);
    }
}
