//! Objective image-quality metrics: PSNR, SSIM, and an LPIPS proxy.

use ms_render::Image;

/// Peak Signal-to-Noise Ratio in dB (peak = 1.0). Returns `f32::INFINITY`
/// for identical images.
///
/// # Panics
///
/// Panics on image dimension mismatch.
pub fn psnr(a: &Image, b: &Image) -> f32 {
    let mse = a.mse(b);
    if mse <= 0.0 {
        f32::INFINITY
    } else {
        -10.0 * mse.log10()
    }
}

/// Downsample a luminance map by 2× (box filter).
fn downsample(lum: &[f32], w: usize, h: usize) -> (Vec<f32>, usize, usize) {
    let nw = (w / 2).max(1);
    let nh = (h / 2).max(1);
    let mut out = vec![0.0f32; nw * nh];
    for y in 0..nh {
        for x in 0..nw {
            let x0 = (x * 2).min(w - 1);
            let y0 = (y * 2).min(h - 1);
            let x1 = (x * 2 + 1).min(w - 1);
            let y1 = (y * 2 + 1).min(h - 1);
            out[y * nw + x] =
                0.25 * (lum[y0 * w + x0] + lum[y0 * w + x1] + lum[y1 * w + x0] + lum[y1 * w + x1]);
        }
    }
    (out, nw, nh)
}

/// Horizontal+vertical gradient magnitude (central differences, clamped
/// borders).
fn gradient_magnitude(lum: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let xm = x.saturating_sub(1);
            let xp = (x + 1).min(w - 1);
            let ym = y.saturating_sub(1);
            let yp = (y + 1).min(h - 1);
            let dx = 0.5 * (lum[y * w + xp] - lum[y * w + xm]);
            let dy = 0.5 * (lum[yp * w + x] - lum[ym * w + x]);
            out[y * w + x] = (dx * dx + dy * dy).sqrt();
        }
    }
    out
}

/// Structural Similarity Index on luminance, 8×8 uniform windows with
/// stride 4 (a standard fast-SSIM configuration). Returns a value in
/// `(-1, 1]`, where 1 means identical.
///
/// # Panics
///
/// Panics on image dimension mismatch.
pub fn ssim(a: &Image, b: &Image) -> f32 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    let (w, h) = (a.width() as usize, a.height() as usize);
    let la = a.luminance();
    let lb = b.luminance();
    const C1: f32 = 0.01 * 0.01;
    const C2: f32 = 0.03 * 0.03;
    const WIN: usize = 8;
    const STRIDE: usize = 4;
    let mut acc = 0.0f64;
    let mut count = 0usize;
    let mut y = 0;
    while y + WIN <= h.max(WIN) {
        let mut x = 0;
        while x + WIN <= w.max(WIN) {
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0f32, 0.0, 0.0, 0.0, 0.0);
            let mut n = 0.0f32;
            for dy in 0..WIN.min(h) {
                for dx in 0..WIN.min(w) {
                    let ya = (y + dy).min(h - 1);
                    let xa = (x + dx).min(w - 1);
                    let va = la[ya * w + xa];
                    let vb = lb[ya * w + xa];
                    sa += va;
                    sb += vb;
                    saa += va * va;
                    sbb += vb * vb;
                    sab += va * vb;
                    n += 1.0;
                }
            }
            let ma = sa / n;
            let mb = sb / n;
            let va = (saa / n - ma * ma).max(0.0);
            let vb = (sbb / n - mb * mb).max(0.0);
            let cov = sab / n - ma * mb;
            let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            acc += s as f64;
            count += 1;
            x += STRIDE;
        }
        y += STRIDE;
    }
    if count == 0 {
        1.0
    } else {
        (acc / count as f64) as f32
    }
}

/// LPIPS proxy: a multi-scale perceptual distance without a pretrained
/// network (lower = more similar; 0 for identical images).
///
/// LPIPS compares deep-feature activations across scales. Offline we cannot
/// ship VGG weights, so this proxy compares hand-crafted "early-vision"
/// features — local luminance and gradient energy — across a 3-level
/// pyramid. It preserves LPIPS's orderings for the controlled degradations
/// in this repo (blur, splat dropout, color shift) which is what Fig. 13
/// needs; absolute values are not comparable to LPIPS.
///
/// # Panics
///
/// Panics on image dimension mismatch.
pub fn lpips_proxy(a: &Image, b: &Image) -> f32 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    let (mut w, mut h) = (a.width() as usize, a.height() as usize);
    let mut la = a.luminance();
    let mut lb = b.luminance();
    let mut total = 0.0f32;
    let scales = 3;
    for s in 0..scales {
        let ga = gradient_magnitude(&la, w, h);
        let gb = gradient_magnitude(&lb, w, h);
        let mut lum_diff = 0.0f64;
        let mut grad_diff = 0.0f64;
        for i in 0..w * h {
            lum_diff += ((la[i] - lb[i]).powi(2)) as f64;
            grad_diff += ((ga[i] - gb[i]).powi(2)) as f64;
        }
        let n = (w * h) as f64;
        // Gradient differences weigh more: LPIPS is texture-sensitive.
        total += ((lum_diff / n) as f32) * 0.5 + ((grad_diff / n) as f32) * 2.0;
        if s + 1 < scales {
            let (da, nw, nh) = downsample(&la, w, h);
            let (db, _, _) = downsample(&lb, w, h);
            la = da;
            lb = db;
            w = nw;
            h = nh;
        }
    }
    total / scales as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::Vec3;
    use rand::{Rng, SeedableRng};

    fn noise_image(w: u32, h: u32, seed: u64, amplitude: f32) -> Image {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let base = 0.5 + 0.3 * ((x as f32 * 0.3).sin() * (y as f32 * 0.2).cos());
                let n = rng.gen_range(-amplitude..=amplitude);
                img.set_pixel(x, y, Vec3::splat((base + n).clamp(0.0, 1.0)));
            }
        }
        img
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = noise_image(32, 32, 1, 0.0);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        let a = Image::filled(16, 16, Vec3::zero());
        let b = Image::filled(16, 16, Vec3::splat(0.1));
        // MSE = 0.01 → PSNR = 20 dB.
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let clean = noise_image(64, 64, 1, 0.0);
        let slightly = noise_image(64, 64, 1, 0.02);
        let very = noise_image(64, 64, 1, 0.2);
        assert!(psnr(&clean, &slightly) > psnr(&clean, &very));
    }

    #[test]
    fn ssim_identical_is_one() {
        let img = noise_image(64, 64, 2, 0.1);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ssim_orders_degradations() {
        let clean = noise_image(64, 64, 3, 0.0);
        let mild = noise_image(64, 64, 3, 0.05);
        let strong = noise_image(64, 64, 3, 0.3);
        let s_mild = ssim(&clean, &mild);
        let s_strong = ssim(&clean, &strong);
        assert!(s_mild > s_strong, "{s_mild} vs {s_strong}");
        assert!(s_mild < 1.0);
    }

    #[test]
    fn lpips_proxy_identical_is_zero() {
        let img = noise_image(64, 64, 4, 0.1);
        assert_eq!(lpips_proxy(&img, &img), 0.0);
    }

    #[test]
    fn lpips_proxy_orders_degradations() {
        let clean = noise_image(64, 64, 5, 0.0);
        let mild = noise_image(64, 64, 5, 0.05);
        let strong = noise_image(64, 64, 5, 0.3);
        assert!(lpips_proxy(&clean, &mild) < lpips_proxy(&clean, &strong));
    }

    #[test]
    fn lpips_proxy_penalizes_texture_loss() {
        // Blurring (loss of gradient energy) must register even when mean
        // luminance is preserved.
        let clean = noise_image(64, 64, 6, 0.2);
        let blurred = {
            let mut img = Image::new(64, 64);
            for y in 0..64u32 {
                for x in 0..64u32 {
                    let mut acc = Vec3::zero();
                    let mut n = 0.0;
                    for dy in -2i32..=2 {
                        for dx in -2i32..=2 {
                            let xx = (x as i32 + dx).clamp(0, 63) as u32;
                            let yy = (y as i32 + dy).clamp(0, 63) as u32;
                            acc += clean.pixel(xx, yy);
                            n += 1.0;
                        }
                    }
                    img.set_pixel(x, y, acc / n);
                }
            }
            img
        };
        assert!(lpips_proxy(&clean, &blurred) > 1e-4);
    }
}
