//! Feature maps and integral images for pooled statistics.
//!
//! HVSQ computes mean and standard deviation of image *features* (not raw
//! pixels) over spatial pools — emulating "the feature extraction in human's
//! early visual processing" (paper §2.2). We use three early-vision feature
//! channels: luminance and the two gradient components' magnitudes.
//! Integral images (summed-area tables) make per-pixel pooled statistics
//! O(1) regardless of pool size.

use ms_render::Image;

/// A summed-area table over an `f32` map, with a companion table of squares
/// so windowed mean and variance are O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// (width+1) × (height+1) prefix sums.
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl IntegralImage {
    /// Build from a row-major map.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != width * height` or a dimension is zero.
    pub fn new(values: &[f32], width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        assert_eq!(values.len(), width * height);
        let stride = width + 1;
        let mut sum = vec![0.0f64; stride * (height + 1)];
        let mut sum_sq = vec![0.0f64; stride * (height + 1)];
        for y in 0..height {
            let mut row = 0.0f64;
            let mut row_sq = 0.0f64;
            for x in 0..width {
                let v = values[y * width + x] as f64;
                row += v;
                row_sq += v * v;
                sum[(y + 1) * stride + x + 1] = sum[y * stride + x + 1] + row;
                sum_sq[(y + 1) * stride + x + 1] = sum_sq[y * stride + x + 1] + row_sq;
            }
        }
        Self {
            width,
            height,
            sum,
            sum_sq,
        }
    }

    /// Mean and standard deviation over the clamped window
    /// `[x0, x1) × [y0, y1)`.
    ///
    /// Windows are clamped to the image; an empty window yields `(0, 0)`.
    pub fn window_stats(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> (f32, f32) {
        let x0 = x0.clamp(0, self.width as i64) as usize;
        let y0 = y0.clamp(0, self.height as i64) as usize;
        let x1 = x1.clamp(0, self.width as i64) as usize;
        let y1 = y1.clamp(0, self.height as i64) as usize;
        if x1 <= x0 || y1 <= y0 {
            return (0.0, 0.0);
        }
        let stride = self.width + 1;
        let pick = |t: &[f64]| {
            t[y1 * stride + x1] - t[y0 * stride + x1] - t[y1 * stride + x0] + t[y0 * stride + x0]
        };
        let n = ((x1 - x0) * (y1 - y0)) as f64;
        let s = pick(&self.sum);
        let ss = pick(&self.sum_sq);
        let mean = s / n;
        let var = (ss / n - mean * mean).max(0.0);
        (mean as f32, var.sqrt() as f32)
    }
}

/// The early-vision feature channels of an image.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMaps {
    /// Number of feature channels.
    pub channels: usize,
    /// Integral image per channel.
    pub integrals: Vec<IntegralImage>,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

impl FeatureMaps {
    /// Extract features from an image: luminance, |∂x|, |∂y|.
    pub fn extract(image: &Image) -> Self {
        let w = image.width() as usize;
        let h = image.height() as usize;
        let lum = image.luminance();
        let mut gx = vec![0.0f32; w * h];
        let mut gy = vec![0.0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let xm = x.saturating_sub(1);
                let xp = (x + 1).min(w - 1);
                let ym = y.saturating_sub(1);
                let yp = (y + 1).min(h - 1);
                gx[y * w + x] = (0.5 * (lum[y * w + xp] - lum[y * w + xm])).abs();
                gy[y * w + x] = (0.5 * (lum[yp * w + x] - lum[ym * w + x])).abs();
            }
        }
        let integrals = vec![
            IntegralImage::new(&lum, w, h),
            IntegralImage::new(&gx, w, h),
            IntegralImage::new(&gy, w, h),
        ];
        Self {
            channels: integrals.len(),
            integrals,
            width: w,
            height: h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::Vec3;
    use proptest::prelude::*;

    #[test]
    fn window_stats_on_constant_map() {
        let v = vec![2.0f32; 12];
        let ii = IntegralImage::new(&v, 4, 3);
        let (m, s) = ii.window_stats(0, 0, 4, 3);
        assert!((m - 2.0).abs() < 1e-6);
        assert!(s < 1e-6);
    }

    #[test]
    fn window_stats_small_window() {
        let v: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let ii = IntegralImage::new(&v, 4, 4);
        // Window covering values 5 and 6 (row 1, cols 1..3).
        let (m, s) = ii.window_stats(1, 1, 3, 2);
        assert!((m - 5.5).abs() < 1e-6);
        assert!((s - 0.5).abs() < 1e-6);
    }

    #[test]
    fn window_clamps_to_image() {
        let v = vec![1.0f32; 9];
        let ii = IntegralImage::new(&v, 3, 3);
        let (m, _) = ii.window_stats(-10, -10, 100, 100);
        assert!((m - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_window_is_zero() {
        let v = vec![1.0f32; 9];
        let ii = IntegralImage::new(&v, 3, 3);
        assert_eq!(ii.window_stats(2, 2, 2, 2), (0.0, 0.0));
        assert_eq!(ii.window_stats(5, 0, 9, 1), (0.0, 0.0));
    }

    #[test]
    fn features_flat_image_has_no_gradients() {
        let img = ms_render::Image::filled(16, 16, Vec3::splat(0.5));
        let f = FeatureMaps::extract(&img);
        assert_eq!(f.channels, 3);
        let (gx_mean, _) = f.integrals[1].window_stats(0, 0, 16, 16);
        let (gy_mean, _) = f.integrals[2].window_stats(0, 0, 16, 16);
        assert!(gx_mean < 1e-6 && gy_mean < 1e-6);
    }

    #[test]
    fn features_detect_vertical_edge() {
        let mut img = ms_render::Image::new(16, 16);
        for y in 0..16 {
            for x in 8..16 {
                img.set_pixel(x, y, Vec3::one());
            }
        }
        let f = FeatureMaps::extract(&img);
        let (gx_mean, _) = f.integrals[1].window_stats(0, 0, 16, 16);
        let (gy_mean, _) = f.integrals[2].window_stats(0, 0, 16, 16);
        assert!(gx_mean > gy_mean * 5.0, "gx {gx_mean} gy {gy_mean}");
    }

    proptest! {
        #[test]
        fn window_stats_match_naive(
            vals in proptest::collection::vec(0.0f32..1.0, 36),
            x0 in 0i64..6, y0 in 0i64..6, dx in 1i64..6, dy in 1i64..6,
        ) {
            let ii = IntegralImage::new(&vals, 6, 6);
            let (m, s) = ii.window_stats(x0, y0, x0 + dx, y0 + dy);
            // Naive computation over the clamped window.
            let x1 = (x0 + dx).min(6) as usize;
            let y1 = (y0 + dy).min(6) as usize;
            let (x0, y0) = (x0 as usize, y0 as usize);
            prop_assume!(x1 > x0 && y1 > y0);
            let mut xs = Vec::new();
            for y in y0..y1 {
                for x in x0..x1 {
                    xs.push(vals[y * 6 + x]);
                }
            }
            let naive_m = xs.iter().sum::<f32>() / xs.len() as f32;
            let naive_v = xs.iter().map(|v| (v - naive_m).powi(2)).sum::<f32>() / xs.len() as f32;
            prop_assert!((m - naive_m).abs() < 1e-4);
            prop_assert!((s - naive_v.sqrt()).abs() < 1e-3);
        }
    }
}
