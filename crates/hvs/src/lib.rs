//! Human-visual-system quality metrics for MetaSapiens.
//!
//! Provides the two families of metrics the paper uses:
//!
//! * **Objective metrics** reported for the gaze region and in Fig. 13:
//!   [`psnr`], [`ssim`], and [`lpips_proxy`] (a pretrained-network-free
//!   stand-in for LPIPS; see module docs for the substitution argument).
//! * **Eccentricity-aware HVSQ** (paper Eqn. 2, after Walton et al. and
//!   Freeman & Simoncelli): feature-statistics matching over spatial pools
//!   whose size grows with retinal eccentricity. [`Hvsq`] evaluates the full
//!   image or any eccentricity band, which is how HVS-guided training
//!   controls per-level quality (paper §4.3).
//!
//! # Example
//!
//! ```
//! use ms_render::Image;
//! use ms_hvs::{psnr, DisplayGeometry, Hvsq};
//!
//! let a = Image::filled(64, 48, ms_math::Vec3::splat(0.5));
//! let b = Image::filled(64, 48, ms_math::Vec3::splat(0.5));
//! assert!(psnr(&a, &b).is_infinite());
//!
//! let hvsq = Hvsq::new(DisplayGeometry::new(64, 48, 88.0));
//! let q = hvsq.evaluate(&a, &b, None);
//! assert_eq!(q, 0.0);
//! ```

#![deny(missing_docs)]

mod eccentricity;
mod features;
mod hvsq;
mod objective;

pub use eccentricity::{DisplayGeometry, EccentricityMap, QualityRegions};
pub use features::{FeatureMaps, IntegralImage};
pub use hvsq::{Hvsq, HvsqOptions};
pub use objective::{lpips_proxy, psnr, ssim};
